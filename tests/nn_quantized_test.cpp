// Int8 quantized inference: the requantize primitive (exhaustively swept
// against an exact reference, lib_nn's measure_quantisation idiom), the
// coding schemes, quantized_linear parity with the float GEMM, and the
// end-to-end LeNet-5 contract — accuracy within 0.5% of float and
// byte-identical output at any thread count.
#include "nn/quantized.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/matmul.hpp"

namespace xbarlife::nn {
namespace {

// --- requantize --------------------------------------------------------

TEST(Requantize, ExhaustiveSweepWithinOneLsb) {
  // Sweep every int8-reachable accumulator against an exact double
  // reference over a grid of multipliers/biases/zero-points; the rounded
  // saturating fixed-point result must stay within 1 LSB everywhere.
  std::vector<std::int32_t> acc;
  for (std::int32_t v = -1 << 15; v <= 1 << 15; v += 7) {
    acc.push_back(v);
  }
  std::vector<std::int8_t> out(acc.size());
  for (const float multiplier : {0.25f, 0.01f, 0.0042f, 1.0f / 300.0f}) {
    for (const float bias : {0.0f, -3.7f, 12.25f}) {
      for (const std::int32_t zp : {0, -17, 42}) {
        requantize(acc.data(), acc.size(), multiplier, bias, zp,
                   out.data());
        for (std::size_t i = 0; i < acc.size(); ++i) {
          const double exact = std::clamp(
              static_cast<double>(acc[i]) * multiplier + bias + zp,
              -128.0, 127.0);
          EXPECT_LE(std::fabs(static_cast<double>(out[i]) - exact), 1.0)
              << "acc=" << acc[i] << " mult=" << multiplier
              << " bias=" << bias << " zp=" << zp;
        }
      }
    }
  }
}

TEST(Requantize, SaturatesInsteadOfWrapping) {
  const std::int32_t acc[2] = {1 << 20, -(1 << 20)};
  std::int8_t out[2] = {0, 0};
  requantize(acc, 2, 1.0f, 0.0f, 0, out);
  EXPECT_EQ(out[0], 127);
  EXPECT_EQ(out[1], -128);
}

// --- coding schemes ----------------------------------------------------

TEST(QuantizeWeights, PerChannelRoundTripWithinHalfStep) {
  Rng rng(3);
  Tensor w(Shape{17, 9});
  w.fill_gaussian(rng, 0.0f, 2.0f);
  const QuantizedTensor q = quantize_weights(w, QuantSpec{});
  ASSERT_TRUE(q.per_channel());
  ASSERT_EQ(q.scales.size(), 9u);
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_EQ(q.zero_points[j], 0);  // symmetric scheme
    for (std::size_t i = 0; i < 17; ++i) {
      const float decoded =
          static_cast<float>(q.codes[i * 9 + j]) * q.scales[j];
      EXPECT_NEAR(decoded, w.at(i, j), 0.5f * q.scales[j] + 1e-7f);
    }
  }
}

TEST(QuantizeWeights, FewerLevelsCoarsenTheGrid) {
  Rng rng(4);
  Tensor w(Shape{8, 4});
  w.fill_gaussian(rng, 0.0f, 1.0f);
  QuantSpec coarse;
  coarse.levels = 8;  // qmax = 3
  const QuantizedTensor q = quantize_weights(w, coarse);
  for (const std::int8_t c : q.codes) {
    EXPECT_GE(c, -3);
    EXPECT_LE(c, 3);
  }
}

TEST(QuantizeWeights, ClampWindowBoundsTheCodes) {
  Tensor w(Shape{2, 1}, std::vector<float>{10.0f, -10.0f});
  QuantSpec spec;
  spec.clamp_lo = -1.0f;
  spec.clamp_hi = 1.0f;
  const QuantizedTensor q = quantize_weights(w, spec);
  // absmax after clamping is 1, so both saturate at +-qmax of that scale.
  EXPECT_NEAR(static_cast<float>(q.codes[0]) * q.scales[0], 1.0f, 1e-5f);
  EXPECT_NEAR(static_cast<float>(q.codes[1]) * q.scales[0], -1.0f, 1e-5f);
}

TEST(QuantizeActivations, ZeroDecodesExactly) {
  Tensor x(Shape{2, 3}, std::vector<float>{0.0f, 1.5f, 3.0f,  //
                                           0.5f, 2.0f, 2.5f});
  const QuantizedTensor q = quantize_activations(x);
  ASSERT_EQ(q.scales.size(), 1u);
  // 0 maps onto the zero-point exactly, so bias-free layers stay exact.
  EXPECT_EQ(q.codes[0], static_cast<std::int8_t>(q.zero_points[0]));
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float decoded =
        static_cast<float>(q.codes[i] - q.zero_points[0]) * q.scales[0];
    EXPECT_NEAR(decoded, x[i], 0.5f * q.scales[0] + 1e-7f);
    EXPECT_GE(q.codes[i], -127);  // -128 reserved: keeps int16 exact
  }
}

// --- quantized_linear --------------------------------------------------

TEST(QuantizedLinear, TracksFloatGemm) {
  Rng rng(11);
  Tensor a(Shape{13, 21});
  Tensor w(Shape{21, 7});
  a.fill_gaussian(rng, 0.0f, 1.0f);
  w.fill_gaussian(rng, 0.0f, 0.5f);
  Tensor bias(Shape{1, 7});
  bias.fill_gaussian(rng, 0.0f, 0.1f);
  const Tensor ref = matmul(a, w);
  const QuantizedTensor qa = quantize_activations(a);
  const QuantizedTensor qw = quantize_weights(w, QuantSpec{});
  const Tensor got = quantized_linear(qa, qw, &bias);
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::size_t i = 0; i < got.numel(); ++i) {
    // 8-bit grids on both operands, k=21 accumulated quantization noise:
    // ~sqrt(k) * (|a| dw + |w| da) with half-step errors stays well
    // inside 0.15 for unit-scale gaussians.
    EXPECT_NEAR(got[i], ref[i] + bias[i % 7], 0.15f) << "i=" << i;
  }
}

TEST(QuantizedLinear, BitIdenticalAcrossVariantsAndThreads) {
  Rng rng(12);
  Tensor a(Shape{33, 29});
  Tensor w(Shape{29, 15});
  a.fill_gaussian(rng, 0.0f, 1.0f);
  w.fill_gaussian(rng, 0.0f, 1.0f);
  const QuantizedTensor qa = quantize_activations(a);
  const QuantizedTensor qw = quantize_weights(w, QuantSpec{});
  kernels::set_kernel("scalar");
  set_parallel_threads(1);
  const Tensor ref = quantized_linear(qa, qw, nullptr);
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    for (const std::size_t threads : {1u, 3u}) {
      set_parallel_threads(threads);
      EXPECT_TRUE(quantized_linear(qa, qw, nullptr) == ref)
          << name << " t=" << threads;
    }
  }
  set_parallel_threads(1);
  kernels::set_kernel("auto");
}

TEST(QuantizedLinear, ShapeAndSchemeChecksThrow) {
  Rng rng(13);
  Tensor a(Shape{4, 5});
  Tensor w(Shape{6, 3});  // inner mismatch
  a.fill_gaussian(rng, 0.0f, 1.0f);
  w.fill_gaussian(rng, 0.0f, 1.0f);
  const QuantizedTensor qa = quantize_activations(a);
  const QuantizedTensor qw = quantize_weights(w, QuantSpec{});
  EXPECT_THROW(quantized_linear(qa, qw, nullptr), Error);
}

// --- end-to-end: LeNet-5 -----------------------------------------------

struct TrainedLeNet {
  nn::Network net;
  data::TrainTest data;
};

/// Trains a small LeNet-5 on an easy synthetic task once for the suite.
TrainedLeNet& trained_lenet() {
  static TrainedLeNet* holder = [] {
    Rng rng(5);
    data::SyntheticSpec spec;
    spec.classes = 6;
    spec.train_per_class = 40;
    spec.test_per_class = 24;
    spec.channels = 1;
    spec.height = 16;
    spec.width = 16;
    spec.noise = 0.05;
    spec.seed = 17;
    auto* t = new TrainedLeNet{
        make_lenet5({1, 16, 16}, spec.classes, rng),
        data::make_synthetic(spec)};
    core::TrainConfig config;
    config.epochs = 6;
    config.batch = 16;
    config.learning_rate = 0.05;
    core::train(t->net, t->data, config, nullptr);
    return t;
  }();
  return *holder;
}

TEST(QuantizedForward, LeNet5AccuracyWithinHalfPercentOfFloat) {
  TrainedLeNet& tl = trained_lenet();
  const std::vector<QuantSpec> specs(tl.net.mappable_weights().size(),
                                     QuantSpec{});
  const double float_acc =
      tl.net.evaluate(tl.data.test.images, tl.data.test.labels);
  const double quant_acc = tl.net.evaluate_quantized(
      tl.data.test.images, tl.data.test.labels, specs);
  EXPECT_GT(float_acc, 0.9);  // the task is easy by construction
  EXPECT_NEAR(quant_acc, float_acc, 0.005);
}

TEST(QuantizedForward, ByteIdenticalAtAnyThreadCount) {
  TrainedLeNet& tl = trained_lenet();
  const std::vector<QuantSpec> specs(tl.net.mappable_weights().size(),
                                     QuantSpec{});
  const Tensor batch = tl.data.test.images;
  set_parallel_threads(1);
  const Tensor serial = tl.net.forward_quantized(batch, specs);
  for (const std::size_t threads : {2u, 4u}) {
    set_parallel_threads(threads);
    EXPECT_TRUE(tl.net.forward_quantized(batch, specs) == serial)
        << "t=" << threads;
  }
  set_parallel_threads(1);
}

TEST(QuantizedForward, SpecCountMismatchThrows) {
  TrainedLeNet& tl = trained_lenet();
  const std::vector<QuantSpec> too_few(1, QuantSpec{});
  EXPECT_THROW(tl.net.forward_quantized(tl.data.test.images, too_few),
               Error);
}

}  // namespace
}  // namespace xbarlife
