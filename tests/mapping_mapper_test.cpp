// Mapper tests: Eq. (4) + quantization programming, effective-weight
// readback, write-verify skipping, the stuck-cell list, and the skewed-
// distribution quantization advantage the paper builds on.
#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife::mapping {
namespace {

constexpr ResistanceRange kFresh{1e4, 1e5};

device::DeviceParams dev() { return device::DeviceParams{}; }

aging::AgingParams quiet_aging() {
  aging::AgingParams a;
  a.a_f = 0.0;  // disable aging where the test wants pure mapping effects
  a.a_g = 0.0;
  a.thermal_crosstalk = 0.0;
  return a;
}

Tensor random_weights(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  Rng rng(seed);
  Tensor w(Shape{rows, cols});
  w.fill_gaussian(rng, 0.0f, 0.3f);
  return w;
}

TEST(MappingPlan, TargetResistanceIsOnTheGrid) {
  Tensor w = random_weights(4, 4, 1);
  MappingPlan plan(weight_range_of(w), kFresh, 16);
  const auto& q = plan.quantizer();
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const double r = plan.target_resistance(static_cast<double>(w[i]));
    const std::size_t level = q.nearest_level_for_resistance(r);
    EXPECT_NEAR(q.level_resistance(level), r, 1e-9);
  }
}

TEST(MappingPlan, ExtremeWeightsHitRangeEnds) {
  MappingPlan plan({-1.0, 1.0}, kFresh, 16);
  // w_min -> g_min -> largest usable resistance.
  EXPECT_NEAR(plan.target_resistance(-1.0), 1e5, 1.0);
  EXPECT_NEAR(plan.target_resistance(1.0), 1e4, 1.0);
}

TEST(MappingPlan, WeightOfResistanceInverts) {
  MappingPlan plan({-1.0, 1.0}, kFresh, 32);
  for (double w : {-1.0, -0.4, 0.0, 0.8, 1.0}) {
    const double r = plan.target_resistance(w);
    // Inversion error is bounded by half the local level gap in weight
    // space; near g_max the conductance levels are sparse (Fig. 3(c)),
    // so the worst case is large even with 32 levels.
    EXPECT_NEAR(plan.weight_of_resistance(r), w, 0.26);
  }
}

TEST(ProgramWeights, ProgramsAllCellsOnFreshArray) {
  xbar::Crossbar xb(4, 4, dev(), quiet_aging());
  Tensor w = random_weights(4, 4, 2);
  MappingPlan plan(weight_range_of(w), kFresh, 32);
  const MappingReport report = program_weights(xb, w, plan);
  EXPECT_EQ(report.total_cells, 16u);
  EXPECT_GT(report.programmed_cells, 12u);  // HRS power-up may match a few
  EXPECT_EQ(report.clamped_cells, 0u);
  EXPECT_GT(report.mean_target_conductance, kFresh.g_min());
}

TEST(ProgramWeights, SecondPassSkipsEverything) {
  xbar::Crossbar xb(4, 4, dev(), quiet_aging());
  Tensor w = random_weights(4, 4, 3);
  MappingPlan plan(weight_range_of(w), kFresh, 32);
  program_weights(xb, w, plan);
  const auto pulses = xb.total_pulses();
  const MappingReport second = program_weights(xb, w, plan);
  EXPECT_EQ(second.programmed_cells, 0u);
  EXPECT_EQ(xb.total_pulses(), pulses);
}

TEST(ProgramWeights, ForceWriteProgramsEveryCell) {
  xbar::Crossbar xb(4, 4, dev(), quiet_aging());
  Tensor w = random_weights(4, 4, 3);
  MappingPlan plan(weight_range_of(w), kFresh, 32);
  program_weights(xb, w, plan);
  const MappingReport forced =
      program_weights(xb, w, plan, /*skip_unchanged=*/false);
  EXPECT_EQ(forced.programmed_cells, 16u);
}

TEST(ProgramWeights, EffectiveWeightsCloseToTargets) {
  xbar::Crossbar xb(6, 6, dev(), quiet_aging());
  Tensor w = random_weights(6, 6, 4);
  MappingPlan plan(weight_range_of(w), kFresh, 64);
  const MappingReport report = program_weights(xb, w, plan);
  Tensor eff = effective_weights(xb, plan);
  // RMSE from the report must match a direct computation and be small
  // for 64 levels.
  double sq = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    sq += std::pow(static_cast<double>(eff[i] - w[i]), 2);
  }
  const double rmse = std::sqrt(sq / static_cast<double>(w.numel()));
  EXPECT_NEAR(report.quantization_rmse, rmse, 1e-6);
  const double span = weight_range_of(w).span();
  EXPECT_LT(rmse, span * 0.05);
}

TEST(ProgramWeights, MoreLevelsMeansLessQuantizationError) {
  Tensor w = random_weights(8, 8, 5);
  double prev_rmse = 1e9;
  for (std::size_t levels : {4u, 8u, 16u, 64u}) {
    xbar::Crossbar xb(8, 8, dev(), quiet_aging());
    MappingPlan plan(weight_range_of(w), kFresh, levels);
    const MappingReport report = program_weights(xb, w, plan);
    EXPECT_LT(report.quantization_rmse, prev_rmse);
    prev_rmse = report.quantization_rmse;
  }
}

TEST(ProgramWeights, SkewedWeightsQuantizeBetter) {
  // The paper's Fig. 6 argument: mass concentrated near w_min lands where
  // conductance levels are dense, so quantization error drops.
  Rng rng(6);
  Tensor normal(Shape{16, 16});
  normal.fill_gaussian(rng, 0.0f, 0.3f);
  Tensor skewed(Shape{16, 16});
  for (std::size_t i = 0; i < skewed.numel(); ++i) {
    // Lognormal-ish right tail anchored at the left edge.
    skewed[i] = -0.9f + 0.25f *
        std::exp(static_cast<float>(rng.gaussian(0.0, 0.7)));
  }
  // Force comparable ranges so only the *shape* differs.
  auto rmse_of = [&](const Tensor& w) {
    xbar::Crossbar xb(16, 16, dev(), quiet_aging());
    MappingPlan plan(weight_range_of(w), kFresh, 16);
    return program_weights(xb, w, plan).quantization_rmse /
           weight_range_of(w).span();
  };
  EXPECT_LT(rmse_of(skewed), rmse_of(normal));
}

TEST(ProgramWeights, StuckMapTracksClampedAndDeadCells) {
  device::DeviceParams p = dev();
  aging::AgingParams a;
  a.a_f = 2e8;  // ages fast but leaves a live (partial) window
  a.thermal_crosstalk = 0.0;
  xbar::Crossbar xb(2, 2, p, a);
  // Stress cell (0,0) so its window top collapses well below r_max while
  // the window itself stays alive.
  for (int i = 0; i < 200; ++i) {
    xb.program_cell(0, 0, p.r_min_fresh);
  }
  ASSERT_LT(xb.cell(0, 0).aged_window().r_max, 5e4);
  ASSERT_TRUE(xb.cell(0, 0).aged_window().usable());

  // Target all cells at the top of the range: (0,0) cannot reach it.
  Tensor w(Shape{2, 2}, -1.0f);
  w.at(1, 1) = 1.0f;  // keep a non-degenerate range
  MappingPlan plan(weight_range_of(w), kFresh, 16);
  std::vector<std::uint8_t> stuck(4, 0);
  std::vector<float> pinned(4, 0.0f);
  const MappingReport r1 =
      program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck,
                      &pinned);
  EXPECT_GE(r1.clamped_cells, 1u);
  EXPECT_EQ(stuck[0], kCellClamped);
  EXPECT_GT(pinned[0], 0.0f);  // best-achievable conductance pinned

  // Next pass without drift: the clamped cell sits at its pinned value,
  // so it must not be pulsed again.
  const auto pulses = xb.cell(0, 0).pulse_count();
  program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck, &pinned);
  EXPECT_EQ(xb.cell(0, 0).pulse_count(), pulses);

  // After material drift the controller restores the pinned value with a
  // best-effort write. (Drift downward: the collapsed window clamps any
  // upward drift back to the pinned edge by itself.)
  xb.drift_cell(0, 0, xb.cell(0, 0).resistance() * 0.3);
  program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck, &pinned);
  EXPECT_EQ(xb.cell(0, 0).pulse_count(), pulses + 1);

  // A fully collapsed window is retired as dead once a pulse stops moving
  // the cell, and is then never pulsed again.
  for (int i = 0; i < 4000; ++i) {
    xb.program_cell(0, 0, p.r_min_fresh);
  }
  std::fill(stuck.begin(), stuck.end(), 0);
  std::fill(pinned.begin(), pinned.end(), 0.0f);
  program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck, &pinned);
  xb.drift_cell(0, 0, xb.cell(0, 0).resistance() * 1.5);
  program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck, &pinned);
  if (stuck[0] == kCellDead) {
    const auto frozen = xb.cell(0, 0).pulse_count();
    xb.drift_cell(0, 0, xb.cell(0, 0).resistance() * 1.5);
    program_weights(xb, w, plan, /*skip_unchanged=*/true, &stuck, &pinned);
    EXPECT_EQ(xb.cell(0, 0).pulse_count(), frozen);
  }
}

TEST(ProgramWeights, RejectsShapeMismatch) {
  xbar::Crossbar xb(2, 2, dev(), quiet_aging());
  Tensor w = random_weights(3, 2, 7);
  MappingPlan plan(weight_range_of(w), kFresh, 8);
  EXPECT_THROW(program_weights(xb, w, plan), InvalidArgument);
  std::vector<std::uint8_t> wrong_stuck(3, 0);
  Tensor w2 = random_weights(2, 2, 8);
  MappingPlan plan2(weight_range_of(w2), kFresh, 8);
  EXPECT_THROW(program_weights(xb, w2, plan2, true, &wrong_stuck),
               InvalidArgument);
}

TEST(PredictEffectiveWeights, MatchesProgrammingOutcome) {
  xbar::Crossbar xb(5, 5, dev(), quiet_aging());
  Tensor w = random_weights(5, 5, 9);
  MappingPlan plan(weight_range_of(w), kFresh, 32);
  auto fresh_window = [](std::size_t, std::size_t) {
    return aging::AgedWindow{1e4, 1e5};
  };
  Tensor predicted = predict_effective_weights(w, plan, fresh_window);
  program_weights(xb, w, plan);
  Tensor actual = effective_weights(xb, plan);
  EXPECT_TRUE(allclose(predicted, actual, 1e-4f));
}

TEST(PredictEffectiveWeights, ClampsByProvidedWindows) {
  Tensor w(Shape{1, 2}, std::vector<float>{-1.0f, 1.0f});
  MappingPlan plan(weight_range_of(w), kFresh, 16);
  // Window collapsed to [1e4, 2e4]: the w_min cell (target 1e5) clamps to
  // 2e4, which reads back as a much larger weight.
  auto tight = [](std::size_t, std::size_t) {
    return aging::AgedWindow{1e4, 2e4};
  };
  Tensor eff = predict_effective_weights(w, plan, tight);
  EXPECT_GT(eff.at(0, 0), -0.2f);
  EXPECT_NEAR(eff.at(0, 1), 1.0f, 0.1f);
}

}  // namespace
}  // namespace xbarlife::mapping
