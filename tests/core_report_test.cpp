// Shared reporting helpers and the model registry. The result-document
// schema is pinned by a golden file: a change to the envelope keys is a
// consumer-visible break and must bump kResultSchema.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "core/model_registry.hpp"
#include "tensor/kernels/kernels.hpp"
#include "xbar/executor.hpp"

#ifndef XBARLIFE_GOLDEN_DIR
#error "XBARLIFE_GOLDEN_DIR must point at tests/golden"
#endif

namespace xbarlife::core {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(XBARLIFE_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

LifetimeResult sample_lifetime() {
  LifetimeResult result;
  for (std::size_t s = 0; s < 3; ++s) {
    SessionRecord rec;
    rec.session = s;
    rec.applications = 100 * (s + 1);
    rec.tuning_iterations = 4 + s;
    rec.rescued = (s == 1);
    rec.converged = (s != 2);
    rec.start_accuracy = 0.8 - 0.1 * static_cast<double>(s);
    rec.accuracy = 0.9;
    rec.pulses_total = 1000 * (s + 1);
    rec.layer_mean_aged_rmax = {50e3, 48e3};
    rec.layer_mean_usable_levels = {16.0, 15.5};
    result.sessions.push_back(rec);
  }
  result.lifetime_applications = 300;
  result.died = true;
  return result;
}

// --- result document ---------------------------------------------------

TEST(ResultDocumentTest, EnvelopeMatchesGolden) {
  // The envelope embeds the active kernel variant and executor backend;
  // pin both so the golden is host- and environment-independent.
  kernels::set_kernel("scalar");
  xbar::set_executor("sim");
  obs::JsonValue data = obs::JsonValue::object();
  data.set("answer", 42);
  obs::Registry reg;
  reg.counter("lifetime.sessions").add(3);
  reg.gauge("train.final_test_accuracy").set(0.5);
  const obs::JsonValue doc = result_document("demo", std::move(data), &reg);
  kernels::set_kernel("auto");
  EXPECT_EQ(doc.dump(), read_golden("result_document.json"));
}

TEST(ResultDocumentTest, EnvelopeKeysAndSchema) {
  const obs::JsonValue doc =
      result_document("lifetime", obs::JsonValue::object(), nullptr);
  ASSERT_TRUE(doc.is_object());
  const auto* obj = doc.as_object();
  // Under a multi-endpoint XBARLIFE_REMOTE pool the envelope carries the
  // executor_pool stamp directly after "executor" (the suite runs under
  // every backend, pools included); otherwise exactly the six base keys.
  const bool pooled = xbar::executor_pool_summary().active;
  const std::size_t shift = pooled ? 1 : 0;
  ASSERT_EQ(obj->size(), 6u + shift);
  EXPECT_EQ((*obj)[0].first, "schema");
  EXPECT_EQ((*obj)[1].first, "command");
  EXPECT_EQ((*obj)[2].first, "kernel");
  EXPECT_EQ((*obj)[3].first, "executor");
  if (pooled) {
    EXPECT_EQ((*obj)[4].first, "executor_pool");
  }
  EXPECT_EQ((*obj)[4 + shift].first, "data");
  EXPECT_EQ((*obj)[5 + shift].first, "metrics");
  EXPECT_EQ(doc.find("schema")->dump(), "\"xbarlife.result.v1\"");
  EXPECT_EQ(doc.find("command")->dump(), "\"lifetime\"");
  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);
  EXPECT_NE(metrics->find("gauges"), nullptr);
  EXPECT_NE(metrics->find("histograms"), nullptr);
}

TEST(ResultDocumentTest, LifetimeResultJsonMatchesGolden) {
  EXPECT_EQ(lifetime_result_json(sample_lifetime()).dump(),
            read_golden("lifetime_result.json"));
}

TEST(ResultDocumentTest, SessionRecordJsonCarriesAllScalars) {
  const obs::JsonValue j = session_record_json(sample_lifetime().sessions[1]);
  for (const char* key :
       {"session", "applications", "tuning_iterations", "rescued",
        "converged", "start_accuracy", "accuracy", "pulses_total",
        "layer_mean_aged_rmax", "layer_mean_usable_levels"}) {
    EXPECT_NE(j.find(key), nullptr) << key;
  }
  EXPECT_EQ(j.find("rescued")->dump(), "true");
}

TEST(ResultDocumentTest, SweepEntriesJsonShape) {
  ScenarioSweepEntry entry;
  entry.label = "T+T/r0";
  entry.scenario = Scenario::kTT;
  entry.stream = 0;
  entry.seed = 11;
  entry.wall_ms = 1.25;
  entry.outcome.scenario = Scenario::kTT;
  entry.outcome.software_accuracy = 0.75;
  entry.outcome.tuning_target = 0.7;
  entry.outcome.lifetime = sample_lifetime();
  const obs::JsonValue j = sweep_entries_json({entry});
  EXPECT_EQ(j.find("job_count")->dump(), "1");
  const obs::JsonValue& job = (*j.find("jobs")->as_array())[0];
  EXPECT_EQ(job.find("label")->dump(), "\"T+T/r0\"");
  EXPECT_EQ(job.find("lifetime_applications")->dump(), "300");
  EXPECT_EQ(job.find("died")->dump(), "true");
  EXPECT_NE(job.find("wall_ms"), nullptr);
}

TEST(ResultDocumentTest, SessionTableSubsamplesButKeepsLastRow) {
  LifetimeResult result;
  for (std::size_t s = 0; s < 50; ++s) {
    SessionRecord rec;
    rec.session = s;
    rec.layer_mean_aged_rmax = {1.0};
    rec.layer_mean_usable_levels = {1.0};
    result.sessions.push_back(rec);
  }
  const std::string table = lifetime_session_table(result, 10);
  EXPECT_NE(table.find("| 0 "), std::string::npos);
  EXPECT_NE(table.find("| 49 "), std::string::npos);
  // Subsampled: strictly fewer rows than sessions.
  std::size_t rows = 0;
  for (const char c : table) {
    rows += (c == '\n');
  }
  EXPECT_LT(rows, 50u);
}

// --- profile key -------------------------------------------------------

obs::Profiler sample_profiler_storage;

/// Builds the profiler behind the golden profile report: a command root
/// with two tuning sessions and attributed domain counters.
const obs::Profiler& sample_profiler() {
  static const bool built = [] {
    obs::Profiler& prof = sample_profiler_storage;
    const std::size_t root = prof.begin_span("cmd.demo");
    const std::size_t s1 = prof.begin_span("tuning.session");
    prof.add_counter("tuning.pulses", 12);
    prof.end_span(s1);
    const std::size_t s2 = prof.begin_span("tuning.session");
    prof.add_counter("tuning.pulses", 8);
    prof.add_counter("tuning.iterations", 3);
    prof.end_span(s2);
    prof.end_span(root);
    return true;
  }();
  (void)built;
  return sample_profiler_storage;
}

TEST(ResultDocumentTest, ProfileReportSkeletonMatchesGolden) {
  // Wall-clock fields are nondeterministic, so the golden pins the
  // skeleton (include_times = false): names, counts, merged counters.
  EXPECT_EQ(sample_profiler().report_json(false).dump(),
            read_golden("profile_report.json"));
}

TEST(ResultDocumentTest, ProfilerAppendsTrailingProfileKey) {
  const obs::JsonValue doc =
      result_document("demo", obs::JsonValue::object(), nullptr,
                      &sample_profiler());
  ASSERT_TRUE(doc.is_object());
  const auto* obj = doc.as_object();
  const std::size_t shift = xbar::executor_pool_summary().active ? 1 : 0;
  ASSERT_EQ(obj->size(), 7u + shift);
  EXPECT_EQ(obj->back().first, "profile");
  const obs::JsonValue* profile = doc.find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->find("span_count")->dump(), "3");
  // The embedded rollup carries the wall-clock aggregates.
  const std::string text = profile->dump();
  EXPECT_NE(text.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(text.find("\"self_ms\":"), std::string::npos);
  EXPECT_NE(text.find("\"tuning.pulses\":20"), std::string::npos);
}

TEST(ResultDocumentTest, ProfileTableRendersSpansAndCounters) {
  const std::string table = profile_table(sample_profiler());
  EXPECT_NE(table.find("cmd.demo"), std::string::npos);
  EXPECT_NE(table.find("tuning.session"), std::string::npos);
  EXPECT_NE(table.find("tuning.pulses=20"), std::string::npos);
}

// --- model registry ----------------------------------------------------

TEST(ModelRegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> names = model_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_TRUE(ModelRegistry::instance().contains("lenet5"));
  EXPECT_TRUE(ModelRegistry::instance().contains("vgg16"));
  EXPECT_TRUE(ModelRegistry::instance().contains("mlp"));
  // Sorted order.
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(ModelRegistryTest, FactoriesMatchLegacyConfigs) {
  EXPECT_EQ(make_model_config("lenet5").name, lenet_experiment_config().name);
  EXPECT_EQ(make_model_config("vgg16").name, vgg_experiment_config().name);
  const ExperimentConfig mlp = make_model_config("mlp");
  EXPECT_EQ(mlp.model, ExperimentConfig::Model::kMlp);
  EXPECT_FALSE(mlp.mlp_hidden.empty());
}

TEST(ModelRegistryTest, UnknownNameListsAvailableModels) {
  try {
    make_model_config("resnet50");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("resnet50"), std::string::npos);
    EXPECT_NE(msg.find("lenet5"), std::string::npos);
    EXPECT_NE(msg.find("vgg16"), std::string::npos);
  }
}

TEST(ModelRegistryTest, DuplicateAndEmptyRegistrationsThrow) {
  ModelRegistry& reg = ModelRegistry::instance();
  EXPECT_THROW(
      reg.add("lenet5", "dup", [] { return ExperimentConfig{}; }),
      xbarlife::Error);
  EXPECT_THROW(reg.add("", "empty", [] { return ExperimentConfig{}; }),
               xbarlife::Error);
  EXPECT_THROW(reg.add("nofactory", "null", nullptr), xbarlife::Error);
}

TEST(ModelRegistryTest, RuntimeRegistrationWorks) {
  ModelRegistry& reg = ModelRegistry::instance();
  const std::string name = "test-double-model";
  if (!reg.contains(name)) {
    reg.add(name, "registered by core_report_test", [] {
      ExperimentConfig cfg;
      cfg.name = "TestDouble";
      return cfg;
    });
  }
  EXPECT_EQ(reg.make(name).name, "TestDouble");
  EXPECT_EQ(reg.describe(name), "registered by core_report_test");
}

}  // namespace
}  // namespace xbarlife::core
