// Aging-aware common-range selection tests (Section IV-B, Fig. 8).
#include "mapping/range_select.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife::mapping {
namespace {

constexpr double kRmin = 1e4;
constexpr double kRmax = 1e5;

aging::AgingModel model_with_crosstalk_off() {
  aging::AgingParams p;
  p.thermal_crosstalk = 0.0;
  return aging::AgingModel(p);
}

Tensor small_weights(std::uint64_t seed) {
  Rng rng(seed);
  Tensor w(Shape{6, 6});
  w.fill_gaussian(rng, 0.0f, 0.3f);
  return w;
}

TEST(CandidateBounds, FreshTrackerYieldsFreshBound) {
  aging::RepresentativeTracker tracker(6, 6);
  const auto model = model_with_crosstalk_off();
  const auto bounds = candidate_upper_bounds(tracker, model, kRmin, kRmax);
  ASSERT_EQ(bounds.size(), 1u);  // all reps at zero stress merge
  EXPECT_DOUBLE_EQ(bounds[0], kRmax);
}

TEST(CandidateBounds, DistinctAgedRepsYieldDistinctBounds) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-6);
  tracker.record_pulse(4, 4, 1e-5);
  const auto bounds = candidate_upper_bounds(tracker, model, kRmin, kRmax);
  ASSERT_EQ(bounds.size(), 3u);  // two aged + the untouched reps
  EXPECT_LT(bounds[0], bounds[1]);
  EXPECT_LT(bounds[1], bounds[2]);
  EXPECT_DOUBLE_EQ(bounds[2], kRmax);
}

TEST(CandidateBounds, NearDuplicatesMerge) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-4);
  tracker.record_pulse(4, 4, 1.0000001e-4);
  const auto bounds = candidate_upper_bounds(tracker, model, kRmin, kRmax);
  EXPECT_EQ(bounds.size(), 2u);
}

TEST(TrackerWindowFunctor, ReflectsBlockStress) {
  aging::RepresentativeTracker tracker(6, 6);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-3);
  const auto window_of =
      tracker_window_functor(tracker, model, kRmin, kRmax);
  EXPECT_LT(window_of(0, 0).r_max, kRmax);   // same block as (1,1)
  EXPECT_DOUBLE_EQ(window_of(5, 5).r_max, kRmax);  // untouched block
}

TEST(SelectCommonRange, FreshArrayKeepsFreshRange) {
  aging::RepresentativeTracker tracker(6, 6);
  const auto model = model_with_crosstalk_off();
  const Tensor w = small_weights(1);
  auto evaluate = [](const Tensor&) { return 0.9; };
  const RangeSelectionResult sel = select_common_range(
      tracker, model, kRmin, kRmax, w, 16, evaluate);
  EXPECT_DOUBLE_EQ(sel.selected.r_hi, kRmax);
  EXPECT_DOUBLE_EQ(sel.selected.r_lo, kRmin);
}

TEST(SelectCommonRange, PicksAccuracyArgmax) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-5);
  tracker.record_pulse(4, 4, 1e-6);
  Tensor w(Shape{9, 9});
  Rng rng(2);
  w.fill_gaussian(rng, 0.0f, 0.3f);

  // Score candidates by how close their r_hi is to a magic value: only
  // the selection mechanics are under test, so a synthetic evaluator
  // keyed on the mapped range is enough.
  const double magic = model.aged_r_max(kRmax, 1e-6);
  auto evaluate = [&](const Tensor& eff) {
    // The predicted effective weights differ per candidate; recover the
    // candidate through its largest effective weight... simpler: count
    // clamping distortion: fewer distorted entries = higher score. The
    // most aged block distorts under large candidates, so the middle
    // candidate (magic) wins.
    double err = 0.0;
    for (std::size_t i = 0; i < eff.numel(); ++i) {
      err += std::abs(static_cast<double>(eff[i] - w[i]));
    }
    return 1.0 / (1.0 + err);
  };
  const RangeSelectionResult sel = select_common_range(
      tracker, model, kRmin, kRmax, w, 16, evaluate);
  EXPECT_GT(sel.candidates_tried, 1u);
  EXPECT_EQ(sel.candidate_scores.size(), sel.candidate_bounds.size());
  // The selected bound is one of the candidates and achieves the best
  // score within tolerance.
  double best = 0.0;
  for (double s : sel.candidate_scores) {
    best = std::max(best, s);
  }
  EXPECT_GE(sel.best_score, best - 0.02);
  (void)magic;
}

TEST(SelectCommonRange, IncumbentKeptAboveThreshold) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-3);
  const Tensor w = small_weights(3);
  int evaluations = 0;
  auto evaluate = [&](const Tensor&) {
    ++evaluations;
    return 0.95;
  };
  const ResistanceRange incumbent{kRmin, kRmax};
  const RangeSelectionResult sel = select_common_range(
      tracker, model, kRmin, kRmax, w, 16, evaluate, &incumbent,
      /*keep_threshold=*/0.9);
  EXPECT_TRUE(sel.kept_incumbent);
  EXPECT_EQ(evaluations, 1);  // only the incumbent was scored
  EXPECT_DOUBLE_EQ(sel.selected.r_hi, kRmax);
}

TEST(SelectCommonRange, IncumbentWinsNearTies) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 5e-4);
  const Tensor w = small_weights(4);
  // Everything scores identically: the incumbent must win.
  auto evaluate = [](const Tensor&) { return 0.5; };
  const ResistanceRange incumbent{kRmin, 7e4};
  const RangeSelectionResult sel = select_common_range(
      tracker, model, kRmin, kRmax, w, 16, evaluate, &incumbent,
      /*keep_threshold=*/0.99);  // above any score: forces the scan
  EXPECT_TRUE(sel.kept_incumbent);
  EXPECT_DOUBLE_EQ(sel.selected.r_hi, 7e4);
}

TEST(SelectCommonRange, ClearWinnerBeatsIncumbent) {
  aging::RepresentativeTracker tracker(9, 9);
  const auto model = model_with_crosstalk_off();
  tracker.record_pulse(1, 1, 1e-3);
  const Tensor w = small_weights(5);
  // Candidates below 9e4 score high; the incumbent (fresh) scores low.
  auto evaluate = [&](const Tensor& eff) {
    // Detect the incumbent by its unclamped prediction: the aged block
    // distorts only under large ranges... Use a direct trick: score by
    // the spread of effective weights (smaller range -> coarser grid ->
    // larger distinct steps). Instead, simply return higher for lower
    // max effective weight error vs targets.
    double err = 0.0;
    for (std::size_t i = 0; i < eff.numel(); ++i) {
      err = std::max(err, std::abs(static_cast<double>(eff[i] - w[i])));
    }
    return 1.0 - err;
  };
  const ResistanceRange incumbent{kRmin, kRmax};
  const RangeSelectionResult sel = select_common_range(
      tracker, model, kRmin, kRmax, w, 16, evaluate, &incumbent,
      /*keep_threshold=*/2.0);  // never keep outright
  // With a heavily aged block, the fresh incumbent has clamp distortion
  // and a smaller candidate should win (or at least match).
  EXPECT_LE(sel.selected.r_hi, kRmax);
}

TEST(SelectCommonRange, MaxCandidatesCapsEvaluations) {
  aging::RepresentativeTracker tracker(30, 30);  // 100 blocks
  const auto model = model_with_crosstalk_off();
  Rng rng(6);
  for (std::size_t r = 1; r < 30; r += 3) {
    for (std::size_t c = 1; c < 30; c += 3) {
      tracker.record_pulse(r, c, rng.uniform(1e-5, 1e-3));
    }
  }
  Tensor w(Shape{30, 30});
  w.fill_gaussian(rng, 0.0f, 0.3f);
  int evaluations = 0;
  auto evaluate = [&](const Tensor&) {
    ++evaluations;
    return 0.5;
  };
  select_common_range(tracker, model, kRmin, kRmax, w, 16, evaluate,
                      nullptr, 2.0, /*max_candidates=*/5);
  EXPECT_LE(evaluations, 5);
}

TEST(SelectCommonRange, RejectsBadArguments) {
  aging::RepresentativeTracker tracker(3, 3);
  const auto model = model_with_crosstalk_off();
  const Tensor w = small_weights(7);
  EXPECT_THROW(
      select_common_range(tracker, model, kRmin, kRmax, w, 16, nullptr),
      InvalidArgument);
  EXPECT_THROW(select_common_range(tracker, model, kRmin, kRmax,
                                   Tensor(Shape{4}), 16,
                                   [](const Tensor&) { return 0.0; }),
               InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::mapping
