#include "nn/model_zoo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::nn {
namespace {

TEST(ModelZoo, MlpShapes) {
  Rng rng(1);
  Network net = make_mlp(12, {8, 6}, 3, rng);
  Tensor x(Shape{2, 12}, 0.5f);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(net.mappable_weights().size(), 3u);
}

TEST(ModelZoo, MlpNoHidden) {
  Rng rng(1);
  Network net = make_mlp(4, {}, 2, rng);
  EXPECT_EQ(net.layer_count(), 1u);
  Tensor y = net.forward(Tensor(Shape{1, 4}, 1.0f));
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
}

TEST(ModelZoo, LeNet5TopologyMatchesPaper) {
  // Table I: LeNet-5 has 2 convolutional and 3 fully-connected layers.
  Rng rng(2);
  const ImageSpec spec{3, 32, 32};
  Network net = make_lenet5(spec, 10, rng);
  const LayerMix mix = count_layer_mix(net);
  EXPECT_EQ(mix.conv, 2u);
  EXPECT_EQ(mix.dense, 3u);
  Tensor y = net.forward(Tensor(Shape{1, spec.features()}, 0.1f));
  EXPECT_EQ(y.shape(), (Shape{1, 10}));
}

TEST(ModelZoo, LeNet5On16x16) {
  Rng rng(2);
  const ImageSpec spec{3, 16, 16};
  Network net = make_lenet5(spec, 10, rng);
  Tensor y = net.forward(Tensor(Shape{2, spec.features()}, 0.1f));
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(ModelZoo, LeNet5RejectsTinyOrNonSquare) {
  Rng rng(2);
  EXPECT_THROW(make_lenet5({1, 8, 8}, 10, rng), InvalidArgument);
  EXPECT_THROW(make_lenet5({1, 16, 20}, 10, rng), InvalidArgument);
}

TEST(ModelZoo, Vgg16TopologyMatchesPaper) {
  // Table I: VGG-16 has 13 convolutional and 3 fully-connected layers.
  Rng rng(3);
  const ImageSpec spec{3, 32, 32};
  Network net = make_vgg16(spec, 100, /*width=*/1, rng);
  const LayerMix mix = count_layer_mix(net);
  EXPECT_EQ(mix.conv, 13u);
  EXPECT_EQ(mix.dense, 3u);
  EXPECT_EQ(net.mappable_weights().size(), 16u);
  Tensor y = net.forward(Tensor(Shape{1, spec.features()}, 0.1f));
  EXPECT_EQ(y.shape(), (Shape{1, 100}));
}

TEST(ModelZoo, Vgg16WidthScalesChannels) {
  Rng rng(3);
  const ImageSpec spec{3, 32, 32};
  Network w1 = make_vgg16(spec, 10, 1, rng);
  Network w2 = make_vgg16(spec, 10, 2, rng);
  EXPECT_GT(w2.parameter_count(), 2 * w1.parameter_count());
}

TEST(ModelZoo, Vgg16RejectsBadInputs) {
  Rng rng(3);
  EXPECT_THROW(make_vgg16({3, 24, 24}, 10, 1, rng), InvalidArgument);
  EXPECT_THROW(make_vgg16({3, 32, 48}, 10, 1, rng), InvalidArgument);
  EXPECT_THROW(make_vgg16({3, 32, 32}, 10, 0, rng), InvalidArgument);
}

TEST(ModelZoo, DeterministicGivenSeed) {
  Rng rng_a(9);
  Rng rng_b(9);
  Network a = make_lenet5({1, 16, 16}, 5, rng_a);
  Network b = make_lenet5({1, 16, 16}, 5, rng_b);
  auto wa = a.save_mappable_weights();
  auto wb = b.save_mappable_weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_TRUE(allclose(wa[i], wb[i]));
  }
}

}  // namespace
}  // namespace xbarlife::nn
