// ScenarioRunner: deterministic sweep fan-out. The load-bearing property
// is byte-identity between the serial and threaded sweeps — scheduling
// must never touch the numbers.
#include "core/scenario_runner.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace xbarlife::core {
namespace {

/// Restores the serial default so test order never leaks thread state.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(1); }
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.name = "sweep-tiny";
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 24;
  cfg.dataset.test_per_class = 6;
  cfg.dataset.noise = 0.1;
  cfg.train_config.epochs = 2;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.lifetime.max_sessions = 12;
  cfg.lifetime.tuning.eval_samples = 24;
  cfg.lifetime.tuning.max_iterations = 20;
  cfg.target_accuracy_fraction = 0.8;
  return cfg;
}

bool records_identical(const SessionRecord& a, const SessionRecord& b) {
  return a.session == b.session && a.applications == b.applications &&
         a.tuning_iterations == b.tuning_iterations &&
         a.rescued == b.rescued && a.converged == b.converged &&
         a.start_accuracy == b.start_accuracy && a.accuracy == b.accuracy &&
         a.pulses_total == b.pulses_total &&
         a.layer_mean_aged_rmax == b.layer_mean_aged_rmax &&
         a.layer_mean_usable_levels == b.layer_mean_usable_levels;
}

bool entries_identical(const ScenarioSweepEntry& a,
                       const ScenarioSweepEntry& b) {
  if (a.label != b.label || a.scenario != b.scenario ||
      a.stream != b.stream || a.seed != b.seed ||
      a.data_seed != b.data_seed || a.drift_seed != b.drift_seed) {
    return false;
  }
  if (a.outcome.software_accuracy != b.outcome.software_accuracy ||
      a.outcome.tuning_target != b.outcome.tuning_target ||
      a.outcome.lifetime.lifetime_applications !=
          b.outcome.lifetime.lifetime_applications ||
      a.outcome.lifetime.died != b.outcome.lifetime.died ||
      a.outcome.lifetime.sessions.size() !=
          b.outcome.lifetime.sessions.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outcome.lifetime.sessions.size(); ++i) {
    if (!records_identical(a.outcome.lifetime.sessions[i],
                           b.outcome.lifetime.sessions[i])) {
      return false;
    }
  }
  return true;
}

TEST(ScenarioRunner, CrossBuildsReplicateByScenarioGrid) {
  const auto jobs = ScenarioRunner::cross(
      tiny_config(), {Scenario::kTT, Scenario::kSTT}, 3);
  ASSERT_EQ(jobs.size(), 6u);
  // Replicate r of every scenario shares stream r.
  EXPECT_EQ(jobs[0].stream, 0u);
  EXPECT_EQ(jobs[1].stream, 0u);
  EXPECT_EQ(jobs[2].stream, 1u);
  EXPECT_EQ(jobs[5].stream, 2u);
  EXPECT_EQ(jobs[0].scenario, Scenario::kTT);
  EXPECT_EQ(jobs[1].scenario, Scenario::kSTT);
  EXPECT_EQ(jobs[0].label, std::string(to_string(Scenario::kTT)) + "/r0");
  EXPECT_THROW(ScenarioRunner::cross(tiny_config(), {Scenario::kTT}, 0),
               InvalidArgument);
}

TEST(ScenarioRunner, StreamsDecorrelateSeedsDeterministically) {
  ThreadGuard guard;
  ScenarioRunner runner(42);
  std::vector<ScenarioJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "j" + std::to_string(i);
    jobs[i].config = tiny_config();
    jobs[i].config.lifetime.max_sessions = 1;  // seeds are the point here
    jobs[i].stream = i == 2 ? 0 : i;           // job 2 reuses stream 0
  }
  const auto entries = runner.run(jobs);
  ASSERT_EQ(entries.size(), 3u);
  // Distinct streams draw distinct seeds; a reused stream reproduces them.
  EXPECT_NE(entries[0].seed, entries[1].seed);
  EXPECT_NE(entries[0].data_seed, entries[1].data_seed);
  EXPECT_EQ(entries[0].seed, entries[2].seed);
  EXPECT_EQ(entries[0].data_seed, entries[2].data_seed);
  EXPECT_EQ(entries[0].drift_seed, entries[2].drift_seed);
}

TEST(ScenarioRunner, ThreadedSweepIsByteIdenticalToSerial) {
  ThreadGuard guard;
  ScenarioRunner runner;
  const auto jobs =
      ScenarioRunner::cross(tiny_config(), {Scenario::kTT}, 2);

  set_parallel_threads(1);
  const auto serial = runner.run(jobs);
  set_parallel_threads(4);
  const auto threaded = runner.run(jobs);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(entries_identical(serial[i], threaded[i])) << "job " << i;
    EXPECT_FALSE(serial[i].outcome.lifetime.sessions.empty());
  }
  // Replicates with distinct streams actually diverge — the sweep is not
  // trivially identical because every job collapsed to the same numbers.
  EXPECT_NE(serial[0].seed, serial[1].seed);
  EXPECT_NE(serial[0].outcome.software_accuracy,
            serial[1].outcome.software_accuracy);
}

TEST(ScenarioRunner, PoisonedJobDoesNotLoseTheOthers) {
  ThreadGuard guard;
  set_parallel_threads(2);
  ScenarioRunner runner;
  std::vector<ScenarioJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "j" + std::to_string(i);
    jobs[i].config = tiny_config();
    jobs[i].config.lifetime.max_sessions = 2;
    jobs[i].stream = i;
  }
  // A one-level quantizer cannot exist: job 1 throws InvalidArgument
  // inside the fan-out.
  jobs[1].config.lifetime.levels = 1;

  const auto entries = runner.run(jobs);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_FALSE(entries[0].failed);
  EXPECT_FALSE(entries[2].failed);
  EXPECT_TRUE(entries[1].failed);
  EXPECT_NE(entries[1].error.find("two levels"), std::string::npos)
      << entries[1].error;
  // The healthy jobs' results are intact...
  EXPECT_FALSE(entries[0].outcome.lifetime.sessions.empty());
  EXPECT_FALSE(entries[2].outcome.lifetime.sessions.empty());
  // ...and the failed one still carries its identity and seeds.
  EXPECT_EQ(entries[1].label, "j1");
  EXPECT_NE(entries[1].seed, 0u);
  EXPECT_TRUE(entries[1].outcome.lifetime.sessions.empty());
}

}  // namespace
}  // namespace xbarlife::core
