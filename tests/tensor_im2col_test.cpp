#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 32, 32, 5, 1, 0};
  EXPECT_EQ(g.out_h(), 28u);
  EXPECT_EQ(g.out_w(), 28u);
  EXPECT_EQ(g.patch_size(), 75u);

  ConvGeometry padded{1, 8, 8, 3, 1, 1};
  EXPECT_EQ(padded.out_h(), 8u);
  EXPECT_EQ(padded.out_w(), 8u);

  ConvGeometry strided{1, 8, 8, 2, 2, 0};
  EXPECT_EQ(strided.out_h(), 4u);
}

TEST(ConvGeometry, ValidationErrors) {
  ConvGeometry zero{0, 8, 8, 3, 1, 0};
  EXPECT_THROW(zero.validate(), InvalidArgument);
  ConvGeometry big_kernel{1, 4, 4, 9, 1, 0};
  EXPECT_THROW(big_kernel.validate(), InvalidArgument);
  ConvGeometry zero_stride{1, 8, 8, 3, 0, 0};
  EXPECT_THROW(zero_stride.validate(), InvalidArgument);
}

TEST(Im2col, IdentityKernelExtractsPixels) {
  // 1x1 kernel: the patch matrix is just the image pixels, row per pixel.
  ConvGeometry g{2, 3, 3, 1, 1, 0};
  Tensor image(Shape{2 * 3 * 3});
  for (std::size_t i = 0; i < image.numel(); ++i) {
    image[i] = static_cast<float>(i);
  }
  Tensor patches = im2col(image, g);
  EXPECT_EQ(patches.shape(), (Shape{9, 2}));
  EXPECT_FLOAT_EQ(patches.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(patches.at(0, 1), 9.0f);
  EXPECT_FLOAT_EQ(patches.at(8, 0), 8.0f);
}

TEST(Im2col, KnownPatchValues) {
  ConvGeometry g{1, 3, 3, 2, 1, 0};
  Tensor image(Shape{9}, std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7, 8});
  Tensor patches = im2col(image, g);
  EXPECT_EQ(patches.shape(), (Shape{4, 4}));
  // Top-left patch: rows (0,1), (3,4)
  EXPECT_FLOAT_EQ(patches.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(patches.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(patches.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(patches.at(0, 3), 4.0f);
  // Bottom-right patch: (4,5),(7,8)
  EXPECT_FLOAT_EQ(patches.at(3, 0), 4.0f);
  EXPECT_FLOAT_EQ(patches.at(3, 3), 8.0f);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeometry g{1, 2, 2, 3, 1, 1};
  Tensor image(Shape{4}, std::vector<float>{1, 2, 3, 4});
  Tensor patches = im2col(image, g);
  EXPECT_EQ(patches.shape(), (Shape{4, 9}));
  // First patch is centered at (0,0): top row fully padding.
  EXPECT_FLOAT_EQ(patches.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(patches.at(0, 4), 1.0f);  // center = pixel (0,0)
}

TEST(Im2col, InputSizeMismatchThrows) {
  ConvGeometry g{1, 4, 4, 3, 1, 0};
  EXPECT_THROW(im2col(Tensor(Shape{15}), g), InvalidArgument);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
  // checked with random tensors.
  ConvGeometry g{2, 6, 5, 3, 1, 1};
  Rng rng(11);
  Tensor x(Shape{g.in_channels * g.in_h * g.in_w});
  x.fill_gaussian(rng, 0.0f, 1.0f);
  Tensor y(Shape{g.out_h() * g.out_w(), g.patch_size()});
  y.fill_gaussian(rng, 0.0f, 1.0f);

  Tensor ax = im2col(x, g);
  Tensor aty = col2im(y, g);
  double lhs = 0.0;
  for (std::size_t i = 0; i < ax.numel(); ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2im, ShapeMismatchThrows) {
  ConvGeometry g{1, 4, 4, 3, 1, 0};
  EXPECT_THROW(col2im(Tensor(Shape{3, 3}), g), InvalidArgument);
}

class Im2colGeometrySweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(Im2colGeometrySweep, RoundtripAdjointHolds) {
  const auto [channels, side, kernel, pad] = GetParam();
  ConvGeometry g{channels, side, side, kernel, 1, pad};
  g.validate();
  Rng rng(channels * 100 + side * 10 + kernel);
  Tensor x(Shape{g.in_channels * g.in_h * g.in_w});
  x.fill_gaussian(rng, 0.0f, 1.0f);
  Tensor y(Shape{g.out_h() * g.out_w(), g.patch_size()});
  y.fill_gaussian(rng, 0.0f, 1.0f);
  Tensor ax = im2col(x, g);
  Tensor aty = col2im(y, g);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < ax.numel(); ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colGeometrySweep,
    ::testing::Values(std::make_tuple(1, 5, 3, 0), std::make_tuple(1, 5, 3, 1),
                      std::make_tuple(3, 8, 5, 2), std::make_tuple(2, 7, 1, 0),
                      std::make_tuple(4, 6, 3, 1),
                      std::make_tuple(1, 12, 5, 0)));

}  // namespace
}  // namespace xbarlife
