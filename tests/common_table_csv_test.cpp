#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace xbarlife {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TablePrinter, EmptyHeadersRejected) {
  EXPECT_THROW(TablePrinter({}), InvalidArgument);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "a,b"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,y\n"), std::string::npos);
  EXPECT_NE(csv.find("1,\"a,b\"\n"), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5, 4), "1.5");
  EXPECT_EQ(format_double(2.0, 4), "2.0");
  EXPECT_EQ(format_double(0.1234, 2), "0.12");
  EXPECT_EQ(format_double(-3.25, 3), "-3.25");
}

TEST(CsvEscape, QuotesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xbarlife_csv_test.csv")
          .string();
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row(std::vector<std::string>{"1", "two"});
    w.add_row(std::vector<double>{3.5, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("1,two\n"), std::string::npos);
  EXPECT_NE(content.find("3.5,4\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidthRow) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xbarlife_csv_test2.csv")
          .string();
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<std::string>{"only"}),
               InvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

}  // namespace
}  // namespace xbarlife
