// Resilience subsystem: manufacture-fault statistics on deployed
// hardware, the zero-config bit-identity guarantee, fault masking, and
// the acceptance gate for the escalation ladder — at a nonzero fault
// rate the ladder must demonstrably extend lifetime over the legacy
// single-shot rescue.
#include "resilience/resilience.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "resilience/escalation.hpp"
#include "xbar/executor.hpp"
#include "xbar/remote.hpp"

namespace xbarlife::resilience {
namespace {

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.name = "resilience-tiny";
  cfg.model = core::ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 24;
  cfg.dataset.test_per_class = 6;
  cfg.dataset.noise = 0.1;
  cfg.train_config.epochs = 2;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.lifetime.max_sessions = 8;
  cfg.lifetime.tuning.eval_samples = 24;
  cfg.lifetime.tuning.max_iterations = 20;
  cfg.target_accuracy_fraction = 0.8;
  return cfg;
}

TEST(ResilienceConfig, ValidatesFloor) {
  ResilienceConfig c;
  EXPECT_NO_THROW(c.validate());
  c.degraded_accuracy_floor = 1.5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.degraded_accuracy_floor = -0.1;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(ResilienceConfig, ActiveForGating) {
  ResilienceConfig c;
  tuning::HardwareFaultConfig faults;
  // Ideal array, ladder not forced: inactive.
  EXPECT_FALSE(c.active_for(faults));
  // Any hardware fault model activates it.
  faults.nonideal.stuck_off_fraction = 0.01;
  EXPECT_TRUE(c.active_for(faults));
  // The master switch wins over everything.
  c.ladder_enabled = false;
  EXPECT_FALSE(c.active_for(faults));
  // Force-enable on an ideal array.
  c.ladder_enabled = true;
  c.enabled = true;
  EXPECT_TRUE(c.active_for(tuning::HardwareFaultConfig{}));
}

TEST(FaultCensus, ManufactureFractionMatchesConfiguredRates) {
  core::ExperimentConfig cfg = tiny_config();
  Rng rng(cfg.seed);
  nn::Network net = core::build_model(cfg, rng);

  tuning::HardwareFaultConfig faults;
  faults.nonideal.stuck_off_fraction = 0.06;
  faults.nonideal.stuck_on_fraction = 0.03;
  faults.fault_seed = 11;
  tuning::HardwareNetwork hw(net, cfg.device, cfg.aging, faults);

  const FaultCensus c = census(hw);
  ASSERT_GT(c.cells, 500u);  // enough cells for the fractions to mean much
  const double observed =
      static_cast<double>(c.manufacture) / static_cast<double>(c.cells);
  EXPECT_NEAR(observed, 0.09, 0.03);
  EXPECT_EQ(c.clamped, 0u);  // nothing programmed yet
  EXPECT_EQ(c.dead, 0u);
}

TEST(FaultCensus, IdealArrayHasNoManufactureFaults) {
  core::ExperimentConfig cfg = tiny_config();
  Rng rng(cfg.seed);
  nn::Network net = core::build_model(cfg, rng);
  tuning::HardwareNetwork hw(net, cfg.device, cfg.aging);
  const FaultCensus c = census(hw);
  EXPECT_EQ(c.manufacture, 0u);
  EXPECT_GT(c.cells, 0u);
}

TEST(SpareRows, CrossbarsGainPhysicalRowsOnlyWhenFaultsActive) {
  core::ExperimentConfig cfg = tiny_config();
  Rng rng(cfg.seed);
  nn::Network net = core::build_model(cfg, rng);

  tuning::HardwareFaultConfig faults;
  faults.spare_rows = 3;
  tuning::HardwareNetwork hw(net, cfg.device, cfg.aging, faults);
  for (std::size_t i = 0; i < hw.layer_count(); ++i) {
    EXPECT_EQ(hw.physical_rows(i), hw.layer(i).logical_rows + 3);
  }

  // An inactive config must not grow the arrays.
  nn::Network net2 = core::build_model(cfg, rng);
  tuning::HardwareNetwork plain(net2, cfg.device, cfg.aging,
                                tuning::HardwareFaultConfig{});
  for (std::size_t i = 0; i < plain.layer_count(); ++i) {
    EXPECT_EQ(plain.physical_rows(i), plain.layer(i).logical_rows);
  }
}

TEST(RowPermutation, RejectsNonInjectiveAndOutOfRange) {
  core::ExperimentConfig cfg = tiny_config();
  Rng rng(cfg.seed);
  nn::Network net = core::build_model(cfg, rng);
  tuning::HardwareNetwork hw(net, cfg.device, cfg.aging);
  const std::size_t rows = hw.layer(0).logical_rows;
  std::vector<std::size_t> perm(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    perm[r] = r;
  }
  perm[0] = perm[1];  // not injective
  EXPECT_THROW(hw.set_row_permutation(0, perm), InvalidArgument);
  perm[0] = rows;  // out of range (no spares)
  EXPECT_THROW(hw.set_row_permutation(0, perm), InvalidArgument);
}

TEST(EscalationRungs, NamesAreStable) {
  EXPECT_EQ(to_string(Rung::kFallbackExecutor), "fallback_executor");
  EXPECT_EQ(to_string(Rung::kRetry), "retry");
  EXPECT_EQ(to_string(Rung::kRemap), "remap");
  EXPECT_EQ(to_string(Rung::kFaultMask), "fault_mask");
  EXPECT_EQ(to_string(Rung::kSpareRows), "spare_rows");
  EXPECT_EQ(to_string(Rung::kDegraded), "degraded");
}

// The acceptance gate for wiring the fault model in at all: with every
// nonideality at zero, the lifetime run must be bit-identical whether
// the ladder is enabled (its default) or force-disabled — i.e. the
// resilience layer adds no RNG draws and no behavioural change until a
// fault model activates it.
TEST(ZeroConfig, LifetimeIsBitIdenticalWithLadderOnOrOff) {
  core::ExperimentConfig on = tiny_config();
  on.lifetime.resilience.ladder_enabled = true;
  core::ExperimentConfig off = tiny_config();
  off.lifetime.resilience.ladder_enabled = false;

  const core::ScenarioOutcome a =
      core::run_scenario(on, core::Scenario::kSTAT);
  const core::ScenarioOutcome b =
      core::run_scenario(off, core::Scenario::kSTAT);
  EXPECT_EQ(core::scenario_outcome_json(a).dump(),
            core::scenario_outcome_json(b).dump());
}

// The headline claim: at a nonzero fault rate the escalation ladder
// extends lifetime over the ladder-disabled (legacy rescue) baseline.
// Both runs share the exact same seeds and fault maps; only the rescue
// policy differs.
TEST(EscalationLadder, ExtendsLifetimeUnderManufactureFaults) {
  core::ExperimentConfig base = tiny_config();
  base.target_accuracy_fraction = 0.9;
  base.faults.nonideal.stuck_off_fraction = 0.18;
  base.faults.nonideal.stuck_on_fraction = 0.05;
  base.faults.nonideal.write_noise_sigma = 0.05;
  base.faults.spare_rows = 4;
  base.faults.fault_seed = 22;

  core::ExperimentConfig with_ladder = base;
  with_ladder.lifetime.resilience.ladder_enabled = true;
  core::ExperimentConfig without = base;
  without.lifetime.resilience.ladder_enabled = false;

  const core::ScenarioOutcome a =
      core::run_scenario(with_ladder, core::Scenario::kSTAT);
  const core::ScenarioOutcome b =
      core::run_scenario(without, core::Scenario::kSTAT);

  EXPECT_GT(a.lifetime.lifetime_applications,
            b.lifetime.lifetime_applications)
      << "ladder: " << a.lifetime.lifetime_applications
      << " apps, legacy rescue: " << b.lifetime.lifetime_applications;

  // The ladder run must actually have engaged (rungs recorded).
  bool saw_rung = false;
  for (const core::SessionRecord& rec : a.lifetime.sessions) {
    EXPECT_TRUE(rec.resilience_active);
    saw_rung = saw_rung || !rec.rescue_rungs.empty();
  }
  EXPECT_TRUE(saw_rung);
}

// Every programming path the ladder exercises (deploys, reprograms,
// spare-row remaps, retry-clamped rungs) now flows through
// ProgramSequences, so the whole faulted campaign must be byte-identical
// whichever executor backend runs it — batched sim vs the per-cell
// reference is a pure implementation choice.
TEST(EscalationLadder, CampaignByteIdenticalAcrossExecutorBackends) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.target_accuracy_fraction = 0.9;
  cfg.faults.nonideal.stuck_off_fraction = 0.18;
  cfg.faults.nonideal.stuck_on_fraction = 0.05;
  cfg.faults.nonideal.write_noise_sigma = 0.05;
  cfg.faults.spare_rows = 4;
  cfg.faults.fault_seed = 22;
  cfg.lifetime.resilience.ladder_enabled = true;

  xbar::set_executor("sim");
  const core::ScenarioOutcome batched =
      core::run_scenario(cfg, core::Scenario::kSTAT);
  xbar::set_executor("percell");
  const core::ScenarioOutcome percell =
      core::run_scenario(cfg, core::Scenario::kSTAT);
  xbar::set_executor("sim");

  EXPECT_EQ(core::scenario_outcome_json(batched).dump(),
            core::scenario_outcome_json(percell).dump());
}

// Degraded mode: with an aggressive fault model and a permissive floor,
// sessions that miss the tuning target keep serving (and count
// applications) instead of ending the array's life on the spot.
TEST(EscalationLadder, DegradedModeKeepsServingAboveFloor) {
  core::ExperimentConfig cfg = tiny_config();
  cfg.faults.nonideal.stuck_off_fraction = 0.12;
  cfg.faults.nonideal.stuck_on_fraction = 0.04;
  cfg.faults.fault_seed = 21;
  cfg.lifetime.resilience.degraded_accuracy_floor = 0.0;

  const core::ScenarioOutcome o =
      core::run_scenario(cfg, core::Scenario::kSTAT);
  // A floor of zero accepts any accuracy, so every session either
  // converges or degrades: the run must reach the session cap alive.
  EXPECT_FALSE(o.lifetime.died);
  EXPECT_EQ(o.lifetime.sessions.size(), cfg.lifetime.max_sessions);
}

// The ladder's rung 0: when the remote executor has degraded (here:
// every sequence falls back because the worker address never answers),
// the first rescue pins execution to the local path, retunes, and the
// pin is recorded exactly once — later rescues in the same run skip the
// rung because pin_executor_fallback() only returns true on the
// transition.
TEST(EscalationLadder, FallbackExecutorRungEngagesOncePerProcess) {
  // A dead endpoint with fast-failing retries: every remote attempt
  // falls back to local sim execution, marking the backend degraded.
  xbar::RemoteConfig rcfg;
  rcfg.address = "127.0.0.1:1";
  rcfg.dial_timeout = std::chrono::milliseconds(100);
  rcfg.request_deadline = std::chrono::milliseconds(200);
  rcfg.max_attempts = 2;
  rcfg.backoff_initial = std::chrono::milliseconds(1);
  rcfg.backoff_max = std::chrono::milliseconds(2);
  xbar::configure_remote_executor(rcfg);
  xbar::set_executor("remote");

  core::ExperimentConfig cfg = tiny_config();
  cfg.target_accuracy_fraction = 0.9;
  cfg.faults.nonideal.stuck_off_fraction = 0.18;
  cfg.faults.nonideal.stuck_on_fraction = 0.05;
  cfg.faults.nonideal.write_noise_sigma = 0.05;
  cfg.faults.spare_rows = 4;
  cfg.faults.fault_seed = 22;
  cfg.lifetime.resilience.ladder_enabled = true;

  const core::ScenarioOutcome o =
      core::run_scenario(cfg, core::Scenario::kSTAT);
  xbar::set_executor("sim");

  std::size_t fallback_rungs = 0;
  bool saw_rescue = false;
  for (const core::SessionRecord& rec : o.lifetime.sessions) {
    if (rec.rescue_rungs.empty()) {
      continue;
    }
    saw_rescue = true;
    for (std::size_t i = 0; i < rec.rescue_rungs.size(); ++i) {
      if (rec.rescue_rungs[i] == "fallback_executor") {
        ++fallback_rungs;
        // When the rung engages it is always the first attempted: the
        // cheapest rescue runs before any array mutation.
        EXPECT_EQ(i, 0u);
      }
    }
  }
  ASSERT_TRUE(saw_rescue) << "fault model never triggered a rescue";
  EXPECT_EQ(fallback_rungs, 1u)
      << "the pin transition must be recorded exactly once";

  // The degradation snapshot the result document stamps: fallbacks
  // accumulated before the pin, and the degraded flag held.
  const xbar::ExecutorDegradation deg = xbar::executor_degradation();
  EXPECT_TRUE(deg.degraded);
  EXPECT_GT(deg.fallbacks, 0u);

  // After the pin, every session still completed through the local path:
  // the run reached a normal end (EOL or session cap), not a crash.
  EXPECT_GT(o.lifetime.sessions.size(), 0u);
}

// With sim (or any in-process backend) active, executor_degraded() stays
// false and the rung never fires — pin_executor_fallback() on sim is a
// no-op returning false.
TEST(EscalationLadder, FallbackExecutorRungInertOnLocalBackends) {
  xbar::set_executor("sim");
  EXPECT_FALSE(xbar::executor_degraded());
  EXPECT_FALSE(xbar::pin_executor_fallback());
}

}  // namespace
}  // namespace xbarlife::resilience
