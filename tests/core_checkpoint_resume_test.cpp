// Crash-safe resume contract: a run killed at every checkpoint boundary
// and resumed must reproduce the uninterrupted run's result document and
// event trace byte-for-byte (t_ms and the seq-less persist meta lines
// aside), at any thread count. Also covers the cooperative shutdown
// (InterruptedError) and the per-job watchdog (TimeoutError isolation).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/shutdown.hpp"
#include "core/experiment.hpp"
#include "core/fault_campaign.hpp"
#include "core/report.hpp"
#include "core/scenario_runner.hpp"
#include "core/sweep_checkpoint.hpp"
#include "core/trainer.hpp"
#include "obs/event_trace.hpp"
#include "obs/sink.hpp"
#include "persist/checkpoint.hpp"
#include "xbar/executor.hpp"

namespace xbarlife::core {
namespace {

/// Restores the serial default and a clear shutdown flag, whatever a test
/// did.
struct EnvGuard {
  ~EnvGuard() {
    set_parallel_threads(1);
    reset_shutdown();
  }
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.name = "resume-tiny";
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 24;
  cfg.dataset.test_per_class = 6;
  cfg.dataset.noise = 0.1;
  cfg.train_config.epochs = 4;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.lifetime.max_sessions = 4;
  cfg.lifetime.tuning.eval_samples = 24;
  cfg.lifetime.tuning.max_iterations = 20;
  cfg.target_accuracy_fraction = 0.8;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

/// The persist meta events carry no seq and depend on the kill pattern,
/// so the resume contract excludes them (docs/output_schema.md).
bool is_meta_line(const std::string& line) {
  return line.rfind("{\"event\":\"checkpoint_saved\"", 0) == 0 ||
         line.rfind("{\"event\":\"resume\"", 0) == 0;
}

/// Drops one wall-clock field (t_ms / wall_ms) from an event line.
std::string strip_field(std::string line, const std::string& name) {
  const std::string needle = ",\"" + name + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return line;
  }
  std::size_t end = pos + needle.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  line.erase(pos, end - pos);
  return line;
}

/// Canonical trace text for resume comparisons: meta lines dropped, the
/// wall-clock fields (t_ms, span wall_ms) stripped, one event per line.
std::string canonical_trace(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    if (is_meta_line(line)) {
      continue;
    }
    out += strip_field(strip_field(line, "t_ms"), "wall_ms");
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------
// Trainer: per-epoch snapshots.

TrainHistory run_trainer_checkpointed(const ExperimentConfig& cfg,
                                      const std::string& path,
                                      obs::EventTrace* trace) {
  // Mirrors train_model(skewed=true) step for step — a resumed process
  // reconstructs the same fresh state before restoring the snapshot.
  Rng rng(cfg.seed);
  const data::TrainTest data = data::make_synthetic(cfg.dataset);
  nn::Network net = build_model(cfg, rng);
  const auto reg = make_skewed_regularizer(cfg.skew);
  Trainer trainer(net, data, cfg.train_config, reg.get());
  persist::CheckpointStore store(path);
  obs::Obs obs;
  obs.trace = trace;
  return trainer.run(obs, &store);
}

TEST(TrainerCheckpoint, KillAtEveryEpochBoundaryResumesBitIdentically) {
  EnvGuard guard;
  const ExperimentConfig cfg = tiny_config();

  // Checkpoint mode must not change the numbers.
  const TrainHistory plain = train_model(cfg, /*skewed=*/true).history;

  const std::string ref_path = temp_path("resume_train_ref.ckpt");
  remove_generations(ref_path);
  obs::MemorySink ref_sink;
  obs::EventTrace ref_trace(&ref_sink);
  const TrainHistory reference =
      run_trainer_checkpointed(cfg, ref_path, &ref_trace);
  EXPECT_EQ(train_history_json(reference).dump(),
            train_history_json(plain).dump());

  // Kill at every epoch boundary: with the shutdown flag pre-set, each
  // attempt restores, advances exactly one epoch, snapshots, and raises
  // InterruptedError — except the attempt that finishes the final epoch,
  // which completes despite the pending signal.
  const std::string killed_path = temp_path("resume_train_killed.ckpt");
  remove_generations(killed_path);
  obs::MemorySink killed_sink;
  obs::EventTrace killed_trace(&killed_sink);
  TrainHistory resumed;
  std::size_t interrupts = 0;
  for (std::size_t attempt = 0; attempt < 32; ++attempt) {
    request_shutdown();
    try {
      resumed = run_trainer_checkpointed(cfg, killed_path, &killed_trace);
      reset_shutdown();
      break;
    } catch (const InterruptedError&) {
      reset_shutdown();
      ++interrupts;
    }
  }
  EXPECT_EQ(interrupts, cfg.train_config.epochs - 1);
  EXPECT_EQ(train_history_json(resumed).dump(),
            train_history_json(reference).dump());
  EXPECT_EQ(canonical_trace(killed_sink.lines()),
            canonical_trace(ref_sink.lines()));
  remove_generations(ref_path);
  remove_generations(killed_path);
}

// ---------------------------------------------------------------------
// Lifetime protocol: per-session snapshots (training re-runs
// deterministically on every resume attempt).

TEST(LifetimeCheckpoint, KillAtEverySessionBoundaryResumesBitIdentically) {
  EnvGuard guard;
  const ExperimentConfig cfg = tiny_config();
  const Scenario scenario = Scenario::kSTAT;

  const ScenarioOutcome plain = run_scenario(cfg, scenario);

  const std::string ref_path = temp_path("resume_life_ref.ckpt");
  remove_generations(ref_path);
  obs::MemorySink ref_sink;
  obs::EventTrace ref_trace(&ref_sink);
  obs::Obs ref_obs;
  ref_obs.trace = &ref_trace;
  persist::CheckpointStore ref_store(ref_path);
  const ScenarioOutcome reference =
      run_scenario(cfg, scenario, ref_obs, &ref_store);
  EXPECT_EQ(scenario_outcome_json(reference).dump(),
            scenario_outcome_json(plain).dump());
  EXPECT_GE(ref_store.generation(),
            reference.lifetime.sessions.size());

  const std::string killed_path = temp_path("resume_life_killed.ckpt");
  remove_generations(killed_path);
  obs::MemorySink killed_sink;
  obs::EventTrace killed_trace(&killed_sink);
  ScenarioOutcome resumed;
  std::size_t interrupts = 0;
  bool completed = false;
  for (std::size_t attempt = 0; attempt < 32 && !completed; ++attempt) {
    obs::Obs obs;
    obs.trace = &killed_trace;
    persist::CheckpointStore store(killed_path);
    request_shutdown();
    try {
      resumed = run_scenario(cfg, scenario, obs, &store);
      completed = true;
    } catch (const InterruptedError&) {
      ++interrupts;
    }
    reset_shutdown();
  }
  ASSERT_TRUE(completed);
  EXPECT_GE(interrupts, 1U);
  EXPECT_EQ(scenario_outcome_json(resumed).dump(),
            scenario_outcome_json(reference).dump());
  EXPECT_EQ(canonical_trace(killed_sink.lines()),
            canonical_trace(ref_sink.lines()));
  remove_generations(ref_path);
  remove_generations(killed_path);
}

// Mid-campaign snapshots are backend-portable: a faulted, ladder-enabled
// campaign killed at every session boundary must resume byte-identically
// even when the resuming process alternates between the batched (sim)
// and per-cell executor backends — the checkpointed crossbar state and
// the programming semantics are independent of the backend choice.
TEST(LifetimeCheckpoint, FaultedLadderCampaignResumesAcrossBackends) {
  EnvGuard guard;
  ExperimentConfig cfg = tiny_config();
  cfg.faults.nonideal.stuck_off_fraction = 0.1;
  cfg.faults.nonideal.write_noise_sigma = 0.03;
  cfg.faults.spare_rows = 2;
  cfg.faults.fault_seed = 11;
  cfg.lifetime.resilience.ladder_enabled = true;
  const Scenario scenario = Scenario::kSTAT;

  xbar::set_executor("sim");
  const ScenarioOutcome reference = run_scenario(cfg, scenario);

  const std::string killed_path = temp_path("resume_ladder_killed.ckpt");
  remove_generations(killed_path);
  ScenarioOutcome resumed;
  std::size_t interrupts = 0;
  bool completed = false;
  for (std::size_t attempt = 0; attempt < 32 && !completed; ++attempt) {
    xbar::set_executor(attempt % 2 == 0 ? "sim" : "percell");
    persist::CheckpointStore store(killed_path);
    request_shutdown();
    try {
      resumed = run_scenario(cfg, scenario, obs::Obs{}, &store);
      completed = true;
    } catch (const InterruptedError&) {
      ++interrupts;
    }
    reset_shutdown();
  }
  xbar::set_executor("sim");
  ASSERT_TRUE(completed);
  EXPECT_GE(interrupts, 1U);
  EXPECT_EQ(scenario_outcome_json(resumed).dump(),
            scenario_outcome_json(reference).dump());
  remove_generations(killed_path);
}

// ---------------------------------------------------------------------
// Checkpointed sweep engine: per-chunk snapshots, any thread count.

std::string sweep_doc(const CheckpointedSweepOutcome& outcome) {
  std::string out;
  for (const SweepJobResult& job : outcome.jobs) {
    out += job.entry_json;
    out += '\n';
  }
  return out;
}

CheckpointedSweepOutcome run_sweep_checkpointed(
    const std::vector<ScenarioJob>& jobs, const std::string& path,
    obs::EventTrace* trace) {
  ScenarioRunner runner(33);
  CheckpointedSweepConfig config;
  config.checkpoint_path = path;
  config.chunk = 2;
  obs::Obs obs;
  obs.trace = trace;
  return run_checkpointed_sweep(
      runner, jobs, config,
      [](std::size_t, const ScenarioSweepEntry& entry) {
        return sweep_entry_json_deterministic(entry).dump();
      },
      obs);
}

TEST(SweepCheckpoint, KillAtEveryChunkBoundaryIsByteIdentical) {
  EnvGuard guard;
  const ExperimentConfig cfg = tiny_config();
  const std::vector<ScenarioJob> jobs = ScenarioRunner::cross(
      cfg, {Scenario::kTT, Scenario::kSTT, Scenario::kSTAT}, 2);

  std::string first_doc;
  std::string first_trace;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);

    const std::string ref_path = temp_path("resume_sweep_ref.ckpt");
    remove_generations(ref_path);
    obs::MemorySink ref_sink;
    obs::EventTrace ref_trace(&ref_sink);
    const CheckpointedSweepOutcome reference =
        run_sweep_checkpointed(jobs, ref_path, &ref_trace);
    EXPECT_FALSE(reference.resumed);
    EXPECT_EQ(reference.executed_jobs, jobs.size());

    const std::string killed_path = temp_path("resume_sweep_killed.ckpt");
    remove_generations(killed_path);
    obs::MemorySink killed_sink;
    obs::EventTrace killed_trace(&killed_sink);
    CheckpointedSweepOutcome resumed;
    std::size_t interrupts = 0;
    bool completed = false;
    for (std::size_t attempt = 0; attempt < 32 && !completed; ++attempt) {
      request_shutdown();
      try {
        resumed = run_sweep_checkpointed(jobs, killed_path, &killed_trace);
        completed = true;
      } catch (const InterruptedError&) {
        ++interrupts;
      }
      reset_shutdown();
    }
    ASSERT_TRUE(completed);
    EXPECT_GE(interrupts, 1U);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_GT(resumed.resumed_jobs, 0U);
    EXPECT_EQ(resumed.resumed_jobs + resumed.executed_jobs, jobs.size());

    // Killed-and-resumed == uninterrupted, and identical across thread
    // counts: document bytes and canonical trace bytes.
    EXPECT_EQ(sweep_doc(resumed), sweep_doc(reference));
    EXPECT_EQ(canonical_trace(killed_sink.lines()),
              canonical_trace(ref_sink.lines()));
    if (first_doc.empty()) {
      first_doc = sweep_doc(reference);
      first_trace = canonical_trace(ref_sink.lines());
    } else {
      EXPECT_EQ(sweep_doc(reference), first_doc);
      EXPECT_EQ(canonical_trace(ref_sink.lines()), first_trace);
    }
    remove_generations(ref_path);
    remove_generations(killed_path);
  }
}

// ---------------------------------------------------------------------
// Per-job watchdog.

TEST(JobDeadline, WatchdogThrowsOnExpiryAndNests) {
  check_job_deadline();  // unarmed: no-op
  {
    const JobDeadline outer(60000.0, "outer");
    check_job_deadline();  // far from expiry
    {
      const JobDeadline inner(0.01, "inner-job");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      try {
        check_job_deadline();
        FAIL() << "expired inner deadline did not throw";
      } catch (const TimeoutError& e) {
        EXPECT_NE(std::string(e.what()).find("inner-job"),
                  std::string::npos);
      }
    }
    // The inner deadline unwound: the enclosing one is active again and
    // still has most of a minute left.
    check_job_deadline();
  }
  check_job_deadline();  // fully unwound: no-op again
}

TEST(Watchdog, TimedOutJobsAreIsolatedFailuresWithTimedOutSet) {
  EnvGuard guard;
  const ExperimentConfig cfg = tiny_config();
  ScenarioRunner runner(33);
  runner.set_job_timeout_ms(0.001);
  const std::vector<ScenarioJob> jobs =
      ScenarioRunner::cross(cfg, {Scenario::kTT, Scenario::kSTT}, 1);
  const std::vector<ScenarioSweepEntry> entries = runner.run(jobs);
  ASSERT_EQ(entries.size(), jobs.size());
  for (const ScenarioSweepEntry& entry : entries) {
    EXPECT_TRUE(entry.failed);
    EXPECT_TRUE(entry.timed_out);
    EXPECT_FALSE(entry.error.empty());
    // --strict counts timed-out jobs as failures; the document marks the
    // subtype so consumers can tell a watchdog kill from a crash.
    const std::string json = sweep_entry_json(entry).dump();
    EXPECT_NE(json.find("\"failed\":true"), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\":true"), std::string::npos);
  }
}

TEST(Watchdog, FaultCampaignCountsTimedOutJobs) {
  EnvGuard guard;
  FaultCampaignConfig cc;
  cc.base = tiny_config();
  cc.replicates = 1;
  cc.campaign_seed = 33;
  FaultPoint clean;
  clean.label = "clean";
  cc.points.push_back(clean);
  cc.job_timeout_ms = 0.001;
  const FaultCampaignResult result = run_fault_campaign(cc);
  EXPECT_EQ(result.timed_out_jobs, result.jobs.size());
  // Timed-out jobs are failed jobs: the --strict gate trips on them.
  EXPECT_EQ(result.failed_jobs, result.jobs.size());
  EXPECT_NE(fault_campaign_json(result).dump().find("\"timed_out\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace xbarlife::core
