#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{4}, 2.5f);
  EXPECT_EQ(t[3], 2.5f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>(4, 1.0f)));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>(3, 1.0f)),
               InvalidArgument);
}

TEST(Tensor, TwoDAccessors) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_THROW(t.at(2, 0), InvalidArgument);
  Tensor r1(Shape{6});
  EXPECT_THROW(r1.at(0, 0), InvalidArgument);
}

TEST(Tensor, FourDAccessors) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 1.0f;
  EXPECT_EQ(t[t.numel() - 1], 1.0f);
  EXPECT_THROW(t.at(2, 0, 0, 0), InvalidArgument);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 6}, 1.0f);
  Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_EQ(r.numel(), 12u);
  EXPECT_THROW(t.reshaped(Shape{5}), InvalidArgument);
}

TEST(Tensor, ElementwiseInPlace) {
  Tensor a(Shape{3}, 2.0f);
  Tensor b(Shape{3}, 3.0f);
  a.add_(b);
  EXPECT_EQ(a[0], 5.0f);
  a.sub_(b);
  EXPECT_EQ(a[0], 2.0f);
  a.mul_(b);
  EXPECT_EQ(a[0], 6.0f);
  a.scale_(0.5f);
  EXPECT_EQ(a[0], 3.0f);
  a.axpy_(2.0f, b);
  EXPECT_EQ(a[0], 9.0f);
}

TEST(Tensor, ElementwiseShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), ShapeError);
  EXPECT_THROW(a.mul(b), ShapeError);
}

TEST(Tensor, OutOfPlaceDoesNotMutate) {
  Tensor a(Shape{2}, 1.0f);
  Tensor b(Shape{2}, 2.0f);
  Tensor c = a.add(b);
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(c[0], 3.0f);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{1.0f, -5.0f, 3.0f, 2.0f});
  EXPECT_FLOAT_EQ(t.sum(), 1.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_FLOAT_EQ(t.min(), -5.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1.0f + 25.0f + 9.0f + 4.0f);
  EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, RandomFills) {
  Rng rng(3);
  Tensor g(Shape{10000});
  g.fill_gaussian(rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    sum += g[i];
  }
  EXPECT_NEAR(sum / static_cast<double>(g.numel()), 1.0, 0.1);

  Tensor u(Shape{1000});
  u.fill_uniform(rng, -1.0f, 1.0f);
  EXPECT_GE(u.min(), -1.0f);
  EXPECT_LT(u.max(), 1.0f);
}

TEST(Tensor, Transpose) {
  Tensor t(Shape{2, 3},
           std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor tt = t.transposed();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_EQ(tt.at(0, 1), 4.0f);
  EXPECT_EQ(tt.at(2, 0), 3.0f);
  EXPECT_THROW(Tensor(Shape{2, 2, 2}).transposed(), InvalidArgument);
}

TEST(Tensor, AllClose) {
  Tensor a(Shape{2}, 1.0f);
  Tensor b(Shape{2}, 1.0f + 5e-6f);
  EXPECT_TRUE(allclose(a, b, 1e-5f));
  EXPECT_FALSE(allclose(a, b, 1e-7f));
  EXPECT_FALSE(allclose(a, Tensor(Shape{3}, 1.0f)));
}

TEST(Tensor, ToStringTruncates) {
  Tensor t(Shape{100}, 1.0f);
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[100]"), std::string::npos);
}

}  // namespace
}  // namespace xbarlife
