// Runtime-dispatched kernel layer: registry behavior, per-variant parity
// against the naive reference (including odd/tail shapes that stress the
// SIMD remainder paths), NaN/Inf/denormal propagation, and the per-variant
// thread-count byte-identity contract.
#include "tensor/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "tensor/matmul.hpp"

namespace xbarlife {
namespace {

/// Restores the automatic dispatch choice when a test scope ends, so a
/// failing ASSERT in a pinned-variant test cannot leak its pin into later
/// tests.
struct KernelGuard {
  ~KernelGuard() { kernels::set_kernel("auto"); }
};

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(Shape{rows, cols});
  t.fill_gaussian(rng, 0.0f, 1.0f);
  return t;
}

// --- registry ----------------------------------------------------------

TEST(KernelRegistry, ScalarIsAlwaysAvailable) {
  const auto names = kernels::available();
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
}

TEST(KernelRegistry, SetKernelSwitchesActiveVariant) {
  KernelGuard guard;
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    EXPECT_EQ(std::string(kernels::kernel_name()), name);
    EXPECT_EQ(std::string(kernels::select().name), name);
  }
}

TEST(KernelRegistry, UnknownVariantThrowsAndListsAvailable) {
  try {
    kernels::set_kernel("mmx");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mmx"), std::string::npos);
    EXPECT_NE(msg.find("scalar"), std::string::npos);
  }
  // A failed switch must leave the previous variant active.
  EXPECT_NE(std::string(kernels::kernel_name()), "mmx");
}

TEST(KernelRegistry, AutoRedetects) {
  KernelGuard guard;
  kernels::set_kernel("scalar");
  kernels::set_kernel("auto");
  const auto names = kernels::available();
  EXPECT_NE(std::find(names.begin(), names.end(), kernels::kernel_name()),
            names.end());
}

// --- per-variant parity vs the naive reference -------------------------

// Shapes chosen to cover SIMD edge cases: single row/col, widths around
// the 8-lane and 16-column boundaries, m around the 6-row microkernel,
// and k around the 256-deep cache block.
class KernelVariantSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {
 protected:
  void TearDown() override { kernels::set_kernel("auto"); }
};

TEST_P(KernelVariantSweep, MatmulMatchesNaivePerVariant) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7919 + k * 131 + n);
  const Tensor a = random_matrix(m, k, rng);
  const Tensor b = random_matrix(k, n, rng);
  kernels::set_kernel("scalar");
  const Tensor ref = matmul_naive(a, b);
  const float tol = 1e-4f * static_cast<float>(k);
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    EXPECT_TRUE(allclose(matmul(a, b), ref, tol))
        << name << " m=" << m << " k=" << k << " n=" << n;
    EXPECT_TRUE(allclose(matmul_nt(a, b.transposed()), ref, tol))
        << name << " (nt) m=" << m << " k=" << k << " n=" << n;
    EXPECT_TRUE(allclose(matmul_tn(a.transposed(), b), ref, tol))
        << name << " (tn) m=" << m << " k=" << k << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddAndTailShapes, KernelVariantSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 9, 17),
                      std::make_tuple(5, 3, 7),   // below every block size
                      std::make_tuple(6, 8, 16),  // exact microkernel tile
                      std::make_tuple(7, 9, 15),  // m, n, k all tails
                      std::make_tuple(13, 257, 31),  // k crosses the cache block
                      std::make_tuple(23, 17, 33),
                      std::make_tuple(64, 64, 64)));

// --- non-finite and denormal propagation per variant -------------------

class KernelVariantFixture : public ::testing::Test {
 protected:
  void TearDown() override { kernels::set_kernel("auto"); }
};

TEST_F(KernelVariantFixture, NonFinitePropagatesPerVariant) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // 9-wide so the AVX2 lane tail also sees the non-finite column.
  Tensor a(Shape{2, 9});
  Tensor b(Shape{9, 9});
  a.fill(1.0f);
  b.fill(1.0f);
  a.at(1, 8) = 0.0f;
  b.at(8, 0) = nan;
  b.at(8, 8) = inf;
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at(0, 0))) << name;   // 1 * nan
    EXPECT_TRUE(std::isinf(c.at(0, 8))) << name;   // 1 * inf
    EXPECT_TRUE(std::isnan(c.at(1, 0))) << name;   // 0 * nan
    EXPECT_TRUE(std::isnan(c.at(1, 8))) << name;   // 0 * inf
    const Tensor cnt = matmul_nt(a, b.transposed());
    EXPECT_TRUE(std::isnan(cnt.at(1, 0))) << name << " (nt)";
    const Tensor ctn = matmul_tn(a.transposed(), b);
    EXPECT_TRUE(std::isnan(ctn.at(0, 0))) << name << " (tn)";
  }
}

TEST_F(KernelVariantFixture, DenormalsSurvivePerVariant) {
  // denorm * 1 must not be flushed to zero by any variant (the build
  // does not enable FTZ/DAZ); the sum of eight denormal products is
  // still denormal and must round-trip.
  const float denorm = std::numeric_limits<float>::denorm_min();
  Tensor a(Shape{1, 8});
  Tensor b(Shape{8, 1});
  a.fill(1.0f);
  b.fill(denorm);
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 8.0f * denorm) << name;
    EXPECT_GT(c.at(0, 0), 0.0f) << name;
  }
}

// --- thread-count byte-identity per variant ----------------------------

TEST_F(KernelVariantFixture, ThreadCountByteIdentityPerVariant) {
  Rng rng(42);
  // 97 rows: enough to split across 4 threads with uneven chunks.
  const Tensor a = random_matrix(97, 65, rng);
  const Tensor b = random_matrix(65, 43, rng);
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    set_parallel_threads(1);
    const Tensor serial = matmul(a, b);
    const Tensor serial_nt = matmul_nt(a, b.transposed());
    const Tensor serial_tn = matmul_tn(a.transposed(), b);
    for (const std::size_t threads : {2u, 4u}) {
      set_parallel_threads(threads);
      EXPECT_TRUE(matmul(a, b) == serial) << name << " t=" << threads;
      EXPECT_TRUE(matmul_nt(a, b.transposed()) == serial_nt)
          << name << " t=" << threads;
      EXPECT_TRUE(matmul_tn(a.transposed(), b) == serial_tn)
          << name << " t=" << threads;
    }
    set_parallel_threads(1);
  }
}

// --- int8 kernel: exact across variants --------------------------------

TEST_F(KernelVariantFixture, Int8GemmExactAcrossVariants) {
  Rng rng(7);
  const std::size_t m = 5, k = 37, n = 19;  // odd tails everywhere
  std::vector<std::int8_t> a(m * k), b(k * n);
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (auto& v : b) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  // Reference: plain int arithmetic (exact, order-free).
  std::vector<std::int32_t> ref(m * n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < n; ++j) {
        ref[i * n + j] += static_cast<std::int32_t>(a[i * k + kk]) *
                          static_cast<std::int32_t>(b[kk * n + j]);
      }
    }
  }
  for (const std::string& name : kernels::available()) {
    kernels::set_kernel(name);
    std::vector<std::int32_t> c(m * n, 0);
    kernels::select().gemm_s8(a.data(), b.data(), c.data(), m, k, n, 0, m);
    EXPECT_EQ(c, ref) << name;  // integer accumulate: exact, not approx
  }
}

}  // namespace
}  // namespace xbarlife
