// Observability layer: JSON serialization, sinks, the metrics registry,
// and event tracing. The load-bearing properties are deterministic
// serialization (identical values -> identical bytes) and null-safety
// (everything no-ops without a sink/registry attached).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/event_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/sink.hpp"

namespace xbarlife::obs {
namespace {

// --- JsonValue ---------------------------------------------------------

TEST(JsonValueTest, ScalarsDump) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-7).dump(), "-7");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(std::size_t{3}).dump(), "3");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
  EXPECT_EQ(JsonValue(std::string("hi")).dump(), "\"hi\"");
}

TEST(JsonValueTest, DoublesRoundTripShortest) {
  EXPECT_EQ(JsonValue(0.1).dump(), "0.1");
  EXPECT_EQ(JsonValue(1.0).dump(), "1");
  EXPECT_EQ(JsonValue(-2.5).dump(), "-2.5");
  EXPECT_EQ(JsonValue(1e300).dump(), "1e+300");
}

TEST(JsonValueTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(JsonValueTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonValue(std::string("a\x01z")).dump(), "\"a\\u0001z\"");
}

TEST(JsonValueTest, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", JsonValue::array());
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":[]}");
}

TEST(JsonValueTest, SetOverwritesInPlace) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 3);
  EXPECT_EQ(obj.dump(), "{\"a\":3,\"b\":2}");
}

TEST(JsonValueTest, NestedStructures) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  JsonValue inner = JsonValue::object();
  inner.set("k", false);
  arr.push_back(std::move(inner));
  JsonValue obj = JsonValue::object();
  obj.set("items", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"items\":[1,\"two\",{\"k\":false}]}");
}

// --- Sinks -------------------------------------------------------------

TEST(SinkTest, MemorySinkCapturesLines) {
  MemorySink sink;
  sink.write("{\"a\":1}");
  sink.write("{\"b\":2}");
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0], "{\"a\":1}");
  sink.clear();
  EXPECT_TRUE(sink.lines().empty());
}

TEST(SinkTest, NullSinkCountsDrops) {
  NullSink sink;
  sink.write("x");
  sink.write("y");
  EXPECT_EQ(sink.lines_dropped(), 2u);
}

TEST(SinkTest, StreamSinkAppendsNewlines) {
  std::ostringstream out;
  StreamSink sink(out);
  sink.write("{\"a\":1}");
  sink.write("{\"b\":2}");
  EXPECT_EQ(out.str(), "{\"a\":1}\n{\"b\":2}\n");
}

TEST(SinkTest, JsonlFileSinkWritesAndThrowsOnBadPath) {
  const std::string path = ::testing::TempDir() + "obs_sink_test.jsonl";
  {
    JsonlFileSink sink(path);
    sink.write("{\"n\":1}");
    sink.flush();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"n\":1}");
  std::remove(path.c_str());

  EXPECT_THROW(JsonlFileSink("/nonexistent-dir-xyz/trace.jsonl"),
               xbarlife::IoError);
}

// --- Registry ----------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  Registry reg;
  Counter& c = reg.counter("a");
  c.add(2);
  reg.counter("a").add(3);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  EXPECT_EQ(&reg.counter("a"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, CrossKindNameCollisionThrows) {
  Registry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), xbarlife::Error);
  EXPECT_THROW(reg.histogram("metric"), xbarlife::Error);
}

TEST(RegistryTest, GaugeTracksLastValue) {
  Registry reg;
  Gauge& g = reg.gauge("g");
  EXPECT_FALSE(g.has_value());
  g.set(1.5);
  g.set(2.5);
  EXPECT_TRUE(g.has_value());
  EXPECT_EQ(g.value(), 2.5);
}

TEST(RegistryTest, HistogramSummarizes) {
  Registry reg;
  HistogramMetric& h = reg.histogram("h");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 3.0);
  EXPECT_EQ(h.mean(), 2.0);
}

TEST(RegistryTest, ConcurrentCounterAddsAggregateExactly) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) {
        c.add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(RegistryTest, MergeFromAddsCombinesAndOverwrites) {
  Registry a;
  a.counter("c").add(1);
  a.gauge("g").set(1.0);
  a.histogram("h").observe(1.0);

  Registry b;
  b.counter("c").add(2);
  b.counter("only_b").add(5);
  b.gauge("g").set(9.0);
  b.gauge("unset_g");  // never set: must not clobber a's value
  b.histogram("h").observe(3.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 5u);
  EXPECT_EQ(a.gauge("g").value(), 9.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").max(), 3.0);
}

TEST(RegistryTest, ToJsonSortsSkipsAndExcludes) {
  Registry reg;
  reg.counter("z").add(1);
  reg.counter("a").add(2);
  reg.gauge("set_gauge").set(0.5);
  reg.gauge("unset_gauge");
  reg.histogram("empty_hist");
  reg.histogram("lat_ms").observe(10.0);
  reg.histogram("vals").observe(2.0);

  const std::string all = reg.to_json().dump();
  EXPECT_EQ(all.find("\"a\":2") < all.find("\"z\":1"), true);
  EXPECT_EQ(all.find("unset_gauge"), std::string::npos);
  EXPECT_EQ(all.find("empty_hist"), std::string::npos);
  EXPECT_NE(all.find("lat_ms"), std::string::npos);

  const std::string no_ms = reg.to_json("_ms").dump();
  EXPECT_EQ(no_ms.find("lat_ms"), std::string::npos);
  EXPECT_NE(no_ms.find("vals"), std::string::npos);
}

// --- EventTrace --------------------------------------------------------

TEST(EventTraceTest, DisabledTraceEmitsNothing) {
  EventTrace trace;  // no sink
  EXPECT_FALSE(trace.enabled());
  trace.emit("evt", {{"k", JsonValue(1)}});
  EXPECT_EQ(trace.events_emitted(), 0u);
}

TEST(EventTraceTest, EventLineFormatAndSequencing) {
  MemorySink sink;
  EventTrace trace(&sink);
  trace.emit("alpha", {{"x", JsonValue(1)}});
  trace.emit("beta", {});
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0].rfind("{\"event\":\"alpha\",\"seq\":0,\"t_ms\":",
                                  0),
            0u);
  EXPECT_NE(sink.lines()[0].find("\"x\":1"), std::string::npos);
  EXPECT_EQ(sink.lines()[1].rfind("{\"event\":\"beta\",\"seq\":1,\"t_ms\":",
                                  0),
            0u);
  EXPECT_EQ(trace.events_emitted(), 2u);
}

TEST(EventTraceTest, ContextFieldsAppearOnEveryEvent) {
  MemorySink sink;
  std::vector<std::pair<std::string, JsonValue>> context;
  context.emplace_back("job", JsonValue("T+T/r0"));
  EventTrace trace(&sink, std::move(context));
  trace.emit("one", {{"k", JsonValue(7)}});
  trace.emit("two", {});
  ASSERT_EQ(sink.lines().size(), 2u);
  for (const std::string& line : sink.lines()) {
    EXPECT_NE(line.find("\"job\":\"T+T/r0\""), std::string::npos) << line;
  }
  // Context precedes event fields.
  EXPECT_LT(sink.lines()[0].find("\"job\""), sink.lines()[0].find("\"k\""));
}

TEST(EventTraceTest, EmitLineReplaysVerbatim) {
  MemorySink sink;
  EventTrace trace(&sink);
  const std::string line = "{\"event\":\"x\",\"seq\":0,\"t_ms\":1.5}";
  trace.emit_line(line);
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_EQ(sink.lines()[0], line);
}

// --- Obs handle + ScopeTimer -------------------------------------------

TEST(ObsTest, DefaultHandleIsDisabledAndNullSafe) {
  const Obs obs;
  EXPECT_FALSE(obs.enabled());
  EXPECT_FALSE(obs.metrics_enabled());
  EXPECT_FALSE(obs.trace_enabled());
  obs.count("c");
  obs.set_gauge("g", 1.0);
  obs.observe("h", 2.0);
  obs.event("e", {{"k", JsonValue(1)}});
}

TEST(ObsTest, EnabledHandleRoutesToRegistryAndTrace) {
  Registry reg;
  MemorySink sink;
  EventTrace trace(&sink);
  const Obs obs{&reg, &trace};
  EXPECT_TRUE(obs.enabled());
  obs.count("c", 3);
  obs.set_gauge("g", 0.25);
  obs.observe("h", 4.0);
  obs.event("e");
  EXPECT_EQ(reg.counter("c").value(), 3u);
  EXPECT_EQ(reg.gauge("g").value(), 0.25);
  EXPECT_EQ(reg.histogram("h").count(), 1u);
  EXPECT_EQ(sink.lines().size(), 1u);
}

TEST(ObsTest, ScopeTimerRecordsIntoMsHistogram) {
  Registry reg;
  {
    ScopeTimer timer(&reg, "scope_ms");
  }
  EXPECT_EQ(reg.histogram("scope_ms").count(), 1u);
  EXPECT_GE(reg.histogram("scope_ms").min(), 0.0);
  {
    ScopeTimer no_op(nullptr, "never");  // must not create anything
  }
  EXPECT_EQ(reg.size(), 1u);
}

// --- Error hierarchy ---------------------------------------------------

TEST(ErrorHierarchyTest, NewTypesDeriveFromError) {
  const xbarlife::IoError io("disk");
  const xbarlife::ConvergenceError conv("diverged");
  const xbarlife::InvalidArgument arg("bad");
  EXPECT_NE(dynamic_cast<const xbarlife::Error*>(&io), nullptr);
  EXPECT_NE(dynamic_cast<const xbarlife::Error*>(&conv), nullptr);
  EXPECT_NE(dynamic_cast<const xbarlife::Error*>(&arg), nullptr);
  EXPECT_STREQ(io.what(), "disk");
  EXPECT_STREQ(conv.what(), "diverged");
}

TEST(ErrorHierarchyTest, TypesAreDistinctlyCatchable) {
  bool caught = false;
  try {
    throw xbarlife::ConvergenceError("x");
  } catch (const xbarlife::IoError&) {
    FAIL() << "wrong handler";
  } catch (const xbarlife::ConvergenceError&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace xbarlife::obs
