#include "tuning/analog_eval.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"

namespace xbarlife::tuning {
namespace {

struct Fixture {
  data::TrainTest data;
  nn::Network net;

  Fixture()
      : data(data::make_blobs(4, 8, 30, 20, 0.25, 31)), net(make()) {
    nn::SgdOptimizer opt({0.1, 0.9});
    for (int epoch = 0; epoch < 25; ++epoch) {
      const data::Batch batch = data::make_batch(data.train, 0, 120);
      net.train_batch(batch.images, batch.labels, opt, nullptr);
    }
  }

  static nn::Network make() {
    Rng rng(31);
    return nn::make_mlp(8, {16}, 4, rng);
  }
};

aging::AgingParams quiet() {
  aging::AgingParams a;
  a.a_f = 0.0;
  a.a_g = 0.0;
  a.thermal_crosstalk = 0.0;
  return a;
}

TEST(AnalogEval, IdealConfigMatchesDigitalEvaluation) {
  Fixture f;
  HardwareNetwork hw(f.net, {}, quiet());
  hw.deploy(MappingPolicy::kFresh, 64);
  const double digital =
      f.net.evaluate(f.data.test.head(60).images,
                     f.data.test.head(60).labels);
  const double analog = evaluate_with_nonidealities(
      hw, f.data.test, {}, /*noise_seed=*/1, std::nullopt, 60);
  EXPECT_NEAR(analog, digital, 1e-9);
}

TEST(AnalogEval, RestoresIdealWeightsAfterwards) {
  Fixture f;
  HardwareNetwork hw(f.net, {}, quiet());
  hw.deploy(MappingPolicy::kFresh, 32);
  const auto before = f.net.save_mappable_weights();
  xbar::NonidealityConfig cfg;
  cfg.read_noise_sigma = 0.2;
  evaluate_with_nonidealities(hw, f.data.test, cfg, 2, 7u, 40);
  const auto after = f.net.save_mappable_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(allclose(before[i], after[i]));
  }
}

TEST(AnalogEval, HeavyNoiseDegradesAccuracy) {
  Fixture f;
  HardwareNetwork hw(f.net, {}, quiet());
  hw.deploy(MappingPolicy::kFresh, 64);
  const double clean = evaluate_with_nonidealities(
      hw, f.data.test, {}, 3, std::nullopt, 80);
  xbar::NonidealityConfig noisy;
  noisy.read_noise_sigma = 0.6;
  noisy.stuck_off_fraction = 0.15;
  noisy.stuck_on_fraction = 0.15;
  // Average several noise draws: a single draw can get lucky.
  double degraded = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    degraded +=
        evaluate_with_nonidealities(hw, f.data.test, noisy, s, 100 + s, 80);
  }
  degraded /= 5.0;
  EXPECT_LT(degraded, clean - 0.05);
}

TEST(AnalogEval, DeterministicInSeeds) {
  Fixture f;
  HardwareNetwork hw(f.net, {}, quiet());
  hw.deploy(MappingPolicy::kFresh, 32);
  xbar::NonidealityConfig cfg;
  cfg.read_noise_sigma = 0.1;
  const double a =
      evaluate_with_nonidealities(hw, f.data.test, cfg, 11, 5u, 40);
  const double b =
      evaluate_with_nonidealities(hw, f.data.test, cfg, 11, 5u, 40);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(AnalogEval, BeforeDeployThrows) {
  Fixture f;
  HardwareNetwork hw(f.net, {}, quiet());
  EXPECT_THROW(
      evaluate_with_nonidealities(hw, f.data.test, {}, 1, std::nullopt, 10),
      InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::tuning
