// Fault-injection campaign engine: grid validation, per-job error
// isolation, thread-count determinism of the full result document, and
// byte-identical checkpoint resume (the "kill -9 the campaign" gate).
#include "core/fault_campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace xbarlife::core {
namespace {

/// Restores the serial default so test order never leaks thread state.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(1); }
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.name = "campaign-tiny";
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 24;
  cfg.dataset.test_per_class = 6;
  cfg.dataset.noise = 0.1;
  cfg.train_config.epochs = 2;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.lifetime.max_sessions = 4;
  cfg.lifetime.tuning.eval_samples = 24;
  cfg.lifetime.tuning.max_iterations = 20;
  cfg.target_accuracy_fraction = 0.8;
  return cfg;
}

FaultCampaignConfig tiny_campaign() {
  FaultCampaignConfig cc;
  cc.base = tiny_config();
  cc.replicates = 2;
  cc.campaign_seed = 33;
  FaultPoint clean;
  clean.label = "clean";
  cc.points.push_back(clean);
  FaultPoint faulty;
  faulty.label = "faulty";
  faulty.faults.nonideal.stuck_off_fraction = 0.05;
  faulty.faults.nonideal.write_noise_sigma = 0.03;
  faulty.faults.spare_rows = 2;
  cc.points.push_back(faulty);
  return cc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FaultCampaignConfig, RejectsBadGrids) {
  FaultCampaignConfig cc = tiny_campaign();
  cc.points.clear();
  EXPECT_THROW(cc.validate(), InvalidArgument);

  cc = tiny_campaign();
  cc.points[1].label = cc.points[0].label;
  EXPECT_THROW(cc.validate(), InvalidArgument);

  cc = tiny_campaign();
  cc.points[0].label.clear();
  EXPECT_THROW(cc.validate(), InvalidArgument);

  cc = tiny_campaign();
  cc.replicates = 0;
  EXPECT_THROW(cc.validate(), InvalidArgument);

  cc = tiny_campaign();
  cc.points[1].faults.nonideal.stuck_off_fraction = 2.0;
  EXPECT_THROW(cc.validate(), InvalidArgument);
}

TEST(FaultCampaign, ThreadedRunMatchesSerialByteForByte) {
  ThreadGuard guard;
  const FaultCampaignConfig cc = tiny_campaign();

  set_parallel_threads(1);
  const std::string serial =
      fault_campaign_json(run_fault_campaign(cc)).dump();
  set_parallel_threads(4);
  const std::string threaded =
      fault_campaign_json(run_fault_campaign(cc)).dump();

  EXPECT_EQ(serial, threaded);
  EXPECT_NE(serial.find("\"label\":\"faulty/ST+AT/r1\""),
            std::string::npos);
}

TEST(FaultCampaign, FailedJobsAreRecordedNotFatal) {
  FaultCampaignConfig cc = tiny_campaign();
  cc.replicates = 1;
  // A one-level quantizer cannot exist: every job throws InvalidArgument
  // inside the fan-out. The campaign must record the failures per entry
  // and still assemble a complete result document.
  cc.base.lifetime.levels = 1;
  const FaultCampaignResult result = run_fault_campaign(cc);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.failed_jobs, result.jobs.size());
  const std::string doc = fault_campaign_json(result).dump();
  EXPECT_NE(doc.find("\"failed\":true"), std::string::npos);
  EXPECT_NE(doc.find("two levels"), std::string::npos);
}

TEST(FaultCampaign, CheckpointResumeIsByteIdentical) {
  ThreadGuard guard;
  set_parallel_threads(2);
  FaultCampaignConfig cc = tiny_campaign();

  // Reference: one uninterrupted run, no checkpoint.
  const std::string reference =
      fault_campaign_json(run_fault_campaign(cc)).dump();

  // Full checkpointed run: 4 jobs in chunks of 3 -> generation 1 (3 jobs
  // done) rotates into the .bak slot when generation 2 (all done) lands.
  const std::string path = ::testing::TempDir() + "xbarlife_ck.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  cc.checkpoint_path = path;
  cc.checkpoint_chunk = 3;
  const FaultCampaignResult full = run_fault_campaign(cc);
  EXPECT_EQ(full.resumed_jobs, 0u);
  EXPECT_EQ(full.executed_jobs, full.jobs.size());
  EXPECT_EQ(full.checkpoint_generation, 2u);
  EXPECT_FALSE(full.fallback_used);
  EXPECT_EQ(fault_campaign_json(full).dump(), reference);

  // Simulate a crash mid-write: flip the newest snapshot's last payload
  // byte. The resume must reject it (checksum) and fall back to the .bak
  // generation, replaying its 3 completed jobs and running only the rest.
  {
    std::string bytes = read_file(path);
    ASSERT_FALSE(bytes.empty());
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  const FaultCampaignResult resumed = run_fault_campaign(cc);
  EXPECT_EQ(resumed.resumed_jobs, 3u);
  EXPECT_EQ(resumed.executed_jobs, resumed.jobs.size() - 3);
  EXPECT_TRUE(resumed.fallback_used);
  EXPECT_EQ(fault_campaign_json(resumed).dump(), reference);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST(FaultCampaign, RejectsForeignCheckpoints) {
  FaultCampaignConfig cc = tiny_campaign();
  const std::string path = ::testing::TempDir() + "xbarlife_ck_bad.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"something\":\"else\"}\n";
  }
  cc.checkpoint_path = path;
  EXPECT_THROW(run_fault_campaign(cc), IoError);

  // A checkpoint from a different campaign seed is also rejected.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"checkpoint\":\"xbarlife.faults.v1\",\"campaign_seed\":999"
        << ",\"jobs\":4}\n";
  }
  EXPECT_THROW(run_fault_campaign(cc), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xbarlife::core
