// Telemetry determinism tests: the fixed log-bucket histogram (bucket
// mapping, quantile estimates, merge-order invariance, thread-count
// invariance), the ProgressReporter heartbeat file, and the atomic
// file-replace primitive both build on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "persist/checkpoint.hpp"

namespace xbarlife::obs {
namespace {

using namespace std::chrono_literals;

// --- Histogram bucket mapping ------------------------------------------

TEST(HistogramBuckets, CatchAllBucketTakesNonPositiveAndNonFinite) {
  EXPECT_EQ(HistogramMetric::bucket_index(0.0), 0u);
  EXPECT_EQ(HistogramMetric::bucket_index(-0.0), 0u);
  EXPECT_EQ(HistogramMetric::bucket_index(-1.5), 0u);
  EXPECT_EQ(HistogramMetric::bucket_index(
                std::numeric_limits<double>::infinity()),
            0u);
  EXPECT_EQ(HistogramMetric::bucket_index(
                -std::numeric_limits<double>::infinity()),
            0u);
  EXPECT_EQ(HistogramMetric::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
}

TEST(HistogramBuckets, PowersOfTwoMapToLogBuckets) {
  // Bucket i (i >= 1) spans [2^(i-33), 2^(i-32)).
  EXPECT_EQ(HistogramMetric::bucket_index(1.0), 33u);
  EXPECT_EQ(HistogramMetric::bucket_index(1.999), 33u);
  EXPECT_EQ(HistogramMetric::bucket_index(2.0), 34u);
  EXPECT_EQ(HistogramMetric::bucket_index(3.0), 34u);
  EXPECT_EQ(HistogramMetric::bucket_index(0.5), 32u);
  EXPECT_EQ(HistogramMetric::bucket_index(std::ldexp(1.0, 30)), 63u);
}

TEST(HistogramBuckets, ExtremesClampIntoEdgeBuckets) {
  EXPECT_EQ(HistogramMetric::bucket_index(1e-300), 1u);
  EXPECT_EQ(HistogramMetric::bucket_index(
                std::numeric_limits<double>::denorm_min()),
            1u);
  EXPECT_EQ(HistogramMetric::bucket_index(1e300), 63u);
  EXPECT_EQ(HistogramMetric::bucket_index(
                std::numeric_limits<double>::max()),
            63u);
}

TEST(HistogramBuckets, ObservedSamplesLandInTheirBuckets) {
  HistogramMetric h;
  h.observe(0.75);   // bucket 32
  h.observe(1.5);    // bucket 33
  h.observe(-2.0);   // bucket 0
  h.observe(1e12);   // clamped into bucket 63
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[32], 1u);
  EXPECT_EQ(buckets[33], 1u);
  EXPECT_EQ(buckets[63], 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) {
    total += b;
  }
  EXPECT_EQ(total, h.count());
}

// --- Histogram quantiles ------------------------------------------------

TEST(HistogramQuantiles, EmptyHistogramReportsZero) {
  const HistogramMetric h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramQuantiles, SingleSampleClampsEveryQuantileToIt) {
  HistogramMetric h;
  h.observe(7.0);
  EXPECT_EQ(h.quantile(0.0), 7.0);
  EXPECT_EQ(h.quantile(0.5), 7.0);
  EXPECT_EQ(h.quantile(0.99), 7.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
}

TEST(HistogramQuantiles, EstimatesAreMonotoneAndBounded) {
  HistogramMetric h;
  Rng rng(1234);
  for (int i = 0; i < 1000; ++i) {
    h.observe(rng.uniform(0.1, 50.0));
  }
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // The top quantile is exact: the walk ends in the max sample's bucket
  // and the estimate clamps to the observed maximum.
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(HistogramQuantiles, EstimateStaysWithinOneBucketOfTruth) {
  // Identical samples pile into one bucket, whose upper edge is at most
  // 2x the sample — the documented worst-case estimate error.
  HistogramMetric h;
  for (int i = 0; i < 100; ++i) {
    h.observe(3.0);
  }
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 3.0);
  EXPECT_LE(p50, 6.0);
}

// --- Histogram merge determinism ---------------------------------------

void fill(HistogramMetric& h, std::uint64_t seed, int n) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    // A hostile mix: spanning many buckets, plus catch-all samples.
    const double u = rng.uniform();
    if (u < 0.1) {
      h.observe(-rng.uniform());
    } else {
      h.observe(std::ldexp(rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.uniform_int(-20, 20))));
    }
  }
}

TEST(HistogramDeterminism, CombineIsCommutative) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    // combine(a, b) must equal combine(b, a) exactly: two independently
    // filled copies of each side, folded in opposite orders.
    HistogramMetric a1, a2, b1, b2;
    fill(a1, 100 + trial, 500);
    fill(a2, 100 + trial, 500);
    fill(b1, 200 + trial, 300);
    fill(b2, 200 + trial, 300);
    a1.combine(b1);  // a + b
    b2.combine(a2);  // b + a
    EXPECT_EQ(a1.count(), b2.count());
    EXPECT_EQ(a1.min(), b2.min());
    EXPECT_EQ(a1.max(), b2.max());
    EXPECT_EQ(a1.buckets(), b2.buckets());
    for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_EQ(a1.quantile(q), b2.quantile(q)) << "q=" << q;
    }
  }
}

TEST(HistogramDeterminism, RegistryMergeIsFoldOrderInvariant) {
  // Shards merged in any order must serialize to identical bytes — the
  // property that makes threaded sweep snapshots byte-identical.
  constexpr std::size_t kShards = 4;
  const auto make_shard = [](std::size_t i) {
    auto reg = std::make_unique<Registry>();
    fill(reg->bucketed_histogram("h.request_ms"), 42 + i, 200);
    reg->counter("jobs").add(i + 1);
    return reg;
  };
  std::vector<std::unique_ptr<Registry>> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    shards.push_back(make_shard(i));
  }
  const std::array<std::array<std::size_t, kShards>, 3> orders = {
      {{0, 1, 2, 3}, {3, 1, 0, 2}, {2, 3, 1, 0}}};
  std::vector<std::string> dumps;
  for (const auto& order : orders) {
    Registry parent;
    for (const std::size_t i : order) {
      parent.merge_from(*shards[i]);
    }
    dumps.push_back(parent.to_json().dump());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
  EXPECT_NE(dumps[0].find("\"p50\""), std::string::npos);
  EXPECT_NE(dumps[0].find("\"buckets\""), std::string::npos);
}

TEST(HistogramDeterminism, ConcurrentObservesMatchSerialExactly) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<double> samples;
  Rng rng(777);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    samples.push_back(rng.uniform(1e-6, 1e6));
  }

  HistogramMetric serial;
  for (const double s : samples) {
    serial.observe(s);
  }

  HistogramMetric threaded;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&threaded, &samples, t] {
      for (int i = 0; i < kPerThread; ++i) {
        threaded.observe(samples[static_cast<std::size_t>(
            t * kPerThread + i)]);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Everything quantile() reads — buckets, count, min, max — is exactly
  // order-independent; only the fp sum may differ, and the JSON export's
  // quantiles never touch it.
  EXPECT_EQ(threaded.count(), serial.count());
  EXPECT_EQ(threaded.min(), serial.min());
  EXPECT_EQ(threaded.max(), serial.max());
  EXPECT_EQ(threaded.buckets(), serial.buckets());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(threaded.quantile(q), serial.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramDeterminism, BucketedFlagSurvivesMerge) {
  Registry child;
  child.bucketed_histogram("lat_ms").observe(2.5);
  Registry parent;
  parent.histogram("lat_ms").observe(1.5);
  parent.merge_from(child);
  const std::string dump = parent.to_json().dump();
  EXPECT_NE(dump.find("\"p95\""), std::string::npos);
  EXPECT_NE(dump.find("\"buckets\""), std::string::npos);
}

// --- ProgressReporter ---------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "xbarlife_" + name;
}

TEST(ProgressReporterTest, PhaseWritesCompleteSnapshot) {
  const std::string path = temp_path("progress_phase.json");
  ProgressReporter reporter(path, "train");
  reporter.phase("train.epochs", 0, 10);
  const std::string doc = slurp(path);
  EXPECT_EQ(doc.find("{\"schema\":\"xbarlife.progress.v1\","
                     "\"command\":\"train\",\"phase\":\"train.epochs\","
                     "\"done\":0,\"total\":10,\"elapsed_ms\":"),
            0u);
  EXPECT_NE(doc.find("\"finished\":false"), std::string::npos);
  // No ETA before the first completed unit, no counters unattached.
  EXPECT_EQ(doc.find("\"eta_ms\""), std::string::npos);
  EXPECT_EQ(doc.find("\"counters\""), std::string::npos);
  EXPECT_EQ(doc.substr(doc.size() - 2), "}\n");
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, TicksAreRateLimitedAndFinishForces) {
  const std::string path = temp_path("progress_rate.json");
  ProgressReporter reporter(path, "sweep", 1h);
  reporter.phase("sweep.jobs", 0, 4);
  reporter.tick();
  reporter.tick();
  // Inside the interval the file still shows the forced phase() snapshot.
  EXPECT_NE(slurp(path).find("\"done\":0"), std::string::npos);
  reporter.finish();
  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"done\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"finished\":true"), std::string::npos);
  EXPECT_EQ(doc.find("\"eta_ms\""), std::string::npos);  // finished: no ETA
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, ZeroIntervalTicksWriteEveryTime) {
  const std::string path = temp_path("progress_tick.json");
  ProgressReporter reporter(path, "faults", 0ms);
  reporter.phase("faults.jobs", 0, 8);
  reporter.tick(3);
  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"done\":3,\"total\":8"), std::string::npos);
  // One unit is done and the total is known: the ETA appears, right
  // after elapsed_ms as the schema pins it.
  EXPECT_NE(doc.find("\"eta_ms\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, ResumedPhaseStartsPastZero) {
  const std::string path = temp_path("progress_resume.json");
  ProgressReporter reporter(path, "lifetime");
  reporter.phase("lifetime.sessions", 5, 8);
  EXPECT_NE(slurp(path).find("\"done\":5,\"total\":8"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, CountersRollupSnapshotsTheRegistry) {
  const std::string path = temp_path("progress_counters.json");
  Registry registry;
  registry.counter("aging.pulses").add(42);
  ProgressReporter reporter(path, "train");
  reporter.attach_counters(&registry);
  reporter.phase("train.epochs", 1, 2);
  EXPECT_NE(slurp(path).find("\"counters\":{\"aging.pulses\":42}"),
            std::string::npos);
  registry.counter("aging.pulses").add(8);
  reporter.finish();
  EXPECT_NE(slurp(path).find("\"counters\":{\"aging.pulses\":50}"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, FinishIsIdempotent) {
  const std::string path = temp_path("progress_finish.json");
  ProgressReporter reporter(path, "train");
  reporter.phase("train.epochs", 2, 2);
  reporter.finish();
  reporter.finish();
  EXPECT_NE(slurp(path).find("\"finished\":true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressReporterTest, ForcedWritesPropagateTickSwallows) {
  const std::string bad = "/nonexistent-xbarlife-dir/progress.json";
  ProgressReporter forced(bad, "train");
  // phase() must fail fast: a bad --status-file path is a setup error.
  EXPECT_THROW(forced.phase("train.epochs", 0, 2), IoError);
  // ...but a rate-limited heartbeat must never kill the run it reports.
  ProgressReporter ticking(bad, "train", 0ms);
  EXPECT_NO_THROW(ticking.tick());
}

// --- write_file_atomic --------------------------------------------------

TEST(AtomicWriteTest, ReplacesContentWithoutTmpResidue) {
  const std::string path = temp_path("atomic.txt");
  persist::write_file_atomic(path, "first");
  persist::write_file_atomic(path, "second");
  EXPECT_EQ(slurp(path), "second");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, ThrowsIoErrorOnUnwritablePath) {
  EXPECT_THROW(
      persist::write_file_atomic("/nonexistent-xbarlife-dir/x.txt", "x"),
      IoError);
}

}  // namespace
}  // namespace xbarlife::obs
