// Tests for the related-work counter-aging baselines ([9], [11], [12] of
// the paper's Section I).
#include <gtest/gtest.h>

#include <numbers>

#include "common/error.hpp"
#include "mitigation/pulse_shaping.hpp"
#include "mitigation/row_swap.hpp"
#include "mitigation/series_resistor.hpp"

namespace xbarlife::mitigation {
namespace {

// ---------------------------------------------------------------- pulses

TEST(PulseShaping, RectangularIsUnity) {
  EXPECT_DOUBLE_EQ(stress_factor(PulseShape::kRectangular, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(time_dilation(PulseShape::kRectangular), 1.0);
  EXPECT_DOUBLE_EQ(net_stress_per_move(PulseShape::kRectangular, 2.0),
                   1.0);
}

TEST(PulseShaping, TriangularStressMatchesClosedForm) {
  // integral of (2t)^alpha over the triangle = 1/(alpha+1).
  for (double alpha : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(stress_factor(PulseShape::kTriangular, alpha),
                1.0 / (alpha + 1.0), 1e-3)
        << "alpha=" << alpha;
  }
}

TEST(PulseShaping, SinusoidalStressAtAlphaOneIsTwoOverPi) {
  EXPECT_NEAR(stress_factor(PulseShape::kSinusoidal, 1.0),
              2.0 / std::numbers::pi, 1e-3);
}

TEST(PulseShaping, ShapedPulsesReduceStressMoreAtHigherAlpha) {
  const double tri1 = stress_factor(PulseShape::kTriangular, 1.0);
  const double tri3 = stress_factor(PulseShape::kTriangular, 3.0);
  EXPECT_LT(tri3, tri1);
}

TEST(PulseShaping, NetBenefitRequiresSuperlinearAging) {
  // At alpha = 1 the stress saved per cycle exactly pays for the longer
  // programming time: net = 1. Above alpha = 1 shaping wins.
  EXPECT_NEAR(net_stress_per_move(PulseShape::kTriangular, 1.0), 1.0,
              5e-3);
  EXPECT_LT(net_stress_per_move(PulseShape::kTriangular, 2.0), 0.75);
  EXPECT_LT(net_stress_per_move(PulseShape::kSinusoidal, 2.0), 0.85);
}

TEST(PulseShaping, Names) {
  EXPECT_EQ(to_string(PulseShape::kRectangular), "rectangular");
  EXPECT_EQ(to_string(PulseShape::kTriangular), "triangular");
  EXPECT_EQ(to_string(PulseShape::kSinusoidal), "sinusoidal");
}

// -------------------------------------------------------------- divider

TEST(SeriesResistor, ZeroSeriesIsTransparent) {
  SeriesResistorConfig cfg{0.0};
  EXPECT_DOUBLE_EQ(divided_current(cfg, 2.0, 1e4), 2.0 / 1e4);
  EXPECT_DOUBLE_EQ(cell_voltage_fraction(cfg, 1e4), 1.0);
  EXPECT_DOUBLE_EQ(pulse_count_multiplier(cfg, 1e4), 1.0);
  EXPECT_DOUBLE_EQ(net_stress_per_move(cfg, 2.0, 1e4, 2.0), 1.0);
}

TEST(SeriesResistor, CapsLowResistanceCurrents) {
  SeriesResistorConfig cfg{1e4};
  // A 10 kOhm cell sees its current halved; a 100 kOhm cell barely cares.
  EXPECT_NEAR(divided_current(cfg, 2.0, 1e4) / (2.0 / 1e4), 0.5, 1e-9);
  EXPECT_NEAR(divided_current(cfg, 2.0, 1e5) / (2.0 / 1e5), 10.0 / 11.0,
              1e-9);
}

TEST(SeriesResistor, NetStressFavorsHotCells) {
  SeriesResistorConfig cfg{1e4};
  // alpha=2: hot cell: (1/2)^2 * 2 = 0.5 (wins). Cold cell:
  // (10/11)^2 * 11/10 = 10/11 (mild win too, but smaller).
  const double hot = net_stress_per_move(cfg, 2.0, 1e4, 2.0);
  const double cold = net_stress_per_move(cfg, 2.0, 1e5, 2.0);
  EXPECT_NEAR(hot, 0.5, 1e-9);
  EXPECT_LT(hot, cold);
  EXPECT_LT(cold, 1.0);
}

TEST(SeriesResistor, AlphaOneIsNeutral) {
  // At alpha = 1 the divider saves exactly as much stress per pulse as it
  // adds in extra pulses: net = 1 for every cell.
  SeriesResistorConfig cfg{2e4};
  EXPECT_NEAR(net_stress_per_move(cfg, 2.0, 1e4, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(net_stress_per_move(cfg, 2.0, 7e4, 1.0), 1.0, 1e-9);
}

TEST(SeriesResistor, RejectsInvalidInput) {
  SeriesResistorConfig bad{-1.0};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  SeriesResistorConfig cfg{1e4};
  EXPECT_THROW(divided_current(cfg, 0.0, 1e4), InvalidArgument);
  EXPECT_THROW(divided_current(cfg, 2.0, 0.0), InvalidArgument);
}

// ------------------------------------------------------------- row swap

TEST(RowWearLeveler, StartsAsIdentity) {
  RowWearLeveler lev(5);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(lev.physical_row(r), r);
  }
}

TEST(RowWearLeveler, SwapsHotAndColdRows) {
  RowWearLeveler lev(4);
  const auto swaps =
      lev.rebalance({10.0, 1.0, 1.0, 1.0}, /*ratio=*/2.0, /*max=*/1);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].first, 0u);  // hottest physical row
  // Logical row 0 moved off the hot physical row.
  EXPECT_NE(lev.physical_row(0), 0u);
}

TEST(RowWearLeveler, NoSwapWhenBalanced) {
  RowWearLeveler lev(4);
  EXPECT_TRUE(lev.rebalance({1.0, 1.1, 0.9, 1.0}).empty());
  EXPECT_TRUE(lev.rebalance({0.0, 0.0, 0.0, 0.0}).empty());
}

TEST(RowWearLeveler, MaxSwapsRespected) {
  RowWearLeveler lev(6);
  const auto swaps = lev.rebalance({100.0, 90.0, 80.0, 1.0, 2.0, 3.0},
                                   2.0, /*max_swaps=*/2);
  EXPECT_LE(swaps.size(), 2u);
}

TEST(RowWearLeveler, PermutationStaysABijection) {
  RowWearLeveler lev(8);
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> stress(8);
    for (double& s : stress) {
      s = rng.uniform(0.0, 10.0);
    }
    lev.rebalance(stress, 1.5, 3);
    std::vector<bool> seen(8, false);
    for (std::size_t l = 0; l < 8; ++l) {
      const std::size_t p = lev.physical_row(l);
      ASSERT_LT(p, 8u);
      ASSERT_FALSE(seen[p]) << "round " << round;
      seen[p] = true;
    }
  }
}

TEST(RowWearLeveler, ToPhysicalMovesRows) {
  RowWearLeveler lev(3);
  lev.rebalance({10.0, 1.0, 1.0}, 2.0, 1);  // swaps row 0 with a cold row
  Tensor w(Shape{3, 2}, std::vector<float>{0, 0, 1, 1, 2, 2});
  Tensor phys = lev.to_physical(w);
  // Row l of the logical matrix must appear at physical row perm[l].
  for (std::size_t l = 0; l < 3; ++l) {
    const std::size_t p = lev.physical_row(l);
    EXPECT_FLOAT_EQ(phys.at(p, 0), static_cast<float>(l));
  }
}

TEST(RowWearLeveler, ResetRestoresIdentity) {
  RowWearLeveler lev(4);
  lev.rebalance({10.0, 1.0, 1.0, 1.0});
  lev.reset();
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(lev.physical_row(r), r);
  }
}

TEST(RowStress, EstimateAndTruthAgreeOnRepresentativeRows) {
  device::DeviceParams dev;
  aging::AgingParams ap;
  ap.thermal_crosstalk = 0.0;
  xbar::Crossbar xb(6, 6, dev, ap);
  // Hammer row 1 (which contains representatives at (1,1) and (1,4)).
  for (int i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 6; ++c) {
      xb.program_cell(1, c, dev.r_min_fresh);
    }
  }
  const auto est = estimated_row_stress(xb);
  const auto truth = true_row_stress(xb);
  EXPECT_GT(truth[1], truth[0]);
  // The 1-of-9 trace resolves 3x3 blocks: rows 0-2 share the hot block's
  // estimate, and rows 3-5 (a different block row) must read colder.
  EXPECT_DOUBLE_EQ(est[0], est[1]);
  EXPECT_GT(est[1], est[4]);
}

TEST(RowWearLeveler, ReducesWearConcentrationInAWorkload) {
  // Synthetic workload: one logical row is programmed 10x more often.
  // With leveling, the max/mean physical stress ratio must drop.
  device::DeviceParams dev;
  aging::AgingParams ap;
  ap.thermal_crosstalk = 0.0;

  auto run = [&](bool level) {
    xbar::Crossbar xb(6, 4, dev, ap);
    RowWearLeveler lev(6);
    Rng rng(7);
    for (int round = 0; round < 60; ++round) {
      for (int k = 0; k < 10; ++k) {
        const std::size_t hot_logical = 2;
        xb.program_cell(lev.physical_row(hot_logical),
                        static_cast<std::size_t>(rng.uniform_int(0, 3)),
                        3e4);
      }
      xb.program_cell(lev.physical_row(static_cast<std::size_t>(
                          rng.uniform_int(0, 5))),
                      static_cast<std::size_t>(rng.uniform_int(0, 3)),
                      3e4);
      if (level && round % 5 == 4) {
        // [12] assumes per-row wear counters in hardware; use the exact
        // row stress (the 1-of-9 trace only resolves 3x3 blocks).
        lev.rebalance(true_row_stress(xb), 1.5, 2);
      }
    }
    const auto truth = true_row_stress(xb);
    double mean = 0.0;
    double peak = 0.0;
    for (double s : truth) {
      mean += s;
      peak = std::max(peak, s);
    }
    mean /= static_cast<double>(truth.size());
    return peak / mean;
  };

  const double concentration_without = run(false);
  const double concentration_with = run(true);
  EXPECT_LT(concentration_with, concentration_without * 0.8);
}

}  // namespace
}  // namespace xbarlife::mitigation
