#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"

namespace xbarlife::core {
namespace {

data::TrainTest blob_data() {
  return data::make_blobs(3, 10, 40, 12, 0.3, 11);
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const auto data = blob_data();
  Rng rng(1);
  nn::Network net = nn::make_mlp(10, {16}, 3, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch = 20;
  cfg.learning_rate = 0.05;
  const TrainHistory h = train(net, data, cfg, nullptr);
  ASSERT_EQ(h.epochs.size(), 8u);
  EXPECT_LT(h.epochs.back().loss, h.epochs.front().loss);
  EXPECT_GT(h.final_test_accuracy, 0.7);
  EXPECT_EQ(h.final_test_accuracy, h.epochs.back().test_accuracy);
}

TEST(Trainer, L2RegularizerReportsPenalty) {
  const auto data = blob_data();
  Rng rng(2);
  nn::Network net = nn::make_mlp(10, {8}, 3, rng);
  nn::L2Regularizer reg(1e-2);
  TrainConfig cfg;
  cfg.epochs = 2;
  const TrainHistory h = train(net, data, cfg, &reg);
  EXPECT_GT(h.epochs[0].penalty, 0.0);
}

TEST(Trainer, SkewedTrainingFreezesOmegasAtConfiguredEpoch) {
  const auto data = blob_data();
  Rng rng(3);
  nn::Network net = nn::make_mlp(10, {8}, 3, rng);
  auto reg = make_skewed_regularizer({5e-2, 1e-3, -1.0});
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.omega_freeze_epoch = 2;
  train(net, data, cfg, reg.get());
  // After training, the omegas must be pinned: mutating the weights must
  // not change them.
  const auto mws = net.mappable_weights();
  const double omega_before = reg->omega(*mws[0].value, 0);
  mws[0].value->scale_(10.0f);
  const double omega_after = reg->omega(*mws[0].value, 0);
  EXPECT_DOUBLE_EQ(omega_before, omega_after);
}

TEST(Trainer, ImmediateFreezeUsesInitWeights) {
  const auto data = blob_data();
  Rng rng(4);
  nn::Network net = nn::make_mlp(10, {8}, 3, rng);
  auto reg = make_skewed_regularizer({5e-2, 1e-3, -1.0});
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.omega_freeze_epoch = 0;
  EXPECT_NO_THROW(train(net, data, cfg, reg.get()));
}

TEST(Trainer, RejectsBadConfig) {
  const auto data = blob_data();
  Rng rng(5);
  nn::Network net = nn::make_mlp(10, {8}, 3, rng);
  TrainConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(train(net, data, cfg, nullptr), InvalidArgument);
  cfg = TrainConfig{};
  cfg.batch = 0;
  EXPECT_THROW(train(net, data, cfg, nullptr), InvalidArgument);
}

TEST(Trainer, DeterministicGivenConfig) {
  const auto data = blob_data();
  auto run = [&]() {
    Rng rng(6);
    nn::Network net = nn::make_mlp(10, {8}, 3, rng);
    TrainConfig cfg;
    cfg.epochs = 3;
    train(net, data, cfg, nullptr);
    return net.save_mappable_weights();
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(allclose(a[i], b[i]));
  }
}

TEST(ExperimentHelpers, TrainModelProducesSkewedWeights) {
  ExperimentConfig cfg;
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 30;
  cfg.dataset.test_per_class = 8;
  cfg.dataset.noise = 0.2;
  cfg.train_config.epochs = 6;
  cfg.skew = {5e-2, 1e-3, -1.0};

  TrainedModel plain = train_model(cfg, /*skewed=*/false);
  TrainedModel skewed = train_model(cfg, /*skewed=*/true);

  auto collect = [](nn::Network& net) {
    std::vector<double> all;
    for (const nn::MappableWeight& mw : net.mappable_weights()) {
      for (std::size_t i = 0; i < mw.value->numel(); ++i) {
        all.push_back(static_cast<double>((*mw.value)[i]));
      }
    }
    return all;
  };
  const auto wp = collect(plain.network);
  const auto ws = collect(skewed.network);
  EXPECT_GT(skewness(std::span<const double>(ws)),
            skewness(std::span<const double>(wp)));
  // Both flavours should still learn the task.
  EXPECT_GT(plain.history.final_test_accuracy, 0.6);
  EXPECT_GT(skewed.history.final_test_accuracy, 0.6);
}

TEST(ExperimentHelpers, BuildModelVariants) {
  ExperimentConfig cfg;
  cfg.dataset.channels = 3;
  cfg.dataset.height = 32;
  cfg.dataset.width = 32;
  cfg.dataset.classes = 10;
  Rng rng(1);
  cfg.model = ExperimentConfig::Model::kLeNet5;
  EXPECT_EQ(build_model(cfg, rng).name(), "lenet5");
  cfg.model = ExperimentConfig::Model::kVgg16;
  cfg.vgg_width = 1;
  EXPECT_EQ(build_model(cfg, rng).name(), "vgg16");
  cfg.model = ExperimentConfig::Model::kMlp;
  EXPECT_EQ(build_model(cfg, rng).name(), "mlp");
}

TEST(ExperimentHelpers, DefaultConfigsAreConsistent) {
  const ExperimentConfig lenet = lenet_experiment_config();
  EXPECT_EQ(lenet.model, ExperimentConfig::Model::kLeNet5);
  EXPECT_EQ(lenet.dataset.classes, 10u);
  // Table II: LeNet-5 penalty is strongly asymmetric.
  EXPECT_GT(lenet.skew.lambda1, 10.0 * lenet.skew.lambda2);

  const ExperimentConfig vgg = vgg_experiment_config();
  EXPECT_EQ(vgg.model, ExperimentConfig::Model::kVgg16);
  EXPECT_EQ(vgg.dataset.classes, 100u);
  // Table II: VGG-16 uses lambda1 == lambda2.
  EXPECT_DOUBLE_EQ(vgg.skew.lambda1, vgg.skew.lambda2);
}

}  // namespace
}  // namespace xbarlife::core
