#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"

namespace xbarlife {
namespace {

/// Restores the serial default so test order never leaks thread state.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(1); }
};

TEST(Parallel, ChunkCountPartitionsByGrainOnly) {
  EXPECT_EQ(parallel_chunk_count(0, 0, 8), 0u);
  EXPECT_EQ(parallel_chunk_count(0, 1, 8), 1u);
  EXPECT_EQ(parallel_chunk_count(0, 8, 8), 1u);
  EXPECT_EQ(parallel_chunk_count(0, 9, 8), 2u);
  EXPECT_EQ(parallel_chunk_count(3, 9, 2), 3u);
  EXPECT_EQ(parallel_chunk_count(0, 100, 0), 100u);  // grain clamped to 1
  // The partition is a property of (begin, end, grain): thread count must
  // not appear anywhere in it (this is the determinism anchor).
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t threads : {1u, 4u}) {
    set_parallel_threads(threads);
    std::vector<std::atomic<int>> hits(103);
    parallel_for(0, hits.size(), 7,
                 [&](std::size_t b, std::size_t e) {
                   for (std::size_t i = b; i < e; ++i) {
                     hits[i].fetch_add(1);
                   }
                 });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Parallel, ChunkIndicesMatchPartition) {
  ThreadGuard guard;
  set_parallel_threads(3);
  std::vector<std::pair<std::size_t, std::size_t>> spans(
      parallel_chunk_count(5, 26, 4));
  parallel_for_chunks(5, 26, 4,
                      [&](std::size_t ci, std::size_t b, std::size_t e) {
                        spans[ci] = {b, e};
                      });
  ASSERT_EQ(spans.size(), 6u);
  std::size_t expect_begin = 5;
  for (std::size_t ci = 0; ci < spans.size(); ++ci) {
    EXPECT_EQ(spans[ci].first, expect_begin);
    EXPECT_EQ(spans[ci].second, std::min(expect_begin + 4, std::size_t{26}));
    expect_begin = spans[ci].second;
  }
  EXPECT_EQ(expect_begin, 26u);
}

TEST(Parallel, ReduceIsThreadCountInvariant) {
  ThreadGuard guard;
  const auto sum_chunk = [](std::size_t b, std::size_t e) {
    double s = 0.0;
    for (std::size_t i = b; i < e; ++i) {
      // Values spanning magnitudes so reassociation would be visible.
      s += 1.0 / static_cast<double>(i + 1);
    }
    return s;
  };
  const auto merge = [](double a, double b) { return a + b; };
  set_parallel_threads(1);
  const double serial =
      parallel_reduce(0, 10007, 64, 0.0, sum_chunk, merge);
  set_parallel_threads(4);
  for (int rep = 0; rep < 3; ++rep) {
    const double threaded =
        parallel_reduce(0, 10007, 64, 0.0, sum_chunk, merge);
    EXPECT_EQ(serial, threaded);  // bitwise, not approximate
  }
}

TEST(Parallel, NestedParallelForRunsInline) {
  ThreadGuard guard;
  set_parallel_threads(4);
  EXPECT_FALSE(in_parallel_region());
  std::atomic<bool> nested_seen{false};
  parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    EXPECT_TRUE(in_parallel_region());
    // A nested region must execute inline on the calling thread, in
    // order — fan-out layers rely on this for byte-identical results.
    std::vector<std::size_t> order;
    parallel_for(0, 4, 1, [&](std::size_t nb, std::size_t ne) {
      for (std::size_t i = nb; i < ne; ++i) {
        order.push_back(i);
      }
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
    nested_seen = true;
    (void)b;
    (void)e;
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_TRUE(nested_seen.load());
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (std::size_t threads : {1u, 4u}) {
    set_parallel_threads(threads);
    EXPECT_THROW(
        parallel_for(0, 64, 1,
                     [](std::size_t b, std::size_t) {
                       if (b == 13) {
                         throw std::runtime_error("boom");
                       }
                     }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must stay usable after an exception.
    std::atomic<int> count{0};
    parallel_for(0, 10, 1,
                 [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(Parallel, SetThreadsInsideRegionThrows) {
  ThreadGuard guard;
  set_parallel_threads(2);
  parallel_for(0, 1, 1, [&](std::size_t, std::size_t) {
    EXPECT_THROW(set_parallel_threads(3), InvalidArgument);
  });
}

TEST(Parallel, DisjointWritesAreBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto fill = [](std::vector<double>& out) {
    parallel_for(0, out.size(), 16, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = std::sin(static_cast<double>(i)) * 1e-3;
      }
    });
  };
  std::vector<double> serial(1000), threaded(1000);
  set_parallel_threads(1);
  fill(serial);
  set_parallel_threads(4);
  fill(threaded);
  EXPECT_EQ(serial, threaded);
}

}  // namespace
}  // namespace xbarlife
