#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife {
namespace {

TEST(RunningStats, EmptyState) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_DOUBLE_EQ(rs.min(), 4.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.add(x);
  }
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Rng rng(5);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.125), 0.5);
}

TEST(Quantile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.9), 7.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(quantile_sorted(v, -0.1), InvalidArgument);
  EXPECT_THROW(quantile_sorted(v, 1.1), InvalidArgument);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Summarize, EmptyYieldsZeros) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, FloatOverload) {
  const std::vector<float> v{1.0f, 2.0f, 3.0f};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Skewness, SymmetricIsNearZero) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) {
    v.push_back(rng.gaussian());
  }
  EXPECT_NEAR(skewness(v), 0.0, 0.05);
}

TEST(Skewness, RightTailIsPositive) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) {
    v.push_back(std::exp(rng.gaussian()));  // lognormal: right-skewed
  }
  EXPECT_GT(skewness(v), 1.0);
}

TEST(Skewness, DegenerateCases) {
  EXPECT_DOUBLE_EQ(skewness(std::span<const double>{}), 0.0);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(skewness(constant), 0.0);
}

}  // namespace
}  // namespace xbarlife
