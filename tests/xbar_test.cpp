#include "xbar/crossbar.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/matmul.hpp"

namespace xbarlife::xbar {
namespace {

device::DeviceParams dev() { return device::DeviceParams{}; }
aging::AgingParams ag() { return aging::AgingParams{}; }

TEST(Crossbar, ConstructionAndFreshState) {
  Crossbar xb(4, 3, dev(), ag());
  EXPECT_EQ(xb.rows(), 4u);
  EXPECT_EQ(xb.cols(), 3u);
  EXPECT_EQ(xb.total_pulses(), 0u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(xb.cell(r, c).resistance(), dev().r_max_fresh);
    }
  }
}

TEST(Crossbar, ProgramCellUpdatesStateAndCounters) {
  Crossbar xb(3, 3, dev(), ag());
  const double achieved = xb.program_cell(1, 2, 5e4);
  EXPECT_DOUBLE_EQ(achieved, 5e4);
  EXPECT_DOUBLE_EQ(xb.cell(1, 2).resistance(), 5e4);
  EXPECT_EQ(xb.total_pulses(), 1u);
}

TEST(Crossbar, TrackerSeesRepresentativePulses) {
  Crossbar xb(3, 3, dev(), ag());
  xb.program_cell(1, 1, 5e4);  // representative
  xb.program_cell(0, 0, 5e4);  // untraced
  EXPECT_GT(xb.tracker().stress_estimate(1, 1), 0.0);
  EXPECT_EQ(xb.tracker().pulse_estimate(1, 1), 1u);
}

TEST(Crossbar, AmbientStressSharedAcrossCells) {
  aging::AgingParams a = ag();
  a.thermal_crosstalk = 0.1;  // exaggerated for visibility
  Crossbar xb(3, 3, dev(), a);
  xb.program_cell(0, 0, dev().r_min_fresh);
  EXPECT_GT(xb.ambient_stress(), 0.0);
  // An untouched cell feels the ambient stress.
  EXPECT_GT(xb.cell(2, 2).stress(), 0.0);
  EXPECT_DOUBLE_EQ(xb.cell(2, 2).own_stress(), 0.0);
}

TEST(Crossbar, TrackerEstimateMatchesCellTruthUnderCrosstalk) {
  aging::AgingParams a = ag();
  a.thermal_crosstalk = 0.05;  // exaggerated for visibility
  Crossbar xb(3, 3, dev(), a);
  // Known pattern: many pulses on the representative (1, 1), a few on an
  // untraced neighbour.
  for (int i = 0; i < 50; ++i) {
    xb.program_cell(1, 1, dev().r_min_fresh);
  }
  for (int i = 0; i < 20; ++i) {
    xb.program_cell(0, 0, dev().r_min_fresh);
  }
  // The representative's pulses are fully traced, so the tracker estimate
  // must equal the cell's effective stress exactly: own stress plus the
  // ambient pool minus its own exported crosstalk share. Before the
  // self-share fix the estimate (and the truth) both over-counted by
  // crosstalk * own_stress.
  EXPECT_DOUBLE_EQ(xb.tracker().stress_estimate(1, 1),
                   xb.cell(1, 1).stress());
  // Ground truth decomposition for a pulsed cell.
  const auto& rep = xb.cell(1, 1);
  EXPECT_NEAR(rep.stress(),
              rep.own_stress() +
                  (xb.ambient_stress() -
                   a.thermal_crosstalk * rep.own_stress()),
              1e-15);
  // An idle cell feels the full ambient pool.
  const auto& idle = xb.cell(2, 2);
  EXPECT_DOUBLE_EQ(idle.own_stress(), 0.0);
  EXPECT_DOUBLE_EQ(idle.stress(), xb.ambient_stress());
}

TEST(Crossbar, VmmMatchesDenseReference) {
  Crossbar xb(4, 3, dev(), ag());
  Rng rng(5);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      xb.program_cell(r, c, rng.uniform(1e4, 1e5));
    }
  }
  std::vector<float> v{0.5f, -0.25f, 1.0f, 0.0f};
  std::vector<float> out(3);
  xb.vmm(v, out);

  Tensor g = xb.conductances();
  Tensor vin(Shape{1, 4}, std::vector<float>(v));
  Tensor expected = matmul(vin, g);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(out[c], expected.at(0, c), 1e-9f);
  }
}

TEST(Crossbar, VmmSizeMismatchThrows) {
  Crossbar xb(2, 2, dev(), ag());
  std::vector<float> v(3);
  std::vector<float> out(2);
  EXPECT_THROW(xb.vmm(v, out), InvalidArgument);
}

TEST(Crossbar, ConductanceAndResistanceSnapshotsConsistent) {
  Crossbar xb(2, 2, dev(), ag());
  xb.program_cell(0, 0, 2e4);
  Tensor g = xb.conductances();
  Tensor r = xb.resistances();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(g[i] * r[i], 1.0f, 1e-5f);
  }
  EXPECT_NEAR(r.at(0, 0), 2e4f, 1.0f);
}

TEST(Crossbar, AgingStatsAggregate) {
  aging::AgingParams a = ag();
  a.thermal_crosstalk = 0.0;
  Crossbar xb(3, 3, dev(), a);
  for (int i = 0; i < 100; ++i) {
    xb.program_cell(0, 0, dev().r_min_fresh);
  }
  const CrossbarAgingStats s = xb.aging_stats();
  EXPECT_EQ(s.total_pulses, 100u);
  EXPECT_GT(s.max_stress, 0.0);
  EXPECT_GT(s.mean_stress, 0.0);
  EXPECT_LT(s.mean_stress, s.max_stress);
  EXPECT_LT(s.min_aged_r_max, dev().r_max_fresh);
  EXPECT_LE(static_cast<double>(s.min_usable_levels),
            s.mean_usable_levels);
}

TEST(Crossbar, DriftCellDoesNotPulse) {
  Crossbar xb(2, 2, dev(), ag());
  xb.drift_cell(0, 0, 3e4);
  EXPECT_DOUBLE_EQ(xb.cell(0, 0).resistance(), 3e4);
  EXPECT_EQ(xb.total_pulses(), 0u);
}

TEST(Crossbar, RejectsOutOfRangeAccess) {
  Crossbar xb(2, 2, dev(), ag());
  EXPECT_THROW(xb.cell(2, 0), InvalidArgument);
  EXPECT_THROW(xb.program_cell(0, 2, 5e4), InvalidArgument);
  EXPECT_THROW(Crossbar(0, 2, dev(), ag()), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::xbar
