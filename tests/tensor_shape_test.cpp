#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife {
namespace {

TEST(Shape, RankAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, Numel) {
  EXPECT_EQ((Shape{2, 3, 4}).numel(), 24u);
  EXPECT_EQ((Shape{5}).numel(), 5u);
  EXPECT_EQ(Shape{}.numel(), 1u);  // rank-0 scalar
  EXPECT_EQ((Shape{0, 4}).numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, RowMajorStrides) {
  const auto strides = Shape{2, 3, 4}.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12u);
  EXPECT_EQ(strides[1], 4u);
  EXPECT_EQ(strides[2], 1u);
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(Shape, AxisOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), InvalidArgument);
}

TEST(Shape, VectorConstructor) {
  std::vector<std::size_t> dims{4, 5};
  Shape s(dims);
  EXPECT_EQ(s.numel(), 20u);
  EXPECT_EQ(s.dims(), dims);
}

}  // namespace
}  // namespace xbarlife
