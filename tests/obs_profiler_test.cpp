// Unit tests for the span profiler, the ObsFork context propagation
// helper, and the Perfetto trace_event exporter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/fork.hpp"
#include "obs/obs.hpp"
#include "obs/perfetto.hpp"
#include "obs/profiler.hpp"
#include "obs/sink.hpp"

namespace xbarlife::obs {
namespace {

TEST(Profiler, NestsSpansAndRecordsPreorder) {
  Profiler prof;
  const std::size_t root = prof.begin_span("root");
  const std::size_t child = prof.begin_span("child");
  const std::size_t grand = prof.begin_span("grandchild");
  prof.end_span(grand);
  prof.end_span(child);
  const std::size_t sibling = prof.begin_span("sibling");
  prof.end_span(sibling);
  prof.end_span(root);

  const auto& recs = prof.records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[root].name, "root");
  EXPECT_EQ(recs[root].parent, kNoSpan);
  EXPECT_EQ(recs[root].depth, 0u);
  EXPECT_EQ(recs[child].parent, root);
  EXPECT_EQ(recs[child].depth, 1u);
  EXPECT_EQ(recs[grand].parent, child);
  EXPECT_EQ(recs[grand].depth, 2u);
  EXPECT_EQ(recs[sibling].parent, root);
  for (const SpanRecord& rec : recs) {
    EXPECT_FALSE(rec.open);
    EXPECT_GE(rec.dur_ms, 0.0);
  }
  EXPECT_FALSE(prof.has_open_span());
}

TEST(Profiler, EndSpanOutOfOrderThrows) {
  Profiler prof;
  const std::size_t outer = prof.begin_span("outer");
  prof.begin_span("inner");
  EXPECT_THROW(prof.end_span(outer), Error);
}

TEST(Profiler, CountersAttachToInnermostOpenSpan) {
  Profiler prof;
  const std::size_t outer = prof.begin_span("outer");
  prof.add_counter("pulses", 5);
  const std::size_t inner = prof.begin_span("inner");
  prof.add_counter("pulses", 7);
  prof.add_counter("pulses", 1);
  prof.add_counter("iters", 2);
  prof.end_span(inner);
  prof.add_counter("pulses", 3);
  prof.end_span(outer);

  const auto& recs = prof.records();
  ASSERT_EQ(recs[inner].counters.size(), 2u);
  EXPECT_EQ(recs[inner].counters[0].first, "pulses");
  EXPECT_EQ(recs[inner].counters[0].second, 8u);
  EXPECT_EQ(recs[inner].counters[1].first, "iters");
  EXPECT_EQ(recs[inner].counters[1].second, 2u);
  ASSERT_EQ(recs[outer].counters.size(), 1u);
  EXPECT_EQ(recs[outer].counters[0].second, 8u);
}

TEST(Profiler, CounterWithNoOpenSpanIsDropped) {
  Profiler prof;
  prof.add_counter("orphan", 1);
  EXPECT_EQ(prof.span_count(), 0u);
}

TEST(Profiler, AdoptReparentsUnderOpenSpanOnNewTrack) {
  Profiler child;
  const std::size_t croot = child.begin_span("job_work");
  child.add_counter("pulses", 4);
  const std::size_t cinner = child.begin_span("job_inner");
  child.end_span(cinner);
  child.end_span(croot);

  Profiler parent;
  const std::size_t proot = parent.begin_span("sweep");
  parent.adopt(child, "T+T/r0");
  parent.end_span(proot);

  const auto& recs = parent.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[1].name, "job_work");
  EXPECT_EQ(recs[1].parent, proot);
  EXPECT_EQ(recs[1].depth, 1u);
  EXPECT_EQ(recs[1].track, 1u);
  EXPECT_EQ(recs[2].name, "job_inner");
  EXPECT_EQ(recs[2].parent, 1u);
  EXPECT_EQ(recs[2].depth, 2u);
  ASSERT_EQ(parent.track_names().size(), 2u);
  EXPECT_EQ(parent.track_names()[0], "main");
  EXPECT_EQ(parent.track_names()[1], "T+T/r0");
}

TEST(Profiler, AdoptWithOpenChildSpanThrows) {
  Profiler child;
  child.begin_span("still_open");
  Profiler parent;
  EXPECT_THROW(parent.adopt(child, "job"), Error);
}

TEST(Profiler, ReportAggregatesByNameSorted) {
  Profiler prof;
  const std::size_t a = prof.begin_span("beta");
  prof.add_counter("pulses", 2);
  prof.end_span(a);
  const std::size_t b = prof.begin_span("alpha");
  prof.end_span(b);
  const std::size_t c = prof.begin_span("beta");
  prof.add_counter("pulses", 3);
  prof.end_span(c);

  const std::string skeleton = prof.report_json(false).dump();
  EXPECT_EQ(skeleton,
            "{\"span_count\":3,\"spans\":["
            "{\"name\":\"alpha\",\"count\":1,\"counters\":{}},"
            "{\"name\":\"beta\",\"count\":2,"
            "\"counters\":{\"pulses\":5}}]}");
  // With times, the same skeleton gains total_ms/self_ms per span.
  const std::string timed = prof.report_json(true).dump();
  EXPECT_NE(timed.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(timed.find("\"self_ms\":"), std::string::npos);
}

TEST(ContentAddress, IsStableAndHex) {
  const std::string id = content_address("/cmd.lifetime#0");
  EXPECT_EQ(id, content_address("/cmd.lifetime#0"));
  EXPECT_EQ(id.size(), 16u);
  for (const char ch : id) {
    EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'));
  }
  EXPECT_NE(id, content_address("/cmd.lifetime#1"));
}

TEST(Perfetto, EmitsMetadataAndCompleteEvents) {
  Profiler prof;
  const std::size_t root = prof.begin_span("session");
  const std::size_t tune = prof.begin_span("tune");
  prof.add_counter("pulses", 9);
  prof.end_span(tune);
  prof.end_span(root);

  const JsonValue doc = perfetto_trace_json(prof, "unit-test");
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"schema\":\"xbarlife.profile.v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"tool\":\"unit-test\""), std::string::npos);
  EXPECT_NE(text.find("\"span_count\":2"), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  // Content-addressed ids derive from the span paths.
  EXPECT_NE(
      text.find("\"id\":\"" + content_address("/session#0") + "\""),
      std::string::npos);
  EXPECT_NE(text.find("\"id\":\"" +
                      content_address("/session#0/tune#0") + "\""),
            std::string::npos);
  // Counters ride along in args next to the path.
  EXPECT_NE(text.find("\"pulses\":9"), std::string::npos);
}

TEST(Span, RecordsHistogramTraceAndProfilerSpan) {
  Registry reg;
  MemorySink sink;
  EventTrace trace(&sink);
  Profiler prof;
  const Obs obs{&reg, &trace, &prof};
  {
    const Span span(obs, "phase");
    obs.count("pulses", 3);
  }
  EXPECT_EQ(reg.histogram("phase_ms").count(), 1u);
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_NE(sink.lines()[0].find("\"event\":\"span_begin\""),
            std::string::npos);
  EXPECT_NE(sink.lines()[0].find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(sink.lines()[1].find("\"event\":\"span_end\""),
            std::string::npos);
  EXPECT_NE(sink.lines()[1].find("\"wall_ms\":"), std::string::npos);
  ASSERT_EQ(prof.span_count(), 1u);
  EXPECT_EQ(prof.records()[0].name, "phase");
  ASSERT_EQ(prof.records()[0].counters.size(), 1u);
  EXPECT_EQ(prof.records()[0].counters[0].second, 3u);
}

// The old ScopeTimer gap: with only a trace attached (no metrics), timer
// scopes must still leave a record.
TEST(Span, TraceOnlyRunRecordsSpanEvents) {
  MemorySink sink;
  EventTrace trace(&sink);
  const Obs obs{nullptr, &trace, nullptr};
  { const ScopeTimer timer(obs, "tuning.session"); }
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_NE(sink.lines()[0].find("span_begin"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find("span_end"), std::string::npos);
}

TEST(ObsFork, DisabledParentForksDisabledChildren) {
  ObsFork fork({}, {"a", "b"});
  EXPECT_EQ(fork.size(), 2u);
  EXPECT_FALSE(fork.job(0).enabled());
  std::size_t calls = 0;
  fork.merge_into([&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 2u);
}

TEST(ObsFork, MirrorsParentSinksAndMergesInJobOrder) {
  Registry reg;
  MemorySink sink;
  EventTrace trace(&sink);
  Profiler prof;
  const std::size_t root = prof.begin_span("sweep");
  const Obs parent{&reg, &trace, &prof};

  ObsFork fork(parent, {"job0", "job1"});
  // Write in reverse order to prove the merge is by index, not by
  // completion time.
  for (const std::size_t i : {1u, 0u}) {
    const Obs job = fork.job(i);
    EXPECT_TRUE(job.metrics_enabled());
    EXPECT_TRUE(job.trace_enabled());
    EXPECT_TRUE(job.profile_enabled());
    const Span span(job, "work");
    job.count("done");
    job.event("marker", {{"index", i}});
  }
  std::vector<std::size_t> order;
  fork.merge_into([&](std::size_t i) { order.push_back(i); });
  prof.end_span(root);

  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(reg.counter("done").value(), 2u);
  // Trace lines splice job0's buffer before job1's, each with its
  // context field.
  ASSERT_EQ(sink.lines().size(), 6u);
  EXPECT_NE(sink.lines()[0].find("\"job\":\"job0\""), std::string::npos);
  EXPECT_NE(sink.lines()[3].find("\"job\":\"job1\""), std::string::npos);
  // Profiler: root + one adopted span per job, on per-job tracks.
  ASSERT_EQ(prof.span_count(), 3u);
  EXPECT_EQ(prof.records()[1].parent, root);
  EXPECT_EQ(prof.records()[2].parent, root);
  ASSERT_EQ(prof.track_names().size(), 3u);
  EXPECT_EQ(prof.track_names()[1], "job0");
  EXPECT_EQ(prof.track_names()[2], "job1");
}

TEST(ObsFork, MetricsOnlyParentForksMetricsOnlyChildren) {
  Registry reg;
  const Obs parent{&reg, nullptr, nullptr};
  ObsFork fork(parent, {"solo"});
  const Obs job = fork.job(0);
  EXPECT_TRUE(job.metrics_enabled());
  EXPECT_FALSE(job.trace_enabled());
  EXPECT_FALSE(job.profile_enabled());
  job.count("done");
  fork.merge_into();
  EXPECT_EQ(reg.counter("done").value(), 1u);
}

}  // namespace
}  // namespace xbarlife::obs
