// Tests of the Arrhenius aging functions (Eqs. (6)-(7), Fig. 4).
#include "aging/aging_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::aging {
namespace {

TEST(AgingParams, Validation) {
  AgingParams p;
  EXPECT_NO_THROW(p.validate());
  p.activation_energy_ev = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = AgingParams{};
  p.m_f = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = AgingParams{};
  p.thermal_crosstalk = 1.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(AgingModel, StressZeroForZeroWidthPulse) {
  AgingModel model({});
  EXPECT_DOUBLE_EQ(model.stress_increment(0.0, 300.0, 1e-5), 0.0);
}

TEST(AgingModel, StressIncreasesWithTemperature) {
  AgingModel model({});
  const double cold = model.stress_increment(1e-7, 280.0, 4e-5);
  const double ref = model.stress_increment(1e-7, 300.0, 4e-5);
  const double hot = model.stress_increment(1e-7, 350.0, 4e-5);
  EXPECT_LT(cold, ref);
  EXPECT_LT(ref, hot);
}

TEST(AgingModel, StressAtReferenceConditionsEqualsPulseWidth) {
  AgingParams p;
  AgingModel model(p);
  const double ds = model.stress_increment(1e-7, p.reference_temp_k,
                                           p.reference_current_a);
  EXPECT_NEAR(ds, 1e-7, 1e-12);
}

TEST(AgingModel, StressScalesWithCurrentPower) {
  AgingParams p;
  p.current_exponent = 2.0;
  AgingModel model(p);
  const double base = model.stress_increment(1e-7, p.reference_temp_k,
                                             p.reference_current_a);
  const double doubled = model.stress_increment(
      1e-7, p.reference_temp_k, 2.0 * p.reference_current_a);
  EXPECT_NEAR(doubled / base, 4.0, 1e-9);
}

TEST(AgingModel, WindowShrinksMonotonicallyFromBothEnds) {
  AgingModel model({});
  double prev_max = 1e5;
  double prev_min = 1e4;
  for (double s : {1e-6, 1e-5, 1e-4, 1e-3}) {
    const AgedWindow w = model.aged_window(1e4, 1e5, s);
    EXPECT_LE(w.r_max, prev_max);
    EXPECT_LE(w.r_min, prev_min);
    prev_max = w.r_max;
    prev_min = w.r_min;
  }
}

TEST(AgingModel, UpperBoundDegradesFasterThanLower) {
  // Eq. (6) vs Eq. (7): a_f >> a_g, matching the paper's observation that
  // original lower bounds remain inside the aged range.
  AgingModel model({});
  const AgedWindow w = model.aged_window(1e4, 1e5, 1e-5);
  EXPECT_LT(1e5 - w.r_max, 1e5 - 1e4);  // not fully collapsed
  EXPECT_GT(1e5 - w.r_max, 10.0 * (1e4 - w.r_min));
}

TEST(AgingModel, FreshWindowAtZeroStress) {
  AgingModel model({});
  const AgedWindow w = model.aged_window(1e4, 1e5, 0.0);
  EXPECT_DOUBLE_EQ(w.r_min, 1e4);
  EXPECT_DOUBLE_EQ(w.r_max, 1e5);
  EXPECT_TRUE(w.usable());
}

TEST(AgingModel, FloorIsRespected) {
  AgingParams p;
  p.a_f = 1e12;
  AgingModel model(p);
  EXPECT_DOUBLE_EQ(model.aged_r_max(1e5, 1.0), p.r_floor);
  EXPECT_DOUBLE_EQ(model.aged_r_min(1e4, 1.0), p.r_floor);
}

TEST(AgingModel, UsableLevelsFig4Collapse) {
  // Fig. 4's story: 8 fresh levels collapse as stress accumulates, the
  // top levels disappearing first.
  AgingModel model({});
  EXPECT_EQ(model.usable_levels(1e4, 1e5, 8, 0.0), 8u);
  std::size_t prev = 8;
  for (double s : {1e-5, 5e-5, 2e-4, 1e-3}) {
    const std::size_t now = model.usable_levels(1e4, 1e5, 8, s);
    EXPECT_LE(now, prev);
    prev = now;
  }
  EXPECT_LT(prev, 8u);
}

TEST(AgingModel, UsableLevelsZeroWhenWindowDead) {
  AgingParams p;
  p.a_f = 1e12;
  p.a_g = 1e12;
  AgingModel model(p);
  // Both bounds at the floor: window span is zero -> no usable interval.
  EXPECT_EQ(model.usable_levels(1e4, 1e5, 8, 1.0), 0u);
}

TEST(AgingModel, RejectsInvalidQueries) {
  AgingModel model({});
  EXPECT_THROW(model.stress_increment(-1.0, 300.0, 1e-5), InvalidArgument);
  EXPECT_THROW(model.stress_increment(1e-7, -1.0, 1e-5), InvalidArgument);
  EXPECT_THROW(model.aged_r_max(1e5, -1.0), InvalidArgument);
  EXPECT_THROW(model.aged_window(1e5, 1e4, 0.0), InvalidArgument);
  EXPECT_THROW(model.usable_levels(1e4, 1e5, 1, 0.0), InvalidArgument);
}

// Property sweep: for any temperature above reference and any current
// above reference, stress must exceed the pulse width; below both, it
// must be smaller.
class ArrheniusSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ArrheniusSweep, AccelerationOrdering) {
  const auto [temp, current_scale] = GetParam();
  AgingParams p;
  AgingModel model(p);
  const double ds = model.stress_increment(
      1e-7, temp, current_scale * p.reference_current_a);
  if (temp >= p.reference_temp_k && current_scale >= 1.0) {
    EXPECT_GE(ds, 1e-7 * 0.999);
  }
  if (temp <= p.reference_temp_k && current_scale <= 1.0) {
    EXPECT_LE(ds, 1e-7 * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, ArrheniusSweep,
    ::testing::Values(std::make_pair(300.0, 1.0), std::make_pair(320.0, 1.0),
                      std::make_pair(300.0, 2.0), std::make_pair(350.0, 4.0),
                      std::make_pair(280.0, 1.0), std::make_pair(300.0, 0.5),
                      std::make_pair(270.0, 0.25)));

}  // namespace
}  // namespace xbarlife::aging
