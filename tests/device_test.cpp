#include "device/memristor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::device {
namespace {

aging::AgingModel default_model() { return aging::AgingModel({}); }

TEST(DeviceParams, Validation) {
  DeviceParams p;
  EXPECT_NO_THROW(p.validate());
  p.r_min_fresh = -1.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = DeviceParams{};
  p.r_max_fresh = p.r_min_fresh;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = DeviceParams{};
  p.levels = 1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = DeviceParams{};
  p.compliance_current_a = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(DeviceParams, ConductanceBounds) {
  DeviceParams p;
  EXPECT_DOUBLE_EQ(p.g_min(), 1.0 / p.r_max_fresh);
  EXPECT_DOUBLE_EQ(p.g_max(), 1.0 / p.r_min_fresh);
}

TEST(Memristor, PowersUpAtHrs) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  EXPECT_DOUBLE_EQ(m.resistance(), p.r_max_fresh);
  EXPECT_EQ(m.pulse_count(), 0u);
  EXPECT_DOUBLE_EQ(m.stress(), 0.0);
}

TEST(Memristor, ProgramSetsResistanceWithinFreshWindow) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  const double achieved = m.program(50e3);
  EXPECT_DOUBLE_EQ(achieved, 50e3);
  EXPECT_DOUBLE_EQ(m.resistance(), 50e3);
  EXPECT_EQ(m.pulse_count(), 1u);
  EXPECT_GT(m.stress(), 0.0);
}

TEST(Memristor, ProgramClampsBelowAgedRMax) {
  DeviceParams p;
  aging::AgingParams ap;
  ap.a_f = 1e9;  // aggressive so one pulse visibly ages
  ap.thermal_crosstalk = 0.0;
  aging::AgingModel model(ap);
  Memristor m(&p, &model);
  // Burn stress with low-resistance (high-current) pulses.
  for (int i = 0; i < 200; ++i) {
    m.program(p.r_min_fresh);
  }
  const double aged_max = m.aged_window().r_max;
  ASSERT_LT(aged_max, p.r_max_fresh);
  const double achieved = m.program(p.r_max_fresh);
  EXPECT_LE(achieved, aged_max * (1.0 + 1e-9));
}

TEST(Memristor, StressMonotoneAndPulsesCount) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  double prev = 0.0;
  for (int i = 1; i <= 10; ++i) {
    m.program(30e3);
    EXPECT_GT(m.stress(), prev);
    prev = m.stress();
    EXPECT_EQ(m.pulse_count(), static_cast<std::uint64_t>(i));
  }
}

TEST(Memristor, HighCurrentAgesFasterThanLowCurrent) {
  DeviceParams p;
  auto model = default_model();
  Memristor hot(&p, &model);
  Memristor cold(&p, &model);
  for (int i = 0; i < 50; ++i) {
    hot.program(p.r_min_fresh);   // max current
    cold.program(p.r_max_fresh);  // min current
  }
  EXPECT_GT(hot.stress(), 5.0 * cold.stress());
  EXPECT_LT(hot.aged_window().r_max, cold.aged_window().r_max);
}

TEST(Memristor, ComplianceCapsStress) {
  DeviceParams capped;
  capped.compliance_current_a = 5e-5;
  DeviceParams uncapped;
  uncapped.compliance_current_a = 1.0;
  auto model = default_model();
  Memristor a(&capped, &model);
  Memristor b(&uncapped, &model);
  a.program(capped.r_min_fresh);
  b.program(uncapped.r_min_fresh);
  EXPECT_LT(a.last_stress_increment(), b.last_stress_increment());
}

TEST(Memristor, DriftDoesNotAgeOrPulse) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  m.program(40e3);
  const double stress = m.stress();
  const auto pulses = m.pulse_count();
  m.drift_to(45e3);
  EXPECT_DOUBLE_EQ(m.resistance(), 45e3);
  EXPECT_DOUBLE_EQ(m.stress(), stress);
  EXPECT_EQ(m.pulse_count(), pulses);
}

TEST(Memristor, DriftClampsIntoAgedWindow) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  m.drift_to(1e9);
  EXPECT_LE(m.resistance(), p.r_max_fresh);
  m.drift_to(1.0);
  EXPECT_GE(m.resistance(), m.aged_window().r_min);
}

TEST(Memristor, UsableLevelsShrinkWithAging) {
  DeviceParams p;
  p.levels = 16;
  aging::AgingParams ap;
  ap.thermal_crosstalk = 0.0;
  aging::AgingModel model(ap);
  Memristor m(&p, &model);
  const std::size_t fresh_levels = m.usable_levels();
  EXPECT_EQ(fresh_levels, 16u);
  for (int i = 0; i < 400; ++i) {
    m.program(p.r_min_fresh);
  }
  EXPECT_LT(m.usable_levels(), fresh_levels);
}

TEST(Memristor, AmbientStressSharedPointer) {
  DeviceParams p;
  auto model = default_model();
  double ambient = 0.0;
  Memristor m(&p, &model, &ambient);
  EXPECT_DOUBLE_EQ(m.stress(), 0.0);
  ambient = 1e-4;
  EXPECT_DOUBLE_EQ(m.stress(), 1e-4);
  EXPECT_DOUBLE_EQ(m.own_stress(), 0.0);
}

TEST(Memristor, ReadDoesNotAge) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  m.program(20e3);
  const double stress = m.stress();
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(m.read_conductance(), 1.0 / 20e3, 1e-12);
  }
  EXPECT_DOUBLE_EQ(m.stress(), stress);
}

TEST(Memristor, RejectsNonPositiveTargets) {
  DeviceParams p;
  auto model = default_model();
  Memristor m(&p, &model);
  EXPECT_THROW(m.program(0.0), InvalidArgument);
  EXPECT_THROW(m.drift_to(-5.0), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::device
