// Eq. (4) weight <-> conductance transfer tests.
#include "mapping/linear_map.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::mapping {
namespace {

TEST(WeightRangeOf, FindsExtremes) {
  Tensor w(Shape{4}, std::vector<float>{-0.5f, 0.2f, 1.5f, -0.1f});
  const WeightRange r = weight_range_of(w);
  EXPECT_FLOAT_EQ(static_cast<float>(r.w_min), -0.5f);
  EXPECT_FLOAT_EQ(static_cast<float>(r.w_max), 1.5f);
  EXPECT_NEAR(r.span(), 2.0, 1e-6);
}

TEST(LinearMap, EndpointsMapToConductanceBounds) {
  LinearMap map({-1.0, 1.0}, 1e-5, 1e-4);
  EXPECT_DOUBLE_EQ(map.weight_to_conductance(-1.0), 1e-5);
  EXPECT_DOUBLE_EQ(map.weight_to_conductance(1.0), 1e-4);
}

TEST(LinearMap, MidpointMapsToMidConductance) {
  LinearMap map({-1.0, 1.0}, 1e-5, 1e-4);
  EXPECT_NEAR(map.weight_to_conductance(0.0), 5.5e-5, 1e-12);
}

TEST(LinearMap, RoundtripIsIdentityInsideRange) {
  LinearMap map({-0.7, 1.3}, 1e-5, 1e-4);
  for (double w : {-0.7, -0.2, 0.0, 0.55, 1.3}) {
    EXPECT_NEAR(map.conductance_to_weight(map.weight_to_conductance(w)), w,
                1e-12);
  }
}

TEST(LinearMap, ClampsOutOfRangeInputs) {
  LinearMap map({-1.0, 1.0}, 1e-5, 1e-4);
  EXPECT_DOUBLE_EQ(map.weight_to_conductance(-5.0), 1e-5);
  EXPECT_DOUBLE_EQ(map.weight_to_conductance(5.0), 1e-4);
  EXPECT_DOUBLE_EQ(map.conductance_to_weight(1e-6), -1.0);
  EXPECT_DOUBLE_EQ(map.conductance_to_weight(1.0), 1.0);
}

TEST(LinearMap, DegenerateWeightRangeMapsToGmin) {
  LinearMap map({0.5, 0.5}, 1e-5, 1e-4);
  EXPECT_DOUBLE_EQ(map.weight_to_conductance(0.5), 1e-5);
  EXPECT_DOUBLE_EQ(map.conductance_to_weight(5e-5), 0.5);
}

TEST(LinearMap, MonotoneIncreasing) {
  LinearMap map({-2.0, 3.0}, 2e-5, 8e-5);
  double prev = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double w = -2.0 + 5.0 * i / 20.0;
    const double g = map.weight_to_conductance(w);
    if (i > 0) {
      EXPECT_GT(g, prev);
    }
    prev = g;
  }
}

TEST(LinearMap, RejectsInvalidConstruction) {
  EXPECT_THROW(LinearMap({0.0, 1.0}, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(LinearMap({0.0, 1.0}, 1e-4, 1e-5), InvalidArgument);
  EXPECT_THROW(LinearMap({1.0, 0.0}, 1e-5, 1e-4), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::mapping
