#include "aging/tracker.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::aging {
namespace {

TEST(Tracker, BlockGeometry) {
  RepresentativeTracker t(9, 9);
  EXPECT_EQ(t.block_rows(), 3u);
  EXPECT_EQ(t.block_cols(), 3u);
  // Centers of each full 3x3 block are representatives.
  EXPECT_TRUE(t.is_representative(1, 1));
  EXPECT_TRUE(t.is_representative(4, 4));
  EXPECT_TRUE(t.is_representative(7, 1));
  EXPECT_FALSE(t.is_representative(0, 0));
  EXPECT_FALSE(t.is_representative(2, 2));
}

TEST(Tracker, OneOfNineCoverage) {
  RepresentativeTracker t(9, 9);
  std::size_t reps = 0;
  for (std::size_t r = 0; r < 9; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      reps += t.is_representative(r, c) ? 1u : 0u;
    }
  }
  EXPECT_EQ(reps, 9u);  // exactly 1 of 9
}

TEST(Tracker, EveryCellHasARepresentative) {
  RepresentativeTracker t(10, 7);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      const auto [rr, rc] = t.representative_for(r, c);
      EXPECT_LT(rr, 10u);
      EXPECT_LT(rc, 7u);
      EXPECT_TRUE(t.is_representative(rr, rc));
      // Representative is in the same 3x3 block.
      EXPECT_EQ(rr / 3, r / 3);
      EXPECT_EQ(rc / 3, c / 3);
    }
  }
}

TEST(Tracker, EdgeBlocksClampRepresentative) {
  RepresentativeTracker t(4, 4);  // bottom/right blocks are partial
  const auto [rr, rc] = t.representative_for(3, 3);
  EXPECT_EQ(rr, 3u);
  EXPECT_EQ(rc, 3u);
  EXPECT_TRUE(t.is_representative(3, 3));
}

TEST(Tracker, RecordsOnlyRepresentativePulses) {
  RepresentativeTracker t(6, 6);
  t.record_pulse(0, 0, 1.0);  // untraced
  EXPECT_DOUBLE_EQ(t.stress_estimate(0, 0), 0.0);
  EXPECT_EQ(t.pulse_estimate(0, 0), 0u);
  t.record_pulse(1, 1, 2.0);  // representative of block (0,0)
  EXPECT_DOUBLE_EQ(t.stress_estimate(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.stress_estimate(2, 2), 2.0);  // same block
  EXPECT_DOUBLE_EQ(t.stress_estimate(3, 3), 0.0);  // other block
  EXPECT_EQ(t.pulse_estimate(1, 1), 1u);
}

TEST(Tracker, AmbientIsAlwaysAccumulated) {
  RepresentativeTracker t(6, 6);
  t.record_pulse(0, 0, 1.0, 0.5);  // untraced cell still heats the array
  EXPECT_DOUBLE_EQ(t.ambient_stress(), 0.5);
  EXPECT_DOUBLE_EQ(t.stress_estimate(0, 0), 0.5);
  t.record_pulse(1, 1, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(t.ambient_stress(), 0.75);
  // The representative's own 0.25 export is excluded from its estimate:
  // its local heating is already inside the 2.0 of traced stress.
  EXPECT_DOUBLE_EQ(t.stress_estimate(1, 1), 2.0 + 0.5);
  // A different block has no traced stress and no self-share: it sees the
  // full ambient pool.
  EXPECT_DOUBLE_EQ(t.stress_estimate(4, 4), 0.75);
}

TEST(Tracker, RepresentativeSelfShareNotDoubleCounted) {
  RepresentativeTracker t(3, 3);
  // 10 pulses on the representative, each exporting 10% to the ambient
  // pool. Ground truth for the rep cell: own stress only (its crosstalk
  // export is its own heat, not extra damage).
  for (int i = 0; i < 10; ++i) {
    t.record_pulse(1, 1, 1.0, 0.1);
  }
  EXPECT_DOUBLE_EQ(t.ambient_stress(), 1.0);
  EXPECT_DOUBLE_EQ(t.stress_estimate(1, 1), 10.0);
  const auto windows = t.estimated_windows(AgingModel({}), 1e4, 1e5);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_NEAR(windows[0].r_max, AgingModel({}).aged_r_max(1e5, 10.0),
              1e-9);
}

TEST(Tracker, EstimatedWindowsUseModel) {
  RepresentativeTracker t(3, 3);
  AgingModel model({});
  t.record_pulse(1, 1, 1e-4);
  const auto windows = t.estimated_windows(model, 1e4, 1e5);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_LT(windows[0].r_max, 1e5);
  EXPECT_NEAR(windows[0].r_max, model.aged_r_max(1e5, 1e-4), 1e-9);
}

TEST(Tracker, ResetClearsEverything) {
  RepresentativeTracker t(3, 3);
  t.record_pulse(1, 1, 1.0, 0.1);
  t.reset();
  EXPECT_DOUBLE_EQ(t.stress_estimate(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.ambient_stress(), 0.0);
  EXPECT_EQ(t.pulse_estimate(1, 1), 0u);
}

TEST(Tracker, RepresentativeStressesSizeMatchesBlocks) {
  RepresentativeTracker t(10, 10);  // 4x4 blocks
  EXPECT_EQ(t.representative_stresses().size(), 16u);
}

TEST(Tracker, RejectsInvalidInput) {
  EXPECT_THROW(RepresentativeTracker(0, 5), InvalidArgument);
  RepresentativeTracker t(3, 3);
  EXPECT_THROW(t.record_pulse(5, 0, 1.0), InvalidArgument);
  EXPECT_THROW(t.record_pulse(1, 1, -1.0), InvalidArgument);
}

TEST(Tracker, SingleCellArray) {
  RepresentativeTracker t(1, 1);
  EXPECT_TRUE(t.is_representative(0, 0));
  t.record_pulse(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(t.stress_estimate(0, 0), 3.0);
}

}  // namespace
}  // namespace xbarlife::aging
