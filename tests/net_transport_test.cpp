// Transport and wire-protocol contract tests: pipe-pair semantics
// (delivery, timeouts, drain-on-close), frame round-trips and every
// integrity failure read_frame must reject, fault-plan parsing, the
// deterministic fault schedules chaos tests rely on, and the TCP / unix
// socket listeners.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/faulty.hpp"
#include "net/wire.hpp"

namespace xbarlife::net {
namespace {

using namespace std::chrono_literals;

std::string recv_string(Transport& t, std::size_t n,
                        std::chrono::milliseconds timeout = 1000ms) {
  std::string out(n, '\0');
  t.recv_exact(out.data(), n, timeout);
  return out;
}

TEST(PipeTransport, DeliversBytesInOrderAcrossThreads) {
  auto [a, b] = make_pipe();
  a->send("hello ");
  a->send("world");
  EXPECT_EQ(recv_string(*b, 11), "hello world");

  std::thread writer([&] { b->send("pong"); });
  EXPECT_EQ(recv_string(*a, 4), "pong");
  writer.join();
}

TEST(PipeTransport, RecvTimesOutPreservingPartialData) {
  auto [a, b] = make_pipe();
  a->send("abc");
  // Asking for more than is buffered times out...
  EXPECT_THROW(recv_string(*b, 5, 20ms), TransportTimeout);
  // ...but the 3 buffered bytes are not lost: once the rest arrives the
  // next read delivers the full run, in order.
  a->send("de");
  EXPECT_EQ(recv_string(*b, 5), "abcde");
}

TEST(PipeTransport, CloseDrainsBufferedBytesThenFails) {
  auto [a, b] = make_pipe();
  a->send("tail");
  a->close();
  // Buffered bytes survive the close; reading past them reports the
  // broken connection, and sending on a closed pipe fails immediately.
  EXPECT_EQ(recv_string(*b, 4), "tail");
  EXPECT_THROW(recv_string(*b, 1, 20ms), TransportError);
  EXPECT_THROW(b->send("x"), TransportError);
}

// ---------------------------------------------------------------------------
// Wire framing.

TEST(Wire, FrameRoundTripsThroughPipe) {
  auto [a, b] = make_pipe();
  const std::string payload = "program sequence bytes \x00\x01\x7f";
  write_frame(*a, MsgType::kExecute, 42, payload);
  const Frame f = read_frame(*b, 1000ms);
  EXPECT_EQ(f.type, MsgType::kExecute);
  EXPECT_EQ(f.seq_id, 42u);
  EXPECT_EQ(f.payload, payload);

  write_frame(*b, MsgType::kHeartbeatAck, 7);
  const Frame hb = read_frame(*a, 1000ms);
  EXPECT_EQ(hb.type, MsgType::kHeartbeatAck);
  EXPECT_EQ(hb.seq_id, 7u);
  EXPECT_TRUE(hb.payload.empty());
}

TEST(Wire, MsgTypeNamesAreStable) {
  EXPECT_STREQ(to_string(MsgType::kHello), "hello");
  EXPECT_STREQ(to_string(MsgType::kExecute), "execute");
  EXPECT_STREQ(to_string(MsgType::kShutdown), "shutdown");
}

TEST(Wire, RejectsBadMagic) {
  auto [a, b] = make_pipe();
  std::string frame = encode_frame(MsgType::kHello, 1, "x");
  frame[0] = 'Z';
  a->send(frame);
  EXPECT_THROW(read_frame(*b, 1000ms), WireError);
}

TEST(Wire, RejectsUnknownVersionAndType) {
  {
    auto [a, b] = make_pipe();
    std::string frame = encode_frame(MsgType::kHello, 1, "");
    frame[4] = 99;  // version byte
    a->send(frame);
    EXPECT_THROW(read_frame(*b, 1000ms), WireError);
  }
  {
    auto [a, b] = make_pipe();
    std::string frame = encode_frame(MsgType::kHello, 1, "");
    frame[5] = 200;  // type byte outside [kHello, kShutdown]
    a->send(frame);
    EXPECT_THROW(read_frame(*b, 1000ms), WireError);
  }
}

TEST(Wire, RejectsOversizedLengthPrefix) {
  auto [a, b] = make_pipe();
  std::string frame = encode_frame(MsgType::kExecute, 1, "abc");
  // Rewrite the length field (offset 16, LE u32) to an absurd value; the
  // reader must refuse before attempting the allocation.
  frame[16] = static_cast<char>(0xff);
  frame[17] = static_cast<char>(0xff);
  frame[18] = static_cast<char>(0xff);
  frame[19] = static_cast<char>(0x7f);
  a->send(frame);
  EXPECT_THROW(read_frame(*b, 1000ms), WireError);
}

TEST(Wire, RejectsCorruptPayload) {
  auto [a, b] = make_pipe();
  std::string frame = encode_frame(MsgType::kExecute, 9, "payload-bytes");
  frame[kFrameHeaderSize + 3] ^= 0x10;  // flip one payload bit
  a->send(frame);
  EXPECT_THROW(read_frame(*b, 1000ms), WireError);
}

TEST(Wire, TruncatedPayloadIsAFramingError) {
  auto [a, b] = make_pipe();
  const std::string frame = encode_frame(MsgType::kExecute, 5, "0123456789");
  // Header promises 10 payload bytes but only 4 ever arrive: the header
  // has been consumed, so the stream is desynced and the failure must be
  // WireError (reconnect), not a retryable timeout.
  a->send(frame.substr(0, kFrameHeaderSize + 4));
  EXPECT_THROW(read_frame(*b, 50ms), WireError);
}

// ---------------------------------------------------------------------------
// Fault plans.

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan p = FaultPlan::parse(
      "seed=7,drop=0.1,corrupt=0.05,dup=0.02,disconnect=0.01,delay_ms=1.5");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.drop, 0.1);
  EXPECT_DOUBLE_EQ(p.corrupt, 0.05);
  EXPECT_DOUBLE_EQ(p.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(p.disconnect, 0.01);
  EXPECT_DOUBLE_EQ(p.delay_ms, 1.5);
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan, EmptySpecIsTransparent) {
  const FaultPlan p = FaultPlan::parse("");
  EXPECT_FALSE(p.any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("drop"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), InvalidArgument);
}

TEST(FaultyTransport, ScheduleIsDeterministicPerSeedAndStream) {
  // Replay the same plan twice over fresh pipes: the injected-fault log
  // must match event for event. A different stream must diverge.
  const FaultPlan plan = FaultPlan::parse("seed=11,drop=0.3,corrupt=0.2");
  const auto run = [&](std::uint64_t stream) {
    auto [a, b] = make_pipe();
    FaultyTransport faulty(std::move(a), plan, stream);
    for (int i = 0; i < 64; ++i) {
      faulty.send("frame-" + std::to_string(i));
    }
    return faulty.log();
  };
  const FaultLog first = run(0);
  const FaultLog again = run(0);
  EXPECT_EQ(first.sent, 64u);
  EXPECT_EQ(first.dropped, again.dropped);
  EXPECT_EQ(first.corrupted, again.corrupted);
  EXPECT_GT(first.dropped + first.corrupted, 0u);

  const FaultLog other = run(1);
  EXPECT_TRUE(other.dropped != first.dropped ||
              other.corrupted != first.corrupted);
}

TEST(FaultyTransport, DropsSilentlyAndCorruptsDetectably) {
  // drop=1: every frame vanishes; the receiver sees nothing.
  {
    FaultPlan plan;
    plan.seed = 3;
    plan.drop = 1.0;
    auto [a, b] = make_pipe();
    FaultyTransport faulty(std::move(a), plan, 0);
    write_frame(faulty, MsgType::kHello, 1);
    EXPECT_EQ(faulty.log().dropped, 1u);
    EXPECT_THROW(read_frame(*b, 20ms), TransportTimeout);
  }
  // corrupt=1: every frame arrives damaged; the CRC/header checks throw.
  {
    FaultPlan plan;
    plan.seed = 3;
    plan.corrupt = 1.0;
    auto [a, b] = make_pipe();
    FaultyTransport faulty(std::move(a), plan, 0);
    write_frame(faulty, MsgType::kHello, 1, "payload");
    EXPECT_EQ(faulty.log().corrupted, 1u);
    EXPECT_THROW(read_frame(*b, 1000ms), WireError);
  }
}

TEST(FaultyTransport, DisconnectCutsTheLinkPermanently) {
  FaultPlan plan;
  plan.seed = 5;
  plan.disconnect = 1.0;
  auto [a, b] = make_pipe();
  FaultyTransport faulty(std::move(a), plan, 0);
  EXPECT_THROW(faulty.send("frame"), TransportError);
  EXPECT_EQ(faulty.log().disconnects, 1u);
  // The cut is permanent on both the wrapper and the peer.
  EXPECT_THROW(faulty.send("again"), TransportError);
  EXPECT_THROW(recv_string(*b, 1, 20ms), TransportError);
}

TEST(FaultyTransport, DuplicateDeliversTheFrameTwice) {
  FaultPlan plan;
  plan.seed = 9;
  plan.duplicate = 1.0;
  auto [a, b] = make_pipe();
  FaultyTransport faulty(std::move(a), plan, 0);
  write_frame(faulty, MsgType::kHeartbeat, 4);
  EXPECT_EQ(faulty.log().duplicated, 1u);
  const Frame f1 = read_frame(*b, 1000ms);
  const Frame f2 = read_frame(*b, 1000ms);
  EXPECT_EQ(f1.type, MsgType::kHeartbeat);
  EXPECT_EQ(f2.type, MsgType::kHeartbeat);
  EXPECT_EQ(f1.seq_id, f2.seq_id);
}

TEST(FaultyTransport, MaybeWrapIsTransparentForEmptyPlan) {
  auto [a, b] = make_pipe();
  Transport* raw = a.get();
  auto wrapped = maybe_wrap_faulty(std::move(a), FaultPlan{}, 0);
  EXPECT_EQ(wrapped.get(), raw);  // no wrapper inserted

  FaultPlan plan;
  plan.drop = 0.5;
  auto faulty = maybe_wrap_faulty(std::move(b), plan, 0);
  EXPECT_NE(dynamic_cast<FaultyTransport*>(faulty.get()), nullptr);
}

// ---------------------------------------------------------------------------
// Socket transports.

void exchange_over(Listener& listener) {
  std::unique_ptr<Transport> client;
  std::thread dialer(
      [&] { client = dial(listener.address(), 2000ms); });
  std::unique_ptr<Transport> served = listener.accept(2000ms);
  dialer.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(served, nullptr);

  write_frame(*client, MsgType::kExecute, 77, "over the socket");
  const Frame f = read_frame(*served, 2000ms);
  EXPECT_EQ(f.type, MsgType::kExecute);
  EXPECT_EQ(f.seq_id, 77u);
  EXPECT_EQ(f.payload, "over the socket");

  write_frame(*served, MsgType::kExecuteResult, 77, "and back");
  EXPECT_EQ(read_frame(*client, 2000ms).payload, "and back");

  client->close();
  EXPECT_THROW(read_frame(*served, 2000ms), TransportError);
  served->close();
}

TEST(SocketTransport, TcpEphemeralPortRoundTrip) {
  const std::unique_ptr<Listener> listener = listen("127.0.0.1:0");
  // ":0" resolved to a real ephemeral port.
  EXPECT_EQ(listener->address().find("127.0.0.1:"), 0u);
  EXPECT_NE(listener->address(), "127.0.0.1:0");
  exchange_over(*listener);
  listener->close();
}

TEST(SocketTransport, UnixSocketRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "xbw_transport_test.sock";
  std::remove(path.c_str());
  const std::unique_ptr<Listener> listener = listen("unix:" + path);
  EXPECT_EQ(listener->address(), "unix:" + path);
  exchange_over(*listener);
  listener->close();
}

TEST(SocketTransport, AcceptTimesOutWithoutAClient) {
  const std::unique_ptr<Listener> listener = listen("127.0.0.1:0");
  EXPECT_THROW(listener->accept(20ms), TransportTimeout);
  listener->close();
}

TEST(SocketTransport, DialUnreachableThrowsTransportError) {
  // Port 1 is essentially never listening; a refused connection must be
  // TransportError (reconnectable), not a hang.
  EXPECT_THROW(dial("127.0.0.1:1", 500ms), TransportError);
  EXPECT_THROW(dial("not an address", 500ms), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::net
