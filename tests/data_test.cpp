#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace xbarlife::data {
namespace {

TEST(Dataset, ValidateCatchesInconsistencies) {
  Dataset ds;
  ds.classes = 2;
  ds.channels = 1;
  ds.height = 2;
  ds.width = 2;
  ds.images = Tensor(Shape{3, 4});
  ds.labels = {0, 1, 1};
  EXPECT_NO_THROW(ds.validate());
  ds.labels = {0, 1};  // count mismatch
  EXPECT_THROW(ds.validate(), InvalidArgument);
  ds.labels = {0, 1, 5};  // out-of-range label
  EXPECT_THROW(ds.validate(), InvalidArgument);
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  Dataset ds;
  ds.classes = 3;
  ds.channels = 1;
  ds.height = 1;
  ds.width = 2;
  ds.images = Tensor(Shape{3, 2}, std::vector<float>{0, 1, 10, 11, 20, 21});
  ds.labels = {0, 1, 2};
  const std::vector<std::size_t> idx{2, 0};
  Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_FLOAT_EQ(sub.images.at(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(sub.images.at(1, 1), 1.0f);
  EXPECT_EQ(sub.labels[0], 2);
  EXPECT_EQ(sub.labels[1], 0);
}

TEST(Dataset, HeadClampsToSize) {
  const auto tt = make_blobs(2, 3, 5, 2, 0.1, 1);
  Dataset h = tt.train.head(1000);
  EXPECT_EQ(h.size(), tt.train.size());
  Dataset h2 = tt.train.head(3);
  EXPECT_EQ(h2.size(), 3u);
}

TEST(Batch, MakeBatchCopiesRowsAndClamps) {
  const auto tt = make_blobs(2, 4, 5, 2, 0.1, 2);
  const Batch b = make_batch(tt.train, 8, 100);
  EXPECT_EQ(b.labels.size(), tt.train.size() - 8);
  EXPECT_EQ(b.images.shape()[1], 4u);
  EXPECT_THROW(make_batch(tt.train, tt.train.size(), 1), InvalidArgument);
}

TEST(ShuffledIndices, IsPermutation) {
  Rng rng(3);
  const auto idx = shuffled_indices(100, rng);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(ClassCounts, BalancedGenerator) {
  const auto tt = make_synth_cifar10(6, 3, 5);
  const auto counts = class_counts(tt.train);
  ASSERT_EQ(counts.size(), 10u);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    EXPECT_EQ(counts[c], 6u);
  }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.classes = 4;
  spec.train_per_class = 3;
  spec.test_per_class = 2;
  spec.height = 8;
  spec.width = 8;
  spec.seed = 77;
  const auto a = make_synthetic(spec);
  const auto b = make_synthetic(spec);
  EXPECT_TRUE(allclose(a.train.images, b.train.images));
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_TRUE(allclose(a.test.images, b.test.images));
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.classes = 2;
  spec.train_per_class = 2;
  spec.test_per_class = 1;
  spec.height = 8;
  spec.width = 8;
  spec.seed = 1;
  const auto a = make_synthetic(spec);
  spec.seed = 2;
  const auto b = make_synthetic(spec);
  EXPECT_FALSE(allclose(a.train.images, b.train.images));
}

TEST(Synthetic, TrainAndTestAreDistinctDraws) {
  const auto tt = make_synth_cifar10(4, 4, 9);
  EXPECT_FALSE(allclose(tt.train.images.reshaped(tt.test.images.shape()),
                        tt.test.images));
}

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.classes = 5;
  spec.train_per_class = 3;
  spec.test_per_class = 2;
  spec.channels = 2;
  spec.height = 6;
  spec.width = 7;
  const auto tt = make_synthetic(spec);
  EXPECT_EQ(tt.train.size(), 15u);
  EXPECT_EQ(tt.test.size(), 10u);
  EXPECT_EQ(tt.train.features(), 2u * 6u * 7u);
  tt.train.validate();
  tt.test.validate();
}

TEST(Synthetic, PrefixIsClassBalanced) {
  // Samples are interleaved by class, so any prefix of k*classes rows
  // contains k of each class — the property eval slices rely on.
  const auto tt = make_synth_cifar10(4, 4, 21);
  const Dataset head = tt.test.head(20);
  const auto counts = class_counts(head);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    EXPECT_EQ(counts[c], 2u);
  }
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.classes = 0;
  EXPECT_THROW(make_synthetic(spec), InvalidArgument);
  spec.classes = 2;
  spec.train_per_class = 0;
  EXPECT_THROW(make_synthetic(spec), InvalidArgument);
  spec.train_per_class = 1;
  spec.noise = -0.1;
  EXPECT_THROW(make_synthetic(spec), InvalidArgument);
}

TEST(Synthetic, Cifar100VariantHas100Classes) {
  const auto tt = make_synth_cifar100(1, 1, 3);
  EXPECT_EQ(tt.train.classes, 100u);
  EXPECT_EQ(tt.train.size(), 100u);
}

TEST(Blobs, SeparableWhenSpreadSmall) {
  const auto tt = make_blobs(3, 5, 10, 5, 0.05, 4);
  EXPECT_EQ(tt.train.size(), 30u);
  EXPECT_EQ(tt.train.features(), 5u);
  tt.train.validate();
}

}  // namespace
}  // namespace xbarlife::data
