// HardwareNetwork deployment and online-tuner behaviour (Eq. (5)).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "tuning/online_tuner.hpp"

namespace xbarlife::tuning {
namespace {

device::DeviceParams dev() { return device::DeviceParams{}; }

aging::AgingParams quiet_aging() {
  aging::AgingParams a;
  a.a_f = 0.0;
  a.a_g = 0.0;
  a.thermal_crosstalk = 0.0;
  return a;
}

struct Fixture {
  data::TrainTest data;
  nn::Network net;

  explicit Fixture(std::uint64_t seed = 1)
      : data(data::make_blobs(4, 8, 30, 10, 0.25, seed)),
        net(make_network(seed)) {
    // Train to a usable accuracy so mapping effects are measurable.
    nn::SgdOptimizer opt({0.1, 0.9});
    for (int epoch = 0; epoch < 25; ++epoch) {
      const data::Batch batch = data::make_batch(data.train, 0, 120);
      net.train_batch(batch.images, batch.labels, opt, nullptr);
    }
  }

  static nn::Network make_network(std::uint64_t seed) {
    Rng rng(seed);
    return nn::make_mlp(8, {16}, 4, rng);
  }
};

TEST(HardwareNetwork, BuildsOneCrossbarPerMappableWeight) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  EXPECT_EQ(hw.layer_count(), 2u);
  EXPECT_EQ(hw.layer(0).xbar->rows(), 8u);
  EXPECT_EQ(hw.layer(0).xbar->cols(), 16u);
  EXPECT_EQ(hw.layer(1).xbar->rows(), 16u);
  EXPECT_EQ(hw.layer(1).xbar->cols(), 4u);
  EXPECT_THROW(hw.layer(2), InvalidArgument);
}

TEST(HardwareNetwork, DeployWritesEffectiveWeightsIntoNetwork) {
  Fixture f;
  const double sw_acc =
      f.net.evaluate(f.data.test.images, f.data.test.labels);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 64);
  const double hw_acc =
      f.net.evaluate(f.data.test.images, f.data.test.labels);
  // 64 levels: accuracy close to software.
  EXPECT_GT(hw_acc, sw_acc - 0.15);
  // The network no longer holds the exact software weights.
  const auto targets = hw.targets();
  const auto current = f.net.save_mappable_weights();
  EXPECT_FALSE(allclose(targets[0], current[0], 1e-7f));
}

TEST(HardwareNetwork, RestoreTargetsRoundTrips) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  const auto before = hw.targets();
  hw.deploy(MappingPolicy::kFresh, 16);
  hw.restore_targets_to_network();
  const auto after = f.net.save_mappable_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(allclose(before[i], after[i]));
  }
}

TEST(HardwareNetwork, AgingAwareDeployNeedsEvaluator) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  EXPECT_THROW(hw.deploy(MappingPolicy::kAgingAware, 16, nullptr),
               InvalidArgument);
}

TEST(HardwareNetwork, AgingAwareDeployOnFreshArrayMatchesFresh) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  const data::Dataset eval_slice = f.data.test.head(40);
  auto evaluator = [&]() {
    return f.net.evaluate(eval_slice.images, eval_slice.labels);
  };
  hw.deploy(MappingPolicy::kAgingAware, 16, evaluator);
  EXPECT_DOUBLE_EQ(hw.layer(0).plan->resistance_range().r_hi,
                   dev().r_max_fresh);
}

TEST(HardwareNetwork, SyncBeforeDeployThrows) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  EXPECT_THROW(hw.sync_network_to_hardware(), InvalidArgument);
}

TEST(HardwareNetwork, PulseAndAgingAccounting) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  EXPECT_EQ(hw.total_pulses(), 0u);
  hw.deploy(MappingPolicy::kFresh, 16);
  EXPECT_GT(hw.total_pulses(), 0u);
  const auto stats = hw.aging_stats();
  EXPECT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].total_pulses, 0u);
}

TEST(OnlineTuner, ValidatesConfig) {
  TuningConfig bad;
  bad.max_iterations = 0;
  EXPECT_THROW(OnlineTuner{bad}, InvalidArgument);
  bad = TuningConfig{};
  bad.target_accuracy = 0.0;
  EXPECT_THROW(OnlineTuner{bad}, InvalidArgument);
  bad = TuningConfig{};
  bad.step_fraction = 0.0;
  EXPECT_THROW(OnlineTuner{bad}, InvalidArgument);
}

TEST(OnlineTuner, ConvergesImmediatelyWhenMappingSuffices) {
  Fixture f;
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 64);
  TuningConfig tc;
  tc.target_accuracy = 0.1;  // trivially satisfied
  tc.eval_samples = 40;
  OnlineTuner tuner(tc);
  const TuningResult r = tuner.tune(hw, f.data.train, f.data.test);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.pulses, 0u);
}

TEST(OnlineTuner, RecoversCoarseQuantizationLoss) {
  // With very few levels the mapped accuracy drops; sign-pulse tuning
  // must claw most of it back.
  Fixture f(3);
  const double sw_acc =
      f.net.evaluate(f.data.test.images, f.data.test.labels);
  ASSERT_GT(sw_acc, 0.8);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 6);
  TuningConfig tc;
  tc.target_accuracy = 0.95 * sw_acc;
  tc.max_iterations = 120;
  tc.eval_samples = 40;
  tc.batch = 24;
  tc.min_grad_fraction = 1.0;
  OnlineTuner tuner(tc);
  const TuningResult r = tuner.tune(hw, f.data.train, f.data.test);
  EXPECT_GE(r.final_accuracy, r.start_accuracy);
  EXPECT_GT(r.pulses, 0u);
  if (r.converged) {
    EXPECT_GE(r.final_accuracy, tc.target_accuracy);
  }
}

TEST(OnlineTuner, PulsesAgeTheArray) {
  // Heavily overlapping blobs: 100% accuracy is impossible, so an
  // unreachable target forces the tuner to run its full budget.
  data::TrainTest noisy = data::make_blobs(4, 8, 30, 10, 1.2, 44);
  Rng rng(4);
  nn::Network net = nn::make_mlp(8, {16}, 4, rng);
  nn::SgdOptimizer opt({0.1, 0.9});
  for (int epoch = 0; epoch < 10; ++epoch) {
    const data::Batch batch = data::make_batch(noisy.train, 0, 120);
    net.train_batch(batch.images, batch.labels, opt, nullptr);
  }
  aging::AgingParams a;  // real aging on
  HardwareNetwork hw(net, dev(), a);
  hw.deploy(MappingPolicy::kFresh, 6);
  const auto stats_before = hw.aging_stats();
  TuningConfig tc;
  tc.target_accuracy = 0.999;  // unreachable: forces iterations
  tc.max_iterations = 5;
  tc.eval_samples = 40;
  OnlineTuner tuner(tc);
  const TuningResult r = tuner.tune(hw, noisy.train, noisy.test);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 5u);
  const auto stats_after = hw.aging_stats();
  EXPECT_GT(stats_after[0].mean_stress, stats_before[0].mean_stress);
}

TEST(OnlineTuner, StuckCellsAreNotPulsed) {
  Fixture f(5);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 8);
  // Mark every cell of layer 0 stuck; tuning must leave it untouched.
  std::fill(hw.layer(0).stuck.begin(), hw.layer(0).stuck.end(), 1);
  const auto pulses_before = hw.layer(0).xbar->total_pulses();
  TuningConfig tc;
  tc.target_accuracy = 0.999;
  tc.max_iterations = 3;
  tc.eval_samples = 40;
  OnlineTuner tuner(tc);
  tuner.tune(hw, f.data.train, f.data.test);
  EXPECT_EQ(hw.layer(0).xbar->total_pulses(), pulses_before);
}

TEST(HardwareNetwork, MixedTopologyAlignsLayersWithMappableWeights) {
  // LeNet-5 interleaves pool / activation / flatten layers (no mappable
  // weights) with conv / dense ones. Deployed layer li must line up with
  // mappable_weights()[li], not with the network's layer index — the
  // tuner's apply_sign_updates indexes both arrays with the same li.
  Rng rng(7);
  nn::Network net =
      nn::make_lenet5(nn::ImageSpec{1, 16, 16}, 4, rng);
  auto mappable = net.mappable_weights();
  ASSERT_GT(net.layer_count(), mappable.size());  // non-mappable present
  HardwareNetwork hw(net, dev(), quiet_aging());
  ASSERT_EQ(hw.layer_count(), mappable.size());
  for (std::size_t li = 0; li < hw.layer_count(); ++li) {
    const DeployedLayer& layer = hw.layer(li);
    EXPECT_EQ(layer.name, mappable[li].name) << "li=" << li;
    EXPECT_EQ(layer.weight_index, mappable[li].index) << "li=" << li;
    EXPECT_EQ(layer.kind, mappable[li].layer_kind) << "li=" << li;
    EXPECT_EQ(layer.xbar->rows(), mappable[li].value->shape()[0]);
    EXPECT_EQ(layer.xbar->cols(), mappable[li].value->shape()[1]);
  }
  // Deploy + a tuning step must run through the mixed topology: a
  // misalignment would pulse the wrong crossbar or throw on shapes.
  hw.deploy(MappingPolicy::kFresh, 8);
  data::TrainTest imgs = data::make_synthetic(
      {4, 8, 4, 1, 16, 16, 0.2, 4, /*seed=*/11});
  TuningConfig tc;
  tc.target_accuracy = 0.999;  // unreachable: force a pulse iteration
  tc.max_iterations = 2;
  tc.eval_samples = 16;
  tc.batch = 8;
  tc.min_grad_fraction = 0.0;
  OnlineTuner tuner(tc);
  const TuningResult r = tuner.tune(hw, imgs.train, imgs.test);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_GT(r.pulses, 0u);
}

/// Overlapping blobs + a lightly trained MLP: eval accuracy cannot reach
/// 0.999, so an unreachable tuning target always runs the full budget.
struct NoisyFixture {
  data::TrainTest data;
  nn::Network net;

  explicit NoisyFixture(std::uint64_t seed)
      : data(data::make_blobs(4, 8, 30, 10, 1.2, seed)),
        net(Fixture::make_network(seed)) {
    nn::SgdOptimizer opt({0.1, 0.9});
    for (int epoch = 0; epoch < 10; ++epoch) {
      const data::Batch batch = data::make_batch(data.train, 0, 120);
      net.train_batch(batch.images, batch.labels, opt, nullptr);
    }
  }
};

TEST(OnlineTuner, TuneSetSmallerThanBatchWrapsWithoutEmptyBatch) {
  // The rolling-minibatch cursor must reset before slicing: with a tuning
  // set smaller than the batch, every iteration gets the whole (non-empty)
  // set, and the cursor wraps instead of running off the end.
  NoisyFixture f(8);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 6);
  const data::Dataset tiny = f.data.train.head(10);
  TuningConfig tc;
  tc.target_accuracy = 0.999;  // unreachable: forces full budget
  tc.max_iterations = 6;
  tc.batch = 16;  // larger than the tuning set
  tc.eval_samples = 40;
  tc.plateau_iterations = 0;
  OnlineTuner tuner(tc);
  const TuningResult r = tuner.tune(hw, tiny, f.data.test);
  // All six iterations ran gradients on real data; an empty batch would
  // have thrown inside make_batch / compute_gradients.
  EXPECT_EQ(r.iterations, 6u);
}

TEST(OnlineTuner, CursorWrapsMidSetAcrossSessions) {
  // Batch 4 over a 10-sample set: iterations slice [0,4) [4,8) [8,10)
  // [0,4) ... — the tail slice is short but never empty, including when
  // the cursor survives into a second tune() call.
  NoisyFixture f(9);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 6);
  const data::Dataset tiny = f.data.train.head(10);
  TuningConfig tc;
  tc.target_accuracy = 0.999;
  tc.max_iterations = 4;  // crosses the wrap at cursor == 10
  tc.batch = 4;
  tc.eval_samples = 40;
  tc.plateau_iterations = 0;
  OnlineTuner tuner(tc);
  EXPECT_EQ(tuner.tune(hw, tiny, f.data.test).iterations, 4u);
  // Second session reuses the same tuner (and cursor) — still no empty
  // batch.
  EXPECT_EQ(tuner.tune(hw, tiny, f.data.test).iterations, 4u);
}

TEST(OnlineTuner, EmptyDatasetsRejected) {
  Fixture f(6);
  HardwareNetwork hw(f.net, dev(), quiet_aging());
  hw.deploy(MappingPolicy::kFresh, 8);
  OnlineTuner tuner({});
  data::Dataset empty;
  empty.classes = 1;
  empty.channels = 1;
  empty.height = 1;
  empty.width = 8;
  empty.images = Tensor(Shape{0, 8});
  EXPECT_THROW(tuner.tune(hw, empty, f.data.test), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::tuning
