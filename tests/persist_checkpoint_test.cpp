// Crash-safe snapshot store: CRC32 known answer, wire-format round trip,
// atomic generation rotation, corruption fallback to the .bak slot, and
// rejection of foreign snapshots.
#include "persist/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "persist/state_io.hpp"
#include "xbar/program_sequence.hpp"

namespace xbarlife::persist {
namespace {

/// Minimal checkpointable: a counter + note round-tripped via the wire
/// format. `salt` feeds the fingerprint so tests can fake "a different
/// configuration" without a second type.
struct Counter : Checkpointable {
  std::uint64_t value = 0;
  std::string note = "fresh";
  std::string kind_tag = "counter";
  std::uint64_t salt = 1;

  std::string kind() const override { return kind_tag; }
  std::uint64_t fingerprint() const override {
    return Fingerprint().add(std::string_view{"counter"}).add(salt).value();
  }
  std::string serialize() const override {
    StateWriter w;
    w.u64(value);
    w.str(note);
    return w.data();
  }
  void restore(std::string_view payload) override {
    StateReader r(payload);
    value = r.u64();
    note = r.str();
    if (!r.done()) {
      throw CheckpointError("counter snapshot has trailing bytes");
    }
  }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".tmp").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Writes generation 1 (value 10) and generation 2 (value 20): the
/// primary holds gen 2 and the .bak slot gen 1.
void write_two_generations(CheckpointStore& store) {
  Counter c;
  c.value = 10;
  c.note = "gen-one";
  store.save(c);
  c.value = 20;
  c.note = "gen-two";
  store.save(c);
}

TEST(Crc32, MatchesKnownAnswer) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(crc32(""), 0U);
  EXPECT_NE(crc32("xbarlife"), crc32("xbarlifE"));
}

TEST(StateIo, RoundTripsBitIdentically) {
  StateWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefU);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.f32(-0.0f);
  w.f64(1.0 / 3.0);
  w.str("length-prefixed \"text\"\n");
  Rng rng(99);
  (void)rng.gaussian();  // populate the Box-Muller cache
  write_rng_state(w, rng);

  StateReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(std::signbit(r.f32()));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.str(), "length-prefixed \"text\"\n");
  Rng restored(0);
  read_rng_state(r, restored);
  EXPECT_TRUE(r.done());
  // The restored stream continues exactly where the original stands.
  EXPECT_EQ(restored.gaussian(), rng.gaussian());
  EXPECT_EQ(restored(), rng());
}

TEST(StateIo, UnderflowIsCheckpointError) {
  StateWriter w;
  w.u32(7);
  StateReader r(w.data());
  EXPECT_EQ(r.u32(), 7U);
  EXPECT_THROW(r.u64(), CheckpointError);

  // A truncated string length-prefix must not read past the end either.
  StateWriter w2;
  w2.u64(1000);  // claims a 1000-byte string that is not there
  StateReader r2(w2.data());
  EXPECT_THROW(r2.str(), CheckpointError);
}

TEST(StateIo, ArrayCountRejectsCountsTheBytesCannotBack) {
  // A well-formed prefix passes through.
  {
    StateWriter w;
    w.u64(3);
    w.f64(1.0);
    w.f64(2.0);
    w.f64(3.0);
    StateReader r(w.data());
    EXPECT_EQ(r.array_count(8), 3u);
  }
  // A corrupt (or hostile) count larger than the remaining bytes could
  // ever serialize must throw instead of driving a giant reserve().
  {
    StateWriter w;
    w.u64(0xffffffffffffffffULL);
    StateReader r(w.data());
    EXPECT_THROW(r.array_count(8), CheckpointError);
  }
  {
    StateWriter w;
    w.u64(10);  // claims 10 elements, only 9 payload bytes follow
    for (int i = 0; i < 9; ++i) {
      w.u8(0);
    }
    StateReader r(w.data());
    EXPECT_THROW(r.array_count(1), CheckpointError);
  }
  // min_bytes_per_element == 0 is treated as 1 (count <= remaining).
  {
    StateWriter w;
    w.u64(2);
    w.u8(0);
    w.u8(0);
    StateReader r(w.data());
    EXPECT_EQ(r.array_count(0), 2u);
  }
}

// Corruption fuzz for the count-prefixed load paths (satellite of the
// remote-executor work: the worker feeds network bytes straight into
// these readers). Every single-byte flip and every truncation of a real
// ProgramSequence payload must either restore cleanly or throw a typed
// xbarlife::Error — never crash, loop, or attempt an absurd allocation.
TEST(StateIo, ProgramSequenceCorruptionFuzzFailsClosed) {
  xbar::SequenceBuilder b(4, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      b.pulse(r, c, 1e4 + 500.0 * static_cast<double>(r + c));
    }
    b.verify(0, c);
    b.wait(c, 1.0);
  }
  StateWriter w;
  b.build().save_state(w);
  const std::string good = w.data();
  {
    StateReader r(good);
    (void)xbar::ProgramSequence::load_state(r);  // baseline restores
  }

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string mutated = good;
      mutated[i] = static_cast<char>(
          static_cast<unsigned char>(mutated[i]) ^ mask);
      try {
        StateReader r(mutated);
        (void)xbar::ProgramSequence::load_state(r);
        // Some flips land in value bytes and still parse — fine; the
        // contract is only that failures are typed and bounded.
      } catch (const Error&) {
      }
    }
  }
  for (std::size_t len = 0; len < good.size(); ++len) {
    try {
      StateReader r(good.substr(0, len));
      (void)xbar::ProgramSequence::load_state(r);
    } catch (const Error&) {
    }
  }
}

TEST(CheckpointStore, MissingSnapshotIsFreshStart) {
  const std::string path = temp_path("persist_fresh.ckpt");
  remove_generations(path);
  CheckpointStore store(path);
  Counter c;
  EXPECT_FALSE(store.load(c).has_value());
  EXPECT_EQ(c.value, 0U);
  EXPECT_EQ(store.generation(), 0U);
}

TEST(CheckpointStore, SaveLoadRoundTripsAndRotatesGenerations) {
  const std::string path = temp_path("persist_roundtrip.ckpt");
  remove_generations(path);
  CheckpointStore store(path);
  write_two_generations(store);
  EXPECT_EQ(store.generation(), 2U);

  // Both generations exist on disk: gen 2 primary, gen 1 fallback.
  EXPECT_FALSE(read_file(path).empty());
  EXPECT_FALSE(read_file(path + ".bak").empty());

  CheckpointStore reopened(path);
  Counter c;
  const auto info = reopened.load(c);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->generation, 2U);
  EXPECT_FALSE(info->fallback_used);
  EXPECT_EQ(c.value, 20U);
  EXPECT_EQ(c.note, "gen-two");

  // Saving after a load continues the generation sequence.
  reopened.save(c);
  EXPECT_EQ(reopened.generation(), 3U);
  remove_generations(path);
}

TEST(CheckpointStore, CorruptPrimaryFallsBackToLastGoodGeneration) {
  const std::string path = temp_path("persist_fallback.ckpt");
  // Three ways a crash can mangle the newest snapshot; each must fall
  // back to the .bak generation.
  enum class Corruption { kTruncate, kBitFlip, kZeroLength };
  for (const Corruption mode :
       {Corruption::kTruncate, Corruption::kBitFlip,
        Corruption::kZeroLength}) {
    remove_generations(path);
    CheckpointStore store(path);
    write_two_generations(store);

    std::string bytes = read_file(path);
    ASSERT_GT(bytes.size(), 8U);
    switch (mode) {
      case Corruption::kTruncate:
        bytes.resize(bytes.size() - 4);
        break;
      case Corruption::kBitFlip:
        bytes.back() = static_cast<char>(bytes.back() ^ 0x10);
        break;
      case Corruption::kZeroLength:
        bytes.clear();
        break;
    }
    write_file(path, bytes);

    CheckpointStore reopened(path);
    Counter c;
    const auto info = reopened.load(c);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->fallback_used);
    EXPECT_EQ(info->generation, 1U);
    EXPECT_EQ(c.value, 10U);
    EXPECT_EQ(c.note, "gen-one");
  }
  remove_generations(path);
}

TEST(CheckpointStore, AllGenerationsCorruptIsCheckpointError) {
  const std::string path = temp_path("persist_corrupt.ckpt");
  remove_generations(path);
  CheckpointStore store(path);
  write_two_generations(store);
  // Flip a payload byte in both generations: no valid state remains, and
  // restoring garbage silently would be worse than failing loudly.
  for (const std::string& file : {path, path + ".bak"}) {
    std::string bytes = read_file(file);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    write_file(file, bytes);
  }
  CheckpointStore reopened(path);
  Counter c;
  EXPECT_THROW(reopened.load(c), CheckpointError);

  // Corrupt primary with no fallback at all: same verdict.
  remove_generations(path);
  CheckpointStore fresh(path);
  Counter seed;
  seed.value = 5;
  fresh.save(seed);
  std::string bytes = read_file(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file(path, bytes);
  CheckpointStore again(path);
  EXPECT_THROW(again.load(c), CheckpointError);
  remove_generations(path);
}

TEST(CheckpointStore, ForeignSnapshotsAreRejectedNotRestored) {
  const std::string path = temp_path("persist_foreign.ckpt");
  remove_generations(path);
  CheckpointStore store(path);
  Counter c;
  c.value = 42;
  store.save(c);

  const auto expect_plain_io_error = [&](Counter& target) {
    CheckpointStore reopened(path);
    try {
      reopened.load(target);
      FAIL() << "foreign snapshot was restored";
    } catch (const CheckpointError&) {
      FAIL() << "foreign snapshot reported as corrupt";
    } catch (const IoError&) {
      // expected: foreign, not corrupt — the .bak would be just as
      // foreign, so no fallback is attempted.
    }
  };

  // Same file, different kind.
  Counter other_kind;
  other_kind.kind_tag = "other";
  expect_plain_io_error(other_kind);

  // Same kind, different configuration fingerprint.
  Counter other_config;
  other_config.salt = 2;
  expect_plain_io_error(other_config);

  // A snapshot from a different schema version entirely.
  write_file(path,
             "{\"checkpoint\":\"xbarlife.faults.v1\",\"campaign_seed\":9}\n");
  Counter same;
  expect_plain_io_error(same);
  remove_generations(path);
}

}  // namespace
}  // namespace xbarlife::persist
