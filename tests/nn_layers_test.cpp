#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace xbarlife::nn {
namespace {

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(Shape{1, 4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLULayer, BackwardMasksGradient) {
  ReLU relu;
  Tensor x(Shape{1, 3}, std::vector<float>{-1.0f, 1.0f, 2.0f});
  relu.forward(x, false);
  Tensor g(Shape{1, 3}, 1.0f);
  Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(TanhLayer, ForwardValues) {
  Tanh t;
  Tensor x(Shape{1, 2}, std::vector<float>{0.0f, 1.0f});
  Tensor y = t.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], std::tanh(1.0f), 1e-6f);
}

TEST(SigmoidLayer, ForwardValues) {
  Sigmoid s;
  Tensor x(Shape{1, 2}, std::vector<float>{0.0f, 100.0f});
  Tensor y = s.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
}

TEST(FlattenLayer, PassThrough) {
  Flatten f;
  Tensor x(Shape{2, 6}, 3.0f);
  EXPECT_TRUE(allclose(f.forward(x, true), x));
  EXPECT_TRUE(allclose(f.backward(x), x));
  EXPECT_EQ(f.output_features(6), 6u);
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Dropout d(0.5, 1);
  Tensor x(Shape{1, 100}, 1.0f);
  EXPECT_TRUE(allclose(d.forward(x, /*training=*/false), x));
}

TEST(DropoutLayer, TrainingZeroesAndRescales) {
  Dropout d(0.5, 2);
  Tensor x(Shape{1, 10000}, 1.0f);
  Tensor y = d.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / keep
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
}

TEST(DropoutLayer, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0, 1), InvalidArgument);
  EXPECT_THROW(Dropout(-0.1, 1), InvalidArgument);
}

TEST(DenseLayer, ForwardComputesAffine) {
  Rng rng(1);
  Dense dense(2, 3, rng, "fc");
  // Overwrite weights with known values.
  Tensor& w = dense.weight();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      w.at(i, j) = static_cast<float>(i + 1);
    }
  }
  Tensor x(Shape{1, 2}, std::vector<float>{1.0f, 2.0f});
  Tensor y = dense.forward(x, false);
  // y_j = 1*1 + 2*2 = 5 for every j (bias zero).
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(y.at(0, j), 5.0f);
  }
}

TEST(DenseLayer, ParamsExposeMappableWeight) {
  Rng rng(1);
  Dense dense(4, 2, rng, "fc");
  auto params = dense.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_TRUE(params[0].mappable);
  EXPECT_EQ(params[0].name, "fc.weight");
  EXPECT_FALSE(params[1].mappable);
  EXPECT_EQ(params[0].value->shape(), (Shape{4, 2}));
}

TEST(DenseLayer, WrongInputWidthThrows) {
  Rng rng(1);
  Dense dense(4, 2, rng, "fc");
  EXPECT_THROW(dense.forward(Tensor(Shape{1, 3}), false), InvalidArgument);
  EXPECT_THROW(dense.output_features(3), InvalidArgument);
}

TEST(ConvLayer, OutputShapeAndChannelMajorLayout) {
  Rng rng(2);
  ConvGeometry g{1, 4, 4, 3, 1, 0};
  Conv2D conv(g, 2, rng, "conv");
  Tensor x(Shape{1, 16}, 1.0f);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2 * 2 * 2}));
  EXPECT_EQ(conv.output_features(16), 8u);
}

TEST(ConvLayer, KnownConvolutionValue) {
  Rng rng(2);
  ConvGeometry g{1, 3, 3, 3, 1, 0};
  Conv2D conv(g, 1, rng, "conv");
  auto params = conv.params();
  // All-ones kernel, zero bias: output = sum of image.
  params[0].value->fill(1.0f);
  params[1].value->fill(0.0f);
  Tensor x(Shape{1, 9}, std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7, 8});
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 36.0f);
}

TEST(ConvLayer, ParallelBatchMatchesSerialBitwise) {
  // Forward fans out over the batch and backward merges per-sample
  // gradient partials in sample order: outputs and gradients must be
  // bit-identical at any thread count.
  Rng rng(31);
  ConvGeometry g{2, 6, 6, 3, 1, 1};
  Conv2D conv(g, 4, rng, "conv");
  Tensor x(Shape{5, 2 * 6 * 6});
  x.fill_gaussian(rng, 0.0f, 1.0f);

  set_parallel_threads(1);
  const Tensor y_serial = conv.forward(x, true);
  Tensor gy(y_serial.shape(), 0.5f);
  const Tensor gx_serial = conv.backward(gy);
  auto params = conv.params();
  const Tensor wgrad_serial = *params[0].grad;
  params[0].grad->fill(0.0f);  // backward accumulates; reset between runs
  params[1].grad->fill(0.0f);

  set_parallel_threads(4);
  const Tensor y_threaded = conv.forward(x, true);
  const Tensor gx_threaded = conv.backward(gy);
  set_parallel_threads(1);

  EXPECT_TRUE(y_threaded == y_serial);
  EXPECT_TRUE(gx_threaded == gx_serial);
  EXPECT_TRUE(*params[0].grad == wgrad_serial);
}

TEST(MaxPoolLayer, SelectsWindowMaxima) {
  PoolGeometry g{1, 4, 4, 2, 2};
  MaxPool2D pool(g, "pool");
  Tensor x(Shape{1, 16});
  for (std::size_t i = 0; i < 16; ++i) {
    x[i] = static_cast<float>(i);
  }
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
  EXPECT_FLOAT_EQ(y[2], 13.0f);
  EXPECT_FLOAT_EQ(y[3], 15.0f);
}

TEST(MaxPoolLayer, BackwardRoutesToArgmax) {
  PoolGeometry g{1, 2, 2, 2, 2};
  MaxPool2D pool(g, "pool");
  Tensor x(Shape{1, 4}, std::vector<float>{1.0f, 9.0f, 3.0f, 4.0f});
  pool.forward(x, false);
  Tensor gy(Shape{1, 1}, 5.0f);
  Tensor gx = pool.backward(gy);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(AvgPoolLayer, AveragesWindows) {
  PoolGeometry g{1, 2, 2, 2, 2};
  AvgPool2D pool(g, "pool");
  Tensor x(Shape{1, 4}, std::vector<float>{1.0f, 2.0f, 3.0f, 6.0f});
  Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  Tensor gx = pool.backward(Tensor(Shape{1, 1}, 4.0f));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(gx[i], 1.0f);
  }
}

TEST(PoolGeometry, Validation) {
  PoolGeometry bad{0, 4, 4, 2, 2};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  PoolGeometry window_too_big{1, 2, 2, 3, 1};
  EXPECT_THROW(window_too_big.validate(), InvalidArgument);
}

TEST(LayerKind, ToString) {
  EXPECT_EQ(to_string(LayerKind::kDense), "dense");
  EXPECT_EQ(to_string(LayerKind::kConv), "conv");
  EXPECT_EQ(to_string(LayerKind::kPool), "pool");
  EXPECT_EQ(to_string(LayerKind::kActivation), "activation");
  EXPECT_EQ(to_string(LayerKind::kFlatten), "flatten");
  EXPECT_EQ(to_string(LayerKind::kDropout), "dropout");
}

}  // namespace
}  // namespace xbarlife::nn
