#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "nn/model_zoo.hpp"

namespace xbarlife::nn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundtripPreservesEveryParameter) {
  Rng rng(1);
  Network original = make_lenet5({1, 16, 16}, 5, rng);
  const std::string path = temp_path("xbarlife_weights.bin");
  save_parameters(original, path);

  Rng rng2(999);  // different init on purpose
  Network restored = make_lenet5({1, 16, 16}, 5, rng2);
  load_parameters(restored, path);

  const auto a = original.params();
  const auto b = restored.params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(allclose(*a[i].value, *b[i].value, 0.0f))
        << a[i].name;
  }
  std::remove(path.c_str());
}

TEST(Serialize, RestoredNetworkComputesIdenticalOutputs) {
  Rng rng(2);
  Network original = make_mlp(6, {10}, 3, rng);
  const std::string path = temp_path("xbarlife_weights2.bin");
  save_parameters(original, path);
  Rng rng2(3);
  Network restored = make_mlp(6, {10}, 3, rng2);
  load_parameters(restored, path);
  Tensor x(Shape{4, 6});
  x.fill_gaussian(rng, 0.0f, 1.0f);
  EXPECT_TRUE(allclose(original.forward(x), restored.forward(x), 0.0f));
  std::remove(path.c_str());
}

TEST(Serialize, TopologyMismatchIsRejected) {
  Rng rng(4);
  Network a = make_mlp(6, {10}, 3, rng);
  const std::string path = temp_path("xbarlife_weights3.bin");
  save_parameters(a, path);
  Network wrong_width = make_mlp(6, {11}, 3, rng);
  EXPECT_THROW(load_parameters(wrong_width, path), InvalidArgument);
  Network wrong_depth = make_mlp(6, {10, 4}, 3, rng);
  EXPECT_THROW(load_parameters(wrong_depth, path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, GarbageFileIsRejected) {
  const std::string path = temp_path("xbarlife_weights4.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a parameter file at all";
  }
  Rng rng(5);
  Network net = make_mlp(4, {}, 2, rng);
  EXPECT_THROW(load_parameters(net, path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(6);
  Network net = make_mlp(4, {}, 2, rng);
  EXPECT_THROW(load_parameters(net, "/nonexistent/weights.bin"), Error);
  EXPECT_THROW(save_parameters(net, "/nonexistent/weights.bin"), Error);
}

TEST(Serialize, TruncatedFileIsRejected) {
  Rng rng(7);
  Network net = make_mlp(8, {16}, 4, rng);
  const std::string path = temp_path("xbarlife_weights5.bin");
  save_parameters(net, path);
  // Chop the tail off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  Network victim = make_mlp(8, {16}, 4, rng);
  EXPECT_THROW(load_parameters(victim, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xbarlife::nn
