// Worker-pool contract tests: endpoint-list parsing, rendezvous owner
// selection (determinism, duplicate-address spread, minimal movement on
// membership change), the per-endpoint circuit-breaker state machine
// (time-point driven, no sleeps), failover dispatch that never burns the
// global budget while a live endpoint remains, the deterministic
// kill-matrix chaos suite, pool-wide exhaustion fallback, and the
// executor-registry / envelope-summary wiring.
#include "xbar/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/faulty.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "persist/state_io.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {
namespace {

using namespace std::chrono_literals;

device::DeviceParams dev() { return device::DeviceParams{}; }

/// Crosstalk makes the ambient pool order-dependent — the strictest
/// setting for byte-identity checks.
aging::AgingParams ag_crosstalk() {
  aging::AgingParams a;
  a.thermal_crosstalk = 0.05;
  return a;
}

std::string snapshot(const Crossbar& xb) {
  persist::StateWriter w;
  xb.save_state(w);
  return w.data();
}

ProgramSequence mixed_sequence(std::size_t rows, std::size_t cols) {
  SequenceBuilder b(rows, cols);
  for (std::size_t c = 0; c < cols; c += 2) {
    for (std::size_t r = 0; r < rows; ++r) {
      b.pulse(r, c, 1e4 + 1e3 * static_cast<double>(r + c * rows));
    }
    b.verify(0, c);
    b.wait(c, 2.5);
  }
  return b.build();
}

/// Pool config with fast-failing knobs so dead endpoints cost
/// milliseconds, not deadlines.
RemoteConfig pool_config(const std::string& address) {
  RemoteConfig cfg;
  cfg.address = address;
  cfg.dial_timeout = 100ms;
  cfg.request_deadline = 500ms;
  cfg.max_attempts = 2;
  cfg.backoff_initial = 1ms;
  cfg.backoff_max = 2ms;
  return cfg;
}

/// Allocates crossbars until one's rendezvous owner is endpoint `slot`,
/// so dispatch tests can pin which endpoint a request prefers. The uid is
/// a process-wide construction counter, so this terminates fast.
std::unique_ptr<Crossbar> crossbar_owned_by(
    std::size_t slot, const std::vector<std::string>& addresses,
    std::size_t rows = 4, std::size_t cols = 4) {
  for (int tries = 0; tries < 256; ++tries) {
    auto xb = std::make_unique<Crossbar>(rows, cols, dev(), ag_crosstalk());
    if (rendezvous_order(xb->uid(), addresses)[0] == slot) {
      return xb;
    }
  }
  ADD_FAILURE() << "no array owned by slot " << slot << " within 256 tries";
  return nullptr;
}

// ---------------------------------------------------------------------------
// Endpoint-list parsing.

TEST(Pool, SplitEndpointsParsesAndTrims) {
  const auto list = split_endpoints(" unix:/a, 127.0.0.1:7781 ,loopback");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "unix:/a");
  EXPECT_EQ(list[1], "127.0.0.1:7781");
  EXPECT_EQ(list[2], "loopback");

  const auto single = split_endpoints("loopback");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], "loopback");
}

TEST(Pool, SplitEndpointsRejectsEmptyEntries) {
  EXPECT_THROW(split_endpoints("loopback,,loopback"), InvalidArgument);
  EXPECT_THROW(split_endpoints("loopback,"), InvalidArgument);
  EXPECT_THROW(split_endpoints(",loopback"), InvalidArgument);
  EXPECT_THROW(split_endpoints(""), InvalidArgument);
  EXPECT_THROW(split_endpoints("  ,  "), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Rendezvous owner selection.

TEST(Pool, RendezvousOrderIsDeterministicAndComplete) {
  const std::vector<std::string> eps = {"unix:/a", "unix:/b", "host:1"};
  for (std::uint64_t key = 0; key < 50; ++key) {
    const auto order = rendezvous_order(key, eps);
    ASSERT_EQ(order.size(), eps.size());
    EXPECT_EQ(order, rendezvous_order(key, eps));
    // Every index appears exactly once: the order is a permutation.
    std::set<std::size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), eps.size());
  }
}

TEST(Pool, RendezvousSpreadsLoadAcrossDistinctAddresses) {
  const std::vector<std::string> eps = {"unix:/a", "unix:/b", "host:1"};
  std::map<std::size_t, int> owned;
  for (std::uint64_t key = 0; key < 300; ++key) {
    owned[rendezvous_order(key, eps)[0]]++;
  }
  for (std::size_t i = 0; i < eps.size(); ++i) {
    EXPECT_GT(owned[i], 30) << "slot " << i << " starves";
  }
}

TEST(Pool, RendezvousSpreadsDuplicateAddresses) {
  // Three identical "loopback" entries must still split ownership: the
  // score folds in the per-address occurrence index.
  const std::vector<std::string> eps = {"loopback", "loopback", "loopback"};
  std::map<std::size_t, int> owned;
  for (std::uint64_t key = 0; key < 300; ++key) {
    owned[rendezvous_order(key, eps)[0]]++;
  }
  for (std::size_t i = 0; i < eps.size(); ++i) {
    EXPECT_GT(owned[i], 30) << "slot " << i << " starves";
  }
}

TEST(Pool, RendezvousMembershipChangeMovesOnlyTheLostEndpointsKeys) {
  // Removing unix:/b must not reshuffle keys owned by the survivors —
  // the minimal-movement property that makes scale-down cheap.
  const std::vector<std::string> full = {"unix:/a", "unix:/b", "host:1"};
  const std::vector<std::string> without_b = {"unix:/a", "host:1"};
  int moved = 0;
  for (std::uint64_t key = 0; key < 300; ++key) {
    const std::size_t owner = rendezvous_order(key, full)[0];
    const std::size_t after = rendezvous_order(key, without_b)[0];
    const std::string& owner_addr = full[owner];
    const std::string& after_addr = without_b[after];
    if (owner_addr == "unix:/b") {
      ++moved;  // orphaned keys must land somewhere else
    } else {
      EXPECT_EQ(owner_addr, after_addr) << "key " << key << " moved "
                                        << "despite its owner surviving";
    }
  }
  EXPECT_GT(moved, 0);
}

// ---------------------------------------------------------------------------
// Per-endpoint fault-spec lists.

TEST(Pool, FaultSpecListSplitsPerEndpoint) {
  const auto specs = net::split_fault_specs("seed=1,drop=0.5;;seed=2", 3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], "seed=1,drop=0.5");
  EXPECT_EQ(specs[1], "");
  EXPECT_EQ(specs[2], "seed=2");

  // No ';' -> the same spec applies to every endpoint (the pre-pool
  // contract for a single link).
  const auto shared = net::split_fault_specs("seed=1,drop=0.5", 2);
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0], shared[1]);

  // Missing trailing segments are clean links.
  const auto padded = net::split_fault_specs("seed=1;", 3);
  ASSERT_EQ(padded.size(), 3u);
  EXPECT_EQ(padded[0], "seed=1");
  EXPECT_EQ(padded[1], "");
  EXPECT_EQ(padded[2], "");

  EXPECT_THROW(net::split_fault_specs("a;b;c", 2), InvalidArgument);

  const auto plans = net::FaultPlan::parse_list("seed=1,drop=0.5;;", 3);
  ASSERT_EQ(plans.size(), 3u);
}

// ---------------------------------------------------------------------------
// Circuit-breaker state machine (explicit time points, no sleeps).

CircuitBreaker::Config breaker_config() {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.probe_backoff_initial = 100ms;
  cfg.probe_backoff_max = 400ms;
  return cfg;
}

TEST(Circuit, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker cb(breaker_config(), Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(cb.state(), CircuitState::kHealthy);
  EXPECT_TRUE(cb.admits(t0));

  EXPECT_FALSE(cb.record_failure(t0));  // first failure: suspect, not open
  EXPECT_EQ(cb.state(), CircuitState::kSuspect);
  EXPECT_TRUE(cb.admits(t0));  // suspect endpoints still take traffic

  EXPECT_TRUE(cb.record_failure(t0));  // threshold reached: opens now
  EXPECT_EQ(cb.state(), CircuitState::kOpen);
  EXPECT_EQ(cb.opens(), 1u);
  EXPECT_FALSE(cb.record_failure(t0));  // already open: no second "open"
  EXPECT_EQ(cb.opens(), 1u);
}

TEST(Circuit, SuccessFullyReAdmitsFromAnyState) {
  CircuitBreaker cb(breaker_config(), Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  cb.record_failure(t0);
  cb.record_success();
  EXPECT_EQ(cb.state(), CircuitState::kHealthy);

  // The threshold counts *consecutive* failures: after a success it takes
  // two more to open again.
  EXPECT_FALSE(cb.record_failure(t0));
  EXPECT_TRUE(cb.record_failure(t0));
  EXPECT_EQ(cb.state(), CircuitState::kOpen);
  cb.record_success();
  EXPECT_EQ(cb.state(), CircuitState::kHealthy);
  EXPECT_EQ(cb.opens(), 1u);
}

TEST(Circuit, OpenCircuitAdmitsOnlyOnceProbeIsDue) {
  CircuitBreaker cb(breaker_config(), Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  cb.record_failure(t0);
  cb.record_failure(t0);
  ASSERT_EQ(cb.state(), CircuitState::kOpen);

  // The probe window is jittered into [0.5, 1.0) of the 100ms base.
  EXPECT_GE(cb.probe_after(), t0 + 50ms);
  EXPECT_LE(cb.probe_after(), t0 + 100ms);
  EXPECT_FALSE(cb.admits(t0));
  EXPECT_FALSE(cb.admits(cb.probe_after() - 1ms));
  EXPECT_TRUE(cb.admits(cb.probe_after()));  // half-open
}

TEST(Circuit, FailedProbesDoubleTheBackoffUpToTheCap) {
  CircuitBreaker cb(breaker_config(), Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  cb.record_failure(t0);
  cb.record_failure(t0);
  ASSERT_EQ(cb.state(), CircuitState::kOpen);

  // Failing half-open probes back the schedule off 200ms -> 400ms, then
  // pin at the 400ms cap; jitter keeps each window in [base/2, base).
  cb.record_failure(t0);
  EXPECT_GE(cb.probe_after(), t0 + 100ms);
  EXPECT_LE(cb.probe_after(), t0 + 200ms);
  cb.record_failure(t0);
  EXPECT_GE(cb.probe_after(), t0 + 200ms);
  EXPECT_LE(cb.probe_after(), t0 + 400ms);
  cb.record_failure(t0);
  EXPECT_GE(cb.probe_after(), t0 + 200ms);
  EXPECT_LE(cb.probe_after(), t0 + 400ms);

  // Recovery resets the schedule to the initial window.
  cb.record_success();
  cb.record_failure(t0);
  cb.record_failure(t0);
  EXPECT_LE(cb.probe_after(), t0 + 100ms);
}

TEST(Circuit, RejectsNonPositiveThreshold) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker(cfg, Rng(1)), InvalidArgument);
}

// Satellite 1: a shared default jitter_seed must not put two executors in
// retry lockstep — every fork_jitter_stream call draws a fresh stream.
TEST(Circuit, ForkedJitterStreamsDivergeAndReproduce) {
  reset_jitter_instances_for_test();
  Rng a = fork_jitter_stream(0x9e3779b97f4a7c15ULL);
  Rng b = fork_jitter_stream(0x9e3779b97f4a7c15ULL);
  std::vector<double> da, db;
  for (int i = 0; i < 8; ++i) {
    da.push_back(a.uniform());
    db.push_back(b.uniform());
  }
  EXPECT_NE(da, db) << "same-seed executors draw identical jitter";

  // Resetting the instance counter replays the exact fork sequence: the
  // schedules are deterministic, just not shared.
  reset_jitter_instances_for_test();
  Rng a2 = fork_jitter_stream(0x9e3779b97f4a7c15ULL);
  std::vector<double> da2;
  for (int i = 0; i < 8; ++i) {
    da2.push_back(a2.uniform());
  }
  EXPECT_EQ(da, da2);
}

// ---------------------------------------------------------------------------
// Pool dispatch.

TEST(Pool, RejectsSingleEndpointConfigsItCannotParse) {
  EXPECT_THROW(PoolExecutor(pool_config("loopback,,loopback")),
               InvalidArgument);
  RemoteConfig bad = pool_config("loopback,loopback");
  bad.max_attempts = 0;
  EXPECT_THROW(PoolExecutor{bad}, InvalidArgument);
}

TEST(Pool, LoopbackPoolMatchesSimByteIdentical) {
  const ProgramSequence seq = mixed_sequence(6, 5);
  Crossbar local(6, 5, dev(), ag_crosstalk());
  Crossbar pooled(6, 5, dev(), ag_crosstalk());

  const PoolExecutor pool{pool_config("loopback,loopback,loopback")};
  ASSERT_EQ(pool.size(), 3u);
  const ExecReport want = SimExecutor{}.execute(local, seq);
  const ExecReport got = pool.execute(pooled, seq);

  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(snapshot(pooled), snapshot(local));
  EXPECT_FALSE(pool.degraded());
  EXPECT_EQ(pool.link_stats().fallbacks, 0u);
  EXPECT_EQ(pool.link_stats().requests, 1u);
}

TEST(Pool, DispatchFollowsTheRendezvousOwner) {
  const PoolExecutor pool{pool_config("loopback,loopback,loopback")};
  const ProgramSequence seq = mixed_sequence(4, 4);
  for (std::size_t slot = 0; slot < pool.size(); ++slot) {
    auto xb = crossbar_owned_by(slot, pool.addresses());
    ASSERT_NE(xb, nullptr);
    pool.execute(*xb, seq);
    EXPECT_EQ(pool.endpoint_summaries()[slot].requests, 1u)
        << "request did not land on owner slot " << slot;
  }
  std::uint64_t total = 0;
  for (const auto& ep : pool.endpoint_summaries()) {
    total += ep.requests;
    EXPECT_EQ(ep.failovers, 0u);
    EXPECT_EQ(ep.circuit, "healthy");
  }
  EXPECT_EQ(total, 3u);
}

TEST(Pool, DeadOwnerFailsOverWithoutBurningTheBudget) {
  // Endpoint 0 can never answer; its arrays must fail over to a live
  // worker inside the same budget round — zero fallbacks, zero
  // degradation, byte-identical results.
  const PoolExecutor pool{pool_config("127.0.0.1:1,loopback,loopback")};
  const ProgramSequence seq = mixed_sequence(4, 4);

  auto owned = crossbar_owned_by(0, pool.addresses());
  ASSERT_NE(owned, nullptr);
  Crossbar local(4, 4, dev(), ag_crosstalk());

  const ExecReport want = SimExecutor{}.execute(local, seq);
  const ExecReport got = pool.execute(*owned, seq);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(snapshot(*owned), snapshot(local));

  EXPECT_FALSE(pool.degraded());
  const auto eps = pool.endpoint_summaries();
  EXPECT_EQ(eps[0].requests, 0u);
  EXPECT_EQ(eps[0].failovers, 1u);
  EXPECT_EQ(eps[0].circuit, "suspect");
  EXPECT_EQ(eps[1].requests + eps[2].requests, 1u);
  const RemoteLinkStats stats = pool.link_stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(Pool, RepeatedFailuresOpenTheCircuitAndDispatchSkipsIt) {
  const PoolExecutor pool{pool_config("127.0.0.1:1,loopback,loopback")};
  const ProgramSequence seq = mixed_sequence(4, 4);

  // Two dead-owner requests: failure #2 opens endpoint 0's circuit.
  for (int i = 0; i < 2; ++i) {
    auto xb = crossbar_owned_by(0, pool.addresses());
    ASSERT_NE(xb, nullptr);
    pool.execute(*xb, seq);
  }
  auto eps = pool.endpoint_summaries();
  EXPECT_EQ(eps[0].circuit, "open");
  EXPECT_EQ(eps[0].circuit_opens, 1u);
  EXPECT_EQ(eps[0].failovers, 2u);

  // While open (probe not yet due), dispatch routes around it without
  // even attempting a connection: failovers must not grow.
  auto xb = crossbar_owned_by(0, pool.addresses());
  ASSERT_NE(xb, nullptr);
  pool.execute(*xb, seq);
  eps = pool.endpoint_summaries();
  EXPECT_EQ(eps[0].failovers, 2u);
  EXPECT_FALSE(pool.degraded());
}

TEST(Pool, KillMatrixAnySingleEndpointDownIsInvisible) {
  // The chaos kill matrix: for every endpoint k of 3 and every failure
  // mode (disconnect=1.0 severs the transport, corrupt=1.0 mangles every
  // frame into a CRC/framing error), break exactly k and run a workload.
  // Any single-worker failure must produce zero fallbacks and results
  // byte-identical to the local sim — the tentpole acceptance property.
  const ProgramSequence seq = mixed_sequence(5, 4);
  for (const char* fault : {"seed=9,disconnect=1.0", "seed=9,corrupt=1.0"}) {
    for (std::size_t k = 0; k < 3; ++k) {
      SCOPED_TRACE(std::string("fault: ") + fault +
                   ", endpoint: " + std::to_string(k));
      std::string spec;
      for (std::size_t i = 0; i < 3; ++i) {
        if (i == k) {
          spec += fault;
        }
        if (i + 1 < 3) {
          spec += ';';
        }
      }
      RemoteConfig cfg = pool_config("loopback,loopback,loopback");
      cfg.fault_spec = spec;
      const PoolExecutor pool{cfg};

      for (int arrays = 0; arrays < 4; ++arrays) {
        Crossbar local(5, 4, dev(), ag_crosstalk());
        Crossbar pooled(5, 4, dev(), ag_crosstalk());
        const ExecReport want = SimExecutor{}.execute(local, seq);
        const ExecReport got = pool.execute(pooled, seq);
        EXPECT_EQ(got.results, want.results);
        EXPECT_EQ(snapshot(pooled), snapshot(local));
      }
      EXPECT_FALSE(pool.degraded());
      const RemoteLinkStats stats = pool.link_stats();
      EXPECT_EQ(stats.requests, 4u);
      EXPECT_EQ(stats.fallbacks, 0u);
      EXPECT_EQ(pool.endpoint_summaries()[k].requests, 0u);
    }
  }
}

TEST(Pool, WholePoolDownFallsBackToLocalSim) {
  RemoteConfig cfg = pool_config("127.0.0.1:1,127.0.0.1:1,127.0.0.1:1");
  const PoolExecutor pool{cfg};
  const ProgramSequence seq = mixed_sequence(4, 4);

  Crossbar local(4, 4, dev(), ag_crosstalk());
  Crossbar pooled(4, 4, dev(), ag_crosstalk());
  const ExecReport want = SimExecutor{}.execute(local, seq);
  const ExecReport got = pool.execute(pooled, seq);

  // Pool-wide exhaustion: the one fallback, byte-identical by
  // construction because no failed attempt mutated local state.
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(snapshot(pooled), snapshot(local));
  EXPECT_TRUE(pool.degraded());
  const RemoteLinkStats stats = pool.link_stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);
  // max_attempts=2 rounds over 3 endpoints: every attempt failed over.
  EXPECT_GE(stats.retries, 3u);
}

TEST(Pool, WholePoolDownWithFallbackDisabledThrows) {
  RemoteConfig cfg = pool_config("127.0.0.1:1,127.0.0.1:1");
  cfg.fallback_to_sim = false;
  cfg.max_attempts = 1;
  const PoolExecutor pool{cfg};
  Crossbar xb(4, 4, dev(), ag_crosstalk());
  EXPECT_THROW(pool.execute(xb, mixed_sequence(4, 4)),
               net::TransportError);
  EXPECT_FALSE(pool.degraded());
  EXPECT_EQ(pool.link_stats().fallbacks, 0u);
}

TEST(Pool, WorkerRejectionDoesNotFailOver) {
  // A deterministic worker-side rejection (sequence geometry exceeding
  // the shipped array) would be rejected identically by every worker:
  // the pool must rethrow instead of spraying the bad request across the
  // fleet, and no failover may be counted.
  const PoolExecutor pool{pool_config("loopback,loopback")};
  Crossbar xb(3, 3, dev(), ag_crosstalk());
  EXPECT_THROW(pool.execute(xb, mixed_sequence(8, 8)), RemoteWorkerError);
  for (const auto& ep : pool.endpoint_summaries()) {
    EXPECT_EQ(ep.failovers, 0u);
  }
  EXPECT_FALSE(pool.degraded());
}

TEST(Pool, PinLocalFallbackRoutesEverythingLocal) {
  const PoolExecutor pool{pool_config("127.0.0.1:1,127.0.0.1:1")};
  EXPECT_TRUE(pool.pin_local_fallback());
  EXPECT_FALSE(pool.pin_local_fallback());  // only the transition is true
  EXPECT_TRUE(pool.degraded());

  // Pinned executes never dial: with both endpoints dead this would
  // otherwise cost dial timeouts and count failovers.
  Crossbar local(4, 4, dev(), ag_crosstalk());
  Crossbar pooled(4, 4, dev(), ag_crosstalk());
  const ProgramSequence seq = mixed_sequence(4, 4);
  const ExecReport want = SimExecutor{}.execute(local, seq);
  const ExecReport got = pool.execute(pooled, seq);
  EXPECT_EQ(got.results, want.results);
  for (const auto& ep : pool.endpoint_summaries()) {
    EXPECT_EQ(ep.failovers, 0u);
    EXPECT_EQ(ep.requests, 0u);
  }
}

// ---------------------------------------------------------------------------
// Per-endpoint telemetry.

TEST(Pool, PerEndpointCountersLandInTheAttachedRegistry) {
  obs::Registry reg;
  set_remote_metrics(&reg);
  const PoolExecutor pool{pool_config("127.0.0.1:1,loopback,loopback")};
  const ProgramSequence seq = mixed_sequence(4, 4);
  auto owned = crossbar_owned_by(0, pool.addresses());
  ASSERT_NE(owned, nullptr);
  pool.execute(*owned, seq);
  set_remote_metrics(nullptr);

  // The dead owner counts a failover under its own prefix; whichever
  // live endpoint completed the request counts it under its prefix.
  EXPECT_EQ(reg.counter("executor.pool.0.failovers").value(), 1u);
  const std::uint64_t served =
      reg.counter("executor.pool.1.requests").value() +
      reg.counter("executor.pool.2.requests").value();
  EXPECT_EQ(served, 1u);
}

// ---------------------------------------------------------------------------
// Executor-registry and envelope wiring.

TEST(Pool, RegistryBuildsPoolForCommaAddressAndStampsSummary) {
  RemoteConfig cfg = pool_config("loopback,loopback,loopback");
  configure_remote_executor(cfg);
  set_executor("remote");
  EXPECT_EQ(executor_name(), "remote");  // pools keep the remote name

  ExecutorPoolSummary summary = executor_pool_summary();
  ASSERT_TRUE(summary.active);
  ASSERT_EQ(summary.endpoints.size(), 3u);
  for (const auto& ep : summary.endpoints) {
    EXPECT_EQ(ep.address, "loopback");
    EXPECT_EQ(ep.circuit, "healthy");
  }

  // The summary is gated on the pool being the *active* backend.
  set_executor("sim");
  EXPECT_FALSE(executor_pool_summary().active);

  // A single-endpoint remote never stamps a pool summary.
  configure_remote_executor(RemoteConfig{});
  set_executor("remote");
  EXPECT_FALSE(executor_pool_summary().active);
  set_executor("sim");
}

}  // namespace
}  // namespace xbarlife::xbar
