#include "xbar/nonideal.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {
namespace {

device::DeviceParams dev() { return device::DeviceParams{}; }
aging::AgingParams ag() { return aging::AgingParams{}; }

TEST(NonidealityConfig, Validation) {
  NonidealityConfig c;
  EXPECT_NO_THROW(c.validate());
  c.write_noise_sigma = -0.1;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = NonidealityConfig{};
  c.stuck_off_fraction = 0.7;
  c.stuck_on_fraction = 0.5;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(WriteNoise, ZeroSigmaIsExact) {
  NonidealityConfig c;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(apply_write_noise(c, 5e-5, rng), 5e-5);
}

TEST(WriteNoise, PerturbsWithConfiguredSpread) {
  NonidealityConfig c;
  c.write_noise_sigma = 0.1;
  Rng rng(2);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    rs.add(apply_write_noise(c, 1e-5, rng) / 1e-5);
  }
  EXPECT_NEAR(rs.mean(), 1.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 0.1, 0.01);
  EXPECT_GT(rs.min(), 0.0);  // never non-physical
}

TEST(ReadNoise, IndependentSamplesDiffer) {
  NonidealityConfig c;
  c.read_noise_sigma = 0.05;
  Rng rng(3);
  const double a = apply_read_noise(c, 1e-5, rng);
  const double b = apply_read_noise(c, 1e-5, rng);
  EXPECT_NE(a, b);
}

TEST(FaultMap, DeterministicAndBounded) {
  NonidealityConfig c;
  c.stuck_off_fraction = 0.05;
  c.stuck_on_fraction = 0.02;
  FaultMap a(40, 40, c, 7);
  FaultMap b(40, 40, c, 7);
  std::size_t off = 0;
  std::size_t on = 0;
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t col = 0; col < 40; ++col) {
      EXPECT_EQ(a.at(r, col), b.at(r, col));
      off += a.at(r, col) == FaultMap::Fault::kStuckOff ? 1u : 0u;
      on += a.at(r, col) == FaultMap::Fault::kStuckOn ? 1u : 0u;
    }
  }
  EXPECT_NEAR(static_cast<double>(off) / 1600.0, 0.05, 0.02);
  EXPECT_NEAR(static_cast<double>(on) / 1600.0, 0.02, 0.015);
  EXPECT_EQ(a.fault_count(), off + on);
}

TEST(FaultMap, CleanConfigHasNoFaults) {
  FaultMap m(10, 10, {}, 1);
  EXPECT_EQ(m.fault_count(), 0u);
  EXPECT_EQ(m.at(5, 5), FaultMap::Fault::kNone);
}

TEST(FaultedConductance, OverridesByFaultKind) {
  EXPECT_DOUBLE_EQ(
      faulted_conductance(FaultMap::Fault::kNone, 5e-5, 1e-5, 1e-4),
      5e-5);
  EXPECT_DOUBLE_EQ(
      faulted_conductance(FaultMap::Fault::kStuckOff, 5e-5, 1e-5, 1e-4),
      1e-5);
  EXPECT_DOUBLE_EQ(
      faulted_conductance(FaultMap::Fault::kStuckOn, 5e-5, 1e-5, 1e-4),
      1e-4);
}

TEST(IrDrop, AttenuatesFarCellsMore) {
  NonidealityConfig c;
  c.line_resistance = 5.0;
  const double near = ir_drop_conductance(c, 1e-4, 0, 0);
  const double far = ir_drop_conductance(c, 1e-4, 63, 63);
  EXPECT_LT(near, 1e-4);
  EXPECT_LT(far, near);
  // Low conductances barely notice the wire.
  EXPECT_NEAR(ir_drop_conductance(c, 1e-6, 63, 63), 1e-6, 1e-9);
}

TEST(IrDrop, ZeroLineResistanceIsIdentity) {
  NonidealityConfig c;
  EXPECT_DOUBLE_EQ(ir_drop_conductance(c, 1e-4, 63, 63), 1e-4);
}

TEST(ObservedConductances, IdealConfigMatchesTrueState) {
  Crossbar xb(4, 4, dev(), ag());
  xb.program_cell(1, 2, 5e4);
  Rng rng(4);
  Tensor g = observed_conductances(xb, {}, nullptr, rng);
  EXPECT_TRUE(allclose(g, xb.conductances(), 1e-9f));
}

TEST(ObservedConductances, AppliesFaultsAndNoise) {
  Crossbar xb(6, 6, dev(), ag());
  NonidealityConfig c;
  c.read_noise_sigma = 0.02;
  c.stuck_on_fraction = 0.2;
  FaultMap faults(6, 6, c, 9);
  ASSERT_GT(faults.fault_count(), 0u);
  Rng rng(5);
  Tensor g = observed_conductances(xb, c, &faults, rng);
  // Fresh cells sit at g_min; stuck-on cells must read near g_max.
  bool saw_stuck_on = false;
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t col = 0; col < 6; ++col) {
      if (faults.at(r, col) == FaultMap::Fault::kStuckOn) {
        saw_stuck_on = true;
        EXPECT_GT(g.at(r, col), 0.5e-4f);
      }
    }
  }
  EXPECT_TRUE(saw_stuck_on);
}

TEST(ObservedConductances, FaultMapSizeMismatchThrows) {
  Crossbar xb(4, 4, dev(), ag());
  FaultMap faults(5, 5, {}, 1);
  Rng rng(6);
  EXPECT_THROW(observed_conductances(xb, {}, &faults, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::xbar
