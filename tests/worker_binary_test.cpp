// xbarlife-worker startup failure modes (satellite 3): a bind that can
// never succeed as asked — the address is already bound by a live
// worker, or the unix socket path is not writable — must exit 2 with a
// one-line actionable error, so process supervisors fail fast instead of
// crash-looping on a socket that will never come up.
//
// The binary path comes in via XBARLIFE_WORKER_PATH (set in
// tests/CMakeLists.txt from $<TARGET_FILE:xbarlife_worker>).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

using namespace std::chrono_literals;

std::string worker_path() { return XBARLIFE_WORKER_PATH; }

/// Runs the worker with `args`, capturing stderr to `err_file`, and
/// returns its exit code (-1 when the shell itself failed).
int run_worker(const std::string& args, const std::string& err_file) {
  const std::string cmd = worker_path() + " " + args + " >/dev/null 2>" +
                          err_file;
  const int status = std::system(cmd.c_str());
#ifdef _WIN32
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(WorkerBinary, MissingListenFlagExitsTwo) {
  const std::string err = "/tmp/xbarlife-worker-test-noflag.err";
  EXPECT_EQ(run_worker("", err), 2);
  EXPECT_NE(slurp(err).find("--listen is required"), std::string::npos);
  std::remove(err.c_str());
}

TEST(WorkerBinary, UnwritableUnixSocketPathExitsTwoWithActionableError) {
  const std::string err = "/tmp/xbarlife-worker-test-unwritable.err";
  EXPECT_EQ(run_worker(
                "--listen unix:/nonexistent-xbarlife-dir/worker.sock", err),
            2);
  const std::string msg = slurp(err);
  // One actionable line: names the address and suggests the likely fix.
  EXPECT_NE(msg.find("cannot listen on "
                     "'unix:/nonexistent-xbarlife-dir/worker.sock'"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("not writable"), std::string::npos) << msg;
  std::remove(err.c_str());
}

TEST(WorkerBinary, AlreadyBoundAddressExitsTwoWithActionableError) {
  // Worker 1 grabs an ephemeral TCP port; worker 2 asking for the same
  // port must exit 2 immediately (unix sockets can't express this case —
  // the listener replaces stale socket files by design).
  const std::string out = "/tmp/xbarlife-worker-test-bound.out";
  const std::string err = "/tmp/xbarlife-worker-test-bound.err";
  const std::string cmd =
      worker_path() + " --listen 127.0.0.1:0 >" + out + " 2>/dev/null &";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  // Wait for "listening on 127.0.0.1:<port>" to learn the bound port.
  std::string addr;
  for (int i = 0; i < 100 && addr.empty(); ++i) {
    std::this_thread::sleep_for(50ms);
    std::istringstream lines(slurp(out));
    std::string line;
    while (std::getline(lines, line)) {
      const std::string prefix = "listening on ";
      if (line.rfind(prefix, 0) == 0) {
        addr = line.substr(prefix.size());
        break;
      }
    }
  }
  ASSERT_FALSE(addr.empty()) << "worker 1 never reported its address";

  EXPECT_EQ(run_worker("--listen " + addr, err), 2);
  const std::string msg = slurp(err);
  EXPECT_NE(msg.find("cannot listen on '" + addr + "'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("already bound"), std::string::npos) << msg;

  // Tear worker 1 down (SIGTERM -> graceful exit 0).
  std::system("pkill -TERM -f 'xbarlife-worker --listen 127.0.0.1:0' "
              ">/dev/null 2>&1");
  std::remove(out.c_str());
  std::remove(err.c_str());
}

}  // namespace
