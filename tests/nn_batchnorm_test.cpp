#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/gradient_check.hpp"

namespace xbarlife::nn {
namespace {

TEST(BatchNorm, TrainingForwardNormalizesPerFeature) {
  BatchNorm bn(2);
  Tensor x(Shape{4, 2}, std::vector<float>{1, 10, 2, 20, 3, 30, 4, 40});
  Tensor y = bn.forward(x, /*training=*/true);
  // Each feature column has (near-)zero mean and unit variance, scaled by
  // gamma=1 and shifted by beta=0.
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t b = 0; b < 4; ++b) {
      mean += y.at(b, f);
    }
    mean /= 4.0;
    for (std::size_t b = 0; b < 4; ++b) {
      var += (y.at(b, f) - mean) * (y.at(b, f) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveInference) {
  BatchNorm bn(1, /*momentum=*/0.5);
  Tensor x(Shape{2, 1}, std::vector<float>{4.0f, 6.0f});  // mean 5, var 1
  for (int i = 0; i < 30; ++i) {
    bn.forward(x, /*training=*/true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 1e-3f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 1e-2f);
  // Inference mode uses the running stats: input 5 -> ~0.
  Tensor probe(Shape{1, 1}, 5.0f);
  Tensor y = bn.forward(probe, /*training=*/false);
  EXPECT_NEAR(y[0], 0.0f, 1e-2f);
}

TEST(BatchNorm, GammaBetaAffectOutput) {
  BatchNorm bn(1);
  auto params = bn.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_FALSE(params[0].mappable);  // stays digital
  (*params[0].value)[0] = 2.0f;      // gamma
  (*params[1].value)[0] = 3.0f;      // beta
  Tensor x(Shape{2, 1}, std::vector<float>{-1.0f, 1.0f});
  Tensor y = bn.forward(x, /*training=*/true);
  EXPECT_NEAR(y[0], 3.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(y[1], 3.0f + 2.0f, 1e-3f);
}

TEST(BatchNorm, GradientCheckThroughNetwork) {
  Rng rng(3);
  Network net("bn-net");
  net.add(std::make_unique<Dense>(5, 6, rng, "fc1"));
  net.add(std::make_unique<BatchNorm>(6));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(6, 3, rng, "fc2"));
  Tensor x(Shape{4, 5});
  x.fill_gaussian(rng, 0.0f, 1.0f);
  const std::vector<std::int32_t> labels{0, 1, 2, 0};
  const auto r = check_gradients(net, x, labels, 1e-3);
  EXPECT_LT(r.max_rel_error, 8e-2);
}

TEST(BatchNorm, RejectsInvalidConstructionAndInput) {
  EXPECT_THROW(BatchNorm(0), InvalidArgument);
  EXPECT_THROW(BatchNorm(4, 1.0), InvalidArgument);
  EXPECT_THROW(BatchNorm(4, 0.9, 0.0), InvalidArgument);
  BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 3}), true), InvalidArgument);
  // Training with batch 1 is undefined (zero variance).
  EXPECT_THROW(bn.forward(Tensor(Shape{1, 4}), true), InvalidArgument);
  // Inference with batch 1 is fine.
  EXPECT_NO_THROW(bn.forward(Tensor(Shape{1, 4}), false));
}

}  // namespace
}  // namespace xbarlife::nn
