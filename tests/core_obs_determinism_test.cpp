// Observability under parallelism: the aggregated metric snapshot and the
// spliced event stream of a sweep must be byte-identical between a serial
// and a threaded run, wall-clock fields aside. This is the acceptance
// gate for instrumenting the fan-out layer at all.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/scenario_runner.hpp"
#include "obs/obs.hpp"
#include "obs/perfetto.hpp"
#include "obs/profiler.hpp"
#include "obs/sink.hpp"

namespace xbarlife::core {
namespace {

/// Restores the serial default so test order never leaks thread state.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(1); }
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.name = "obs-tiny";
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {16};
  cfg.dataset.classes = 4;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 6;
  cfg.dataset.width = 6;
  cfg.dataset.train_per_class = 24;
  cfg.dataset.test_per_class = 6;
  cfg.dataset.noise = 0.1;
  cfg.train_config.epochs = 2;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.lifetime.max_sessions = 8;
  cfg.lifetime.tuning.eval_samples = 24;
  cfg.lifetime.tuning.max_iterations = 20;
  cfg.target_accuracy_fraction = 0.8;
  return cfg;
}

/// Drops the wall-clock fields ("t_ms" always, "wall_ms" in
/// sweep_job_done payloads) from a serialized event line so the
/// deterministic remainder can be compared byte-for-byte.
std::string strip_wall_clock(const std::string& line) {
  std::string out = line;
  for (const char* key : {"\"t_ms\":", "\"wall_ms\":"}) {
    const std::size_t at = out.find(key);
    if (at == std::string::npos) {
      continue;
    }
    std::size_t end = out.find_first_of(",}", at + std::string(key).size());
    if (end != std::string::npos && out[end] == ',') {
      ++end;  // also eat the separating comma
    }
    out.erase(at, end - at);
  }
  return out;
}

/// Removes every `"key":<value>` occurrence from a serialized JSON
/// string — used to drop the nondeterministic Perfetto ts/dur fields
/// before comparing whole trace documents.
std::string strip_all(std::string out,
                      std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    std::size_t at = 0;
    while ((at = out.find(key, at)) != std::string::npos) {
      std::size_t end = out.find_first_of(",}", at + std::strlen(key));
      if (end != std::string::npos && out[end] == ',') {
        ++end;  // also eat the separating comma
      }
      out.erase(at, end - at);
    }
  }
  return out;
}

struct SweepCapture {
  std::vector<std::string> events;
  std::string metrics_json;
  std::string profile_skeleton;   ///< report_json(false), no wall clock
  std::string perfetto_stripped;  ///< full trace minus ts/dur
  std::vector<ScenarioSweepEntry> entries;
};

SweepCapture run_sweep(const std::vector<ScenarioJob>& jobs,
                       std::size_t threads) {
  set_parallel_threads(threads);
  obs::Registry registry;
  obs::MemorySink sink;
  obs::EventTrace trace(&sink);
  obs::Profiler profiler;
  const std::size_t root = profiler.begin_span("sweep");
  const ScenarioRunner runner;
  SweepCapture cap;
  cap.entries = runner.run(jobs, obs::Obs{&registry, &trace, &profiler});
  profiler.end_span(root);
  cap.events = sink.lines();
  cap.metrics_json = registry.to_json("_ms").dump();
  cap.profile_skeleton = profiler.report_json(false).dump();
  cap.perfetto_stripped =
      strip_all(obs::perfetto_trace_json(profiler, "test").dump(),
                {"\"ts\":", "\"dur\":"});
  return cap;
}

TEST(ObsDeterminism, ThreadedSweepMatchesSerialByteForByte) {
  ThreadGuard guard;
  const auto jobs = ScenarioRunner::cross(
      tiny_config(), {Scenario::kTT, Scenario::kSTAT}, 2);

  const SweepCapture serial = run_sweep(jobs, 1);
  const SweepCapture threaded = run_sweep(jobs, 4);

  // Metric aggregates: identical after excluding wall-clock histograms.
  EXPECT_EQ(serial.metrics_json, threaded.metrics_json);
  EXPECT_NE(serial.metrics_json.find("aging.pulses"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("lifetime.sessions"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("sweep.jobs"), std::string::npos);

  // Event streams: same length, same payloads once wall-clock fields are
  // stripped — ordering included, since per-job traces are spliced in
  // job-index order.
  ASSERT_EQ(serial.events.size(), threaded.events.size());
  ASSERT_FALSE(serial.events.empty());
  for (std::size_t i = 0; i < serial.events.size(); ++i) {
    EXPECT_EQ(strip_wall_clock(serial.events[i]),
              strip_wall_clock(threaded.events[i]))
        << "event " << i;
  }
}

TEST(ObsDeterminism, ProfilerAggregatesIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto jobs = ScenarioRunner::cross(
      tiny_config(), {Scenario::kTT, Scenario::kSTAT}, 2);

  const SweepCapture serial = run_sweep(jobs, 1);
  const SweepCapture threaded = run_sweep(jobs, 4);

  // Span-aggregate skeleton (names, counts, counters — no wall clock):
  // byte-identical, because job profilers are adopted in job-index order.
  EXPECT_EQ(serial.profile_skeleton, threaded.profile_skeleton);
  EXPECT_NE(serial.profile_skeleton.find("\"sweep.job\""),
            std::string::npos);
  EXPECT_NE(serial.profile_skeleton.find("\"experiment.scenario\""),
            std::string::npos);
  EXPECT_NE(serial.profile_skeleton.find("\"lifetime.session\""),
            std::string::npos);
  EXPECT_NE(serial.profile_skeleton.find("\"tuning.session\""),
            std::string::npos);
  EXPECT_NE(serial.profile_skeleton.find("\"train.fit\""),
            std::string::npos);
  // Domain counters attribute into the span tree.
  EXPECT_NE(serial.profile_skeleton.find("\"tuning.pulses\""),
            std::string::npos);

  // The full Perfetto export — paths, content-addressed ids, tracks,
  // counters — is byte-identical once ts/dur are stripped.
  EXPECT_EQ(serial.perfetto_stripped, threaded.perfetto_stripped);
  EXPECT_NE(serial.perfetto_stripped.find("\"traceEvents\""),
            std::string::npos);
}

TEST(ObsDeterminism, OneSweepJobDoneEventPerJob) {
  ThreadGuard guard;
  const auto jobs =
      ScenarioRunner::cross(tiny_config(), {Scenario::kTT}, 2);
  const SweepCapture cap = run_sweep(jobs, 2);

  std::vector<std::string> done_labels;
  for (const std::string& line : cap.events) {
    if (line.find("\"event\":\"sweep_job_done\"") != std::string::npos) {
      const std::size_t at = line.find("\"job\":\"");
      ASSERT_NE(at, std::string::npos) << line;
      const std::size_t start = at + 7;
      done_labels.push_back(
          line.substr(start, line.find('"', start) - start));
    }
  }
  ASSERT_EQ(done_labels.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(done_labels[i], jobs[i].label);
  }
}

TEST(ObsDeterminism, SessionEventsAreOrderedWithinEachJob) {
  ThreadGuard guard;
  const auto jobs =
      ScenarioRunner::cross(tiny_config(), {Scenario::kSTAT}, 2);
  const SweepCapture cap = run_sweep(jobs, 2);

  // Per job: session_start events carry strictly increasing session
  // indices, and every session_start is eventually followed by a
  // session_end before the job's sweep_job_done marker.
  std::map<std::string, int> last_session;
  std::map<std::string, int> open_sessions;
  for (const std::string& line : cap.events) {
    const std::size_t at = line.find("\"job\":\"");
    if (at == std::string::npos) {
      continue;
    }
    const std::size_t start = at + 7;
    const std::string job =
        line.substr(start, line.find('"', start) - start);
    if (line.find("\"event\":\"session_start\"") != std::string::npos) {
      const std::size_t s = line.find("\"session\":");
      ASSERT_NE(s, std::string::npos);
      const int session = std::stoi(line.substr(s + 10));
      auto it = last_session.find(job);
      if (it != last_session.end()) {
        EXPECT_GT(session, it->second) << line;
      }
      last_session[job] = session;
      ++open_sessions[job];
    } else if (line.find("\"event\":\"session_end\"") !=
               std::string::npos) {
      --open_sessions[job];
      EXPECT_GE(open_sessions[job], 0) << line;
    } else if (line.find("\"event\":\"sweep_job_done\"") !=
               std::string::npos) {
      EXPECT_EQ(open_sessions[job], 0) << line;
    }
  }
  EXPECT_EQ(last_session.size(), jobs.size());
}

TEST(ObsDeterminism, MetricsOnlyHandleCollectsWithoutTrace) {
  ThreadGuard guard;
  const auto jobs =
      ScenarioRunner::cross(tiny_config(), {Scenario::kTT}, 1);
  obs::Registry registry;
  const ScenarioRunner runner;
  const auto entries = runner.run(jobs, obs::Obs{&registry, nullptr});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(registry.counter("sweep.jobs").value(), 1u);
  EXPECT_GT(registry.counter("aging.pulses").value(), 0u);
  EXPECT_GT(registry.counter("lifetime.sessions").value(), 0u);
}

}  // namespace
}  // namespace xbarlife::core
