#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace xbarlife {
namespace {

TEST(Histogram, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  h.add(5.5);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, DensitySumsToOne) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i % 10) / 10.0);
  }
  double total = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    total += h.density(b);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, DensityOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
}

TEST(Histogram, SpanOverloads) {
  Histogram h(0.0, 1.0, 2);
  const std::vector<double> d{0.1, 0.6};
  const std::vector<float> f{0.2f, 0.7f};
  h.add(d);
  h.add(f);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(Histogram, RenderContainsBarsAndCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

TEST(Histogram, CsvHasHeaderAndRows) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("bin_center,count,density"), std::string::npos);
  EXPECT_NE(csv.find("0.25,1,1"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, BinIndexOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.count(4), InvalidArgument);
  EXPECT_THROW(h.bin_center(9), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife
