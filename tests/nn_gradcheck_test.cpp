// Numerical gradient checks: the backbone of trust in the training
// substrate. Every layer type participates in at least one checked
// topology.
#include "nn/gradient_check.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace xbarlife::nn {
namespace {

std::vector<std::int32_t> cycle_labels(std::size_t batch,
                                       std::size_t classes) {
  std::vector<std::int32_t> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    labels[i] = static_cast<std::int32_t>(i % classes);
  }
  return labels;
}

Tensor random_input(std::size_t batch, std::size_t features,
                    std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{batch, features});
  x.fill_gaussian(rng, 0.0f, 1.0f);
  return x;
}

TEST(GradCheck, DenseOnly) {
  Rng rng(1);
  Network net("dense");
  net.add(std::make_unique<Dense>(6, 4, rng, "fc"));
  const auto r = check_gradients(net, random_input(3, 6, 2),
                                 cycle_labels(3, 4));
  EXPECT_GT(r.checked, 0u);
  EXPECT_LT(r.max_rel_error, 5e-2) << "abs=" << r.max_abs_error;
}

TEST(GradCheck, DenseReluStack) {
  Rng rng(2);
  Network net("mlp");
  net.add(std::make_unique<Dense>(5, 8, rng, "fc1"));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Dense>(8, 3, rng, "fc2"));
  const auto r = check_gradients(net, random_input(4, 5, 3),
                                 cycle_labels(4, 3));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, TanhStack) {
  Rng rng(3);
  Network net("tanh");
  net.add(std::make_unique<Dense>(4, 6, rng, "fc1"));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Dense>(6, 2, rng, "fc2"));
  const auto r = check_gradients(net, random_input(2, 4, 4),
                                 cycle_labels(2, 2));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, SigmoidStack) {
  Rng rng(4);
  Network net("sigmoid");
  net.add(std::make_unique<Dense>(4, 5, rng, "fc1"));
  net.add(std::make_unique<Sigmoid>());
  net.add(std::make_unique<Dense>(5, 3, rng, "fc2"));
  const auto r = check_gradients(net, random_input(3, 4, 5),
                                 cycle_labels(3, 3));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, ConvStack) {
  Rng rng(5);
  Network net("conv");
  ConvGeometry g{2, 5, 5, 3, 1, 1};
  net.add(std::make_unique<Conv2D>(g, 3, rng, "conv1"));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(3 * 5 * 5, 2, rng, "fc"));
  const auto r = check_gradients(net, random_input(2, 2 * 5 * 5, 6),
                                 cycle_labels(2, 2));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, MaxPoolStack) {
  Rng rng(6);
  Network net("pool");
  ConvGeometry g{1, 6, 6, 3, 1, 0};
  net.add(std::make_unique<Conv2D>(g, 2, rng, "conv1"));
  net.add(std::make_unique<Tanh>());
  PoolGeometry p{2, 4, 4, 2, 2};
  net.add(std::make_unique<MaxPool2D>(p, "pool"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(2 * 2 * 2, 3, rng, "fc"));
  const auto r = check_gradients(net, random_input(2, 36, 7),
                                 cycle_labels(2, 3));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, AvgPoolStack) {
  Rng rng(7);
  Network net("avgpool");
  ConvGeometry g{1, 6, 6, 3, 1, 0};
  net.add(std::make_unique<Conv2D>(g, 2, rng, "conv1"));
  PoolGeometry p{2, 4, 4, 2, 2};
  net.add(std::make_unique<AvgPool2D>(p, "pool"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(8, 2, rng, "fc"));
  const auto r = check_gradients(net, random_input(2, 36, 8),
                                 cycle_labels(2, 2));
  EXPECT_LT(r.max_rel_error, 5e-2);
}

TEST(GradCheck, LeNetStyleEndToEnd) {
  Rng rng(8);
  Network net("mini-lenet");
  ConvGeometry c1{1, 8, 8, 3, 1, 0};
  net.add(std::make_unique<Conv2D>(c1, 2, rng, "conv1"));
  net.add(std::make_unique<Tanh>());
  PoolGeometry p1{2, 6, 6, 2, 2};
  net.add(std::make_unique<MaxPool2D>(p1, "pool1"));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<Dense>(2 * 3 * 3, 6, rng, "fc1"));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Dense>(6, 4, rng, "fc2"));
  const auto r = check_gradients(net, random_input(3, 64, 9),
                                 cycle_labels(3, 4), 1e-2);
  // Pooling argmax kinks make finite differences locally unreliable;
  // allow extra slack on the deepest stack.
  EXPECT_LT(r.max_rel_error, 0.15);
}

}  // namespace
}  // namespace xbarlife::nn
