#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace xbarlife {
namespace {

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(Shape{rows, cols});
  t.fill_gaussian(rng, 0.0f, 1.0f);
  return t;
}

TEST(Matmul, SmallKnownProduct) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNoop) {
  Rng rng(1);
  Tensor a = random_matrix(5, 5, rng);
  Tensor eye(Shape{5, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    eye.at(i, i) = 1.0f;
  }
  EXPECT_TRUE(allclose(matmul(a, eye), a, 1e-5f));
  EXPECT_TRUE(allclose(matmul(eye, a), a, 1e-5f));
}

TEST(Matmul, ShapeErrors) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), ShapeError);
  EXPECT_THROW(matmul(Tensor(Shape{6}), a), ShapeError);
}

TEST(Matmul, AccumulateAddsIntoC) {
  Rng rng(2);
  Tensor a = random_matrix(3, 4, rng);
  Tensor b = random_matrix(4, 5, rng);
  Tensor c(Shape{3, 5}, 1.0f);
  matmul_accumulate(a, b, c);
  Tensor expected = matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i] + 1.0f, 1e-4f);
  }
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = random_matrix(6, 4, rng);  // (K x M)
  Tensor b = random_matrix(6, 5, rng);  // (K x N)
  Tensor expected = matmul(a.transposed(), b);
  EXPECT_TRUE(allclose(matmul_tn(a, b), expected, 1e-4f));
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(4);
  Tensor a = random_matrix(3, 6, rng);  // (M x K)
  Tensor b = random_matrix(5, 6, rng);  // (N x K)
  Tensor expected = matmul(a, b.transposed());
  EXPECT_TRUE(allclose(matmul_nt(a, b), expected, 1e-4f));
}

TEST(Matmul, SparseRowsSkippedCorrectly) {
  // The kernels multiply straight through zeros (no zero-skip since the
  // dispatch rewrite); sparse inputs must still match the reference.
  Rng rng(5);
  Tensor a = random_matrix(8, 8, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    a.at(2, i) = 0.0f;
    a.at(i, 3) = 0.0f;
  }
  Tensor b = random_matrix(8, 8, rng);
  EXPECT_TRUE(allclose(matmul(a, b), matmul_naive(a, b), 1e-4f));
}

TEST(Matmul, NonFiniteBPropagatesDespiteZeroSkip) {
  // Regression: the old blocked kernel's zero-skip (and the all_finite(b)
  // pre-scan that papered over it) used to swallow 0 * inf and 0 * nan.
  // The dispatched kernels multiply through zeros, so propagation holds
  // by construction — this pins it.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a(Shape{2, 2}, std::vector<float>{0, 1, 0, 0});
  Tensor b(Shape{2, 2}, std::vector<float>{nan, 2, 3, inf});
  const Tensor fast = matmul(a, b);
  const Tensor ref = matmul_naive(a, b);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.numel(); ++i) {
    EXPECT_EQ(std::isnan(fast[i]), std::isnan(ref[i])) << "i=" << i;
    if (!std::isnan(ref[i])) {
      EXPECT_FLOAT_EQ(fast[i], ref[i]) << "i=" << i;
    }
  }
  // c(0,0) = 0*nan + 1*3: the 0*nan term alone makes it nan — exactly the
  // contribution the zero-skip used to drop.
  EXPECT_TRUE(std::isnan(fast.at(0, 0)));
  // Row 1 is all zeros against a non-finite B: 0*nan and 0*inf are nan.
  EXPECT_TRUE(std::isnan(fast.at(1, 0)));
  EXPECT_TRUE(std::isnan(fast.at(1, 1)));
}

TEST(Matmul, NonFiniteBPropagatesInTn) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a(Shape{2, 2}, std::vector<float>{0, 1, 0, 2});  // a^T has zeros
  Tensor b(Shape{2, 2}, std::vector<float>{inf, 1, 2, 3});
  const Tensor got = matmul_tn(a, b);
  const Tensor ref = matmul_naive(a.transposed(), b);
  for (std::size_t i = 0; i < got.numel(); ++i) {
    EXPECT_EQ(std::isnan(got[i]), std::isnan(ref[i])) << "i=" << i;
    EXPECT_EQ(std::isinf(got[i]), std::isinf(ref[i])) << "i=" << i;
  }
}

TEST(Matmul, ParallelMatchesSerialBitwise) {
  // The kernels partition work by fixed grains and write disjoint slices,
  // so any thread count must produce bit-identical results.
  Rng rng(123);
  Tensor a = random_matrix(67, 41, rng);
  Tensor b = random_matrix(41, 53, rng);
  set_parallel_threads(1);
  const Tensor serial = matmul(a, b);
  const Tensor serial_tn = matmul_tn(a.transposed(), b);
  const Tensor serial_nt = matmul_nt(a, b.transposed());
  set_parallel_threads(4);
  EXPECT_TRUE(matmul(a, b) == serial);
  EXPECT_TRUE(matmul_tn(a.transposed(), b) == serial_tn);
  EXPECT_TRUE(matmul_nt(a, b.transposed()) == serial_nt);
  set_parallel_threads(1);
}

// Property sweep: blocked kernel == naive reference over assorted sizes,
// including sizes around the blocking boundaries (32, 64).
class MatmulSizeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulSizeSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Tensor a = random_matrix(m, k, rng);
  Tensor b = random_matrix(k, n, rng);
  Tensor fast = matmul(a, b);
  Tensor ref = matmul_naive(a, b);
  const float tol =
      1e-4f * static_cast<float>(k);  // fp accumulation slack
  EXPECT_TRUE(allclose(fast, ref, tol))
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulSizeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(7, 1, 7), std::make_tuple(16, 16, 16),
                      std::make_tuple(31, 33, 29), std::make_tuple(32, 64, 32),
                      std::make_tuple(33, 65, 31), std::make_tuple(64, 64, 1),
                      std::make_tuple(100, 50, 75),
                      std::make_tuple(5, 128, 5)));

}  // namespace
}  // namespace xbarlife
