// End-to-end integration: the full counter-aging framework on a small
// instance, asserting the paper's headline ordering
//   lifetime(T+T) <= lifetime(ST+T) <= lifetime(ST+AT)
// plus distribution and accuracy sanity along the way.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/experiment.hpp"

namespace xbarlife::core {
namespace {

ExperimentConfig mini_config() {
  ExperimentConfig cfg;
  cfg.name = "integration-mini";
  cfg.model = ExperimentConfig::Model::kMlp;
  cfg.mlp_hidden = {32};
  cfg.dataset.classes = 8;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.train_per_class = 60;
  cfg.dataset.test_per_class = 12;
  cfg.dataset.noise = 0.15;
  cfg.train_config.epochs = 6;
  cfg.train_config.batch = 16;
  cfg.train_config.learning_rate = 0.05;
  cfg.skew = {5e-2, 1e-3, -1.0};
  cfg.lifetime.max_sessions = 400;
  cfg.lifetime.tuning.eval_samples = 96;
  cfg.lifetime.tuning.max_iterations = 100;
  cfg.lifetime.tuning.min_grad_fraction = 2.0;
  cfg.lifetime.drift.sigma = 0.08;
  cfg.target_accuracy_fraction = 0.93;
  return cfg;
}

TEST(Integration, FullFrameworkReproducesScenarioOrdering) {
  const ExperimentConfig cfg = mini_config();
  const ExperimentResult result = run_experiment(cfg);

  const auto& tt = result.outcome(Scenario::kTT);
  const auto& stt = result.outcome(Scenario::kSTT);
  const auto& stat = result.outcome(Scenario::kSTAT);

  // Both training flavours reach a usable software accuracy, and the
  // skewed flavour does not collapse it (Table I's accuracy columns).
  EXPECT_GT(result.accuracy_traditional, 0.6);
  EXPECT_GT(result.accuracy_skewed, result.accuracy_traditional - 0.1);

  // All three scenarios eventually die (aging is real) ...
  EXPECT_TRUE(tt.lifetime.died);
  // ... and the paper's headline ordering holds.
  EXPECT_GT(stt.lifetime.lifetime_applications,
            tt.lifetime.lifetime_applications);
  EXPECT_GE(stat.lifetime.lifetime_applications,
            stt.lifetime.lifetime_applications);

  // The skewed-training gain is substantial (paper: 6-7x; accept >= 1.5x
  // on this miniature instance).
  EXPECT_GE(result.lifetime_ratio(Scenario::kSTT), 1.5);
  EXPECT_GE(result.lifetime_ratio(Scenario::kSTAT),
            result.lifetime_ratio(Scenario::kSTT));
}

TEST(Integration, TuningIterationsShowTheFailureKnee) {
  // Fig. 10's shape: iterations stay low for most of the lifetime, then
  // explode at the end.
  ExperimentConfig cfg = mini_config();
  const ScenarioOutcome o = run_scenario(cfg, Scenario::kTT);
  ASSERT_TRUE(o.lifetime.died);
  const auto& sessions = o.lifetime.sessions;
  ASSERT_GT(sessions.size(), 10u);
  // Median early-life iterations are small.
  std::vector<double> early;
  for (std::size_t i = 0; i < sessions.size() / 2; ++i) {
    early.push_back(static_cast<double>(sessions[i].tuning_iterations));
  }
  EXPECT_LT(summarize(std::span<const double>(early)).median, 5.0);
  // The terminal session fails even after the rescue retry, with a large
  // iteration count (initial attempt plus retry, possibly plateau-cut).
  EXPECT_FALSE(sessions.back().converged);
  EXPECT_GE(sessions.back().tuning_iterations, 40u);
}

TEST(Integration, AgedRmaxDeclinesOverLife) {
  // Fig. 11's ingredient: mean aged R_max declines monotonically (within
  // tolerance) as applications accumulate.
  ExperimentConfig cfg = mini_config();
  cfg.lifetime.max_sessions = 60;
  const ScenarioOutcome o = run_scenario(cfg, Scenario::kSTT);
  const auto& sessions = o.lifetime.sessions;
  ASSERT_GT(sessions.size(), 5u);
  EXPECT_LT(sessions.back().layer_mean_aged_rmax[0],
            sessions.front().layer_mean_aged_rmax[0]);
}

}  // namespace
}  // namespace xbarlife::core
