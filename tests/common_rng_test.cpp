#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace xbarlife {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.gaussian(3.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, GaussianRejectsNegativeStddev) {
  Rng rng(17);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(29);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c0() == c1()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(29);
  Rng p2(29);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace xbarlife
