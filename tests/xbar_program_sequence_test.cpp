#include "xbar/program_sequence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "persist/state_io.hpp"

namespace xbarlife::xbar {
namespace {

TEST(ProgramOp, FactoriesEncodeKindAndOperands) {
  const ProgramOp p = ProgramOp::pulse(3, 7, 5e4);
  EXPECT_EQ(p.kind, OpKind::kProgramPulse);
  EXPECT_EQ(p.row, 3u);
  EXPECT_EQ(p.col, 7u);
  EXPECT_DOUBLE_EQ(p.value, 5e4);

  const ProgramOp v = ProgramOp::verify(1, 2);
  EXPECT_EQ(v.kind, OpKind::kVerifyRead);
  EXPECT_EQ(v.row, 1u);
  EXPECT_EQ(v.col, 2u);
  EXPECT_DOUBLE_EQ(v.value, 0.0);

  const ProgramOp w = ProgramOp::wait(12.5);
  EXPECT_EQ(w.kind, OpKind::kWait);
  EXPECT_DOUBLE_EQ(w.value, 12.5);

  const ProgramOp b = ProgramOp::barrier();
  EXPECT_EQ(b.kind, OpKind::kBarrier);
  EXPECT_DOUBLE_EQ(b.value, 0.0);

  EXPECT_EQ(p, ProgramOp::pulse(3, 7, 5e4));
  EXPECT_NE(p, ProgramOp::pulse(3, 7, 6e4));
}

TEST(ProgramSequence, StatsCountKindsAndContiguousPulseRuns) {
  ProgramSequence seq;
  // Two pulse runs (lengths 2 and 1) split by a verify, plus a wait and
  // a barrier: batches counts maximal contiguous pulse runs.
  seq.push(ProgramOp::pulse(0, 0, 1e4));
  seq.push(ProgramOp::pulse(1, 0, 2e4));
  seq.push(ProgramOp::verify(0, 0));
  seq.push(ProgramOp::pulse(2, 0, 3e4));
  seq.push(ProgramOp::wait(7.0));
  seq.push(ProgramOp::barrier());

  const SequenceStats s = seq.stats();
  EXPECT_EQ(s.pulses, 3u);
  EXPECT_EQ(s.verifies, 1u);
  EXPECT_EQ(s.waits, 1u);
  EXPECT_EQ(s.barriers, 1u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_DOUBLE_EQ(s.wait_us, 7.0);
}

TEST(ProgramSequence, EmptySequenceHasZeroStats) {
  const ProgramSequence seq;
  EXPECT_TRUE(seq.empty());
  const SequenceStats s = seq.stats();
  EXPECT_EQ(s.pulses, 0u);
  EXPECT_EQ(s.batches, 0u);
}

TEST(ProgramSequence, SerializationRoundTripIsByteIdentical) {
  ProgramSequence seq;
  seq.push(ProgramOp::pulse(5, 9, 12345.6789));
  seq.push(ProgramOp::verify(5, 9));
  seq.push(ProgramOp::wait(0.25));
  seq.push(ProgramOp::barrier());

  persist::StateWriter w;
  seq.save_state(w);
  persist::StateReader r(w.data());
  const ProgramSequence back = ProgramSequence::load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, seq);

  // A second serialization of the restored sequence must produce the
  // exact same bytes (floats travel bit-cast).
  persist::StateWriter w2;
  back.save_state(w2);
  EXPECT_EQ(w2.data(), w.data());
}

TEST(ProgramSequence, LoadRejectsUnknownOpKind) {
  persist::StateWriter w;
  w.u64(1);
  w.u8(200);  // not a valid OpKind
  w.u32(0);
  w.u32(0);
  w.f64(0.0);
  persist::StateReader r(w.data());
  EXPECT_THROW(ProgramSequence::load_state(r), InvalidArgument);
}

TEST(SequenceBuilder, GroupsOpsIntoAscendingColumnsWithBarriers) {
  SequenceBuilder b(4, 4);
  // Staged in scattered order; build() must emit column 1's lane, a
  // barrier, then column 3's lane (empty columns are skipped).
  b.pulse(0, 3, 1e4);
  b.pulse(1, 1, 2e4);
  b.verify(2, 1);
  b.pulse(3, 3, 3e4);
  EXPECT_EQ(b.staged_ops(), 4u);

  const ProgramSequence seq = b.build();
  const auto& ops = seq.ops();
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0], ProgramOp::pulse(1, 1, 2e4));
  EXPECT_EQ(ops[1], ProgramOp::verify(2, 1));
  EXPECT_EQ(ops[2], ProgramOp::barrier());
  EXPECT_EQ(ops[3], ProgramOp::pulse(0, 3, 1e4));
  EXPECT_EQ(ops[4], ProgramOp::pulse(3, 3, 3e4));
}

TEST(SequenceBuilder, BuildResetsForReuse) {
  SequenceBuilder b(2, 2);
  b.pulse(0, 0, 1e4);
  EXPECT_FALSE(b.empty());
  const ProgramSequence first = b.build();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.staged_ops(), 0u);
  EXPECT_EQ(first.size(), 1u);

  b.pulse(1, 1, 2e4);
  const ProgramSequence second = b.build();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.ops()[0], ProgramOp::pulse(1, 1, 2e4));
}

TEST(SequenceBuilder, SingleColumnEmitsNoBarrier) {
  SequenceBuilder b(3, 3);
  b.pulse(0, 2, 1e4);
  b.pulse(1, 2, 2e4);
  b.wait(2, 5.0);
  const ProgramSequence seq = b.build();
  const SequenceStats s = seq.stats();
  EXPECT_EQ(s.barriers, 0u);
  EXPECT_EQ(s.pulses, 2u);
  EXPECT_EQ(s.waits, 1u);
  EXPECT_EQ(s.batches, 1u);
}

TEST(SequenceBuilder, RejectsOutOfRangeCoordinates) {
  SequenceBuilder b(2, 3);
  EXPECT_THROW(b.pulse(2, 0, 1e4), InvalidArgument);
  EXPECT_THROW(b.pulse(0, 3, 1e4), InvalidArgument);
  EXPECT_THROW(b.verify(5, 0), InvalidArgument);
  EXPECT_THROW(b.wait(3, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::xbar
