// Lifetime-protocol tests: session bookkeeping, failure detection, and the
// headline ordering property on a small instance.
#include "core/lifetime.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/trainer.hpp"
#include "nn/model_zoo.hpp"

namespace xbarlife::core {
namespace {

struct Fixture {
  data::TrainTest data;
  nn::Network net;

  Fixture()
      : data(data::make_blobs(4, 8, 40, 16, 0.25, 21)), net(make()) {
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batch = 20;
    cfg.learning_rate = 0.05;
    train(net, data, cfg, nullptr);
  }

  static nn::Network make() {
    Rng rng(8);
    return nn::make_mlp(8, {12}, 4, rng);
  }
};

LifetimeConfig small_config(double target) {
  LifetimeConfig lc;
  lc.levels = 16;
  lc.apps_per_session = 1000;
  lc.max_sessions = 10;
  lc.tuning.target_accuracy = target;
  lc.tuning.max_iterations = 30;
  lc.tuning.eval_samples = 48;
  lc.tuning.batch = 20;
  lc.drift.sigma = 0.05;
  return lc;
}

TEST(LifetimeSimulator, ValidatesConfig) {
  LifetimeConfig lc = small_config(0.5);
  lc.levels = 1;
  EXPECT_THROW(LifetimeSimulator{lc}, InvalidArgument);
  lc = small_config(0.5);
  lc.apps_per_session = 0;
  EXPECT_THROW(LifetimeSimulator{lc}, InvalidArgument);
  lc = small_config(0.5);
  lc.drift.sigma = -1.0;
  EXPECT_THROW(LifetimeSimulator{lc}, InvalidArgument);
}

TEST(LifetimeSimulator, HealthySurvivesToSessionCap) {
  Fixture f;
  tuning::HardwareNetwork hw(f.net, {}, {});
  LifetimeSimulator sim(small_config(0.3));  // easy target
  const LifetimeResult r =
      sim.run(hw, f.data.train, f.data.test, tuning::MappingPolicy::kFresh);
  EXPECT_FALSE(r.died);
  EXPECT_EQ(r.sessions.size(), 10u);
  EXPECT_EQ(r.lifetime_applications, 10u * 1000u);
}

TEST(LifetimeSimulator, SessionRecordsAreCumulative) {
  Fixture f;
  tuning::HardwareNetwork hw(f.net, {}, {});
  LifetimeSimulator sim(small_config(0.3));
  const LifetimeResult r =
      sim.run(hw, f.data.train, f.data.test, tuning::MappingPolicy::kFresh);
  for (std::size_t i = 0; i < r.sessions.size(); ++i) {
    const SessionRecord& rec = r.sessions[i];
    EXPECT_EQ(rec.session, i);
    EXPECT_EQ(rec.applications, (i + 1) * 1000u);
    EXPECT_EQ(rec.layer_mean_aged_rmax.size(), hw.layer_count());
    EXPECT_EQ(rec.layer_mean_usable_levels.size(), hw.layer_count());
    if (i > 0) {
      EXPECT_GE(rec.pulses_total, r.sessions[i - 1].pulses_total);
      // Aging is irreversible: mean aged r_max never recovers.
      EXPECT_LE(rec.layer_mean_aged_rmax[0],
                r.sessions[i - 1].layer_mean_aged_rmax[0] + 1e-6);
    }
  }
}

TEST(LifetimeSimulator, ImpossibleTargetDiesImmediately) {
  // Heavily overlapping classes so 100% accuracy is genuinely impossible
  // and the unreachable target must fail the first session.
  const auto noisy = data::make_blobs(4, 8, 40, 16, 1.5, 33);
  Rng rng(8);
  nn::Network net = nn::make_mlp(8, {12}, 4, rng);
  TrainConfig cfg;
  cfg.epochs = 5;
  train(net, noisy, cfg, nullptr);
  tuning::HardwareNetwork hw(net, {}, {});
  LifetimeConfig lc = small_config(0.9999);  // unreachable
  lc.tuning.max_iterations = 5;
  LifetimeSimulator sim(lc);
  const LifetimeResult r =
      sim.run(hw, noisy.train, noisy.test, tuning::MappingPolicy::kFresh);
  EXPECT_TRUE(r.died);
  EXPECT_EQ(r.sessions.size(), 1u);
  EXPECT_FALSE(r.sessions[0].converged);
  EXPECT_EQ(r.lifetime_applications, 0u);
}

TEST(LifetimeSimulator, AggressiveAgingKillsWithinCap) {
  Fixture f;
  aging::AgingParams hot;
  hot.a_f = 5e10;
  hot.a_g = 2e9;
  hot.current_exponent = 2.0;
  tuning::HardwareNetwork hw(f.net, {}, hot);
  LifetimeConfig lc = small_config(0.7);
  lc.max_sessions = 60;
  lc.drift.sigma = 0.1;
  LifetimeSimulator sim(lc);
  const LifetimeResult r =
      sim.run(hw, f.data.train, f.data.test, tuning::MappingPolicy::kFresh);
  EXPECT_TRUE(r.died);
  EXPECT_LT(r.sessions.size(), 60u);
  // The terminal session must be the non-converged one.
  EXPECT_FALSE(r.sessions.back().converged);
  for (std::size_t i = 0; i + 1 < r.sessions.size(); ++i) {
    EXPECT_TRUE(r.sessions[i].converged);
  }
}

TEST(LifetimeSimulator, DeterministicGivenSeeds) {
  auto run_once = [&]() {
    Fixture f;
    tuning::HardwareNetwork hw(f.net, {}, {});
    LifetimeSimulator sim(small_config(0.5));
    return sim
        .run(hw, f.data.train, f.data.test, tuning::MappingPolicy::kFresh)
        .lifetime_applications;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scenario, NamesAndPolicies) {
  EXPECT_STREQ(to_string(Scenario::kTT), "T+T");
  EXPECT_STREQ(to_string(Scenario::kSTT), "ST+T");
  EXPECT_STREQ(to_string(Scenario::kSTAT), "ST+AT");
  EXPECT_FALSE(uses_skewed_training(Scenario::kTT));
  EXPECT_TRUE(uses_skewed_training(Scenario::kSTT));
  EXPECT_TRUE(uses_skewed_training(Scenario::kSTAT));
  EXPECT_EQ(mapping_policy(Scenario::kTT), tuning::MappingPolicy::kFresh);
  EXPECT_EQ(mapping_policy(Scenario::kSTT), tuning::MappingPolicy::kFresh);
  EXPECT_EQ(mapping_policy(Scenario::kSTAT),
            tuning::MappingPolicy::kAgingAware);
}

}  // namespace
}  // namespace xbarlife::core
