// Training-loop behaviour: convergence on separable data, the effect of
// the skewed regularizer on the weight distribution (the paper's Fig. 6 /
// Fig. 9 property), optimizer mechanics and network bookkeeping.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <memory>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/gradient_check.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"

namespace xbarlife::nn {
namespace {

TEST(SgdOptimizer, PlainStepMovesAgainstGradient) {
  SgdOptimizer opt({0.1, 0.0});
  Tensor w(Shape{2}, std::vector<float>{1.0f, -1.0f});
  Tensor g(Shape{2}, std::vector<float>{1.0f, -2.0f});
  std::vector<ParamRef> params{{"w", &w, &g, true}};
  opt.step(params);
  EXPECT_NEAR(w[0], 0.9f, 1e-6f);
  EXPECT_NEAR(w[1], -0.8f, 1e-6f);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  SgdOptimizer opt({0.1, 0.5});
  Tensor w(Shape{1}, 0.0f);
  Tensor g(Shape{1}, 1.0f);
  std::vector<ParamRef> params{{"w", &w, &g, true}};
  opt.step(params);  // v = -0.1, w = -0.1
  opt.step(params);  // v = -0.15, w = -0.25
  EXPECT_NEAR(w[0], -0.25f, 1e-6f);
}

TEST(SgdOptimizer, RejectsBadConfig) {
  EXPECT_THROW(SgdOptimizer({0.0, 0.9}), InvalidArgument);
  EXPECT_THROW(SgdOptimizer({0.1, 1.0}), InvalidArgument);
}

TEST(Network, TrainBatchReducesLossOnSeparableData) {
  const auto data = data::make_blobs(3, 8, 40, 10, 0.3, 42);
  Rng rng(1);
  Network net = make_mlp(8, {16}, 3, rng);
  SgdOptimizer opt({0.1, 0.9});
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    const data::Batch batch = data::make_batch(data.train, 0, 120);
    const TrainStats stats =
        net.train_batch(batch.images, batch.labels, opt, nullptr);
    if (epoch == 0) {
      first_loss = stats.loss;
    }
    last_loss = stats.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
  EXPECT_GT(net.evaluate(data.test.images, data.test.labels), 0.8);
}

TEST(Network, SkewedTrainingShiftsDistributionRight) {
  // Identical seeds and data: skewed training must yield visibly more
  // right-skew (long right tail after the mass moves toward omega < 0)
  // and a higher minimum weight than plain training.
  const auto data = data::make_blobs(4, 10, 40, 10, 0.4, 7);

  auto run = [&](Regularizer* reg) {
    Rng rng(5);
    Network net = make_mlp(10, {24}, 4, rng);
    SgdOptimizer opt({0.05, 0.9});
    for (int epoch = 0; epoch < 30; ++epoch) {
      const data::Batch batch = data::make_batch(data.train, 0, 160);
      net.train_batch(batch.images, batch.labels, opt, reg);
    }
    std::vector<double> weights;
    for (const MappableWeight& mw : net.mappable_weights()) {
      for (std::size_t i = 0; i < mw.value->numel(); ++i) {
        weights.push_back(static_cast<double>((*mw.value)[i]));
      }
    }
    return weights;
  };

  L2Regularizer plain(1e-4);
  SkewedL2Regularizer skewed(5e-2, 1e-3, -1.0);
  const auto w_plain = run(&plain);
  const auto w_skewed = run(&skewed);

  EXPECT_GT(skewness(std::span<const double>(w_skewed)),
            skewness(std::span<const double>(w_plain)) + 0.2);
  const Summary sp = summarize(std::span<const double>(w_plain));
  const Summary ss = summarize(std::span<const double>(w_skewed));
  EXPECT_GT(ss.min, sp.min);  // left tail got compressed
}

TEST(Network, SaveLoadMappableWeightsRoundtrip) {
  Rng rng(2);
  Network net = make_mlp(4, {6}, 2, rng);
  const auto snapshot = net.save_mappable_weights();
  ASSERT_EQ(snapshot.size(), 2u);
  // Perturb then restore.
  for (const MappableWeight& mw : net.mappable_weights()) {
    mw.value->fill(9.0f);
  }
  net.load_mappable_weights(snapshot);
  const auto after = net.save_mappable_weights();
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_TRUE(allclose(snapshot[i], after[i]));
  }
}

TEST(Network, LoadRejectsWrongShapes) {
  Rng rng(2);
  Network net = make_mlp(4, {6}, 2, rng);
  std::vector<Tensor> bad{Tensor(Shape{1, 1}), Tensor(Shape{1, 1})};
  EXPECT_THROW(net.load_mappable_weights(bad), InvalidArgument);
  EXPECT_THROW(net.load_mappable_weights({}), InvalidArgument);
}

TEST(Network, MappableWeightsCarryLayerKind) {
  Rng rng(3);
  const ImageSpec spec{1, 16, 16};
  Network net = make_lenet5(spec, 4, rng);
  const auto mws = net.mappable_weights();
  ASSERT_EQ(mws.size(), 5u);  // 2 conv + 3 fc
  EXPECT_EQ(mws[0].layer_kind, LayerKind::kConv);
  EXPECT_EQ(mws[1].layer_kind, LayerKind::kConv);
  EXPECT_EQ(mws[2].layer_kind, LayerKind::kDense);
  EXPECT_EQ(mws[4].layer_kind, LayerKind::kDense);
  for (std::size_t i = 0; i < mws.size(); ++i) {
    EXPECT_EQ(mws[i].index, i);
  }
}

TEST(Network, EvaluateChunksMatchSinglePass) {
  const auto data = data::make_blobs(3, 6, 20, 20, 0.4, 9);
  Rng rng(4);
  Network net = make_mlp(6, {8}, 3, rng);
  const double acc_small_chunks =
      net.evaluate(data.test.images, data.test.labels, 7);
  const double acc_one_chunk =
      net.evaluate(data.test.images, data.test.labels, 1000);
  EXPECT_NEAR(acc_small_chunks, acc_one_chunk, 1e-9);
}

TEST(Network, ZeroGradClearsAllGradients) {
  Rng rng(5);
  Network net = make_mlp(4, {5}, 2, rng);
  Tensor x(Shape{2, 4}, 1.0f);
  const std::vector<std::int32_t> labels{0, 1};
  net.compute_gradients(x, labels);
  bool any_nonzero = false;
  for (const ParamRef& p : net.params()) {
    if (p.grad->abs_max() > 0.0f) {
      any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (const ParamRef& p : net.params()) {
    EXPECT_EQ(p.grad->abs_max(), 0.0f);
  }
}

TEST(Network, SummaryListsLayers) {
  Rng rng(6);
  Network net = make_mlp(4, {5}, 2, rng, "demo");
  const std::string s = net.summary();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("fc1"), std::string::npos);
  EXPECT_NE(s.find("dense"), std::string::npos);
}

TEST(Network, ParameterCount) {
  Rng rng(7);
  Network net = make_mlp(4, {5}, 2, rng);
  // fc1: 4*5+5, fc_out: 5*2+2
  EXPECT_EQ(net.parameter_count(), 20u + 5u + 10u + 2u);
}

}  // namespace
}  // namespace xbarlife::nn
