// Fixed-grid resistance quantizer tests (Figs. 3, 4, 8 semantics).
#include "mapping/quantizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbarlife::mapping {
namespace {

constexpr ResistanceRange kFresh{1e4, 1e5};

TEST(Quantizer, FreshGridLevelsAreUniformInResistance) {
  ResistanceQuantizer q(kFresh, 10);
  EXPECT_EQ(q.levels(), 10u);
  EXPECT_DOUBLE_EQ(q.level_resistance(0), 1e4);
  EXPECT_DOUBLE_EQ(q.level_resistance(9), 1e5);
  EXPECT_DOUBLE_EQ(q.resistance_step(), 1e4);
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_NEAR(q.level_resistance(k) - q.level_resistance(k - 1), 1e4,
                1e-6);
  }
}

TEST(Quantizer, ConductanceLevelsDenseNearGmin) {
  // Fig. 3(c): reciprocal of uniform resistance levels concentrates
  // levels at the low-conductance end.
  ResistanceQuantizer q(kFresh, 10);
  const auto g = q.conductance_levels_ascending();
  ASSERT_EQ(g.size(), 10u);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GT(g[i], g[i - 1]);
  }
  const double low_gap = g[1] - g[0];
  const double high_gap = g[9] - g[8];
  EXPECT_GT(high_gap, 10.0 * low_gap);
}

TEST(Quantizer, TruncationKeepsFreshSpacing) {
  // Fig. 4/8: aging removes top levels; spacing never changes.
  ResistanceQuantizer full(kFresh, 10);
  ResistanceQuantizer cut(kFresh, 10, 5.5e4);
  EXPECT_EQ(cut.levels(), 5u);  // 10k, 20k, 30k, 40k, 50k
  EXPECT_DOUBLE_EQ(cut.resistance_step(), full.resistance_step());
  EXPECT_DOUBLE_EQ(cut.level_resistance(cut.levels() - 1), 5e4);
  EXPECT_DOUBLE_EQ(cut.range().r_hi, 5e4);
  EXPECT_DOUBLE_EQ(cut.range().r_lo, 1e4);
}

TEST(Quantizer, TruncationAtExactLevelKeepsIt) {
  ResistanceQuantizer cut(kFresh, 10, 6e4);
  EXPECT_EQ(cut.levels(), 6u);
  EXPECT_DOUBLE_EQ(cut.level_resistance(5), 6e4);
}

TEST(Quantizer, AtLeastTwoLevelsSurvive) {
  ResistanceQuantizer cut(kFresh, 10, 1.0);  // cut below r_lo
  EXPECT_EQ(cut.levels(), 2u);
}

TEST(Quantizer, CutAboveFreshIsClamped) {
  ResistanceQuantizer cut(kFresh, 10, 1e9);
  EXPECT_EQ(cut.levels(), 10u);
}

TEST(Quantizer, NearestLevelForResistance) {
  ResistanceQuantizer q(kFresh, 10);
  EXPECT_EQ(q.nearest_level_for_resistance(1e4), 0u);
  EXPECT_EQ(q.nearest_level_for_resistance(1e5), 9u);
  EXPECT_EQ(q.nearest_level_for_resistance(2.4e4), 1u);
  EXPECT_EQ(q.nearest_level_for_resistance(2.6e4), 2u);
  // Clamping outside the range.
  EXPECT_EQ(q.nearest_level_for_resistance(1.0), 0u);
  EXPECT_EQ(q.nearest_level_for_resistance(1e9), 9u);
}

TEST(Quantizer, NearestLevelForConductanceComparesInGSpace) {
  ResistanceQuantizer q(kFresh, 10);
  // Exactly at a level.
  EXPECT_EQ(q.nearest_level_for_conductance(1.0 / 1e4), 0u);
  EXPECT_EQ(q.nearest_level_for_conductance(1.0 / 1e5), 9u);
  // Between levels 0 (g=1e-4) and 1 (g=5e-5): the conductance midpoint is
  // 7.5e-5 (r = 13.33k), NOT the resistance midpoint 15k.
  EXPECT_EQ(q.nearest_level_for_conductance(8e-5), 0u);
  EXPECT_EQ(q.nearest_level_for_conductance(7e-5), 1u);
}

TEST(Quantizer, NearestLevelRoundtripOnEveryLevel) {
  ResistanceQuantizer q(kFresh, 32);
  for (std::size_t k = 0; k < q.levels(); ++k) {
    EXPECT_EQ(q.nearest_level_for_resistance(q.level_resistance(k)), k);
    EXPECT_EQ(q.nearest_level_for_conductance(q.level_conductance(k)), k);
  }
}

TEST(Quantizer, ExactLevelResistancesBracketCorrectly) {
  // Regression: the conductance lookup used to bracket with a plain float
  // truncation of (r - r_lo) / step; a quotient landing at k - 1e-16 for a
  // resistance exactly on level k shifted the bracket one level low. The
  // guarded floor must hit every exact level, including ranges whose step
  // is not representable exactly in binary.
  const ResistanceRange awkward{1e4 / 3.0, 1e5 / 3.0};
  for (std::size_t levels : {3u, 7u, 10u, 31u, 32u, 64u}) {
    ResistanceQuantizer q(awkward, levels);
    for (std::size_t k = 0; k < q.levels(); ++k) {
      const double r = q.level_resistance(k);
      EXPECT_EQ(q.nearest_level_for_conductance(1.0 / r), k)
          << "levels=" << levels << " k=" << k;
      EXPECT_EQ(q.nearest_level_for_resistance(r), k)
          << "levels=" << levels << " k=" << k;
    }
  }
}

TEST(Quantizer, ConductanceJustInsideRangeEdgesStaysInRange) {
  ResistanceQuantizer q(kFresh, 10);
  const double g_min = q.range().g_min();
  const double g_max = q.range().g_max();
  EXPECT_EQ(q.nearest_level_for_conductance(std::nextafter(g_min, 0.0)),
            q.levels() - 1);
  EXPECT_EQ(q.nearest_level_for_conductance(std::nextafter(g_max, 1.0)),
            0u);
}

TEST(Quantizer, TruncatedGridExactBoundaryLevel) {
  // The last usable level of a truncated grid is an exact-resistance
  // boundary case for the bracket's upper clamp.
  ResistanceQuantizer cut(kFresh, 10, 5.5e4);
  const std::size_t last = cut.levels() - 1;
  EXPECT_EQ(cut.nearest_level_for_conductance(
                cut.level_conductance(last)),
            last);
  EXPECT_EQ(cut.nearest_level_for_conductance(1e-9), last);  // clamp up
}

TEST(Quantizer, RejectsInvalidConstruction) {
  EXPECT_THROW(ResistanceQuantizer({1e5, 1e4}, 10), InvalidArgument);
  EXPECT_THROW(ResistanceQuantizer(kFresh, 1), InvalidArgument);
  EXPECT_THROW(ResistanceQuantizer(kFresh, 10, -5.0), InvalidArgument);
  ResistanceQuantizer q(kFresh, 4);
  EXPECT_THROW(q.level_resistance(4), InvalidArgument);
  EXPECT_THROW(q.nearest_level_for_conductance(0.0), InvalidArgument);
}

// Property: for any level count, quantizing any conductance in range picks
// the level with minimal |g - g_level|.
class QuantizerLevelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizerLevelSweep, NearestConductanceIsArgmin) {
  const std::size_t levels = GetParam();
  ResistanceQuantizer q(kFresh, levels);
  for (int i = 0; i <= 100; ++i) {
    const double g =
        kFresh.g_min() +
        (kFresh.g_max() - kFresh.g_min()) * static_cast<double>(i) / 100.0;
    const std::size_t picked = q.nearest_level_for_conductance(g);
    double best = 1e300;
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < q.levels(); ++k) {
      const double d = std::abs(g - q.level_conductance(k));
      if (d < best) {
        best = d;
        best_k = k;
      }
    }
    EXPECT_EQ(picked, best_k) << "levels=" << levels << " g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizerLevelSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace xbarlife::mapping
