// Remote-executor contract tests: the request/response codec, worker-side
// request validation (including the corrupt-geometry bomb), loopback
// byte-identity against the local sim backend, idempotent replay, retry /
// fallback behavior against dead endpoints, shutdown responsiveness, and
// a deterministic chaos matrix over seeded fault schedules.
#include "xbar/remote.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "common/version.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "persist/state_io.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {
namespace {

using namespace std::chrono_literals;

device::DeviceParams dev() { return device::DeviceParams{}; }

/// Crosstalk makes the ambient pool order-dependent — the strictest
/// setting for byte-identity checks.
aging::AgingParams ag_crosstalk() {
  aging::AgingParams a;
  a.thermal_crosstalk = 0.05;
  return a;
}

std::string snapshot(const Crossbar& xb) {
  persist::StateWriter w;
  xb.save_state(w);
  return w.data();
}

ProgramSequence mixed_sequence(std::size_t rows, std::size_t cols) {
  SequenceBuilder b(rows, cols);
  for (std::size_t c = 0; c < cols; c += 2) {
    for (std::size_t r = 0; r < rows; ++r) {
      b.pulse(r, c, 1e4 + 1e3 * static_cast<double>(r + c * rows));
    }
    b.verify(0, c);
    b.wait(c, 2.5);
  }
  return b.build();
}

/// A fast-failing config against an endpoint that will never answer.
RemoteConfig dead_endpoint_config() {
  RemoteConfig cfg;
  cfg.address = "127.0.0.1:1";
  cfg.dial_timeout = 100ms;
  cfg.request_deadline = 200ms;
  cfg.max_attempts = 2;
  cfg.backoff_initial = 1ms;
  cfg.backoff_max = 2ms;
  return cfg;
}

// ---------------------------------------------------------------------------
// Request/response codec and worker-side validation.

TEST(RemoteCodec, RequestRoundTripsThroughWorkerHandler) {
  const ProgramSequence seq = mixed_sequence(5, 4);
  Crossbar local(5, 4, dev(), ag_crosstalk());
  Crossbar remote_copy(5, 4, dev(), ag_crosstalk());

  const std::string request = encode_execute_request(remote_copy, seq);
  const ExecuteResponse resp =
      decode_execute_response(execute_request(request));

  const ExecReport local_report = SimExecutor{}.execute(local, seq);
  EXPECT_EQ(resp.results, local_report.results);
  EXPECT_EQ(resp.pulses, local_report.stats.pulses);
  EXPECT_EQ(resp.crossbar_state, snapshot(local));
}

TEST(RemoteCodec, NonidealConfigurationShipsWithTheRequest) {
  NonidealityConfig cfg;
  cfg.write_noise_sigma = 0.01;
  cfg.stuck_off_fraction = 0.05;
  const ProgramSequence seq = mixed_sequence(6, 6);

  Crossbar local(6, 6, dev(), ag_crosstalk());
  local.configure_nonideality(cfg, 99);
  Crossbar shipped(6, 6, dev(), ag_crosstalk());
  shipped.configure_nonideality(cfg, 99);

  const ExecuteResponse resp =
      decode_execute_response(execute_request(encode_execute_request(
          shipped, seq)));
  SimExecutor{}.execute(local, seq);
  EXPECT_EQ(resp.crossbar_state, snapshot(local));
}

TEST(RemoteCodec, RejectsUnsupportedVersion) {
  persist::StateWriter w;
  w.u8(42);
  EXPECT_THROW(execute_request(w.data()), InvalidArgument);
}

TEST(RemoteCodec, RejectsGeometryNotBackedByState) {
  // A corrupt (or hostile) request claiming a giant array but shipping a
  // tiny state must be rejected before any allocation happens.
  Crossbar xb(3, 3, dev(), ag_crosstalk());
  const ProgramSequence seq = mixed_sequence(3, 3);
  std::string request = encode_execute_request(xb, seq);
  // rows is the u64 right after the 1-byte version: blow it up.
  for (int i = 0; i < 8; ++i) {
    request[1 + i] = static_cast<char>(0xff);
  }
  try {
    execute_request(request);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("geometry"), std::string::npos);
  }
}

TEST(RemoteCodec, RejectsTrailingBytes) {
  Crossbar xb(3, 3, dev(), ag_crosstalk());
  std::string request =
      encode_execute_request(xb, mixed_sequence(3, 3)) + "junk";
  EXPECT_THROW(execute_request(request), Error);
}

// ---------------------------------------------------------------------------
// serve_connection protocol behavior.

TEST(ServeConnection, AnswersHelloHeartbeatAndShutdown) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    EXPECT_TRUE(serve_connection(*t, opts));  // true: saw kShutdown
  });

  net::write_frame(*client, net::MsgType::kHello, 1);
  EXPECT_EQ(net::read_frame(*client, 1000ms).type, net::MsgType::kHelloAck);
  net::write_frame(*client, net::MsgType::kHeartbeat, 2);
  EXPECT_EQ(net::read_frame(*client, 1000ms).type,
            net::MsgType::kHeartbeatAck);
  net::write_frame(*client, net::MsgType::kShutdown, 3);
  worker.join();
}

TEST(ServeConnection, MalformedExecuteYieldsErrorFrameNotDeath) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    serve_connection(*t, opts);
  });

  net::write_frame(*client, net::MsgType::kExecute, 5, "not a request");
  const net::Frame err = net::read_frame(*client, 1000ms);
  EXPECT_EQ(err.type, net::MsgType::kError);
  EXPECT_EQ(err.seq_id, 5u);
  persist::StateReader r(err.payload);
  EXPECT_FALSE(r.str().empty());

  // The connection survives a rejected request.
  net::write_frame(*client, net::MsgType::kHeartbeat, 6);
  EXPECT_EQ(net::read_frame(*client, 1000ms).type,
            net::MsgType::kHeartbeatAck);
  client->close();
  worker.join();
}

TEST(ServeConnection, ReplaysCachedResponseForRepeatedId) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    serve_connection(*t, opts);
  });

  Crossbar xb(4, 4, dev(), ag_crosstalk());
  const std::string request =
      encode_execute_request(xb, mixed_sequence(4, 4));
  net::write_frame(*client, net::MsgType::kExecute, 9, request);
  const net::Frame first = net::read_frame(*client, 2000ms);
  ASSERT_EQ(first.type, net::MsgType::kExecuteResult);

  // The retry (same id, e.g. the first response was lost) must yield the
  // byte-identical cached response — not a re-execution — and the worker
  // marks it with the kExecuteReplay frame type so the client can account
  // replays separately from fresh work.
  net::write_frame(*client, net::MsgType::kExecute, 9, request);
  const net::Frame replay = net::read_frame(*client, 2000ms);
  EXPECT_EQ(replay.type, net::MsgType::kExecuteReplay);
  EXPECT_EQ(replay.payload, first.payload);

  client->close();
  worker.join();
}

// ---------------------------------------------------------------------------
// RemoteExecutor over the loopback worker.

TEST(RemoteExecutor_, LoopbackMatchesSimByteIdentical) {
  const ProgramSequence seq = mixed_sequence(6, 5);
  Crossbar local(6, 5, dev(), ag_crosstalk());
  Crossbar remote_xb(6, 5, dev(), ag_crosstalk());

  const ExecReport local_report = SimExecutor{}.execute(local, seq);
  const RemoteExecutor remote{RemoteConfig{}};
  const ExecReport remote_report = remote.execute(remote_xb, seq);

  EXPECT_EQ(snapshot(remote_xb), snapshot(local));
  EXPECT_EQ(remote_report.results, local_report.results);
  EXPECT_EQ(remote_report.stats.pulses, local_report.stats.pulses);
  EXPECT_FALSE(remote.degraded());
  EXPECT_EQ(remote.link_stats().requests, 1u);
  EXPECT_EQ(remote.link_stats().retries, 0u);
  EXPECT_EQ(remote.link_stats().fallbacks, 0u);
}

TEST(RemoteExecutor_, LoopbackCreditsPulseAndExecutorCounters) {
  const ProgramSequence seq = mixed_sequence(6, 5);

  obs::Counter lp, lt, ls, lb;
  Crossbar local(6, 5, dev(), ag_crosstalk());
  local.attach_pulse_counters(&lp, &lt);
  local.attach_executor_counters(&ls, &lb);
  SimExecutor{}.execute(local, seq);

  obs::Counter rp, rt, rs, rb;
  Crossbar remote_xb(6, 5, dev(), ag_crosstalk());
  remote_xb.attach_pulse_counters(&rp, &rt);
  remote_xb.attach_executor_counters(&rs, &rb);
  const RemoteExecutor remote{RemoteConfig{}};
  remote.execute(remote_xb, seq);

  // Counter parity: pulses happened in the worker process, but they are
  // credited to the client-side counters, matching a local run exactly.
  EXPECT_EQ(rp.value(), lp.value());
  EXPECT_EQ(rt.value(), lt.value());
  EXPECT_EQ(rs.value(), ls.value());
  EXPECT_EQ(rb.value(), lb.value());
  EXPECT_GT(rp.value(), 0u);
}

TEST(RemoteExecutor_, SequentialSequencesShareTheConnection) {
  Crossbar local(5, 5, dev(), ag_crosstalk());
  Crossbar remote_xb(5, 5, dev(), ag_crosstalk());
  const RemoteExecutor remote{RemoteConfig{}};
  for (int round = 0; round < 3; ++round) {
    const ProgramSequence seq = mixed_sequence(5, 5);
    SimExecutor{}.execute(local, seq);
    remote.execute(remote_xb, seq);
  }
  EXPECT_EQ(snapshot(remote_xb), snapshot(local));
  EXPECT_EQ(remote.link_stats().requests, 3u);
  EXPECT_EQ(remote.link_stats().reconnects, 0u);
}

// ---------------------------------------------------------------------------
// Failure handling: dead endpoints, fallback, pinning, shutdown.

TEST(RemoteExecutor_, DeadEndpointFallsBackToSimByteIdentical) {
  const ProgramSequence seq = mixed_sequence(6, 5);
  Crossbar local(6, 5, dev(), ag_crosstalk());
  Crossbar remote_xb(6, 5, dev(), ag_crosstalk());

  SimExecutor{}.execute(local, seq);
  const RemoteExecutor remote{dead_endpoint_config()};
  remote.execute(remote_xb, seq);

  EXPECT_EQ(snapshot(remote_xb), snapshot(local));
  EXPECT_TRUE(remote.degraded());
  const RemoteLinkStats stats = remote.link_stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.retries, 1u);  // max_attempts=2 -> one retry
  EXPECT_EQ(stats.fallbacks, 1u);
}

TEST(RemoteExecutor_, DeadEndpointWithoutFallbackThrowsTransportError) {
  RemoteConfig cfg = dead_endpoint_config();
  cfg.fallback_to_sim = false;
  const RemoteExecutor remote{cfg};
  Crossbar xb(4, 4, dev(), ag_crosstalk());
  const std::string before = snapshot(xb);
  EXPECT_THROW(remote.execute(xb, mixed_sequence(4, 4)),
               net::TransportError);
  // A failed request must leave the local array untouched.
  EXPECT_EQ(snapshot(xb), before);
  EXPECT_FALSE(remote.degraded());
}

TEST(RemoteExecutor_, PinLocalFallbackSkipsTheLinkEntirely) {
  const RemoteExecutor remote{dead_endpoint_config()};
  EXPECT_TRUE(remote.pin_local_fallback());
  EXPECT_FALSE(remote.pin_local_fallback());  // transition happens once
  EXPECT_TRUE(remote.degraded());

  // Pinned execution never dials: no retries accrue even on the dead
  // endpoint, and the result still matches sim.
  const ProgramSequence seq = mixed_sequence(5, 4);
  Crossbar local(5, 4, dev(), ag_crosstalk());
  Crossbar remote_xb(5, 4, dev(), ag_crosstalk());
  SimExecutor{}.execute(local, seq);
  remote.execute(remote_xb, seq);
  EXPECT_EQ(snapshot(remote_xb), snapshot(local));
  EXPECT_EQ(remote.link_stats().retries, 0u);
  EXPECT_EQ(remote.link_stats().requests, 0u);
}

TEST(RemoteExecutor_, ShutdownRequestInterruptsRetryLoop) {
  reset_shutdown();
  RemoteConfig cfg = dead_endpoint_config();
  cfg.max_attempts = 1000;          // would grind for minutes...
  cfg.backoff_initial = 50ms;
  cfg.backoff_max = 250ms;
  const RemoteExecutor remote{cfg};
  Crossbar xb(4, 4, dev(), ag_crosstalk());

  std::thread interrupter([] {
    std::this_thread::sleep_for(100ms);
    request_shutdown();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(remote.execute(xb, mixed_sequence(4, 4)), InterruptedError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  interrupter.join();
  reset_shutdown();
  // ...but the cooperative shutdown flag cuts it off promptly (polled in
  // 10 ms slices inside the backoff sleep).
  EXPECT_LT(elapsed, 5s);
}

TEST(RemoteExecutor_, RejectsNonPositiveMaxAttempts) {
  RemoteConfig cfg;
  cfg.max_attempts = 0;
  EXPECT_THROW(RemoteExecutor{cfg}, InvalidArgument);
  RemoteConfig bad_spec;
  bad_spec.fault_spec = "drop=2.0";
  EXPECT_THROW(RemoteExecutor{bad_spec}, InvalidArgument);
}

// ---------------------------------------------------------------------------
// Chaos matrix: every seeded fault schedule must end in one of exactly two
// states — remote completion byte-identical to sim, or a clean fallback
// (also byte-identical, and flagged degraded). Never a hang, crash, or
// silent divergence.

TEST(RemoteExecutor_, ChaosMatrixCompletesOrFallsBackByteIdentical) {
  const std::vector<std::string> specs = {
      "seed=1,drop=0.2",
      "seed=2,corrupt=0.2",
      "seed=3,dup=0.3",
      "seed=4,disconnect=0.15",
      "seed=5,drop=0.15,corrupt=0.1,dup=0.1,disconnect=0.05",
      "seed=6,drop=0.5,disconnect=0.2",
      "seed=7,drop=0.1,corrupt=0.05,disconnect=0.02,delay_ms=1",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE("fault spec: " + spec);
    RemoteConfig cfg;
    cfg.fault_spec = spec;
    cfg.request_deadline = 150ms;
    cfg.max_attempts = 4;
    cfg.backoff_initial = 1ms;
    cfg.backoff_max = 4ms;
    const RemoteExecutor remote{cfg};

    Crossbar local(6, 5, dev(), ag_crosstalk());
    Crossbar remote_xb(6, 5, dev(), ag_crosstalk());
    for (int round = 0; round < 4; ++round) {
      const ProgramSequence seq = mixed_sequence(6, 5);
      const ExecReport local_report = SimExecutor{}.execute(local, seq);
      const ExecReport remote_report = remote.execute(remote_xb, seq);
      EXPECT_EQ(remote_report.results, local_report.results);
    }
    // Whether the schedule let the requests through (possibly after
    // retries and reconnects) or forced fallbacks, the final state is
    // byte-identical to the local run.
    EXPECT_EQ(snapshot(remote_xb), snapshot(local));
    const RemoteLinkStats stats = remote.link_stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(remote.degraded(), stats.fallbacks > 0);
  }
}

TEST(RemoteExecutor_, ChaosScheduleIsReproducible) {
  // The same spec must produce the same retry/reconnect/fallback history
  // on every run — the property that makes chaos failures debuggable.
  const auto run = [] {
    RemoteConfig cfg;
    cfg.fault_spec = "seed=5,drop=0.15,corrupt=0.1,dup=0.1,disconnect=0.05";
    cfg.request_deadline = 150ms;
    cfg.max_attempts = 4;
    cfg.backoff_initial = 1ms;
    cfg.backoff_max = 4ms;
    const RemoteExecutor remote{cfg};
    Crossbar xb(6, 5, dev(), ag_crosstalk());
    for (int round = 0; round < 4; ++round) {
      remote.execute(xb, mixed_sequence(6, 5));
    }
    return remote.link_stats();
  };
  const RemoteLinkStats a = run();
  const RemoteLinkStats b = run();
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
}

// Satellite 2 (replay accounting): a retried request answered from the
// worker's replay cache must count as `replay_served`, never inflate the
// fresh-request counter, and the totals must reconcile — every logical
// submission resolves to exactly one fresh result, one replay, or one
// fallback. Pulse accounting must not inflate either: each sequence's
// pulses are credited exactly once no matter how many retries it took.
TEST(RemoteExecutor_, ReplayAccountingReconcilesUnderLossySchedules) {
  const std::vector<std::string> specs = {
      "seed=1,drop=0.2",
      "seed=6,drop=0.5,disconnect=0.2",
      "seed=5,drop=0.15,corrupt=0.1,dup=0.1,disconnect=0.05",
  };
  bool any_replays = false;
  for (const std::string& spec : specs) {
    SCOPED_TRACE("fault spec: " + spec);
    obs::Registry reg;
    set_remote_metrics(&reg);
    RemoteConfig cfg;
    cfg.fault_spec = spec;
    cfg.request_deadline = 150ms;
    cfg.max_attempts = 6;
    cfg.backoff_initial = 1ms;
    cfg.backoff_max = 4ms;
    const RemoteExecutor remote{cfg};

    obs::Counter pulses, traced;
    Crossbar xb(6, 5, dev(), ag_crosstalk());
    xb.attach_pulse_counters(&pulses, &traced);
    constexpr std::uint64_t kSequences = 6;
    std::uint64_t expected_pulses = 0;
    for (std::uint64_t i = 0; i < kSequences; ++i) {
      const ProgramSequence seq = mixed_sequence(6, 5);
      expected_pulses += seq.stats().pulses;
      remote.execute(xb, seq);
    }
    set_remote_metrics(nullptr);

    const RemoteLinkStats stats = remote.link_stats();
    const std::uint64_t fresh =
        reg.counter("executor.remote.requests").value();
    const std::uint64_t replays =
        reg.counter("executor.remote.replay_served").value();
    ASSERT_EQ(stats.requests, kSequences);
    EXPECT_EQ(fresh + replays + stats.fallbacks, kSequences)
        << "fresh=" << fresh << " replays=" << replays
        << " fallbacks=" << stats.fallbacks;
    // Retries resolved by a replayed response must not have re-credited
    // the pulse counters: exactly one credit per logical sequence.
    EXPECT_EQ(pulses.value(), expected_pulses);
    EXPECT_EQ(xb.total_pulses(), expected_pulses);
    any_replays = any_replays || replays > 0;
  }
  // At least one lossy schedule must actually exercise the replay path,
  // or this test pins nothing.
  EXPECT_TRUE(any_replays);
}

// ---------------------------------------------------------------------------
// Worker stats endpoint, heartbeat stamping, and the versioned hello.

/// A versioned kHello payload as the client builds it.
std::string client_hello(std::uint8_t wire_v, std::uint8_t req_v) {
  persist::StateWriter w;
  w.u8(wire_v);
  w.u8(req_v);
  w.str("test-client");
  return w.data();
}

TEST(RemoteCodec, WorkerStatsSnapshotRoundTrips) {
  WorkerStatsState state;
  state.requests_served.store(7);
  state.replay_hits.store(2);
  state.errors.store(1);
  state.active_connections.store(3);
  state.connections_total.store(5);
  state.metrics.bucketed_histogram("worker.request_ms").observe(1.5);

  const WorkerStatsSnapshot snap =
      decode_worker_stats(state.encode_snapshot());
  EXPECT_EQ(snap.build, kBuildVersion);
  EXPECT_EQ(snap.wire_version, net::kWireVersion);
  EXPECT_GE(snap.request_version, 2);
  EXPECT_EQ(snap.requests_served, 7u);
  EXPECT_EQ(snap.replay_hits, 2u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_EQ(snap.active_connections, 3u);
  EXPECT_EQ(snap.connections_total, 5u);
  EXPECT_NE(snap.metrics_json.find("worker.request_ms"), std::string::npos);

  const std::string doc = snap.to_json().dump();
  EXPECT_EQ(doc.find("{\"schema\":\"xbarlife.workerstats.v1\""), 0u);
  EXPECT_NE(doc.find("\"requests_served\":7"), std::string::npos);
}

TEST(RemoteCodec, RejectsUnknownStatsSnapshotVersion) {
  persist::StateWriter w;
  w.u8(99);
  EXPECT_THROW(decode_worker_stats(w.data()), InvalidArgument);
}

TEST(ServeConnection, StatsEndpointReportsLiveAccounting) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  WorkerStatsState stats;
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    opts.stats = &stats;
    serve_connection(*t, opts);
  });

  // Versioned hello: the ack carries the worker's versions and build.
  net::write_frame(*client, net::MsgType::kHello, 1,
                   client_hello(net::kWireVersion, 2));
  const net::Frame hello_ack = net::read_frame(*client, 1000ms);
  ASSERT_EQ(hello_ack.type, net::MsgType::kHelloAck);
  {
    persist::StateReader r(hello_ack.payload);
    EXPECT_EQ(r.u8(), net::kWireVersion);
    EXPECT_GE(r.u8(), 2);
    EXPECT_EQ(r.str(), kBuildVersion);
  }

  Crossbar xb(4, 4, dev(), ag_crosstalk());
  const std::string request =
      encode_execute_request(xb, mixed_sequence(4, 4));
  net::write_frame(*client, net::MsgType::kExecute, 11, request);
  ASSERT_EQ(net::read_frame(*client, 2000ms).type,
            net::MsgType::kExecuteResult);
  // A replayed id answers from the cache (flagged as kExecuteReplay):
  // requests_served must not move.
  net::write_frame(*client, net::MsgType::kExecute, 11, request);
  ASSERT_EQ(net::read_frame(*client, 2000ms).type,
            net::MsgType::kExecuteReplay);
  net::write_frame(*client, net::MsgType::kExecute, 12, request);
  ASSERT_EQ(net::read_frame(*client, 2000ms).type,
            net::MsgType::kExecuteResult);

  net::write_frame(*client, net::MsgType::kStats, 13);
  const net::Frame stats_ack = net::read_frame(*client, 1000ms);
  ASSERT_EQ(stats_ack.type, net::MsgType::kStatsAck);
  const WorkerStatsSnapshot snap = decode_worker_stats(stats_ack.payload);
  EXPECT_EQ(snap.requests_served, 2u);
  EXPECT_EQ(snap.replay_hits, 1u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.active_connections, 1u);
  EXPECT_EQ(snap.connections_total, 1u);
  // Request latency and wire telemetry accumulate in the worker registry,
  // and the replay above landed in its own worker.replay_served counter.
  EXPECT_NE(snap.metrics_json.find("\"worker.request_ms\""),
            std::string::npos);
  EXPECT_NE(snap.metrics_json.find("\"worker.replay_served\""),
            std::string::npos);
  EXPECT_NE(snap.metrics_json.find("\"net.frame_bytes_in\""),
            std::string::npos);

  client->close();
  worker.join();
}

TEST(ServeConnection, StatsWithoutStateAnswersError) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    serve_connection(*t, opts);
  });

  net::write_frame(*client, net::MsgType::kStats, 3);
  const net::Frame err = net::read_frame(*client, 1000ms);
  EXPECT_EQ(err.type, net::MsgType::kError);
  persist::StateReader r(err.payload);
  EXPECT_NE(r.str().find("not enabled"), std::string::npos);
  client->close();
  worker.join();
}

TEST(ServeConnection, HeartbeatAckStampsUptimeAndVersions) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  WorkerStatsState stats;
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    opts.stats = &stats;
    serve_connection(*t, opts);
  });

  net::write_frame(*client, net::MsgType::kHeartbeat, 2);
  const net::Frame ack = net::read_frame(*client, 1000ms);
  ASSERT_EQ(ack.type, net::MsgType::kHeartbeatAck);
  persist::StateReader r(ack.payload);
  const std::uint64_t uptime_ms = r.u64();
  EXPECT_LT(uptime_ms, 60'000u);  // this worker just started
  EXPECT_EQ(r.u8(), net::kWireVersion);
  EXPECT_GE(r.u8(), 2);
  EXPECT_TRUE(r.done());
  client->close();
  worker.join();
}

TEST(ServeConnection, RejectsHelloFromMismatchedPeer) {
  auto [client, server] = net::make_pipe();
  std::atomic<bool> stop{false};
  WorkerStatsState stats;
  std::thread worker([&, t = server.get()] {
    ServeOptions opts;
    opts.idle_poll = 20ms;
    opts.stop = &stop;
    opts.honor_shutdown_flag = false;
    opts.stats = &stats;
    serve_connection(*t, opts);
  });

  // Wrong wire version.
  net::write_frame(*client, net::MsgType::kHello, 1, client_hello(9, 2));
  const net::Frame wire_err = net::read_frame(*client, 1000ms);
  EXPECT_EQ(wire_err.type, net::MsgType::kError);
  {
    persist::StateReader r(wire_err.payload);
    EXPECT_NE(r.str().find("protocol mismatch"), std::string::npos);
  }
  // A request codec newer than this worker speaks.
  net::write_frame(*client, net::MsgType::kHello, 2,
                   client_hello(net::kWireVersion, 99));
  EXPECT_EQ(net::read_frame(*client, 1000ms).type, net::MsgType::kError);
  EXPECT_EQ(stats.errors.load(), 2u);

  // The connection survives, and a matching hello still succeeds.
  net::write_frame(*client, net::MsgType::kHello, 3,
                   client_hello(net::kWireVersion, 2));
  EXPECT_EQ(net::read_frame(*client, 1000ms).type, net::MsgType::kHelloAck);
  client->close();
  worker.join();
}

TEST(RemoteExecutor_, QueryWorkerStatusOverLoopback) {
  const WorkerStatsSnapshot snap = query_worker_status(RemoteConfig{});
  EXPECT_EQ(snap.build, kBuildVersion);
  EXPECT_EQ(snap.wire_version, net::kWireVersion);
  EXPECT_GE(snap.request_version, 2);
  EXPECT_GE(snap.connections_total, 1u);
  EXPECT_EQ(snap.requests_served, 0u);
}

TEST(RemoteExecutor_, RejectsWorkerSpeakingAnOlderRequestCodec) {
  // A fake "old worker" that acks the hello with execute-request v1: the
  // client must refuse the endpoint with a WireError instead of sending
  // requests the worker cannot parse.
  const std::string path = testing::TempDir() + "xbw_hello_gate.sock";
  const std::unique_ptr<net::Listener> listener =
      net::listen("unix:" + path);
  std::thread old_worker([&] {
    try {
      const std::unique_ptr<net::Transport> conn = listener->accept(2000ms);
      const net::Frame hello = net::read_frame(*conn, 2000ms);
      ASSERT_EQ(hello.type, net::MsgType::kHello);
      persist::StateWriter w;
      w.u8(net::kWireVersion);
      w.u8(1);  // an execute-request codec older than the client needs
      w.str("old-worker");
      net::write_frame(*conn, net::MsgType::kHelloAck, hello.seq_id,
                       w.data());
      conn->close();
    } catch (const net::TransportError&) {
      // client hung up after rejecting the ack
    }
  });

  RemoteConfig cfg;
  cfg.address = "unix:" + path;
  EXPECT_THROW(query_worker_status(cfg), net::WireError);
  old_worker.join();
  listener->close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Trace-context propagation: worker span trees graft under the client's
// remote-execute span — once per completed request, never on fallback.

std::size_t count_spans(const obs::Profiler& prof, std::string_view name) {
  std::size_t n = 0;
  for (const obs::SpanRecord& rec : prof.records()) {
    n += rec.name == name;
  }
  return n;
}

bool has_ancestor(const std::vector<obs::SpanRecord>& recs, std::size_t idx,
                  std::string_view name) {
  for (std::size_t p = recs[idx].parent; p != obs::kNoSpan;
       p = recs[p].parent) {
    if (recs[p].name == name) {
      return true;
    }
  }
  return false;
}

TEST(RemoteExecutor_, ProfiledExecuteGraftsTheWorkerSpanTree) {
  obs::Profiler prof;
  obs::Registry registry;
  set_remote_metrics(&registry);
  Crossbar xb(5, 4, dev(), ag_crosstalk());
  xb.attach_profiler(&prof);
  const RemoteExecutor remote{RemoteConfig{}};

  const std::size_t root = prof.begin_span("command");
  remote.execute(xb, mixed_sequence(5, 4));
  remote.execute(xb, mixed_sequence(5, 4));
  prof.end_span(root);
  set_remote_metrics(nullptr);

  // One client-side execute span and one grafted worker tree per request.
  EXPECT_EQ(count_spans(prof, "executor.remote.execute"), 2u);
  for (const char* name : {"worker.request", "worker.rebuild",
                           "worker.execute", "worker.serialize"}) {
    EXPECT_EQ(count_spans(prof, name), 2u) << name;
  }
  const std::vector<obs::SpanRecord>& recs = prof.records();
  bool saw_pulses = false;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_FALSE(recs[i].open) << recs[i].name;
    if (recs[i].name.rfind("worker.", 0) == 0) {
      // Grafted spans are never orphaned, always nest under the client's
      // remote-execute span, and share its display track.
      ASSERT_NE(recs[i].parent, obs::kNoSpan);
      EXPECT_TRUE(has_ancestor(recs, i, "executor.remote.execute"));
      EXPECT_EQ(recs[i].track, 0u);
    }
    if (recs[i].name == "worker.execute") {
      for (const auto& [name, value] : recs[i].counters) {
        saw_pulses |= name == "aging.pulses" && value > 0;
      }
    }
  }
  // The worker profiled its own pulse effort into its execute span...
  EXPECT_TRUE(saw_pulses);
  // ...and its registry deltas arrive namespaced, next to the client-side
  // round-trip histogram.
  const std::string dump = registry.to_json().dump();
  EXPECT_NE(dump.find("\"worker.aging.pulses\""), std::string::npos);
  EXPECT_NE(dump.find("\"executor.remote.request_ms\""), std::string::npos);
}

TEST(RemoteExecutor_, DegradedFallbackGraftsNoWorkerSpans) {
  obs::Profiler prof;
  Crossbar xb(4, 4, dev(), ag_crosstalk());
  xb.attach_profiler(&prof);
  const RemoteExecutor remote{dead_endpoint_config()};
  remote.execute(xb, mixed_sequence(4, 4));
  EXPECT_TRUE(remote.degraded());

  EXPECT_EQ(count_spans(prof, "executor.remote.execute"), 1u);
  for (const obs::SpanRecord& rec : prof.records()) {
    EXPECT_FALSE(rec.open);
    EXPECT_NE(rec.name.rfind("worker.", 0), 0u) << rec.name;
  }
}

TEST(RemoteExecutor_, ChaosMatrixGraftsWellFormedSpanTrees) {
  // Under every seeded fault schedule — retries, replay hits, reconnects,
  // clean fallbacks — the grafted trace stays well-formed: exactly one
  // worker tree per remotely-completed request, none duplicated, none
  // orphaned, and nothing grafted for a fallback.
  const std::vector<std::string> specs = {
      "seed=11,drop=0.2",
      "seed=12,corrupt=0.2",
      "seed=13,dup=0.3,disconnect=0.1",
      "seed=14,drop=0.15,corrupt=0.1,dup=0.1,disconnect=0.05",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE("fault spec: " + spec);
    RemoteConfig cfg;
    cfg.fault_spec = spec;
    cfg.request_deadline = 150ms;
    cfg.max_attempts = 4;
    cfg.backoff_initial = 1ms;
    cfg.backoff_max = 4ms;
    const RemoteExecutor remote{cfg};

    obs::Profiler prof;
    Crossbar xb(6, 5, dev(), ag_crosstalk());
    xb.attach_profiler(&prof);
    const std::size_t root = prof.begin_span("command");
    for (int round = 0; round < 4; ++round) {
      remote.execute(xb, mixed_sequence(6, 5));
    }
    prof.end_span(root);

    const RemoteLinkStats stats = remote.link_stats();
    EXPECT_EQ(count_spans(prof, "executor.remote.execute"), 4u);
    EXPECT_EQ(count_spans(prof, "worker.request"),
              4u - static_cast<std::size_t>(stats.fallbacks));

    const std::vector<obs::SpanRecord>& recs = prof.records();
    std::map<std::size_t, std::size_t> trees_per_execute;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_FALSE(recs[i].open) << recs[i].name;
      if (recs[i].name.rfind("worker.", 0) == 0) {
        ASSERT_NE(recs[i].parent, obs::kNoSpan);
        EXPECT_TRUE(has_ancestor(recs, i, "executor.remote.execute"));
      }
      if (recs[i].name == "worker.request") {
        EXPECT_EQ(recs[recs[i].parent].name, "executor.remote.execute");
        ++trees_per_execute[recs[i].parent];
      }
    }
    for (const auto& [parent, trees] : trees_per_execute) {
      EXPECT_EQ(trees, 1u) << "duplicated worker tree under span "
                           << parent;
    }
  }
}

}  // namespace
}  // namespace xbarlife::xbar
