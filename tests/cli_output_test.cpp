// End-to-end CLI output-path tests: every subcommand that accepts the
// --json/--trace/--profile sink flags must fail fast with the IoError
// exit code (3) when the target path is unwritable — before any real
// work runs — and the --profile happy path must produce a Perfetto
// trace_event document.
//
// The binary path comes in via XBARLIFE_CLI_PATH (set in
// tests/CMakeLists.txt from $<TARGET_FILE:xbarlife_cli>).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace {

constexpr const char* kUnwritable =
    "/nonexistent-xbarlife-dir/out.json";

std::string cli_path() { return XBARLIFE_CLI_PATH; }

/// Runs the CLI with `args`, discarding stdout/stderr, and returns its
/// exit code (-1 when the shell itself failed).
int run_cli(const std::string& args) {
  const std::string cmd =
      cli_path() + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
#ifdef _WIN32
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct SinkCase {
  const char* command;  ///< subcommand plus fast-run flags
  const char* flag;     ///< sink flag under test
};

std::string PrintToString(const SinkCase& c) {
  std::string name = std::string(c.command) + "_" + (c.flag + 2);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  return name;
}

class UnwritableSink : public ::testing::TestWithParam<SinkCase> {};

// Every sink is opened before the command does any work, so even the
// heavy subcommands fail in milliseconds.
TEST_P(UnwritableSink, FailsFastWithIoExitCode) {
  const SinkCase& c = GetParam();
  const int code = run_cli(std::string(c.command) + " " + c.flag + " " +
                           kUnwritable);
  EXPECT_EQ(code, 3) << "command: " << c.command << " " << c.flag;
}

INSTANTIATE_TEST_SUITE_P(
    AllCommands, UnwritableSink,
    ::testing::Values(
        SinkCase{"train", "--json"}, SinkCase{"train", "--trace"},
        SinkCase{"train", "--profile"},
        SinkCase{"lifetime", "--json"}, SinkCase{"lifetime", "--trace"},
        SinkCase{"lifetime", "--profile"},
        SinkCase{"sweep", "--json"}, SinkCase{"sweep", "--trace"},
        SinkCase{"sweep", "--profile"},
        SinkCase{"faults", "--json"}, SinkCase{"faults", "--trace"},
        SinkCase{"faults", "--profile"},
        SinkCase{"device", "--json"}, SinkCase{"device", "--trace"},
        SinkCase{"device", "--profile"},
        SinkCase{"bench", "--json"}, SinkCase{"bench", "--trace"},
        SinkCase{"bench", "--profile"},
        SinkCase{"models", "--json"}, SinkCase{"models", "--trace"},
        SinkCase{"models", "--profile"}),
    [](const ::testing::TestParamInfo<SinkCase>& info) {
      return PrintToString(info.param);
    });

TEST(CliOutput, UnknownCommandExitsUsage) {
  EXPECT_EQ(run_cli("frobnicate"), 2);
}

TEST(CliOutput, BenchRejectsZeroReps) {
  EXPECT_EQ(run_cli("bench --reps 0"), 2);
}

// An impossibly small --job-timeout expires every job instantly: the
// sweep still completes with isolated timed-out failures (exit 0), but
// --strict must trip on them like any other failure (exit 4).
TEST(CliOutput, StrictTripsOnTimedOutSweepJobs) {
  const std::string cmd =
      "sweep --model mlp --sessions 1 --replicates 1 --job-timeout 0.001";
  EXPECT_EQ(run_cli(cmd), 0);
  EXPECT_EQ(run_cli(cmd + " --strict"), 4);
}

// Outside a fan-out there is no entry to isolate the failure into: an
// expired lifetime deadline propagates as TimeoutError (exit 8).
TEST(CliOutput, LifetimeWatchdogExpiryExitsTimeout) {
  EXPECT_EQ(
      run_cli("lifetime --model mlp --sessions 1 --job-timeout 0.001"), 8);
}

TEST(CliOutput, DeviceProfileWritesPerfettoDocument) {
  const std::string path =
      ::testing::TempDir() + "/xbarlife_device_profile.json";
  std::remove(path.c_str());
  ASSERT_EQ(run_cli("device --pulses 5 --profile " + path), 0);
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "no profile written to " << path;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"schema\":\"xbarlife.profile.v1\""),
            std::string::npos);
  // The command-level root span names the subcommand.
  EXPECT_NE(text.find("\"name\":\"cmd.device\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliOutput, DeviceJsonEmbedsProfileKeyWhenProfiling) {
  const std::string json = ::testing::TempDir() + "/xbarlife_device.jsonl";
  const std::string prof =
      ::testing::TempDir() + "/xbarlife_device_prof.json";
  std::remove(json.c_str());
  std::remove(prof.c_str());
  ASSERT_EQ(run_cli("device --pulses 5 --json " + json + " --profile " +
                    prof),
            0);
  const std::string text = slurp(json);
  ASSERT_FALSE(text.empty());
  // Final line is the result document; the profile rollup rides as its
  // trailing key.
  EXPECT_NE(text.find("\"schema\":\"xbarlife.result.v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"profile\":{\"span_count\":"), std::string::npos);
  std::remove(json.c_str());
  std::remove(prof.c_str());
}

TEST(CliOutput, DeviceJsonWithoutProfileHasNoProfileKey) {
  const std::string json =
      ::testing::TempDir() + "/xbarlife_device_noprof.jsonl";
  std::remove(json.c_str());
  ASSERT_EQ(run_cli("device --pulses 5 --json " + json), 0);
  const std::string text = slurp(json);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.find("\"profile\""), std::string::npos);
  std::remove(json.c_str());
}

// Unknown executor backends exit with the usage code, whether they come
// from the flag or the environment, and the message lists the usable
// names (not asserted here — run_cli discards output).
TEST(CliOutput, UnknownExecutorExitsUsage) {
  EXPECT_EQ(run_cli("device --pulses 5 --executor warpdrive"), 2);
  const std::string cmd = "XBARLIFE_EXECUTOR=warpdrive " + cli_path() +
                          " device --pulses 5 >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
#ifndef _WIN32
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 2);
#endif
}

// The executor backend is a pure implementation choice: the same run
// under --executor sim and --executor percell must produce identical
// result streams except for the envelope's own "executor" stamp.
TEST(CliOutput, ExecutorBackendsProduceIdenticalResultsModuloStamp) {
  const std::string sim_json = ::testing::TempDir() + "/xbarlife_sim.jsonl";
  const std::string per_json =
      ::testing::TempDir() + "/xbarlife_percell.jsonl";
  std::remove(sim_json.c_str());
  std::remove(per_json.c_str());
  ASSERT_EQ(run_cli("device --pulses 50 --executor sim --json " + sim_json),
            0);
  ASSERT_EQ(run_cli("device --pulses 50 --executor percell --json " +
                    per_json),
            0);
  std::string sim_text = slurp(sim_json);
  std::string per_text = slurp(per_json);
  ASSERT_FALSE(sim_text.empty());
  ASSERT_FALSE(per_text.empty());
  EXPECT_NE(sim_text.find("\"executor\":\"sim\""), std::string::npos);
  EXPECT_NE(per_text.find("\"executor\":\"percell\""), std::string::npos);
  const auto unstamp = [](std::string text, const std::string& name) {
    const std::string needle = "\"executor\":\"" + name + "\"";
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos)) {
      text.replace(pos, needle.size(), "\"executor\":\"*\"");
    }
    return text;
  };
  EXPECT_EQ(unstamp(sim_text, "sim"), unstamp(per_text, "percell"));
  std::remove(sim_json.c_str());
  std::remove(per_json.c_str());
}

TEST(CliOutput, ProfileEnvVarEnablesProfiling) {
  const std::string path =
      ::testing::TempDir() + "/xbarlife_env_profile.json";
  std::remove(path.c_str());
  const std::string cmd = "XBARLIFE_PROFILE=" + path + " " + cli_path() +
                          " device --pulses 5 >/dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
