#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace xbarlife::nn {
namespace {

TEST(SoftmaxCE, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 4}, 0.0f);
  const std::vector<std::int32_t> labels{0, 3};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(SoftmaxCE, ConfidentCorrectLogitsGiveLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3}, std::vector<float>{10.0f, 0.0f, 0.0f});
  const std::vector<std::int32_t> labels{0};
  EXPECT_LT(loss.forward(logits, labels), 1e-3);
}

TEST(SoftmaxCE, ConfidentWrongLogitsGiveHighLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3}, std::vector<float>{10.0f, 0.0f, 0.0f});
  const std::vector<std::int32_t> labels{2};
  EXPECT_GT(loss.forward(logits, labels), 5.0);
}

TEST(SoftmaxCE, ShiftInvariance) {
  SoftmaxCrossEntropy loss;
  Tensor a(Shape{1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  Tensor b(Shape{1, 3}, std::vector<float>{101.0f, 102.0f, 103.0f});
  const std::vector<std::int32_t> labels{1};
  EXPECT_NEAR(loss.forward(a, labels), loss.forward(b, labels), 1e-5);
}

TEST(SoftmaxCE, ProbabilitiesSumToOne) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 5}, std::vector<float>{1, 2, 3, 4, 5,
                                                -1, 0, 1, 0, -1});
  const std::vector<std::int32_t> labels{0, 1};
  loss.forward(logits, labels);
  const Tensor& p = loss.probabilities();
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      sum += p.at(b, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxCE, GradientIsProbMinusOneHotOverBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 3}, std::vector<float>{1, 1, 1, 2, 0, 0});
  const std::vector<std::int32_t> labels{0, 1};
  loss.forward(logits, labels);
  Tensor grad = loss.backward();
  const Tensor& p = loss.probabilities();
  EXPECT_NEAR(grad.at(0, 0), (p.at(0, 0) - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), p.at(0, 1) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(1, 1), (p.at(1, 1) - 1.0f) / 2.0f, 1e-6f);
  // Gradient rows sum to zero.
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += grad.at(b, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCE, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.backward(), InvalidArgument);
}

TEST(SoftmaxCE, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 3}, 0.0f);
  const std::vector<std::int32_t> bad{5};
  EXPECT_THROW(loss.forward(logits, bad), InvalidArgument);
}

TEST(Accuracy, CountsArgmaxHits) {
  Tensor logits(Shape{3, 2}, std::vector<float>{1.0f, 0.0f,  // pred 0
                                                0.0f, 1.0f,  // pred 1
                                                1.0f, 0.0f});  // pred 0
  const std::vector<std::int32_t> labels{0, 1, 1};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Accuracy, EmptyBatchIsZero) {
  Tensor logits(Shape{0, 4});
  EXPECT_EQ(accuracy(logits, {}), 0.0);
}

}  // namespace
}  // namespace xbarlife::nn
