// Tests for the paper's Eqs. (2) and (8)-(10): classic L2 and the
// two-segment skewed regularizer.
#include "nn/regularizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace xbarlife::nn {
namespace {

TEST(L2, PenaltyIsLambdaTimesSquaredNorm) {
  L2Regularizer reg(0.5);
  Tensor w(Shape{3}, std::vector<float>{1.0f, 2.0f, -2.0f});
  EXPECT_NEAR(reg.penalty(w, 0), 0.5 * 9.0, 1e-6);
}

TEST(L2, GradientIsTwoLambdaW) {
  L2Regularizer reg(0.1);
  Tensor w(Shape{2}, std::vector<float>{3.0f, -4.0f});
  Tensor grad(Shape{2}, 1.0f);  // pre-existing gradient must be added to
  reg.add_gradient(w, 0, grad);
  EXPECT_NEAR(grad[0], 1.0f + 2.0f * 0.1f * 3.0f, 1e-6f);
  EXPECT_NEAR(grad[1], 1.0f - 2.0f * 0.1f * 4.0f, 1e-6f);
}

TEST(L2, RejectsNegativeLambda) {
  EXPECT_THROW(L2Regularizer(-0.1), InvalidArgument);
}

TEST(SkewedL2, RequiresLambda1AtLeastLambda2) {
  EXPECT_NO_THROW(SkewedL2Regularizer(0.2, 0.1, -1.0));
  EXPECT_NO_THROW(SkewedL2Regularizer(0.1, 0.1, -1.0));
  EXPECT_THROW(SkewedL2Regularizer(0.1, 0.2, -1.0), InvalidArgument);
}

TEST(SkewedL2, OmegaTracksStddevTimesFactor) {
  SkewedL2Regularizer reg(0.2, 0.1, -1.5);
  Tensor w(Shape{4}, std::vector<float>{-1.0f, 1.0f, -1.0f, 1.0f});
  // stddev = 1, so omega = -1.5.
  EXPECT_NEAR(reg.omega(w, 0), -1.5, 1e-6);
}

TEST(SkewedL2, FrozenOmegaStopsTracking) {
  SkewedL2Regularizer reg(0.2, 0.1, -1.0);
  Tensor w(Shape{2}, std::vector<float>{-2.0f, 2.0f});
  reg.freeze_omega(0, -0.25);
  EXPECT_NEAR(reg.omega(w, 0), -0.25, 1e-12);
  // Other layers still track.
  EXPECT_NEAR(reg.omega(w, 1), -2.0, 1e-6);
}

TEST(SkewedL2, FreezeOmegasFromWeights) {
  SkewedL2Regularizer reg(0.2, 0.1, -1.0);
  Tensor w0(Shape{2}, std::vector<float>{-1.0f, 1.0f});  // sd 1
  Tensor w1(Shape{2}, std::vector<float>{-2.0f, 2.0f});  // sd 2
  reg.freeze_omegas({&w0, &w1});
  // Mutating the weights must not change the frozen omegas anymore.
  w0.fill(100.0f);
  w1.fill(100.0f);
  EXPECT_NEAR(reg.omega(w0, 0), -1.0, 1e-6);
  EXPECT_NEAR(reg.omega(w1, 1), -2.0, 1e-6);
}

TEST(SkewedL2, PenaltySplitsAtOmega) {
  SkewedL2Regularizer reg(2.0, 0.5, 0.0);
  reg.freeze_omega(0, 0.0);
  // w = -1 -> left segment: 2.0 * 1 ; w = 2 -> right: 0.5 * 4.
  Tensor w(Shape{2}, std::vector<float>{-1.0f, 2.0f});
  EXPECT_NEAR(reg.penalty(w, 0), 2.0 + 2.0, 1e-6);
}

TEST(SkewedL2, GradientMatchesNumericDerivative) {
  SkewedL2Regularizer reg(0.3, 0.05, 0.0);
  reg.freeze_omega(0, -0.2);
  Tensor w(Shape{5},
           std::vector<float>{-1.0f, -0.3f, -0.2f, 0.1f, 0.8f});
  Tensor grad(Shape{5}, 0.0f);
  reg.add_gradient(w, 0, grad);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    Tensor wp = w;
    Tensor wm = w;
    wp[i] += static_cast<float>(eps);
    wm[i] -= static_cast<float>(eps);
    const double numeric =
        (reg.penalty(wp, 0) - reg.penalty(wm, 0)) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-3) << "index " << i;
  }
}

TEST(SkewedL2, StrongLeftPenaltyPullsMinimumTowardOmega) {
  // Gradient descent on the penalty alone must push a left-side weight up
  // toward omega much harder than it pulls a right-side weight down.
  SkewedL2Regularizer reg(1.0, 0.01, 0.0);
  reg.freeze_omega(0, 0.0);
  Tensor w(Shape{2}, std::vector<float>{-0.5f, 0.5f});
  Tensor grad(Shape{2}, 0.0f);
  reg.add_gradient(w, 0, grad);
  EXPECT_LT(grad[0], 0.0f);  // pushes -0.5 upward (descent: w -= grad)
  EXPECT_GT(grad[1], 0.0f);
  EXPECT_GT(std::fabs(grad[0]), 10.0f * std::fabs(grad[1]));
}

TEST(SkewedL2, GradientShapeMismatchThrows) {
  SkewedL2Regularizer reg(0.2, 0.1, -1.0);
  Tensor w(Shape{3});
  Tensor grad(Shape{2});
  EXPECT_THROW(reg.add_gradient(w, 0, grad), InvalidArgument);
}

}  // namespace
}  // namespace xbarlife::nn
