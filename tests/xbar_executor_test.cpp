// Executor-backend contract tests: registry selection, the sim-vs-percell
// byte-identity guarantee, program_cell's thin-wrapper equivalence, and
// the pulse/batch accounting invariants shared by every backend.
#include "xbar/executor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "persist/state_io.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/remote.hpp"

namespace xbarlife::xbar {
namespace {

device::DeviceParams dev() { return device::DeviceParams{}; }
aging::AgingParams ag() { return aging::AgingParams{}; }

/// Crosstalk makes the ambient pool order-dependent — the strictest
/// setting for byte-identity checks.
aging::AgingParams ag_crosstalk() {
  aging::AgingParams a;
  a.thermal_crosstalk = 0.05;
  return a;
}

std::string snapshot(const Crossbar& xb) {
  persist::StateWriter w;
  xb.save_state(w);
  return w.data();
}

/// A sequence exercising every op kind across several columns: two
/// multi-pulse column batches, interleaved verifies, a wait.
ProgramSequence mixed_sequence(std::size_t rows, std::size_t cols) {
  SequenceBuilder b(rows, cols);
  for (std::size_t c = 0; c < cols; c += 2) {
    for (std::size_t r = 0; r < rows; ++r) {
      b.pulse(r, c, 1e4 + 1e3 * static_cast<double>(r + c * rows));
    }
    b.verify(0, c);
    b.wait(c, 2.5);
  }
  return b.build();
}

TEST(ExecutorRegistry, ListsAllBackends) {
  const auto names = available_executors();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "sim");
  EXPECT_EQ(names[1], "percell");
  EXPECT_EQ(names[2], "remote");
}

TEST(ExecutorRegistry, SetExecutorSwitchesActiveBackend) {
  set_executor("percell");
  EXPECT_EQ(executor_name(), "percell");
  EXPECT_STREQ(select_executor().name(), "percell");
  set_executor("sim");
  EXPECT_EQ(executor_name(), "sim");
  // "" and "auto" resolve to the default (sim).
  set_executor("auto");
  EXPECT_EQ(executor_name(), "sim");
  set_executor("");
  EXPECT_EQ(executor_name(), "sim");
}

TEST(ExecutorRegistry, UnknownNameThrowsListingBackends) {
  // Whatever is active (the suite may run under XBARLIFE_EXECUTOR), a
  // failed set must leave it untouched.
  const std::string before = executor_name();
  try {
    set_executor("fpga");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fpga"), std::string::npos);
    EXPECT_NE(msg.find("sim"), std::string::npos);
    EXPECT_NE(msg.find("percell"), std::string::npos);
    EXPECT_NE(msg.find("remote"), std::string::npos);
  }
  EXPECT_EQ(executor_name(), before);
}

TEST(Executors, SimMatchesPerCellByteIdenticalOnIdealArray) {
  const ProgramSequence seq = mixed_sequence(6, 5);
  Crossbar a(6, 5, dev(), ag_crosstalk());
  Crossbar b(6, 5, dev(), ag_crosstalk());

  const ExecReport ra = SimExecutor{}.execute(a, seq);
  const ExecReport rb = PerCellExecutor{}.execute(b, seq);

  EXPECT_EQ(snapshot(a), snapshot(b));
  EXPECT_EQ(ra.results, rb.results);
  EXPECT_EQ(ra.stats.pulses, rb.stats.pulses);
  EXPECT_EQ(ra.stats.batches, rb.stats.batches);
}

// Zero crosstalk makes every ambient share exactly +0.0, which lets the
// batched path skip the pool updates (`x += 0.0` is a bit-exact
// identity) — the elision BM_ProgramWeightsBatched's speedup rests on.
// This pins that the skip really is byte-identical to the per-cell
// path's unconditional pool accumulation.
TEST(Executors, SimMatchesPerCellByteIdenticalWithZeroCrosstalk) {
  aging::AgingParams zero;
  zero.thermal_crosstalk = 0.0;
  const ProgramSequence seq = mixed_sequence(6, 5);
  Crossbar a(6, 5, dev(), zero);
  Crossbar b(6, 5, dev(), zero);

  const ExecReport ra = SimExecutor{}.execute(a, seq);
  const ExecReport rb = PerCellExecutor{}.execute(b, seq);

  EXPECT_EQ(snapshot(a), snapshot(b));
  EXPECT_EQ(ra.results, rb.results);
  EXPECT_EQ(a.ambient_stress(), 0.0);
}

TEST(Executors, SimMatchesPerCellByteIdenticalUnderNonideality) {
  // Write noise, read noise and stuck cells all consume ordered RNG
  // streams; both backends must consume them identically in op order.
  NonidealityConfig cfg;
  cfg.write_noise_sigma = 0.05;
  cfg.read_noise_sigma = 0.02;
  cfg.stuck_off_fraction = 0.05;
  cfg.stuck_on_fraction = 0.05;

  const ProgramSequence seq = mixed_sequence(8, 6);
  Crossbar a(8, 6, dev(), ag_crosstalk());
  Crossbar b(8, 6, dev(), ag_crosstalk());
  a.configure_nonideality(cfg, 99);
  b.configure_nonideality(cfg, 99);

  const ExecReport ra = SimExecutor{}.execute(a, seq);
  const ExecReport rb = PerCellExecutor{}.execute(b, seq);

  EXPECT_EQ(snapshot(a), snapshot(b));
  EXPECT_EQ(ra.results, rb.results);
}

TEST(Executors, ReportAlignsResultsWithOps) {
  SequenceBuilder b(3, 3);
  b.pulse(0, 1, 2e4);
  b.verify(0, 1);
  b.wait(1, 4.0);
  const ProgramSequence seq = b.build();

  Crossbar xb(3, 3, dev(), ag());
  const ExecReport rep = SimExecutor{}.execute(xb, seq);
  ASSERT_EQ(rep.results.size(), seq.size());
  EXPECT_DOUBLE_EQ(rep.results[0], 2e4);  // achieved resistance
  EXPECT_DOUBLE_EQ(rep.results[1], xb.read_conductance(0, 1));
  EXPECT_DOUBLE_EQ(rep.results[2], 0.0);  // wait carries no result
  EXPECT_EQ(rep.stats.pulses, 1u);
  EXPECT_EQ(rep.stats.verifies, 1u);
  EXPECT_EQ(rep.stats.waits, 1u);
}

TEST(Executors, ProgramCellEqualsOneOpSequence) {
  Crossbar a(3, 3, dev(), ag_crosstalk());
  Crossbar b(3, 3, dev(), ag_crosstalk());

  const double direct = a.program_cell(1, 2, 4e4);

  SequenceBuilder builder(3, 3);
  builder.pulse(1, 2, 4e4);
  const ExecReport rep = SimExecutor{}.execute(b, builder.build());

  ASSERT_EQ(rep.results.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.results[0], direct);
  EXPECT_EQ(snapshot(a), snapshot(b));
}

// Satellite 2 (pulse accounting): total_pulses and the attached obs
// counters must agree exactly across backends — the batched path tallies
// per batch, the per-cell path per pulse, and the remote path credits the
// client-side counters after restoring the worker's state — but the
// totals are identical.
TEST(Executors, PulseAccountingIdenticalAcrossBackends) {
  const ProgramSequence seq = mixed_sequence(9, 9);

  obs::Counter pulses_a, traced_a, seqs_a, batches_a;
  obs::Counter pulses_b, traced_b, seqs_b, batches_b;
  obs::Counter pulses_c, traced_c, seqs_c, batches_c;

  Crossbar a(9, 9, dev(), ag());
  Crossbar b(9, 9, dev(), ag());
  Crossbar c(9, 9, dev(), ag());
  a.attach_pulse_counters(&pulses_a, &traced_a);
  a.attach_executor_counters(&seqs_a, &batches_a);
  b.attach_pulse_counters(&pulses_b, &traced_b);
  b.attach_executor_counters(&seqs_b, &batches_b);
  c.attach_pulse_counters(&pulses_c, &traced_c);
  c.attach_executor_counters(&seqs_c, &batches_c);

  const ExecReport ra = SimExecutor{}.execute(a, seq);
  const ExecReport rb = PerCellExecutor{}.execute(b, seq);
  const ExecReport rc = RemoteExecutor{RemoteConfig{}}.execute(c, seq);

  EXPECT_EQ(a.total_pulses(), b.total_pulses());
  EXPECT_EQ(a.total_pulses(), c.total_pulses());
  EXPECT_EQ(a.total_pulses(), ra.stats.pulses);
  EXPECT_EQ(pulses_a.value(), pulses_b.value());
  EXPECT_EQ(pulses_a.value(), pulses_c.value());
  EXPECT_EQ(pulses_a.value(), ra.stats.pulses);
  EXPECT_EQ(traced_a.value(), traced_b.value());
  EXPECT_EQ(traced_a.value(), traced_c.value());
  // A 9x9 array traces 1-of-9 cells, so some pulses must be traced.
  EXPECT_GT(traced_a.value(), 0u);
  EXPECT_LT(traced_a.value(), pulses_a.value());

  EXPECT_EQ(seqs_a.value(), 1u);
  EXPECT_EQ(seqs_b.value(), 1u);
  EXPECT_EQ(seqs_c.value(), 1u);
  EXPECT_EQ(batches_a.value(), batches_b.value());
  EXPECT_EQ(batches_a.value(), batches_c.value());
  EXPECT_EQ(batches_a.value(), ra.stats.batches);
  EXPECT_EQ(ra.stats.batches, rb.stats.batches);
  EXPECT_EQ(ra.stats.batches, rc.stats.batches);
}

TEST(Executors, EmptySequenceIsANoOp) {
  Crossbar xb(2, 2, dev(), ag());
  const std::string before = snapshot(xb);
  const ExecReport rep = SimExecutor{}.execute(xb, ProgramSequence{});
  EXPECT_TRUE(rep.results.empty());
  EXPECT_EQ(rep.stats.pulses, 0u);
  EXPECT_EQ(snapshot(xb), before);
  EXPECT_EQ(xb.total_pulses(), 0u);
}

TEST(Executors, BatchRejectsNonPulseOpsAndBadCoordinates) {
  Crossbar xb(2, 2, dev(), ag());
  const ProgramOp bad_kind = ProgramOp::verify(0, 0);
  double out = 0.0;
  EXPECT_THROW(xb.program_batch({&bad_kind, 1}, {&out, 1}), Error);
  const ProgramOp bad_row = ProgramOp::pulse(7, 0, 1e4);
  EXPECT_THROW(xb.program_batch({&bad_row, 1}, {&out, 1}), Error);
}

}  // namespace
}  // namespace xbarlife::xbar
