file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_cli.dir/xbarlife_cli.cpp.o"
  "CMakeFiles/xbarlife_cli.dir/xbarlife_cli.cpp.o.d"
  "xbarlife"
  "xbarlife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
