# Empty compiler generated dependencies file for xbarlife_cli.
# This may be replaced when dependencies are built.
