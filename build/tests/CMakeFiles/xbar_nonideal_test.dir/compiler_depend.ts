# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xbar_nonideal_test.
