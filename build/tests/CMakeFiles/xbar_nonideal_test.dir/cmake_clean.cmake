file(REMOVE_RECURSE
  "CMakeFiles/xbar_nonideal_test.dir/xbar_nonideal_test.cpp.o"
  "CMakeFiles/xbar_nonideal_test.dir/xbar_nonideal_test.cpp.o.d"
  "xbar_nonideal_test"
  "xbar_nonideal_test.pdb"
  "xbar_nonideal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_nonideal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
