# Empty dependencies file for xbar_nonideal_test.
# This may be replaced when dependencies are built.
