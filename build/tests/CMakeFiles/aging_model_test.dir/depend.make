# Empty dependencies file for aging_model_test.
# This may be replaced when dependencies are built.
