file(REMOVE_RECURSE
  "CMakeFiles/aging_model_test.dir/aging_model_test.cpp.o"
  "CMakeFiles/aging_model_test.dir/aging_model_test.cpp.o.d"
  "aging_model_test"
  "aging_model_test.pdb"
  "aging_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
