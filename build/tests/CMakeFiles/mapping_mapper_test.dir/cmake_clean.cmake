file(REMOVE_RECURSE
  "CMakeFiles/mapping_mapper_test.dir/mapping_mapper_test.cpp.o"
  "CMakeFiles/mapping_mapper_test.dir/mapping_mapper_test.cpp.o.d"
  "mapping_mapper_test"
  "mapping_mapper_test.pdb"
  "mapping_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
