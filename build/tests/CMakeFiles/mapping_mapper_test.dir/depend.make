# Empty dependencies file for mapping_mapper_test.
# This may be replaced when dependencies are built.
