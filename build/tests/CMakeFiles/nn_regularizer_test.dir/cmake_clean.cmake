file(REMOVE_RECURSE
  "CMakeFiles/nn_regularizer_test.dir/nn_regularizer_test.cpp.o"
  "CMakeFiles/nn_regularizer_test.dir/nn_regularizer_test.cpp.o.d"
  "nn_regularizer_test"
  "nn_regularizer_test.pdb"
  "nn_regularizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_regularizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
