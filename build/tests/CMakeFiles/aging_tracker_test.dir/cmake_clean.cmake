file(REMOVE_RECURSE
  "CMakeFiles/aging_tracker_test.dir/aging_tracker_test.cpp.o"
  "CMakeFiles/aging_tracker_test.dir/aging_tracker_test.cpp.o.d"
  "aging_tracker_test"
  "aging_tracker_test.pdb"
  "aging_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
