# Empty dependencies file for aging_tracker_test.
# This may be replaced when dependencies are built.
