# Empty compiler generated dependencies file for tensor_im2col_test.
# This may be replaced when dependencies are built.
