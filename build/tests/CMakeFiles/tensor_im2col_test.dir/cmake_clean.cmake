file(REMOVE_RECURSE
  "CMakeFiles/tensor_im2col_test.dir/tensor_im2col_test.cpp.o"
  "CMakeFiles/tensor_im2col_test.dir/tensor_im2col_test.cpp.o.d"
  "tensor_im2col_test"
  "tensor_im2col_test.pdb"
  "tensor_im2col_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_im2col_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
