file(REMOVE_RECURSE
  "CMakeFiles/tensor_matmul_test.dir/tensor_matmul_test.cpp.o"
  "CMakeFiles/tensor_matmul_test.dir/tensor_matmul_test.cpp.o.d"
  "tensor_matmul_test"
  "tensor_matmul_test.pdb"
  "tensor_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
