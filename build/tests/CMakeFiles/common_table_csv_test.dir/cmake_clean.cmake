file(REMOVE_RECURSE
  "CMakeFiles/common_table_csv_test.dir/common_table_csv_test.cpp.o"
  "CMakeFiles/common_table_csv_test.dir/common_table_csv_test.cpp.o.d"
  "common_table_csv_test"
  "common_table_csv_test.pdb"
  "common_table_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_table_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
