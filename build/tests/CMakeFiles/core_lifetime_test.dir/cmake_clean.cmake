file(REMOVE_RECURSE
  "CMakeFiles/core_lifetime_test.dir/core_lifetime_test.cpp.o"
  "CMakeFiles/core_lifetime_test.dir/core_lifetime_test.cpp.o.d"
  "core_lifetime_test"
  "core_lifetime_test.pdb"
  "core_lifetime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
