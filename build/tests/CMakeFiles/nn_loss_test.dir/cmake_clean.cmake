file(REMOVE_RECURSE
  "CMakeFiles/nn_loss_test.dir/nn_loss_test.cpp.o"
  "CMakeFiles/nn_loss_test.dir/nn_loss_test.cpp.o.d"
  "nn_loss_test"
  "nn_loss_test.pdb"
  "nn_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
