# Empty dependencies file for nn_loss_test.
# This may be replaced when dependencies are built.
