file(REMOVE_RECURSE
  "CMakeFiles/nn_batchnorm_test.dir/nn_batchnorm_test.cpp.o"
  "CMakeFiles/nn_batchnorm_test.dir/nn_batchnorm_test.cpp.o.d"
  "nn_batchnorm_test"
  "nn_batchnorm_test.pdb"
  "nn_batchnorm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_batchnorm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
