# Empty dependencies file for nn_batchnorm_test.
# This may be replaced when dependencies are built.
