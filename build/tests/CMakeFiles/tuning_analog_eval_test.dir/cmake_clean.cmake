file(REMOVE_RECURSE
  "CMakeFiles/tuning_analog_eval_test.dir/tuning_analog_eval_test.cpp.o"
  "CMakeFiles/tuning_analog_eval_test.dir/tuning_analog_eval_test.cpp.o.d"
  "tuning_analog_eval_test"
  "tuning_analog_eval_test.pdb"
  "tuning_analog_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_analog_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
