# Empty dependencies file for tuning_analog_eval_test.
# This may be replaced when dependencies are built.
