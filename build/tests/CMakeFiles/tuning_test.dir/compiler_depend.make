# Empty compiler generated dependencies file for tuning_test.
# This may be replaced when dependencies are built.
