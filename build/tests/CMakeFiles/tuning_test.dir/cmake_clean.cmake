file(REMOVE_RECURSE
  "CMakeFiles/tuning_test.dir/tuning_test.cpp.o"
  "CMakeFiles/tuning_test.dir/tuning_test.cpp.o.d"
  "tuning_test"
  "tuning_test.pdb"
  "tuning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
