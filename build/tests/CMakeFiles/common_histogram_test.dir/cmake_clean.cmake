file(REMOVE_RECURSE
  "CMakeFiles/common_histogram_test.dir/common_histogram_test.cpp.o"
  "CMakeFiles/common_histogram_test.dir/common_histogram_test.cpp.o.d"
  "common_histogram_test"
  "common_histogram_test.pdb"
  "common_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
