# Empty compiler generated dependencies file for mapping_linear_map_test.
# This may be replaced when dependencies are built.
