file(REMOVE_RECURSE
  "CMakeFiles/mapping_linear_map_test.dir/mapping_linear_map_test.cpp.o"
  "CMakeFiles/mapping_linear_map_test.dir/mapping_linear_map_test.cpp.o.d"
  "mapping_linear_map_test"
  "mapping_linear_map_test.pdb"
  "mapping_linear_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_linear_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
