file(REMOVE_RECURSE
  "CMakeFiles/tensor_shape_test.dir/tensor_shape_test.cpp.o"
  "CMakeFiles/tensor_shape_test.dir/tensor_shape_test.cpp.o.d"
  "tensor_shape_test"
  "tensor_shape_test.pdb"
  "tensor_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
