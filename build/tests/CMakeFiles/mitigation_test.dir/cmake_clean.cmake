file(REMOVE_RECURSE
  "CMakeFiles/mitigation_test.dir/mitigation_test.cpp.o"
  "CMakeFiles/mitigation_test.dir/mitigation_test.cpp.o.d"
  "mitigation_test"
  "mitigation_test.pdb"
  "mitigation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
