# Empty compiler generated dependencies file for mitigation_test.
# This may be replaced when dependencies are built.
