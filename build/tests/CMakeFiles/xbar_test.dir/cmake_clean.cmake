file(REMOVE_RECURSE
  "CMakeFiles/xbar_test.dir/xbar_test.cpp.o"
  "CMakeFiles/xbar_test.dir/xbar_test.cpp.o.d"
  "xbar_test"
  "xbar_test.pdb"
  "xbar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
