# Empty dependencies file for xbar_test.
# This may be replaced when dependencies are built.
