file(REMOVE_RECURSE
  "CMakeFiles/nn_serialize_test.dir/nn_serialize_test.cpp.o"
  "CMakeFiles/nn_serialize_test.dir/nn_serialize_test.cpp.o.d"
  "nn_serialize_test"
  "nn_serialize_test.pdb"
  "nn_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
