
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn_serialize_test.cpp" "tests/CMakeFiles/nn_serialize_test.dir/nn_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/nn_serialize_test.dir/nn_serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xbarlife_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/xbarlife_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/xbarlife_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/xbarlife_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/xbar/CMakeFiles/xbarlife_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/xbarlife_device.dir/DependInfo.cmake"
  "/root/repo/build/src/aging/CMakeFiles/xbarlife_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/xbarlife_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/xbarlife_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/xbarlife_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbarlife_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
