file(REMOVE_RECURSE
  "CMakeFiles/tensor_tensor_test.dir/tensor_tensor_test.cpp.o"
  "CMakeFiles/tensor_tensor_test.dir/tensor_tensor_test.cpp.o.d"
  "tensor_tensor_test"
  "tensor_tensor_test.pdb"
  "tensor_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
