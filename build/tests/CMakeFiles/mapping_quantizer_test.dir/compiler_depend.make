# Empty compiler generated dependencies file for mapping_quantizer_test.
# This may be replaced when dependencies are built.
