file(REMOVE_RECURSE
  "CMakeFiles/mapping_quantizer_test.dir/mapping_quantizer_test.cpp.o"
  "CMakeFiles/mapping_quantizer_test.dir/mapping_quantizer_test.cpp.o.d"
  "mapping_quantizer_test"
  "mapping_quantizer_test.pdb"
  "mapping_quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
