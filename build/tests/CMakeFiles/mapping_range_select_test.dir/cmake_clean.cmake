file(REMOVE_RECURSE
  "CMakeFiles/mapping_range_select_test.dir/mapping_range_select_test.cpp.o"
  "CMakeFiles/mapping_range_select_test.dir/mapping_range_select_test.cpp.o.d"
  "mapping_range_select_test"
  "mapping_range_select_test.pdb"
  "mapping_range_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_range_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
