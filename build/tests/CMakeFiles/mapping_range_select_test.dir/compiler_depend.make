# Empty compiler generated dependencies file for mapping_range_select_test.
# This may be replaced when dependencies are built.
