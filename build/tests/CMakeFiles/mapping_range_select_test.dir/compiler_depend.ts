# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mapping_range_select_test.
