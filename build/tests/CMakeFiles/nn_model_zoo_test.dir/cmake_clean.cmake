file(REMOVE_RECURSE
  "CMakeFiles/nn_model_zoo_test.dir/nn_model_zoo_test.cpp.o"
  "CMakeFiles/nn_model_zoo_test.dir/nn_model_zoo_test.cpp.o.d"
  "nn_model_zoo_test"
  "nn_model_zoo_test.pdb"
  "nn_model_zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_model_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
