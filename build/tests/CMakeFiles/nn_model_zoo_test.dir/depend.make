# Empty dependencies file for nn_model_zoo_test.
# This may be replaced when dependencies are built.
