file(REMOVE_RECURSE
  "CMakeFiles/core_trainer_test.dir/core_trainer_test.cpp.o"
  "CMakeFiles/core_trainer_test.dir/core_trainer_test.cpp.o.d"
  "core_trainer_test"
  "core_trainer_test.pdb"
  "core_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
