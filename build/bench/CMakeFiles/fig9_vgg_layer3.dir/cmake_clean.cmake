file(REMOVE_RECURSE
  "CMakeFiles/fig9_vgg_layer3.dir/fig9_vgg_layer3.cpp.o"
  "CMakeFiles/fig9_vgg_layer3.dir/fig9_vgg_layer3.cpp.o.d"
  "fig9_vgg_layer3"
  "fig9_vgg_layer3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vgg_layer3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
