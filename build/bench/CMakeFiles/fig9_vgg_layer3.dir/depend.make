# Empty dependencies file for fig9_vgg_layer3.
# This may be replaced when dependencies are built.
