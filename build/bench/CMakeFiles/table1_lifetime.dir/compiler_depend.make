# Empty compiler generated dependencies file for table1_lifetime.
# This may be replaced when dependencies are built.
