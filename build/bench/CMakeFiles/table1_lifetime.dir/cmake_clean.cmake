file(REMOVE_RECURSE
  "CMakeFiles/table1_lifetime.dir/table1_lifetime.cpp.o"
  "CMakeFiles/table1_lifetime.dir/table1_lifetime.cpp.o.d"
  "table1_lifetime"
  "table1_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
