file(REMOVE_RECURSE
  "CMakeFiles/table2_params.dir/table2_params.cpp.o"
  "CMakeFiles/table2_params.dir/table2_params.cpp.o.d"
  "table2_params"
  "table2_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
