# Empty dependencies file for table2_params.
# This may be replaced when dependencies are built.
