# Empty compiler generated dependencies file for fig3_distributions.
# This may be replaced when dependencies are built.
