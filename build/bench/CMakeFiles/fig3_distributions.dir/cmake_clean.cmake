file(REMOVE_RECURSE
  "CMakeFiles/fig3_distributions.dir/fig3_distributions.cpp.o"
  "CMakeFiles/fig3_distributions.dir/fig3_distributions.cpp.o.d"
  "fig3_distributions"
  "fig3_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
