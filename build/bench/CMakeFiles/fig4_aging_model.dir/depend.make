# Empty dependencies file for fig4_aging_model.
# This may be replaced when dependencies are built.
