file(REMOVE_RECURSE
  "CMakeFiles/fig4_aging_model.dir/fig4_aging_model.cpp.o"
  "CMakeFiles/fig4_aging_model.dir/fig4_aging_model.cpp.o.d"
  "fig4_aging_model"
  "fig4_aging_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_aging_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
