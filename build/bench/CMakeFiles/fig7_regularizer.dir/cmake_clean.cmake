file(REMOVE_RECURSE
  "CMakeFiles/fig7_regularizer.dir/fig7_regularizer.cpp.o"
  "CMakeFiles/fig7_regularizer.dir/fig7_regularizer.cpp.o.d"
  "fig7_regularizer"
  "fig7_regularizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_regularizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
