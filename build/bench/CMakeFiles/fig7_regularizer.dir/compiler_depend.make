# Empty compiler generated dependencies file for fig7_regularizer.
# This may be replaced when dependencies are built.
