# Empty compiler generated dependencies file for ext_mitigation.
# This may be replaced when dependencies are built.
