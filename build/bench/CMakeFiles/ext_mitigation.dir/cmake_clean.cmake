file(REMOVE_RECURSE
  "CMakeFiles/ext_mitigation.dir/ext_mitigation.cpp.o"
  "CMakeFiles/ext_mitigation.dir/ext_mitigation.cpp.o.d"
  "ext_mitigation"
  "ext_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
