# Empty compiler generated dependencies file for fig10_tuning_series.
# This may be replaced when dependencies are built.
