file(REMOVE_RECURSE
  "CMakeFiles/fig10_tuning_series.dir/fig10_tuning_series.cpp.o"
  "CMakeFiles/fig10_tuning_series.dir/fig10_tuning_series.cpp.o.d"
  "fig10_tuning_series"
  "fig10_tuning_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tuning_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
