file(REMOVE_RECURSE
  "CMakeFiles/ablation_aging.dir/ablation_aging.cpp.o"
  "CMakeFiles/ablation_aging.dir/ablation_aging.cpp.o.d"
  "ablation_aging"
  "ablation_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
