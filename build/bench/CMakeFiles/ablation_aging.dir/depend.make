# Empty dependencies file for ablation_aging.
# This may be replaced when dependencies are built.
