file(REMOVE_RECURSE
  "CMakeFiles/ext_nonideal.dir/ext_nonideal.cpp.o"
  "CMakeFiles/ext_nonideal.dir/ext_nonideal.cpp.o.d"
  "ext_nonideal"
  "ext_nonideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nonideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
