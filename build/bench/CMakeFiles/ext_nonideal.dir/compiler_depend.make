# Empty compiler generated dependencies file for ext_nonideal.
# This may be replaced when dependencies are built.
