file(REMOVE_RECURSE
  "CMakeFiles/fig11_layer_aging.dir/fig11_layer_aging.cpp.o"
  "CMakeFiles/fig11_layer_aging.dir/fig11_layer_aging.cpp.o.d"
  "fig11_layer_aging"
  "fig11_layer_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_layer_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
