# Empty compiler generated dependencies file for fig11_layer_aging.
# This may be replaced when dependencies are built.
