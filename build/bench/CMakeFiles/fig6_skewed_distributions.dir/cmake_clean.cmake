file(REMOVE_RECURSE
  "CMakeFiles/fig6_skewed_distributions.dir/fig6_skewed_distributions.cpp.o"
  "CMakeFiles/fig6_skewed_distributions.dir/fig6_skewed_distributions.cpp.o.d"
  "fig6_skewed_distributions"
  "fig6_skewed_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_skewed_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
