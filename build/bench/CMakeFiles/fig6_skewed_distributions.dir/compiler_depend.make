# Empty compiler generated dependencies file for fig6_skewed_distributions.
# This may be replaced when dependencies are built.
