# Empty dependencies file for lenet_lifetime.
# This may be replaced when dependencies are built.
