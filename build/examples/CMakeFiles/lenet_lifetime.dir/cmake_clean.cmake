file(REMOVE_RECURSE
  "CMakeFiles/lenet_lifetime.dir/lenet_lifetime.cpp.o"
  "CMakeFiles/lenet_lifetime.dir/lenet_lifetime.cpp.o.d"
  "lenet_lifetime"
  "lenet_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lenet_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
