file(REMOVE_RECURSE
  "CMakeFiles/skewed_training.dir/skewed_training.cpp.o"
  "CMakeFiles/skewed_training.dir/skewed_training.cpp.o.d"
  "skewed_training"
  "skewed_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
