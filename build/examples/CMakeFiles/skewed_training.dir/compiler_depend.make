# Empty compiler generated dependencies file for skewed_training.
# This may be replaced when dependencies are built.
