file(REMOVE_RECURSE
  "CMakeFiles/aging_exploration.dir/aging_exploration.cpp.o"
  "CMakeFiles/aging_exploration.dir/aging_exploration.cpp.o.d"
  "aging_exploration"
  "aging_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
