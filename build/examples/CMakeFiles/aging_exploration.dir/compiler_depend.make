# Empty compiler generated dependencies file for aging_exploration.
# This may be replaced when dependencies are built.
