file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_tuning.dir/analog_eval.cpp.o"
  "CMakeFiles/xbarlife_tuning.dir/analog_eval.cpp.o.d"
  "CMakeFiles/xbarlife_tuning.dir/hardware_network.cpp.o"
  "CMakeFiles/xbarlife_tuning.dir/hardware_network.cpp.o.d"
  "CMakeFiles/xbarlife_tuning.dir/online_tuner.cpp.o"
  "CMakeFiles/xbarlife_tuning.dir/online_tuner.cpp.o.d"
  "libxbarlife_tuning.a"
  "libxbarlife_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
