# Empty dependencies file for xbarlife_tuning.
# This may be replaced when dependencies are built.
