file(REMOVE_RECURSE
  "libxbarlife_tuning.a"
)
