file(REMOVE_RECURSE
  "libxbarlife_device.a"
)
