# Empty compiler generated dependencies file for xbarlife_device.
# This may be replaced when dependencies are built.
