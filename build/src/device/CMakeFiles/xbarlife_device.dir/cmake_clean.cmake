file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_device.dir/memristor.cpp.o"
  "CMakeFiles/xbarlife_device.dir/memristor.cpp.o.d"
  "libxbarlife_device.a"
  "libxbarlife_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
