file(REMOVE_RECURSE
  "libxbarlife_nn.a"
)
