
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gradient_check.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/gradient_check.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/gradient_check.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/regularizer.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/regularizer.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/regularizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/xbarlife_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/xbarlife_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/xbarlife_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbarlife_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
