file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_nn.dir/activations.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/activations.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/conv.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/conv.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/dense.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/dense.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/gradient_check.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/gradient_check.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/layer.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/layer.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/loss.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/loss.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/network.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/network.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/optimizer.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/pool.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/pool.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/regularizer.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/regularizer.cpp.o.d"
  "CMakeFiles/xbarlife_nn.dir/serialize.cpp.o"
  "CMakeFiles/xbarlife_nn.dir/serialize.cpp.o.d"
  "libxbarlife_nn.a"
  "libxbarlife_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
