# Empty compiler generated dependencies file for xbarlife_nn.
# This may be replaced when dependencies are built.
