
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aging/aging_model.cpp" "src/aging/CMakeFiles/xbarlife_aging.dir/aging_model.cpp.o" "gcc" "src/aging/CMakeFiles/xbarlife_aging.dir/aging_model.cpp.o.d"
  "/root/repo/src/aging/tracker.cpp" "src/aging/CMakeFiles/xbarlife_aging.dir/tracker.cpp.o" "gcc" "src/aging/CMakeFiles/xbarlife_aging.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xbarlife_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
