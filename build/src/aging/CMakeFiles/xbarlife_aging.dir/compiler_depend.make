# Empty compiler generated dependencies file for xbarlife_aging.
# This may be replaced when dependencies are built.
