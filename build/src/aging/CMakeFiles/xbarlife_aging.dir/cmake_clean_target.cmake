file(REMOVE_RECURSE
  "libxbarlife_aging.a"
)
