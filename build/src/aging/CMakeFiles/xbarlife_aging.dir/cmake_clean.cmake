file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_aging.dir/aging_model.cpp.o"
  "CMakeFiles/xbarlife_aging.dir/aging_model.cpp.o.d"
  "CMakeFiles/xbarlife_aging.dir/tracker.cpp.o"
  "CMakeFiles/xbarlife_aging.dir/tracker.cpp.o.d"
  "libxbarlife_aging.a"
  "libxbarlife_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
