file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_xbar.dir/crossbar.cpp.o"
  "CMakeFiles/xbarlife_xbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/xbarlife_xbar.dir/nonideal.cpp.o"
  "CMakeFiles/xbarlife_xbar.dir/nonideal.cpp.o.d"
  "libxbarlife_xbar.a"
  "libxbarlife_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
