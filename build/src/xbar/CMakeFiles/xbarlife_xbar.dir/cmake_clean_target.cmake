file(REMOVE_RECURSE
  "libxbarlife_xbar.a"
)
