# Empty compiler generated dependencies file for xbarlife_xbar.
# This may be replaced when dependencies are built.
