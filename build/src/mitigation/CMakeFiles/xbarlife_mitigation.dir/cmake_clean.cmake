file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_mitigation.dir/pulse_shaping.cpp.o"
  "CMakeFiles/xbarlife_mitigation.dir/pulse_shaping.cpp.o.d"
  "CMakeFiles/xbarlife_mitigation.dir/row_swap.cpp.o"
  "CMakeFiles/xbarlife_mitigation.dir/row_swap.cpp.o.d"
  "CMakeFiles/xbarlife_mitigation.dir/series_resistor.cpp.o"
  "CMakeFiles/xbarlife_mitigation.dir/series_resistor.cpp.o.d"
  "libxbarlife_mitigation.a"
  "libxbarlife_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
