
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mitigation/pulse_shaping.cpp" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/pulse_shaping.cpp.o" "gcc" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/pulse_shaping.cpp.o.d"
  "/root/repo/src/mitigation/row_swap.cpp" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/row_swap.cpp.o" "gcc" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/row_swap.cpp.o.d"
  "/root/repo/src/mitigation/series_resistor.cpp" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/series_resistor.cpp.o" "gcc" "src/mitigation/CMakeFiles/xbarlife_mitigation.dir/series_resistor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xbar/CMakeFiles/xbarlife_xbar.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/xbarlife_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbarlife_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/xbarlife_device.dir/DependInfo.cmake"
  "/root/repo/build/src/aging/CMakeFiles/xbarlife_aging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
