# Empty dependencies file for xbarlife_mitigation.
# This may be replaced when dependencies are built.
