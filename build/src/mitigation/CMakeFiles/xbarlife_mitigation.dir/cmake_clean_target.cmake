file(REMOVE_RECURSE
  "libxbarlife_mitigation.a"
)
