file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_tensor.dir/im2col.cpp.o"
  "CMakeFiles/xbarlife_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/xbarlife_tensor.dir/matmul.cpp.o"
  "CMakeFiles/xbarlife_tensor.dir/matmul.cpp.o.d"
  "CMakeFiles/xbarlife_tensor.dir/shape.cpp.o"
  "CMakeFiles/xbarlife_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/xbarlife_tensor.dir/tensor.cpp.o"
  "CMakeFiles/xbarlife_tensor.dir/tensor.cpp.o.d"
  "libxbarlife_tensor.a"
  "libxbarlife_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
