
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/im2col.cpp" "src/tensor/CMakeFiles/xbarlife_tensor.dir/im2col.cpp.o" "gcc" "src/tensor/CMakeFiles/xbarlife_tensor.dir/im2col.cpp.o.d"
  "/root/repo/src/tensor/matmul.cpp" "src/tensor/CMakeFiles/xbarlife_tensor.dir/matmul.cpp.o" "gcc" "src/tensor/CMakeFiles/xbarlife_tensor.dir/matmul.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/tensor/CMakeFiles/xbarlife_tensor.dir/shape.cpp.o" "gcc" "src/tensor/CMakeFiles/xbarlife_tensor.dir/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/xbarlife_tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/xbarlife_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xbarlife_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
