# Empty dependencies file for xbarlife_tensor.
# This may be replaced when dependencies are built.
