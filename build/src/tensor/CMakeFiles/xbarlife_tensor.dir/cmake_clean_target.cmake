file(REMOVE_RECURSE
  "libxbarlife_tensor.a"
)
