# Empty compiler generated dependencies file for xbarlife_core.
# This may be replaced when dependencies are built.
