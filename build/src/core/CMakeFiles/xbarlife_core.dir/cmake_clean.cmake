file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_core.dir/experiment.cpp.o"
  "CMakeFiles/xbarlife_core.dir/experiment.cpp.o.d"
  "CMakeFiles/xbarlife_core.dir/lifetime.cpp.o"
  "CMakeFiles/xbarlife_core.dir/lifetime.cpp.o.d"
  "CMakeFiles/xbarlife_core.dir/trainer.cpp.o"
  "CMakeFiles/xbarlife_core.dir/trainer.cpp.o.d"
  "libxbarlife_core.a"
  "libxbarlife_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
