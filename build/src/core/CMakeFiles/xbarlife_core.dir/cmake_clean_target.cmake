file(REMOVE_RECURSE
  "libxbarlife_core.a"
)
