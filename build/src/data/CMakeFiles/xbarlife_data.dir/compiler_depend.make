# Empty compiler generated dependencies file for xbarlife_data.
# This may be replaced when dependencies are built.
