file(REMOVE_RECURSE
  "libxbarlife_data.a"
)
