file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_data.dir/dataset.cpp.o"
  "CMakeFiles/xbarlife_data.dir/dataset.cpp.o.d"
  "CMakeFiles/xbarlife_data.dir/synthetic.cpp.o"
  "CMakeFiles/xbarlife_data.dir/synthetic.cpp.o.d"
  "libxbarlife_data.a"
  "libxbarlife_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
