# Empty dependencies file for xbarlife_common.
# This may be replaced when dependencies are built.
