file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_common.dir/csv.cpp.o"
  "CMakeFiles/xbarlife_common.dir/csv.cpp.o.d"
  "CMakeFiles/xbarlife_common.dir/error.cpp.o"
  "CMakeFiles/xbarlife_common.dir/error.cpp.o.d"
  "CMakeFiles/xbarlife_common.dir/histogram.cpp.o"
  "CMakeFiles/xbarlife_common.dir/histogram.cpp.o.d"
  "CMakeFiles/xbarlife_common.dir/rng.cpp.o"
  "CMakeFiles/xbarlife_common.dir/rng.cpp.o.d"
  "CMakeFiles/xbarlife_common.dir/stats.cpp.o"
  "CMakeFiles/xbarlife_common.dir/stats.cpp.o.d"
  "CMakeFiles/xbarlife_common.dir/table.cpp.o"
  "CMakeFiles/xbarlife_common.dir/table.cpp.o.d"
  "libxbarlife_common.a"
  "libxbarlife_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
