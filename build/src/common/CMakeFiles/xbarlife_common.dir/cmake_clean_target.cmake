file(REMOVE_RECURSE
  "libxbarlife_common.a"
)
