# Empty dependencies file for xbarlife_mapping.
# This may be replaced when dependencies are built.
