file(REMOVE_RECURSE
  "CMakeFiles/xbarlife_mapping.dir/linear_map.cpp.o"
  "CMakeFiles/xbarlife_mapping.dir/linear_map.cpp.o.d"
  "CMakeFiles/xbarlife_mapping.dir/mapper.cpp.o"
  "CMakeFiles/xbarlife_mapping.dir/mapper.cpp.o.d"
  "CMakeFiles/xbarlife_mapping.dir/quantizer.cpp.o"
  "CMakeFiles/xbarlife_mapping.dir/quantizer.cpp.o.d"
  "CMakeFiles/xbarlife_mapping.dir/range_select.cpp.o"
  "CMakeFiles/xbarlife_mapping.dir/range_select.cpp.o.d"
  "libxbarlife_mapping.a"
  "libxbarlife_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbarlife_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
