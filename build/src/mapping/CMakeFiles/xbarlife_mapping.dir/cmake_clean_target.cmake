file(REMOVE_RECURSE
  "libxbarlife_mapping.a"
)
