#include "mitigation/row_swap.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace xbarlife::mitigation {

RowWearLeveler::RowWearLeveler(std::size_t rows) : rows_(rows) {
  XB_CHECK(rows > 0, "wear leveler needs at least one row");
  perm_.resize(rows);
  inverse_perm_.resize(rows);
  std::iota(perm_.begin(), perm_.end(), 0);
  std::iota(inverse_perm_.begin(), inverse_perm_.end(), 0);
}

std::size_t RowWearLeveler::physical_row(std::size_t logical) const {
  XB_CHECK(logical < rows_, "logical row out of range");
  return perm_[logical];
}

std::vector<std::pair<std::size_t, std::size_t>> RowWearLeveler::rebalance(
    std::vector<double> physical_row_stress, double ratio_threshold,
    std::size_t max_swaps) {
  XB_CHECK(physical_row_stress.size() == rows_,
           "stress vector must have one entry per row");
  XB_CHECK(ratio_threshold >= 1.0, "ratio threshold must be >= 1");

  std::vector<std::pair<std::size_t, std::size_t>> swaps;
  // Tiny absolute slack so fresh arrays (all-zero stress) never swap.
  constexpr double kEpsilon = 1e-12;
  for (std::size_t n = 0; n < max_swaps; ++n) {
    const auto hot_it = std::max_element(physical_row_stress.begin(),
                                         physical_row_stress.end());
    const auto cold_it = std::min_element(physical_row_stress.begin(),
                                          physical_row_stress.end());
    const auto hot = static_cast<std::size_t>(
        hot_it - physical_row_stress.begin());
    const auto cold = static_cast<std::size_t>(
        cold_it - physical_row_stress.begin());
    if (hot == cold ||
        *hot_it <= ratio_threshold * (*cold_it) + kEpsilon) {
      break;
    }
    // Swap the logical rows hosted by the two physical rows.
    const std::size_t logical_hot = inverse_perm_[hot];
    const std::size_t logical_cold = inverse_perm_[cold];
    std::swap(perm_[logical_hot], perm_[logical_cold]);
    std::swap(inverse_perm_[hot], inverse_perm_[cold]);
    swaps.emplace_back(hot, cold);
    // The swap moves future wear, not past stress; mark both rows as
    // mid-pack so the greedy loop looks at the next extremes.
    const double mid = (*hot_it + *cold_it) / 2.0;
    *hot_it = mid;
    *cold_it = mid;
  }
  return swaps;
}

Tensor RowWearLeveler::to_physical(const Tensor& logical_weights) const {
  XB_CHECK(logical_weights.shape().rank() == 2 &&
               logical_weights.shape()[0] == rows_,
           "weight matrix must have one row per crossbar row");
  const std::size_t cols = logical_weights.shape()[1];
  Tensor physical(logical_weights.shape());
  for (std::size_t l = 0; l < rows_; ++l) {
    const std::size_t p = perm_[l];
    for (std::size_t c = 0; c < cols; ++c) {
      physical.at(p, c) = logical_weights.at(l, c);
    }
  }
  return physical;
}

void RowWearLeveler::reset() {
  std::iota(perm_.begin(), perm_.end(), 0);
  std::iota(inverse_perm_.begin(), inverse_perm_.end(), 0);
}

std::vector<double> estimated_row_stress(const xbar::Crossbar& xb) {
  std::vector<double> stress(xb.rows(), 0.0);
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      acc += xb.tracker().stress_estimate(r, c);
    }
    stress[r] = acc / static_cast<double>(xb.cols());
  }
  return stress;
}

std::vector<double> true_row_stress(const xbar::Crossbar& xb) {
  std::vector<double> stress(xb.rows(), 0.0);
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      acc += xb.cell(r, c).stress();
    }
    stress[r] = acc / static_cast<double>(xb.cols());
  }
  return stress;
}

}  // namespace xbarlife::mitigation
