// Counter-aging baseline [12] (Cai et al., DAC'18, as discussed in the
// paper's Section I): wear leveling by row swapping — rows of memristors
// that are only slightly aged replace rows that are heavily aged.
//
// A crossbar row is driven by one input line, so swapping two rows plus
// the corresponding input routing keeps the computed VMM identical while
// redistributing programming wear. The leveler maintains the
// logical-to-physical row permutation and decides swaps from traced
// (tracker-visible) per-row stress estimates; each swap costs two row
// rewrites, which the caller performs by reprogramming with the permuted
// weight matrix.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::mitigation {

class RowWearLeveler {
 public:
  explicit RowWearLeveler(std::size_t rows);

  std::size_t rows() const { return rows_; }

  /// Physical row currently hosting `logical`.
  std::size_t physical_row(std::size_t logical) const;

  /// Current logical -> physical permutation.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Greedy rebalance: while the hottest physical row carries more than
  /// `ratio_threshold` times the stress of the coldest (plus an absolute
  /// epsilon) and fewer than `max_swaps` swaps have been made, swap the
  /// logical rows hosted by the hottest and coldest physical rows.
  /// `physical_row_stress[p]` is the (estimated) stress of physical row p.
  /// Returns the physical row pairs swapped.
  std::vector<std::pair<std::size_t, std::size_t>> rebalance(
      std::vector<double> physical_row_stress,
      double ratio_threshold = 2.0, std::size_t max_swaps = 4);

  /// Rearranges a logical weight matrix into physical layout: physical row
  /// perm_[l] receives logical row l.
  Tensor to_physical(const Tensor& logical_weights) const;

  /// Resets to the identity permutation.
  void reset();

 private:
  std::size_t rows_;
  std::vector<std::size_t> perm_;          // logical -> physical
  std::vector<std::size_t> inverse_perm_;  // physical -> logical
};

/// Tracker-estimated mean stress per physical row of a crossbar (what the
/// wear-leveling controller can actually observe).
std::vector<double> estimated_row_stress(const xbar::Crossbar& xb);

/// Ground-truth mean stress per physical row (simulator-only, for tests
/// and evaluation).
std::vector<double> true_row_stress(const xbar::Crossbar& xb);

}  // namespace xbarlife::mitigation
