// Counter-aging baseline [11] (Kim et al., Scientific Reports'16, as
// discussed in the paper's Section I): a fixed resistor in series with
// each memristor suppresses irregular voltage drops — the voltage-divider
// effect caps the current through the cell when it is in a low-resistance
// state.
//
// With a series resistor R_s, a programming pulse of amplitude V drives
//   I = V / (R_cell + R_s)
// instead of V / R_cell, so the stress of low-resistance (high-current)
// cells drops sharply while high-resistance cells barely notice. The cost:
// the voltage actually reaching the cell shrinks by R_cell/(R_cell+R_s),
// which slows programming (modeled as a per-move pulse-count multiplier)
// and compresses the usable read margin.
#pragma once

namespace xbarlife::mitigation {

struct SeriesResistorConfig {
  double r_series = 0.0;  ///< ohms; 0 disables the divider

  void validate() const;
};

/// Programming current through a cell of resistance `r_cell` under pulse
/// amplitude `v` with the divider in place.
double divided_current(const SeriesResistorConfig& cfg, double v,
                       double r_cell);

/// Fraction of the pulse amplitude that reaches the cell.
double cell_voltage_fraction(const SeriesResistorConfig& cfg,
                             double r_cell);

/// Extra pulses needed per level move (first-order: programming rate is
/// proportional to the cell voltage, so moves take 1/fraction pulses).
double pulse_count_multiplier(const SeriesResistorConfig& cfg,
                              double r_cell);

/// Net per-move stress scale relative to no divider, under a
/// current-exponent-alpha aging law:
///   (I_divided / I_bare)^alpha * pulse_count_multiplier.
double net_stress_per_move(const SeriesResistorConfig& cfg, double v,
                           double r_cell, double alpha);

}  // namespace xbarlife::mitigation
