#include "mitigation/pulse_shaping.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace xbarlife::mitigation {

std::string to_string(PulseShape shape) {
  switch (shape) {
    case PulseShape::kRectangular:
      return "rectangular";
    case PulseShape::kTriangular:
      return "triangular";
    case PulseShape::kSinusoidal:
      return "sinusoidal";
  }
  return "unknown";
}

namespace {

/// Numerical integral of (v(t)/V)^alpha over one normalized period.
double normalized_stress_integral(PulseShape shape, double alpha) {
  constexpr int kSteps = 2000;
  double acc = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / kSteps;
    double v = 1.0;
    switch (shape) {
      case PulseShape::kRectangular:
        v = 1.0;
        break;
      case PulseShape::kTriangular:
        v = t < 0.5 ? 2.0 * t : 2.0 * (1.0 - t);
        break;
      case PulseShape::kSinusoidal:
        v = std::sin(std::numbers::pi * t);
        break;
    }
    acc += std::pow(v, alpha);
  }
  return acc / kSteps;
}

}  // namespace

double stress_factor(PulseShape shape, double alpha) {
  XB_CHECK(alpha >= 0.0, "alpha must be non-negative");
  if (shape == PulseShape::kRectangular) {
    return 1.0;
  }
  return normalized_stress_integral(shape, alpha);
}

double time_dilation(PulseShape shape) {
  switch (shape) {
    case PulseShape::kRectangular:
      return 1.0;
    case PulseShape::kTriangular:
      return 2.0;  // mean |v|/V = 1/2
    case PulseShape::kSinusoidal:
      return std::numbers::pi / 2.0;  // mean = 2/pi
  }
  return 1.0;
}

double net_stress_per_move(PulseShape shape, double alpha) {
  return stress_factor(shape, alpha) * time_dilation(shape);
}

}  // namespace xbarlife::mitigation
