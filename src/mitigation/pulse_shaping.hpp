// Counter-aging baseline [9] (Chen et al., IEDM'11, as discussed in the
// paper's Section I): programming with triangular or sinusoidal voltage
// waveforms instead of rectangular DC pulses. The average applied voltage
// (and therefore the average stress current) is lower for the same peak,
// at the cost of a longer effective programming time per level move.
//
// This module models the stress-side effect: a shaped pulse delivers the
// same programming outcome as a rectangular pulse whose stress integral is
// scaled by the waveform's stress factor.
#pragma once

#include <string>

namespace xbarlife::mitigation {

enum class PulseShape {
  kRectangular,  ///< constant amplitude (the default everywhere else)
  kTriangular,   ///< linear ramp up/down
  kSinusoidal,   ///< half-sine
};

std::string to_string(PulseShape shape);

/// Stress-integral scale factor of a shaped pulse relative to a
/// rectangular pulse of the same peak voltage and duration, under a
/// current-exponent-alpha aging law:
///
///   factor = (1 / T) * integral_0^T (v(t) / V_peak)^alpha dt
///
/// Rectangular: 1. Triangular: 1/(alpha+1). Sinusoidal:
/// (1/pi) * B(1/2, (alpha+1)/2) — evaluated numerically for general alpha.
double stress_factor(PulseShape shape, double alpha);

/// Time-dilation factor: shaped pulses transfer less charge per cycle, so
/// reaching the same conductance move takes proportionally longer. We use
/// the first-moment ratio (mean |v|/V_peak): rectangular 1, triangular 2,
/// sinusoidal pi/2. Longer programming reduces throughput; the lifetime
/// benefit is the stress saved per completed move:
///   net = stress_factor(shape, alpha) * time_dilation(shape).
double time_dilation(PulseShape shape);

/// Net per-move stress relative to rectangular programming.
double net_stress_per_move(PulseShape shape, double alpha);

}  // namespace xbarlife::mitigation
