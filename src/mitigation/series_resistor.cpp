#include "mitigation/series_resistor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xbarlife::mitigation {

void SeriesResistorConfig::validate() const {
  XB_CHECK(r_series >= 0.0, "series resistance must be non-negative");
}

double divided_current(const SeriesResistorConfig& cfg, double v,
                       double r_cell) {
  cfg.validate();
  XB_CHECK(v > 0.0, "pulse amplitude must be positive");
  XB_CHECK(r_cell > 0.0, "cell resistance must be positive");
  return v / (r_cell + cfg.r_series);
}

double cell_voltage_fraction(const SeriesResistorConfig& cfg,
                             double r_cell) {
  cfg.validate();
  XB_CHECK(r_cell > 0.0, "cell resistance must be positive");
  return r_cell / (r_cell + cfg.r_series);
}

double pulse_count_multiplier(const SeriesResistorConfig& cfg,
                              double r_cell) {
  return 1.0 / cell_voltage_fraction(cfg, r_cell);
}

double net_stress_per_move(const SeriesResistorConfig& cfg, double v,
                           double r_cell, double alpha) {
  XB_CHECK(alpha >= 0.0, "alpha must be non-negative");
  const double bare = v / r_cell;
  const double divided = divided_current(cfg, v, r_cell);
  return std::pow(divided / bare, alpha) *
         pulse_count_multiplier(cfg, r_cell);
}

}  // namespace xbarlife::mitigation
