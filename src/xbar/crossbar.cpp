#include "xbar/crossbar.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace xbarlife::xbar {

Crossbar::Crossbar(std::size_t rows, std::size_t cols,
                   const device::DeviceParams& params,
                   const aging::AgingParams& aging_params)
    : rows_(rows),
      cols_(cols),
      params_(params),
      model_(aging_params),
      tracker_(rows, cols) {
  XB_CHECK(rows > 0 && cols > 0, "crossbar must be non-empty");
  params_.validate();
  cells_.reserve(rows * cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    cells_.emplace_back(&params_, &model_, &ambient_stress_);
  }
}

const device::Memristor& Crossbar::cell(std::size_t r, std::size_t c) const {
  XB_CHECK(r < rows_ && c < cols_, "crossbar cell out of range");
  return cells_[r * cols_ + c];
}

device::Memristor& Crossbar::mutable_cell(std::size_t r, std::size_t c) {
  XB_CHECK(r < rows_ && c < cols_, "crossbar cell out of range");
  return cells_[r * cols_ + c];
}

double Crossbar::program_cell(std::size_t r, std::size_t c,
                              double target_r) {
  device::Memristor& m = mutable_cell(r, c);
  const double achieved = m.program(target_r);
  const double ds = m.last_stress_increment();
  // Thermal crosstalk: a share of every pulse's stress heats the whole
  // array (the Arrhenius common-mode component of Eqs. (6)-(7)).
  const double ambient_share = model_.params().thermal_crosstalk * ds;
  ambient_stress_ += ambient_share;
  tracker_.record_pulse(r, c, ds, ambient_share);
  ++total_pulses_;
  return achieved;
}

void Crossbar::drift_cell(std::size_t r, std::size_t c, double new_r) {
  mutable_cell(r, c).drift_to(new_r);
}

void Crossbar::vmm(std::span<const float> v_in,
                   std::span<float> i_out) const {
  XB_CHECK(v_in.size() == rows_, "vmm input size must equal rows");
  XB_CHECK(i_out.size() == cols_, "vmm output size must equal cols");
  std::fill(i_out.begin(), i_out.end(), 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float v = v_in[r];
    if (v == 0.0f) {
      continue;
    }
    const device::Memristor* row = &cells_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) {
      i_out[c] += v * static_cast<float>(row[c].conductance());
    }
  }
}

Tensor Crossbar::conductances() const {
  Tensor g(Shape{rows_, cols_});
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    g[i] = static_cast<float>(cells_[i].conductance());
  }
  return g;
}

Tensor Crossbar::resistances() const {
  Tensor r(Shape{rows_, cols_});
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    r[i] = static_cast<float>(cells_[i].resistance());
  }
  return r;
}

CrossbarAgingStats Crossbar::aging_stats() const {
  CrossbarAgingStats s;
  s.min_aged_r_max = std::numeric_limits<double>::infinity();
  s.min_usable_levels = std::numeric_limits<std::size_t>::max();
  double sum_stress = 0.0;
  double sum_rmax = 0.0;
  double sum_levels = 0.0;
  for (const auto& cell : cells_) {
    const double stress = cell.stress();
    sum_stress += stress;
    s.max_stress = std::max(s.max_stress, stress);
    const double rmax = cell.aged_window().r_max;
    sum_rmax += rmax;
    s.min_aged_r_max = std::min(s.min_aged_r_max, rmax);
    const std::size_t levels = cell.usable_levels();
    sum_levels += static_cast<double>(levels);
    s.min_usable_levels = std::min(s.min_usable_levels, levels);
    s.total_pulses += cell.pulse_count();
  }
  const auto n = static_cast<double>(cells_.size());
  s.mean_stress = sum_stress / n;
  s.mean_aged_r_max = sum_rmax / n;
  s.mean_usable_levels = sum_levels / n;
  return s;
}

}  // namespace xbarlife::xbar
