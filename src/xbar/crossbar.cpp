#include "xbar/crossbar.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace xbarlife::xbar {

namespace {
/// Source of Crossbar::uid(): a process-wide construction counter. Array
/// uids key the executor pool's owner hashing only, so the (benign) race
/// on ordering across threads never influences simulation results.
std::atomic<std::uint64_t> g_crossbar_uids{0};
}  // namespace

Crossbar::Crossbar(std::size_t rows, std::size_t cols,
                   const device::DeviceParams& params,
                   const aging::AgingParams& aging_params)
    : rows_(rows),
      cols_(cols),
      params_(params),
      model_(aging_params),
      tracker_(rows, cols),
      uid_(g_crossbar_uids.fetch_add(1, std::memory_order_relaxed)) {
  XB_CHECK(rows > 0 && cols > 0, "crossbar must be non-empty");
  params_.validate();
  cells_.reserve(rows * cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    cells_.emplace_back(&params_, &model_, &ambient_stress_);
  }
  pulse_ctx_ = device::make_pulse_context(params_, model_);
}

const device::Memristor& Crossbar::cell(std::size_t r, std::size_t c) const {
  XB_CHECK(r < rows_ && c < cols_, "crossbar cell out of range");
  return cells_[r * cols_ + c];
}

device::Memristor& Crossbar::mutable_cell(std::size_t r, std::size_t c) {
  XB_CHECK(r < rows_ && c < cols_, "crossbar cell out of range");
  g_cache_valid_ = false;
  return cells_[r * cols_ + c];
}

void Crossbar::configure_nonideality(const NonidealityConfig& config,
                                     std::uint64_t seed) {
  config.validate();
  XB_CHECK(total_pulses_ == 0,
           "nonideality must be configured before the first pulse");
  if (!config.any()) {
    return;  // Ideal array: no RNG streams, no fault map, legacy behaviour.
  }
  nonideal_ = config;
  nonideality_seed_ = seed;
  Rng root(seed);
  const std::uint64_t map_seed = root();
  write_rng_ = root.fork(1);
  read_rng_ = root.fork(2);
  if (config.stuck_off_fraction > 0.0 || config.stuck_on_fraction > 0.0) {
    faults_ = std::make_unique<FaultMap>(rows_, cols_, config, map_seed);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        switch (faults_->at(r, c)) {
          case FaultMap::Fault::kNone:
            break;
          case FaultMap::Fault::kStuckOff:
            mutable_cell(r, c).force_resistance(params_.r_max_fresh);
            break;
          case FaultMap::Fault::kStuckOn:
            mutable_cell(r, c).force_resistance(params_.r_min_fresh);
            break;
        }
      }
    }
  }
}

double Crossbar::apply_post_pulse_nonideality(std::size_t r, std::size_t c,
                                              device::Memristor& m,
                                              double achieved) {
  const FaultMap::Fault fault =
      faults_ != nullptr ? faults_->at(r, c) : FaultMap::Fault::kNone;
  if (fault != FaultMap::Fault::kNone) {
    // The pulse still stressed the device, but a stuck cell cannot leave
    // its defect value — snap it back to the pin.
    achieved = fault == FaultMap::Fault::kStuckOff ? params_.r_max_fresh
                                                   : params_.r_min_fresh;
    m.force_resistance(achieved);
  } else if (nonideal_->write_noise_sigma > 0.0) {
    m.drift_to(1.0 / apply_write_noise(*nonideal_, 1.0 / achieved,
                                       write_rng_));
    achieved = m.resistance();
  }
  return achieved;
}

double Crossbar::apply_pulse_percell(const ProgramOp& op) {
  XB_CHECK(op.kind == OpKind::kProgramPulse,
           "per-cell programming takes pulse ops only");
  device::Memristor& m = mutable_cell(op.row, op.col);
  double achieved = m.program(op.value);
  const double ds = m.last_stress_increment();
  // Thermal crosstalk: a share of every pulse's stress heats the whole
  // array (the Arrhenius common-mode component of Eqs. (6)-(7)). The
  // pulsing cell's own `ds` already contains its local heating, so its
  // exported share is excluded from its effective stress.
  const double ambient_share = model_.params().thermal_crosstalk * ds;
  ambient_stress_ += ambient_share;
  m.exclude_ambient_self_share(ambient_share);
  tracker_.record_pulse(op.row, op.col, ds, ambient_share);
  ++total_pulses_;
  if (nonideal_.has_value()) {
    achieved = apply_post_pulse_nonideality(op.row, op.col, m, achieved);
  }
  return achieved;
}

double Crossbar::program_cell(std::size_t r, std::size_t c,
                              double target_r) {
  return apply_pulse_percell(ProgramOp::pulse(r, c, target_r));
}

void Crossbar::program_batch(std::span<const ProgramOp> ops,
                             std::span<double> results) {
  XB_CHECK(ops.size() == results.size(),
           "program_batch needs one result slot per op");
  if (ops.empty()) {
    return;
  }
  // One cache invalidation and one counter flush per batch; the per-pulse
  // loop below otherwise performs the exact floating-point updates of
  // apply_pulse_percell — program_with inlines the identical expressions
  // with the transcendental invariants hoisted into pulse_ctx_, and the
  // ambient/tracker accumulations keep their per-pulse order (they are
  // order-dependent FP sums).
  g_cache_valid_ = false;
  // Validation runs as a pre-pass so the hot loop carries no branches on
  // op metadata: a malformed batch throws before any pulse lands (the
  // per-cell path throws mid-stream instead, but no caller observes
  // state after a programming error). SequenceBuilder already enforces
  // both invariants at build time, so executor-issued runs never throw.
  for (const ProgramOp& op : ops) {
    XB_CHECK(op.kind == OpKind::kProgramPulse,
             "program_batch takes pulse ops only");
    XB_CHECK(op.row < rows_ && op.col < cols_, "crossbar cell out of range");
  }
  const double crosstalk = model_.params().thermal_crosstalk;
  const bool nonideal = nonideal_.has_value();
  std::uint64_t traced = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ProgramOp& op = ops[i];
    device::Memristor& m = cells_[op.row * cols_ + op.col];
    double achieved = m.program_with(pulse_ctx_, op.value);
    const double ds = m.last_stress_increment();
    const double ambient_share = crosstalk * ds;
    // `x += 0.0` is a bit-exact identity (the accumulators start at +0.0
    // and only ever grow), so a zero share may skip the pool update.
    // This is a pure optimization, not a semantic branch: it breaks the
    // loop-carried store-to-load dependency through ambient_stress_ —
    // the next pulse's stress() reads the pool, so an unconditional
    // store serializes the whole batch on the window-pow *latency*
    // instead of its throughput.
    if (ambient_share != 0.0) {
      ambient_stress_ += ambient_share;
      m.exclude_ambient_self_share(ambient_share);
    }
    traced += tracker_.record_pulse_untallied(op.row, op.col, ds,
                                              ambient_share);
    if (nonideal) {
      achieved = apply_post_pulse_nonideality(op.row, op.col, m, achieved);
    }
    results[i] = achieved;
  }
  total_pulses_ += ops.size();
  tracker_.tally_pulses(ops.size(), traced);
}

void Crossbar::note_sequence_executed(const SequenceStats& stats) {
  if (seq_counter_ != nullptr) {
    seq_counter_->add();
  }
  if (batch_counter_ != nullptr && stats.batches > 0) {
    batch_counter_->add(stats.batches);
  }
}

void Crossbar::drift_cell(std::size_t r, std::size_t c, double new_r) {
  if (faults_ != nullptr && faults_->at(r, c) != FaultMap::Fault::kNone) {
    return;  // Stuck cells do not drift.
  }
  mutable_cell(r, c).drift_to(new_r);
}

double Crossbar::read_conductance(std::size_t r, std::size_t c) const {
  const device::Memristor& m = cell(r, c);
  if (!nonideal_.has_value()) {
    return m.conductance();
  }
  double g = apply_read_noise(*nonideal_, m.conductance(), read_rng_);
  g = ir_drop_conductance(*nonideal_, g, r, c);
  return g;
}

double Crossbar::read_resistance(std::size_t r, std::size_t c) const {
  if (!nonideal_.has_value()) {
    // Return the stored resistance directly: 1/(1/r) is not bit-exact.
    return cell(r, c).resistance();
  }
  return 1.0 / read_conductance(r, c);
}

void Crossbar::vmm(std::span<const float> v_in,
                   std::span<float> i_out) const {
  XB_CHECK(v_in.size() == rows_, "vmm input size must equal rows");
  XB_CHECK(i_out.size() == cols_, "vmm output size must equal cols");
  // Lazily refresh the flat conductance matrix: read epochs (inference
  // over a batch) reuse it across every vmm call until the next
  // programming/drift pulse invalidates it via mutable_cell().
  if (!g_cache_valid_) {
    g_cache_.resize(rows_ * cols_);
    parallel_for(0, cells_.size(), 4096,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     g_cache_[i] = static_cast<float>(cells_[i].conductance());
                   }
                 });
    g_cache_valid_ = true;
  }
  std::fill(i_out.begin(), i_out.end(), 0.0f);
  // Fan out over output columns: each chunk owns a disjoint slice of
  // i_out and the kernel accumulates rows in ascending order, so the
  // currents are bit-identical at any thread count.
  const kernels::KernelSet& ks = kernels::select();
  parallel_for(0, cols_, 64, [&](std::size_t col_begin,
                                 std::size_t col_end) {
    ks.vmm(v_in.data(), g_cache_.data(), i_out.data(), rows_, cols_,
           col_begin, col_end);
  });
}

Tensor Crossbar::conductances() const {
  Tensor g(Shape{rows_, cols_});
  parallel_for(0, cells_.size(), 4096,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   g[i] = static_cast<float>(cells_[i].conductance());
                 }
               });
  return g;
}

Tensor Crossbar::resistances() const {
  Tensor r(Shape{rows_, cols_});
  parallel_for(0, cells_.size(), 4096,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   r[i] = static_cast<float>(cells_[i].resistance());
                 }
               });
  return r;
}

namespace {

/// Partial reduction state for aging_stats; merged in chunk order so the
/// aggregate is identical at any thread count.
struct AgingPartial {
  double sum_stress = 0.0;
  double max_stress = 0.0;
  double sum_rmax = 0.0;
  double min_rmax = std::numeric_limits<double>::infinity();
  double sum_levels = 0.0;
  std::size_t min_levels = std::numeric_limits<std::size_t>::max();
  std::uint64_t pulses = 0;
};

}  // namespace

CrossbarAgingStats Crossbar::aging_stats() const {
  const AgingPartial total = parallel_reduce(
      0, cells_.size(), 2048, AgingPartial{},
      [&](std::size_t begin, std::size_t end) {
        AgingPartial p;
        for (std::size_t i = begin; i < end; ++i) {
          const device::Memristor& cell = cells_[i];
          const double stress = cell.stress();
          p.sum_stress += stress;
          p.max_stress = std::max(p.max_stress, stress);
          const double rmax = cell.aged_window().r_max;
          p.sum_rmax += rmax;
          p.min_rmax = std::min(p.min_rmax, rmax);
          const std::size_t levels = cell.usable_levels();
          p.sum_levels += static_cast<double>(levels);
          p.min_levels = std::min(p.min_levels, levels);
          p.pulses += cell.pulse_count();
        }
        return p;
      },
      [](AgingPartial acc, AgingPartial p) {
        acc.sum_stress += p.sum_stress;
        acc.max_stress = std::max(acc.max_stress, p.max_stress);
        acc.sum_rmax += p.sum_rmax;
        acc.min_rmax = std::min(acc.min_rmax, p.min_rmax);
        acc.sum_levels += p.sum_levels;
        acc.min_levels = std::min(acc.min_levels, p.min_levels);
        acc.pulses += p.pulses;
        return acc;
      });

  CrossbarAgingStats s;
  s.max_stress = total.max_stress;
  s.min_aged_r_max = total.min_rmax;
  s.min_usable_levels = total.min_levels;
  s.total_pulses = total.pulses;
  const auto n = static_cast<double>(cells_.size());
  s.mean_stress = total.sum_stress / n;
  s.mean_aged_r_max = total.sum_rmax / n;
  s.mean_usable_levels = total.sum_levels / n;
  return s;
}

void Crossbar::save_state(persist::StateWriter& w) const {
  w.u64(rows_);
  w.u64(cols_);
  for (const device::Memristor& cell : cells_) {
    w.f64(cell.resistance());
    w.f64(cell.own_stress());
    w.f64(cell.last_stress_increment());
    w.f64(cell.ambient_self_share());
    w.u64(cell.pulse_count());
  }
  tracker_.save_state(w);
  w.u64(total_pulses_);
  w.f64(ambient_stress_);
  persist::write_rng_state(w, write_rng_);
  persist::write_rng_state(w, read_rng_);
}

void Crossbar::load_state(persist::StateReader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  XB_CHECK(rows == rows_ && cols == cols_,
           "crossbar snapshot geometry does not match this array");
  for (device::Memristor& cell : cells_) {
    const double resistance = r.f64();
    const double stress = r.f64();
    const double last_increment = r.f64();
    const double self_share = r.f64();
    const std::uint64_t pulses = r.u64();
    cell.restore_state(resistance, stress, last_increment, self_share,
                       pulses);
  }
  tracker_.load_state(r);
  total_pulses_ = r.u64();
  ambient_stress_ = r.f64();
  persist::read_rng_state(r, write_rng_);
  persist::read_rng_state(r, read_rng_);
  // Cells were restored without passing through mutable_cell().
  g_cache_valid_ = false;
}

}  // namespace xbarlife::xbar
