// Analog non-idealities of memristor crossbars.
//
// The paper's evaluation assumes ideal programming and readout apart from
// quantization and aging; real arrays add cycle-to-cycle programming
// variability, read noise, manufacturing stuck-at faults and wire (IR)
// resistance. This module provides injectable models of each so the
// robustness of the counter-aging framework can be studied (see the
// ablation bench) — the same non-idealities the aihwkit-style simulators
// expose.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace xbarlife::xbar {

class Crossbar;

struct NonidealityConfig {
  /// Cycle-to-cycle programming variability: the achieved conductance is
  /// multiplied by (1 + N(0, sigma)) at write time.
  double write_noise_sigma = 0.0;
  /// Read noise: each conductance read is multiplied by (1 + N(0, sigma)).
  double read_noise_sigma = 0.0;
  /// Fraction of cells stuck at the low-conductance end from manufacture.
  double stuck_off_fraction = 0.0;
  /// Fraction of cells stuck at the high-conductance end.
  double stuck_on_fraction = 0.0;
  /// Wire resistance per cell-to-cell segment (ohms); models the IR-drop
  /// attenuation of far cells in a first-order way.
  double line_resistance = 0.0;

  /// True when any knob is nonzero — the all-zero config is the exact
  /// ideal-array behaviour (no RNG draws, no fault map, bit-identical to a
  /// build without the nonideality layer).
  bool any() const {
    return write_noise_sigma != 0.0 || read_noise_sigma != 0.0 ||
           stuck_off_fraction != 0.0 || stuck_on_fraction != 0.0 ||
           line_resistance != 0.0;
  }

  void validate() const;
};

/// Stuck-at fault map generated at "manufacture" time.
class FaultMap {
 public:
  /// Draws a deterministic fault map for a rows x cols array.
  FaultMap(std::size_t rows, std::size_t cols,
           const NonidealityConfig& config, std::uint64_t seed);

  enum class Fault : std::uint8_t { kNone, kStuckOff, kStuckOn };

  Fault at(std::size_t r, std::size_t c) const;
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t fault_count() const { return faults_total_; }
  std::size_t stuck_off_count() const { return stuck_off_; }
  std::size_t stuck_on_count() const { return faults_total_ - stuck_off_; }
  /// Faulty cells in physical row `r`.
  std::size_t row_fault_count(std::size_t r) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> faults_;
  std::size_t faults_total_ = 0;
  std::size_t stuck_off_ = 0;
};

/// Applies write noise to a target conductance (returns the perturbed
/// conductance the cell actually reaches).
double apply_write_noise(const NonidealityConfig& config, double g,
                         Rng& rng);

/// Applies read noise to a conductance sample.
double apply_read_noise(const NonidealityConfig& config, double g,
                        Rng& rng);

/// Conductance override for a faulty cell; `g_min`/`g_max` are the
/// device's fresh conductance bounds. Returns `g` unchanged for kNone.
double faulted_conductance(FaultMap::Fault fault, double g, double g_min,
                           double g_max);

/// First-order IR-drop attenuation of the cell at (r, c) in a rows x cols
/// array: the effective conductance seen at the periphery shrinks with
/// the wire length of the current path, g_eff = g / (1 + g * R_wire(r,c))
/// with R_wire = line_resistance * (r + c + 2) (worst-case corner
/// farthest from the drivers/sense amps).
double ir_drop_conductance(const NonidealityConfig& config, double g,
                           std::size_t r, std::size_t c);

/// Noisy, faulty, IR-attenuated snapshot of a crossbar's conductances —
/// what the analog periphery actually sees during a VMM.
Tensor observed_conductances(const Crossbar& xb,
                             const NonidealityConfig& config,
                             const FaultMap* faults, Rng& rng);

}  // namespace xbarlife::xbar
