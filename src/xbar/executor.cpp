#include "xbar/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/pool.hpp"
#include "xbar/remote.hpp"

namespace xbarlife::xbar {

ExecReport SimExecutor::execute(Crossbar& xb, const ProgramSequence& seq) const {
  ExecReport report;
  const std::vector<ProgramOp>& ops = seq.ops();
  report.results.assign(ops.size(), 0.0);
  std::size_t i = 0;
  while (i < ops.size()) {
    const ProgramOp& op = ops[i];
    switch (op.kind) {
      case OpKind::kProgramPulse: {
        // Maximal contiguous pulse run -> one batched device transaction.
        std::size_t j = i + 1;
        while (j < ops.size() && ops[j].kind == OpKind::kProgramPulse) ++j;
        xb.program_batch({ops.data() + i, j - i}, {report.results.data() + i, j - i});
        i = j;
        continue;
      }
      case OpKind::kVerifyRead:
        report.results[i] = xb.read_conductance(op.row, op.col);
        break;
      case OpKind::kWait:
      case OpKind::kBarrier:
        break;
    }
    ++i;
  }
  report.stats = seq.stats();
  xb.note_sequence_executed(report.stats);
  return report;
}

ExecReport PerCellExecutor::execute(Crossbar& xb,
                                    const ProgramSequence& seq) const {
  ExecReport report;
  const std::vector<ProgramOp>& ops = seq.ops();
  report.results.assign(ops.size(), 0.0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ProgramOp& op = ops[i];
    switch (op.kind) {
      case OpKind::kProgramPulse:
        report.results[i] = xb.program_cell(op.row, op.col, op.value);
        break;
      case OpKind::kVerifyRead:
        report.results[i] = xb.read_conductance(op.row, op.col);
        break;
      case OpKind::kWait:
      case OpKind::kBarrier:
        break;
    }
  }
  report.stats = seq.stats();
  xb.note_sequence_executed(report.stats);
  return report;
}

namespace {

const SimExecutor g_sim;
const PerCellExecutor g_percell;

/// The remote backend carries configuration, so unlike sim/percell it is
/// built on demand: from configure_remote_executor() when the CLI passed
/// flags, else from the environment the first time "remote" resolves. A
/// comma in the address promotes the backend to a PoolExecutor (the fleet
/// form — same "remote" name, same envelope stamp for single endpoints).
std::mutex g_remote_mu;
std::unique_ptr<ProgramExecutor> g_remote;
/// Concrete view of g_remote: exactly one is non-null once built.
PoolExecutor* g_remote_pool = nullptr;

std::unique_ptr<ProgramExecutor> build_remote(const RemoteConfig& cfg) {
  if (cfg.address.find(',') != std::string::npos) {
    auto pool = std::make_unique<PoolExecutor>(cfg);
    g_remote_pool = pool.get();
    return pool;
  }
  g_remote_pool = nullptr;
  return std::make_unique<RemoteExecutor>(cfg);
}

ProgramExecutor& remote_instance() {
  std::lock_guard<std::mutex> lock(g_remote_mu);
  if (g_remote == nullptr) {
    RemoteConfig cfg;
    if (const char* addr = std::getenv("XBARLIFE_REMOTE")) {
      if (addr[0] != '\0') {
        cfg.address = addr;
      }
    }
    if (const char* faults = std::getenv("XBARLIFE_REMOTE_FAULTS")) {
      cfg.fault_spec = faults;
    }
    g_remote = build_remote(cfg);
  }
  return *g_remote;
}

const ProgramExecutor* resolve(const std::string& name) {
  if (name.empty() || name == "auto" || name == "sim") {
    return &g_sim;
  }
  if (name == "percell") {
    return &g_percell;
  }
  if (name == "remote") {
    return &remote_instance();
  }
  return nullptr;
}

std::string available_list() {
  std::string out;
  for (const std::string& name : available_executors()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

std::atomic<const ProgramExecutor*> g_active{nullptr};

/// First-use initialization from XBARLIFE_EXECUTOR. A racing pair of
/// threads would resolve the same value and store the same pointer, so
/// the race is benign.
const ProgramExecutor* init_from_env() {
  const char* env = std::getenv("XBARLIFE_EXECUTOR");
  const std::string name = env != nullptr ? env : "";
  const ProgramExecutor* e = resolve(name);
  if (e == nullptr) {
    throw InvalidArgument("XBARLIFE_EXECUTOR=" + name +
                          " is not a usable executor backend "
                          "(available: " +
                          available_list() + ")");
  }
  g_active.store(e, std::memory_order_release);
  return e;
}

}  // namespace

const ProgramExecutor& select_executor() {
  const ProgramExecutor* e = g_active.load(std::memory_order_acquire);
  if (e == nullptr) {
    e = init_from_env();
  }
  return *e;
}

void set_executor(const std::string& name) {
  const ProgramExecutor* e = resolve(name);
  if (e == nullptr) {
    throw InvalidArgument("unknown or unavailable executor backend '" + name +
                          "' (available: " + available_list() + ")");
  }
  g_active.store(e, std::memory_order_release);
}

std::string executor_name() { return select_executor().name(); }

std::vector<std::string> available_executors() {
  return {"sim", "percell", "remote"};
}

void configure_remote_executor(const RemoteConfig& config) {
  std::lock_guard<std::mutex> lock(g_remote_mu);
  // Keep g_active coherent when the remote backend is being replaced
  // while selected (CLI flag handling configures before set_executor, but
  // tests may re-configure mid-run).
  const ProgramExecutor* old = g_remote.get();
  g_remote = build_remote(config);
  const ProgramExecutor* expected = old;
  g_active.compare_exchange_strong(expected, g_remote.get(),
                                   std::memory_order_acq_rel);
}

bool executor_degraded() { return select_executor().degraded(); }

bool pin_executor_fallback() { return select_executor().pin_local_fallback(); }

ExecutorDegradation executor_degradation() {
  ExecutorDegradation out;
  const ProgramExecutor* remote = nullptr;
  const PoolExecutor* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_remote_mu);
    remote = g_remote.get();
    pool = g_remote_pool;
  }
  if (remote == nullptr || !remote->degraded()) {
    return out;
  }
  const RemoteLinkStats stats =
      pool != nullptr ? pool->link_stats()
                      : static_cast<const RemoteExecutor*>(remote)->link_stats();
  out.degraded = true;
  out.fallbacks = stats.fallbacks;
  out.retries = stats.retries;
  out.reconnects = stats.reconnects;
  return out;
}

ExecutorPoolSummary executor_pool_summary() {
  ExecutorPoolSummary out;
  const PoolExecutor* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_remote_mu);
    pool = g_remote_pool;
    // Stamp only when the pool is the *active* backend: a configured but
    // unselected pool must not perturb sim/percell documents.
    if (pool == nullptr ||
        g_active.load(std::memory_order_acquire) != g_remote.get()) {
      return out;
    }
  }
  if (pool->size() <= 1) {
    return out;
  }
  out.active = true;
  out.endpoints = pool->endpoint_summaries();
  return out;
}

}  // namespace xbarlife::xbar
