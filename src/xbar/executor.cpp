#include "xbar/executor.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {

ExecReport SimExecutor::execute(Crossbar& xb, const ProgramSequence& seq) const {
  ExecReport report;
  const std::vector<ProgramOp>& ops = seq.ops();
  report.results.assign(ops.size(), 0.0);
  std::size_t i = 0;
  while (i < ops.size()) {
    const ProgramOp& op = ops[i];
    switch (op.kind) {
      case OpKind::kProgramPulse: {
        // Maximal contiguous pulse run -> one batched device transaction.
        std::size_t j = i + 1;
        while (j < ops.size() && ops[j].kind == OpKind::kProgramPulse) ++j;
        xb.program_batch({ops.data() + i, j - i}, {report.results.data() + i, j - i});
        i = j;
        continue;
      }
      case OpKind::kVerifyRead:
        report.results[i] = xb.read_conductance(op.row, op.col);
        break;
      case OpKind::kWait:
      case OpKind::kBarrier:
        break;
    }
    ++i;
  }
  report.stats = seq.stats();
  xb.note_sequence_executed(report.stats);
  return report;
}

ExecReport PerCellExecutor::execute(Crossbar& xb,
                                    const ProgramSequence& seq) const {
  ExecReport report;
  const std::vector<ProgramOp>& ops = seq.ops();
  report.results.assign(ops.size(), 0.0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ProgramOp& op = ops[i];
    switch (op.kind) {
      case OpKind::kProgramPulse:
        report.results[i] = xb.program_cell(op.row, op.col, op.value);
        break;
      case OpKind::kVerifyRead:
        report.results[i] = xb.read_conductance(op.row, op.col);
        break;
      case OpKind::kWait:
      case OpKind::kBarrier:
        break;
    }
  }
  report.stats = seq.stats();
  xb.note_sequence_executed(report.stats);
  return report;
}

namespace {

const SimExecutor g_sim;
const PerCellExecutor g_percell;

const ProgramExecutor* resolve(const std::string& name) {
  if (name.empty() || name == "auto" || name == "sim") {
    return &g_sim;
  }
  if (name == "percell") {
    return &g_percell;
  }
  return nullptr;
}

std::string available_list() {
  std::string out;
  for (const std::string& name : available_executors()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

std::atomic<const ProgramExecutor*> g_active{nullptr};

/// First-use initialization from XBARLIFE_EXECUTOR. A racing pair of
/// threads would resolve the same value and store the same pointer, so
/// the race is benign.
const ProgramExecutor* init_from_env() {
  const char* env = std::getenv("XBARLIFE_EXECUTOR");
  const std::string name = env != nullptr ? env : "";
  const ProgramExecutor* e = resolve(name);
  if (e == nullptr) {
    throw InvalidArgument("XBARLIFE_EXECUTOR=" + name +
                          " is not a usable executor backend "
                          "(available: " +
                          available_list() + ")");
  }
  g_active.store(e, std::memory_order_release);
  return e;
}

}  // namespace

const ProgramExecutor& select_executor() {
  const ProgramExecutor* e = g_active.load(std::memory_order_acquire);
  if (e == nullptr) {
    e = init_from_env();
  }
  return *e;
}

void set_executor(const std::string& name) {
  const ProgramExecutor* e = resolve(name);
  if (e == nullptr) {
    throw InvalidArgument("unknown or unavailable executor backend '" + name +
                          "' (available: " + available_list() + ")");
  }
  g_active.store(e, std::memory_order_release);
}

std::string executor_name() { return select_executor().name(); }

std::vector<std::string> available_executors() { return {"sim", "percell"}; }

}  // namespace xbarlife::xbar
