#include "xbar/pool.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "net/faulty.hpp"
#include "obs/metrics.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {

std::vector<std::string> split_endpoints(const std::string& address) {
  std::vector<std::string> endpoints;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t end = address.find(',', pos);
    std::string entry = address.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    const std::size_t first = entry.find_first_not_of(" \t");
    const std::size_t last = entry.find_last_not_of(" \t");
    entry = first == std::string::npos
                ? std::string()
                : entry.substr(first, last - first + 1);
    if (entry.empty()) {
      throw InvalidArgument(
          "remote endpoint list '" + address +
          "' holds an empty entry (expected comma-separated addresses)");
    }
    endpoints.push_back(std::move(entry));
    if (end == std::string::npos) {
      break;
    }
    pos = end + 1;
  }
  return endpoints;
}

std::uint64_t rendezvous_score(std::uint64_t key, std::string_view endpoint,
                               std::size_t slot) {
  // FNV-1a over the endpoint slot identity, then one splitmix64 round
  // folding in the key: cheap, stateless, and well-mixed enough that
  // ownership spreads evenly across slots.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : endpoint) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<std::uint64_t>(slot) + 0x9e3779b97f4a7c15ULL;
  h *= 1099511628211ULL;
  std::uint64_t state = h ^ (key * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(state);
}

std::vector<std::size_t> rendezvous_order(
    std::uint64_t key, const std::vector<std::string>& endpoints) {
  // Score each slot on (address, occurrence-of-that-address) rather than
  // its list position: a unique address keeps its score wherever it sits
  // in the list, which is what makes membership changes move only the
  // removed endpoint's keys. Duplicate addresses (three "loopback"
  // workers) get distinct occurrence indices and still spread load.
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(endpoints.size());
  std::map<std::string_view, std::size_t> occurrence;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    scored.emplace_back(
        rendezvous_score(key, endpoints[i], occurrence[endpoints[i]]++), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::vector<std::size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, index] : scored) {
    order.push_back(index);
  }
  return order;
}

const char* to_string(CircuitState state) {
  switch (state) {
    case CircuitState::kHealthy:
      return "healthy";
    case CircuitState::kSuspect:
      return "suspect";
    case CircuitState::kOpen:
      return "open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// CircuitBreaker.

CircuitBreaker::CircuitBreaker(const Config& config, Rng jitter)
    : config_(config),
      jitter_(std::move(jitter)),
      probe_backoff_(config.probe_backoff_initial) {
  if (config_.failure_threshold < 1) {
    throw InvalidArgument("circuit breaker: failure_threshold must be >= 1");
  }
}

std::chrono::milliseconds CircuitBreaker::jittered(
    std::chrono::milliseconds base) {
  const double factor = 0.5 + 0.5 * jitter_.uniform();
  return std::chrono::milliseconds(static_cast<std::int64_t>(
      static_cast<double>(base.count()) * factor));
}

void CircuitBreaker::record_success() {
  state_ = CircuitState::kHealthy;
  consecutive_failures_ = 0;
  probe_backoff_ = config_.probe_backoff_initial;
}

bool CircuitBreaker::record_failure(
    std::chrono::steady_clock::time_point now) {
  ++consecutive_failures_;
  if (state_ == CircuitState::kOpen) {
    // A due half-open probe failed: stay open, double the capped probe
    // backoff so a dead endpoint is bothered less and less often.
    probe_backoff_ =
        std::min(probe_backoff_ * 2, config_.probe_backoff_max);
    probe_after_ = now + jittered(probe_backoff_);
    return false;
  }
  if (consecutive_failures_ >= config_.failure_threshold) {
    state_ = CircuitState::kOpen;
    ++opens_;
    probe_backoff_ = config_.probe_backoff_initial;
    probe_after_ = now + jittered(probe_backoff_);
    return true;
  }
  state_ = CircuitState::kSuspect;
  return false;
}

// ---------------------------------------------------------------------------
// PoolExecutor.

struct PoolExecutor::Endpoint {
  std::string address;
  std::unique_ptr<RemoteExecutor> exec;
  CircuitBreaker circuit;         ///< guarded by the pool mutex
  std::uint64_t requests = 0;     ///< completed sequences
  std::uint64_t failovers = 0;    ///< failed attempts routed elsewhere

  Endpoint(std::string addr, std::unique_ptr<RemoteExecutor> e,
           CircuitBreaker c)
      : address(std::move(addr)), exec(std::move(e)), circuit(std::move(c)) {}
};

PoolExecutor::PoolExecutor(RemoteConfig config)
    : config_(std::move(config)),
      jitter_(fork_jitter_stream(config_.jitter_seed)) {
  if (config_.max_attempts < 1) {
    throw InvalidArgument("executor pool: max_attempts must be >= 1");
  }
  addresses_ = split_endpoints(config_.address);
  const std::vector<std::string> specs =
      net::split_fault_specs(config_.fault_spec, addresses_.size());
  const CircuitBreaker::Config breaker{config_.circuit_failure_threshold,
                                       config_.probe_backoff_initial,
                                       config_.probe_backoff_max};
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    RemoteConfig ec = config_;
    ec.address = addresses_[i];
    ec.fault_spec = specs[i];
    // One shot per failover step: the retry budget (and the decision to
    // degrade) belongs to the pool, never to a single endpoint.
    ec.max_attempts = 1;
    ec.fallback_to_sim = false;
    ec.metric_prefix = "executor.pool." + std::to_string(i);
    // One shared span name: per-endpoint ownership follows the crossbar
    // uid counter, whose assignment order threaded runs interleave, and
    // profile skeletons must stay thread-count invariant.
    ec.span_prefix = "executor.pool";
    endpoints_.push_back(std::make_unique<Endpoint>(
        addresses_[i], std::make_unique<RemoteExecutor>(ec),
        CircuitBreaker(breaker, fork_jitter_stream(config_.jitter_seed))));
  }
}

PoolExecutor::~PoolExecutor() = default;

void PoolExecutor::count(std::size_t index, const char* suffix) const {
  if (obs::Registry* reg = remote_metrics_registry()) {
    reg->counter("executor.pool." + std::to_string(index) + "." + suffix)
        .add(1);
  }
}

void PoolExecutor::set_circuit_gauge(std::size_t index,
                                     CircuitState state) const {
  // Lazily created on the first state *transition*, so clean runs emit no
  // circuit gauges and stay byte-identical to single-endpoint goldens.
  if (obs::Registry* reg = remote_metrics_registry()) {
    reg->gauge("executor.pool." + std::to_string(index) + ".circuit_state")
        .set(static_cast<double>(static_cast<std::uint8_t>(state)));
  }
}

void PoolExecutor::backoff_sleep(int round) const {
  // Same shape as the single-endpoint retry backoff: exponential base
  // capped at backoff_max, multiplicative jitter in [0.5, 1.0), sliced
  // sleeps polling the cooperative shutdown flag.
  std::chrono::milliseconds base = config_.backoff_initial;
  for (int i = 1; i < round && base < config_.backoff_max; ++i) {
    base *= 2;
  }
  base = std::min(base, config_.backoff_max);
  double factor = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    factor = 0.5 + 0.5 * jitter_.uniform();
  }
  auto remaining = std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * factor));
  constexpr std::chrono::milliseconds kSlice{10};
  while (remaining.count() > 0) {
    if (shutdown_requested()) {
      throw InterruptedError(
          "shutdown requested during executor pool retry backoff");
    }
    const auto nap = std::min(remaining, kSlice);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
}

ExecReport PoolExecutor::run_local(Crossbar& xb,
                                   const ProgramSequence& seq) const {
  return SimExecutor{}.execute(xb, seq);
}

ExecReport PoolExecutor::execute(Crossbar& xb,
                                 const ProgramSequence& seq) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pinned_) {
      return run_local(xb, seq);
    }
    ++stats_.requests;
  }
  // The owner and failover order are a pure function of the array uid and
  // the endpoint list: the same array always prefers the same worker, and
  // membership changes move only the keys the changed endpoint owned.
  const std::vector<std::size_t> order =
      rendezvous_order(xb.uid(), addresses_);
  // One budget round = one pass over the live pool. Failing over to the
  // next endpoint is free; only "everyone failed" burns a round, so the
  // local fallback engages exactly when the entire pool is down for
  // max_attempts consecutive rounds.
  for (int round = 0; round < config_.max_attempts; ++round) {
    if (round > 0) {
      backoff_sleep(round);
    }
    // Candidate pass under the lock: admitted endpoints in preference
    // order. When every circuit is open and none is probe-due yet, fall
    // through to the full order — the pool must keep knocking rather
    // than silently degrade while workers might be back.
    std::vector<std::size_t> candidates;
    std::vector<bool> needs_probe(endpoints_.size(), false);
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (const std::size_t i : order) {
        if (endpoints_[i]->circuit.admits(now)) {
          candidates.push_back(i);
          needs_probe[i] =
              endpoints_[i]->circuit.state() == CircuitState::kOpen;
        }
      }
      if (candidates.empty()) {
        candidates.assign(order.begin(), order.end());
        for (const std::size_t i : candidates) {
          needs_probe[i] = true;
        }
      }
    }
    for (const std::size_t i : candidates) {
      Endpoint& ep = *endpoints_[i];
      if (needs_probe[i]) {
        // Half-open re-admission: prove the endpoint answers a heartbeat
        // before trusting it with a (large) full-state request. The
        // existing RemoteExecutor heartbeat machinery does the probing.
        if (!ep.exec->probe()) {
          std::lock_guard<std::mutex> lock(mu_);
          ep.circuit.record_failure(std::chrono::steady_clock::now());
          set_circuit_gauge(i, ep.circuit.state());
          continue;
        }
      }
      try {
        ExecReport report = ep.exec->execute(xb, seq);
        std::lock_guard<std::mutex> lock(mu_);
        const bool was_healthy =
            ep.circuit.state() == CircuitState::kHealthy;
        ep.circuit.record_success();
        if (!was_healthy) {
          set_circuit_gauge(i, CircuitState::kHealthy);
        }
        ++ep.requests;
        return report;
      } catch (const RemoteWorkerError&) {
        // Deterministic worker-side rejection: every endpoint runs the
        // same code on the same bits, so rerouting would only repeat it.
        throw;
      } catch (const net::TransportError&) {
        std::lock_guard<std::mutex> lock(mu_);
        ++ep.failovers;
        ++stats_.retries;
        count(i, "failovers");
        if (ep.circuit.record_failure(std::chrono::steady_clock::now())) {
          count(i, "circuit_opens");
        }
        set_circuit_gauge(i, ep.circuit.state());
      }
    }
  }
  if (!config_.fallback_to_sim) {
    throw net::TransportError(
        "executor pool: all " + std::to_string(endpoints_.size()) +
        " worker endpoint(s) of '" + config_.address +
        "' unreachable after " + std::to_string(config_.max_attempts) +
        " round(s) and local fallback is disabled");
  }
  // Pool-wide exhaustion: same graceful degradation as the single link —
  // no attempt mutated local state, so local execution now is
  // byte-identical to what any worker would have produced.
  {
    std::lock_guard<std::mutex> lock(mu_);
    degraded_ = true;
    ++stats_.fallbacks;
  }
  if (obs::Registry* reg = remote_metrics_registry()) {
    reg->counter("executor.pool.fallbacks").add(1);
  }
  return run_local(xb, seq);
}

bool PoolExecutor::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

bool PoolExecutor::pin_local_fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_) {
    return false;
  }
  pinned_ = true;
  degraded_ = true;
  return true;
}

RemoteLinkStats PoolExecutor::link_stats() const {
  RemoteLinkStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  for (const auto& ep : endpoints_) {
    out.reconnects += ep->exec->link_stats().reconnects;
  }
  return out;
}

std::vector<PoolEndpointSummary> PoolExecutor::endpoint_summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PoolEndpointSummary> out;
  out.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) {
    PoolEndpointSummary summary;
    summary.address = ep->address;
    summary.circuit = to_string(ep->circuit.state());
    summary.requests = ep->requests;
    summary.failovers = ep->failovers;
    summary.circuit_opens = ep->circuit.opens();
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace xbarlife::xbar
