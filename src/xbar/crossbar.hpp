// Memristor crossbar array (Fig. 1 of the paper).
//
// A crossbar holds rows x cols memristor cells sharing one device-parameter
// set and one aging model. Input voltages drive the rows; column currents
// are I_j = sum_i V_i * g_ij. Every cell programming operation is mirrored
// into the RepresentativeTracker (the 1-of-9 traced history the aging-aware
// mapper is allowed to inspect) while the cells themselves keep the exact
// ground-truth stress used by the simulator.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/tracker.hpp"
#include "common/rng.hpp"
#include "device/memristor.hpp"
#include "tensor/tensor.hpp"
#include "xbar/nonideal.hpp"
#include "xbar/program_sequence.hpp"

namespace xbarlife::obs {
class Profiler;
}  // namespace xbarlife::obs

namespace xbarlife::xbar {

/// Aggregate ground-truth aging statistics of an array.
struct CrossbarAgingStats {
  double mean_stress = 0.0;
  double max_stress = 0.0;
  double mean_aged_r_max = 0.0;
  double min_aged_r_max = 0.0;
  double mean_usable_levels = 0.0;
  std::size_t min_usable_levels = 0;
  std::uint64_t total_pulses = 0;
};

class Crossbar {
 public:
  Crossbar(std::size_t rows, std::size_t cols,
           const device::DeviceParams& params,
           const aging::AgingParams& aging_params);

  // Cells reference the crossbar-owned params/model, so the array must not
  // be copied or moved after construction.
  Crossbar(const Crossbar&) = delete;
  Crossbar& operator=(const Crossbar&) = delete;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Process-unique array id, assigned in construction order. The
  /// executor pool's rendezvous hash keys on it to pick each array's
  /// owning endpoint; it never influences simulation results (byte
  /// identity holds on every endpoint), so the thread-ordering race on
  /// assignment is benign.
  std::uint64_t uid() const { return uid_; }
  const device::DeviceParams& device_params() const { return params_; }
  const aging::AgingModel& aging_model() const { return model_; }

  const device::Memristor& cell(std::size_t r, std::size_t c) const;

  /// Installs analog non-idealities on this array: a manufacture-time
  /// stuck-at FaultMap drawn from `seed` (faulty cells are pinned at their
  /// defect value immediately), cycle-to-cycle write noise applied on every
  /// programming pulse, and read noise / IR drop applied by the read_*
  /// accessors. Must be called before the first programming pulse. An
  /// all-zero config is a no-op: the array stays ideal, draws no random
  /// numbers, and behaves bit-identically to an unconfigured one.
  void configure_nonideality(const NonidealityConfig& config,
                             std::uint64_t seed);

  /// True once a nonzero NonidealityConfig has been installed.
  bool nonideal() const { return nonideal_.has_value(); }
  /// The installed config, or null for an ideal array. Together with
  /// nonideality_seed() this is everything a remote worker needs to
  /// rebuild an identically-configured array (the FaultMap and RNG
  /// streams are deterministic functions of config + seed).
  const NonidealityConfig* nonideality_config() const {
    return nonideal_.has_value() ? &*nonideal_ : nullptr;
  }
  /// Seed configure_nonideality() was called with; 0 for an ideal array.
  std::uint64_t nonideality_seed() const { return nonideality_seed_; }
  /// Manufacture-time fault map; null when no stuck faults were drawn.
  const FaultMap* fault_map() const { return faults_.get(); }

  /// Programs cell (r, c) toward `target_r` ohms; returns the achieved
  /// resistance. Ages the cell and updates the tracker when traced.
  /// Under nonideality the pulse still ages the cell, but a stuck cell's
  /// resistance snaps back to its defect value and a healthy cell's
  /// achieved conductance picks up write noise.
  ///
  /// This is a thin wrapper over a one-pulse sequence: it executes a
  /// single ProgramOp through the legacy per-cell path. Tuning and
  /// resilience code should emit ProgramSequences and run them through a
  /// ProgramExecutor (xbar/executor.hpp) instead of calling this in a
  /// loop — see docs/programming.md.
  double program_cell(std::size_t r, std::size_t c, double target_r);

  /// Executes a contiguous run of kProgramPulse ops in order with the
  /// per-pulse invariants (Arrhenius factor, window-exponent pow, bounds
  /// setup, tracker counter flush, conductance-cache invalidation) hoisted
  /// out of the loop. `results[i]` receives each achieved resistance.
  /// Bit-identical to issuing the same ops through program_cell one at a
  /// time. Called by SimExecutor; not intended as a user-facing API.
  void program_batch(std::span<const ProgramOp> ops,
                     std::span<double> results);

  /// Executor bookkeeping: bumps the attached executor counters for one
  /// executed sequence. Both backends call it with the same structural
  /// stats, so the counters never depend on the backend choice.
  void note_sequence_executed(const SequenceStats& stats);

  /// Bumps the attached pulse counters without touching any array state.
  /// The remote executor calls this after restoring a worker-produced
  /// snapshot: the snapshot already contains the pulses' effects (and
  /// total_pulses), but obs counters live client-side and would otherwise
  /// miss the increments the worker's execution produced.
  void credit_pulse_counters(std::uint64_t pulses, std::uint64_t traced) {
    tracker_.tally_pulses(pulses, traced);
  }

  /// Recoverable drift on cell (r, c): resistance moves without a pulse.
  /// Stuck cells do not drift — the defect pins them.
  void drift_cell(std::size_t r, std::size_t c, double new_r);

  /// Conductance as seen by the read periphery: the stored value plus
  /// read noise and IR-drop attenuation when nonideality is configured.
  /// Serial-use only (the noise stream is ordered); returns the exact
  /// stored conductance on an ideal array.
  double read_conductance(std::size_t r, std::size_t c) const;

  /// Reciprocal view of read_conductance; returns the exact stored
  /// resistance (no double roundtrip) on an ideal array.
  double read_resistance(std::size_t r, std::size_t c) const;

  /// Analog VMM: i_out[j] = sum_i v_in[i] * g_ij. Sizes must match.
  void vmm(std::span<const float> v_in, std::span<float> i_out) const;

  /// Snapshot of all conductances as a (rows, cols) tensor.
  Tensor conductances() const;

  /// Snapshot of all resistances as a (rows, cols) tensor.
  Tensor resistances() const;

  /// Ground-truth aging aggregate over all cells.
  CrossbarAgingStats aging_stats() const;

  /// The traced (1-of-9) history available to the mapper.
  const aging::RepresentativeTracker& tracker() const { return tracker_; }

  /// Attaches observability pulse counters to the tracker (either may be
  /// null to detach); counters must outlive the crossbar.
  void attach_pulse_counters(obs::Counter* pulses,
                             obs::Counter* traced_pulses) {
    tracker_.attach_counters(pulses, traced_pulses);
  }

  /// Attaches executor observability counters (either may be null to
  /// detach): `sequences` counts executed ProgramSequences,
  /// `column_batches` the contiguous pulse runs inside them. Counters
  /// must outlive the crossbar.
  void attach_executor_counters(obs::Counter* sequences,
                                obs::Counter* column_batches) {
    seq_counter_ = sequences;
    batch_counter_ = column_batches;
  }

  /// Attaches a span profiler (null to detach). The remote executor opens
  /// an "executor.remote.execute" span per shipped sequence and grafts the
  /// worker's span tree under it; in-process backends ignore it. Must
  /// outlive the crossbar.
  void attach_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  std::uint64_t total_pulses() const { return total_pulses_; }

  /// Array-wide thermal-crosstalk stress pool shared by every cell.
  double ambient_stress() const { return ambient_stress_; }

  /// Serializes the complete mutable array state: every cell's resistance
  /// and aging history, the tracker, the ambient pool, and the write/read
  /// noise stream positions. The nonideality config and FaultMap are NOT
  /// serialized — both are deterministic functions of the config/seed the
  /// owner re-applies on reconstruction (stuck pins are then overwritten
  /// by the restored cell resistances, which already include them).
  void save_state(persist::StateWriter& w) const;

  /// Restores a save_state snapshot onto an identically-shaped array that
  /// has already been configured the same way (same nonideality config and
  /// seed). Throws on geometry mismatch.
  void load_state(persist::StateReader& r);

 private:
  /// Every mutation path (program/drift/force) obtains its cell here, so
  /// this is the single chokepoint that invalidates the VMM's cached
  /// conductance matrix.
  device::Memristor& mutable_cell(std::size_t r, std::size_t c);

  /// Legacy per-pulse body shared by program_cell and the percell
  /// executor: full per-pulse device math plus immediate tracker/counter
  /// updates. The batched path reproduces these floating-point updates
  /// exactly (see program_batch) while hoisting the invariants.
  double apply_pulse_percell(const ProgramOp& op);

  /// Stuck-cell snap-back / write-noise step shared verbatim by the
  /// per-cell and batched paths (the write-noise RNG stream is ordered,
  /// so both paths must consume it identically).
  double apply_post_pulse_nonideality(std::size_t r, std::size_t c,
                                      device::Memristor& m, double achieved);

  std::size_t rows_;
  std::size_t cols_;
  device::DeviceParams params_;
  aging::AgingModel model_;
  std::vector<device::Memristor> cells_;
  aging::RepresentativeTracker tracker_;
  std::uint64_t uid_ = 0;
  /// Hoisted per-pulse constants for program_batch; fixed at construction
  /// (depends only on params_/model_).
  device::PulseContext pulse_ctx_;
  std::uint64_t total_pulses_ = 0;
  double ambient_stress_ = 0.0;
  obs::Counter* seq_counter_ = nullptr;
  obs::Counter* batch_counter_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  /// Engaged only by configure_nonideality with a nonzero config.
  std::optional<NonidealityConfig> nonideal_;
  std::uint64_t nonideality_seed_ = 0;
  std::unique_ptr<FaultMap> faults_;
  Rng write_rng_{0};
  mutable Rng read_rng_{0};
  /// Flat row-major copy of every cell's conductance, rebuilt lazily by
  /// vmm() so the hot loop streams floats instead of chasing Memristor
  /// getters. Invalidated by mutable_cell() and load_state().
  mutable std::vector<float> g_cache_;
  mutable bool g_cache_valid_ = false;
};

}  // namespace xbarlife::xbar
