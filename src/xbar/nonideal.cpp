#include "xbar/nonideal.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {

void NonidealityConfig::validate() const {
  XB_CHECK(write_noise_sigma >= 0.0, "write noise sigma must be >= 0");
  XB_CHECK(read_noise_sigma >= 0.0, "read noise sigma must be >= 0");
  XB_CHECK(stuck_off_fraction >= 0.0 && stuck_off_fraction <= 1.0,
           "stuck-off fraction must lie in [0, 1]");
  XB_CHECK(stuck_on_fraction >= 0.0 && stuck_on_fraction <= 1.0,
           "stuck-on fraction must lie in [0, 1]");
  XB_CHECK(stuck_off_fraction + stuck_on_fraction <= 1.0,
           "total stuck fraction must not exceed 1");
  XB_CHECK(line_resistance >= 0.0, "line resistance must be >= 0");
}

FaultMap::FaultMap(std::size_t rows, std::size_t cols,
                   const NonidealityConfig& config, std::uint64_t seed)
    : rows_(rows), cols_(cols), faults_(rows * cols, 0) {
  XB_CHECK(rows > 0 && cols > 0, "fault map needs a non-empty array");
  config.validate();
  Rng rng(seed);
  for (std::uint8_t& f : faults_) {
    const double u = rng.uniform();
    if (u < config.stuck_off_fraction) {
      f = static_cast<std::uint8_t>(Fault::kStuckOff);
      ++faults_total_;
      ++stuck_off_;
    } else if (u < config.stuck_off_fraction + config.stuck_on_fraction) {
      f = static_cast<std::uint8_t>(Fault::kStuckOn);
      ++faults_total_;
    }
  }
}

FaultMap::Fault FaultMap::at(std::size_t r, std::size_t c) const {
  XB_CHECK(r < rows_ && c < cols_, "fault map index out of range");
  return static_cast<Fault>(faults_[r * cols_ + c]);
}

std::size_t FaultMap::row_fault_count(std::size_t r) const {
  XB_CHECK(r < rows_, "fault map row out of range");
  std::size_t n = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    n += faults_[r * cols_ + c] !=
         static_cast<std::uint8_t>(Fault::kNone);
  }
  return n;
}

double apply_write_noise(const NonidealityConfig& config, double g,
                         Rng& rng) {
  XB_CHECK(g > 0.0, "conductance must be positive");
  if (config.write_noise_sigma == 0.0) {
    return g;
  }
  // Clamp the factor away from zero so a noise outlier cannot produce a
  // nonphysical non-positive conductance.
  const double factor =
      std::max(0.05, 1.0 + rng.gaussian(0.0, config.write_noise_sigma));
  return g * factor;
}

double apply_read_noise(const NonidealityConfig& config, double g,
                        Rng& rng) {
  XB_CHECK(g > 0.0, "conductance must be positive");
  if (config.read_noise_sigma == 0.0) {
    return g;
  }
  const double factor =
      std::max(0.05, 1.0 + rng.gaussian(0.0, config.read_noise_sigma));
  return g * factor;
}

double faulted_conductance(FaultMap::Fault fault, double g, double g_min,
                           double g_max) {
  switch (fault) {
    case FaultMap::Fault::kNone:
      return g;
    case FaultMap::Fault::kStuckOff:
      return g_min;
    case FaultMap::Fault::kStuckOn:
      return g_max;
  }
  return g;
}

double ir_drop_conductance(const NonidealityConfig& config, double g,
                           std::size_t r, std::size_t c) {
  XB_CHECK(g > 0.0, "conductance must be positive");
  if (config.line_resistance == 0.0) {
    return g;
  }
  const double r_wire =
      config.line_resistance * static_cast<double>(r + c + 2);
  return g / (1.0 + g * r_wire);
}

Tensor observed_conductances(const Crossbar& xb,
                             const NonidealityConfig& config,
                             const FaultMap* faults, Rng& rng) {
  config.validate();
  XB_CHECK(faults == nullptr ||
               (faults->rows() == xb.rows() && faults->cols() == xb.cols()),
           "fault map must match the crossbar");
  const double g_min = xb.device_params().g_min();
  const double g_max = xb.device_params().g_max();
  Tensor g(Shape{xb.rows(), xb.cols()});
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      double value = xb.cell(r, c).conductance();
      if (faults != nullptr) {
        value = faulted_conductance(faults->at(r, c), value, g_min, g_max);
      }
      value = apply_read_noise(config, value, rng);
      value = ir_drop_conductance(config, value, r, c);
      g.at(r, c) = static_cast<float>(value);
    }
  }
  return g;
}

}  // namespace xbarlife::xbar
