// Remote program execution: the "remote" ProgramExecutor backend, the
// worker-side request handler, and the in-process loopback worker.
//
// The client serializes (array construction parameters + full crossbar
// state + ProgramSequence) into one xbarlife.wire.v1 kExecute frame, the
// worker rebuilds an identical array, runs the sequence through the local
// SimExecutor, and returns (per-op results + pulse tallies + post-execution
// state). The client restores that state verbatim, so a completed remote
// run is byte-identical to a local `sim` run *by construction* — the same
// deterministic code executes on the same bits, just in another process.
//
// Fault tolerance: each execute() retries under one fixed sequence id with
// per-request deadlines and jittered exponential backoff, reconnecting on
// transport errors. Because every request carries the full pre-state,
// re-execution after a lost response is naturally idempotent — and the
// worker additionally caches its last response per connection, replaying
// it without re-executing when the same id arrives again. When every
// attempt is exhausted the executor degrades gracefully (when enabled):
// the sequence runs on the local SimExecutor, the executor marks itself
// degraded (stamped into the result document, and picked up by the
// resilience ladder's fallback-executor rung), and the run continues with
// bit-identical results.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/faulty.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "xbar/executor.hpp"

namespace xbarlife::xbar {

/// The remote worker reported a request-level failure (malformed payload,
/// geometry mismatch, an execution error). Not transient: the same
/// deterministic failure would recur on retry, so the client re-raises
/// instead of retrying.
class RemoteWorkerError : public Error {
 public:
  explicit RemoteWorkerError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------------
// Worker-side protocol handlers (shared by the loopback thread and the
// xbarlife-worker app).

/// Serializes a kExecute payload: geometry, device/aging parameters, the
/// nonideality configuration (so the worker can rebuild the identical
/// array), the full crossbar state, and the sequence. When
/// `want_telemetry` is set the request additionally carries a trace
/// context (trace_id / span_id) and asks the worker to profile itself and
/// ship its span tree + metric deltas back in the response; the v1 field
/// layout is preserved as a prefix, so v1 workers still parse the
/// geometry before rejecting the version.
std::string encode_execute_request(const Crossbar& xb,
                                   const ProgramSequence& seq,
                                   bool want_telemetry = false,
                                   std::uint64_t trace_id = 0,
                                   std::uint64_t span_id = 0);

/// Decodes a kExecute payload, rebuilds the array, executes the sequence
/// through SimExecutor, and returns the encoded kExecuteResult payload.
/// Throws (InvalidArgument / CheckpointError / Error) on a malformed or
/// inconsistent request; serve_connection turns that into a kError frame.
std::string execute_request(std::string_view payload);

/// Decoded kExecuteResult payload.
struct ExecuteResponse {
  std::vector<double> results;     ///< per-op outcomes, sequence-aligned
  std::uint64_t pulses = 0;        ///< pulse-counter delta for crediting
  std::uint64_t traced_pulses = 0; ///< traced-pulse delta for crediting
  std::string crossbar_state;      ///< post-execution save_state payload
  /// Worker-side telemetry, present only when the request asked for it.
  bool has_telemetry = false;
  std::uint64_t trace_id = 0;  ///< echo of the request trace context
  std::uint64_t span_id = 0;
  /// Worker span tree (worker.request > rebuild/execute/serialize), ready
  /// to graft under the client's remote-execute span.
  std::vector<obs::Profiler::RemoteSpan> spans;
  /// Worker registry counter deltas for this request, in name order.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

ExecuteResponse decode_execute_response(std::string_view payload);

/// Live statistics of a serving worker, shared by every serving thread
/// (the loopback worker embeds one; the xbarlife-worker app owns one).
/// Counters are atomic and the registry locks internally, so concurrent
/// connection threads update the single shared instance safely. Snapshots
/// ship as the kStatsAck payload and render as xbarlife.workerstats.v1.
struct WorkerStatsState {
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> requests_served{0};
  std::atomic<std::uint64_t> replay_hits{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> active_connections{0};
  std::atomic<std::uint64_t> connections_total{0};
  /// Wire telemetry (net.frame_bytes_in/out, net.crc_failures) plus the
  /// bucketed worker.request_ms latency histogram.
  obs::Registry metrics;

  /// Encodes the kStatsAck payload (versioned binary snapshot).
  std::string encode_snapshot() const;
};

/// Client-side decode of a kStatsAck payload.
struct WorkerStatsSnapshot {
  std::string build;
  std::uint8_t wire_version = 0;
  std::uint8_t request_version = 0;
  std::uint64_t uptime_ms = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t replay_hits = 0;
  std::uint64_t errors = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t connections_total = 0;
  /// Pre-serialized Registry::to_json() dump from the worker, spliced
  /// verbatim into the document (the client never re-parses it).
  std::string metrics_json;

  /// Renders the xbarlife.workerstats.v1 document. A non-empty
  /// `endpoint` adds an "endpoint" key right after "schema" — fleet mode
  /// (`worker-status` against an endpoint list) emits one document per
  /// worker and the key says which one answered. Single-endpoint
  /// documents omit it and stay byte-identical to earlier builds.
  obs::JsonValue to_json(std::string_view endpoint = {}) const;
};

WorkerStatsSnapshot decode_worker_stats(std::string_view payload);

struct ServeOptions {
  /// Idle read-poll granularity: how often the serve loop wakes to check
  /// the stop flags while no frame is arriving.
  std::chrono::milliseconds idle_poll{200};
  /// Optional external stop flag (the loopback worker's).
  const std::atomic<bool>* stop = nullptr;
  /// Also stop when the process-wide cooperative shutdown flag is set.
  bool honor_shutdown_flag = true;
  /// Optional shared stats (uptime, request/latency accounting, wire
  /// telemetry, kStats snapshots). With none attached kStats is answered
  /// with kError and worker-side frames count nowhere — serve_connection
  /// always scopes the wire-metrics registry per thread, so a loopback
  /// worker never leaks frame telemetry into the client's registry.
  WorkerStatsState* stats = nullptr;
};

/// Serves one client connection until it closes, a framing error occurs,
/// a stop flag trips, or the client sends kShutdown (returns true in the
/// kShutdown case — the worker app exits its accept loop on it).
bool serve_connection(net::Transport& t, const ServeOptions& opts);

// ---------------------------------------------------------------------------
// In-process loopback worker: a worker thread per connection over pipe
// transports. The default endpoint of the remote backend, which makes
// `XBARLIFE_EXECUTOR=remote` work everywhere (tests, CI, the bench)
// without ports or subprocesses, and the substrate the chaos tests inject
// faults into.

class LoopbackWorker {
 public:
  /// `plan` is applied to the worker->client direction of every
  /// connection (the client wraps its own side), so both directions of
  /// the link can fault independently.
  explicit LoopbackWorker(const net::FaultPlan& plan = {});
  ~LoopbackWorker();

  LoopbackWorker(const LoopbackWorker&) = delete;
  LoopbackWorker& operator=(const LoopbackWorker&) = delete;

  /// Opens a new served connection and returns the client end (unwrapped;
  /// callers add their own fault wrapper if desired).
  std::unique_ptr<net::Transport> connect();

  /// Closes the stop flag and joins all serving threads. Idempotent.
  void stop();

  /// Live worker statistics shared by every served connection.
  WorkerStatsState& stats() { return stats_; }

 private:
  net::FaultPlan plan_;
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::vector<std::thread> threads_;
  std::uint64_t connections_ = 0;
  WorkerStatsState stats_;
};

// ---------------------------------------------------------------------------
// The remote executor backend.

struct RemoteConfig {
  /// "loopback" (in-process worker thread), "unix:/path", or "host:port".
  std::string address = "loopback";
  /// FaultPlan spec injected on the client->worker direction (and, for
  /// loopback, independently on the worker->client direction). Empty
  /// means a clean link.
  std::string fault_spec;
  /// Per-request deadline covering send + worker execution + response.
  std::chrono::milliseconds request_deadline{2000};
  std::chrono::milliseconds dial_timeout{500};
  /// Total tries per sequence (first attempt + retries) before degrading.
  int max_attempts = 5;
  /// Exponential backoff between attempts: initial * 2^k, capped, with
  /// multiplicative jitter in [0.5, 1.0). Every executor forks its own
  /// jitter stream from this seed and a process-wide instance counter
  /// (fork_jitter_stream), so two executors sharing the default seed
  /// still draw decorrelated backoff schedules instead of retrying in
  /// lockstep.
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_max{250};
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  /// Degrade to the local SimExecutor when all attempts fail; when false
  /// the executor throws TransportError instead (CLI exit 3).
  bool fallback_to_sim = true;
  /// Metric-name prefix for this executor's lazily created telemetry
  /// (counters + the request_ms histogram). The pool backend names its
  /// endpoints "executor.pool.<i>" so their series merge deterministically
  /// without colliding.
  std::string metric_prefix = "executor.remote";
  /// Profiler span-name prefix; empty means "use metric_prefix". The pool
  /// backend profiles every endpoint under the shared "executor.pool"
  /// name: which endpoint owns an array depends on construction order
  /// (the crossbar uid counter), which threaded runs interleave, and
  /// profile skeletons must stay byte-identical across thread counts —
  /// only the deterministic pool-wide total is a span, the per-endpoint
  /// split stays in the metric registry.
  std::string span_prefix;
  /// Pool circuit breaker (ignored by a single-endpoint executor):
  /// consecutive failures before an endpoint's circuit opens
  /// (healthy -> suspect on the first failure, open at the threshold)...
  int circuit_failure_threshold = 2;
  /// ...and the jittered exponential backoff between half-open heartbeat
  /// probes of an open endpoint.
  std::chrono::milliseconds probe_backoff_initial{100};
  std::chrono::milliseconds probe_backoff_max{2000};
};

/// Forks a per-instance backoff-jitter stream: `seed` is combined with a
/// process-wide monotonically increasing instance counter, so executors
/// sharing a (default) seed never draw identical schedules.
Rng fork_jitter_stream(std::uint64_t seed);

/// Resets the fork_jitter_stream instance counter so a test can pin the
/// exact fork sequence. Not for production use.
void reset_jitter_instances_for_test();

/// Link-health counters (process-lifetime totals for this executor).
struct RemoteLinkStats {
  std::uint64_t requests = 0;    ///< sequences submitted
  std::uint64_t retries = 0;     ///< re-sent attempts after a failure
  std::uint64_t reconnects = 0;  ///< connections re-established
  std::uint64_t fallbacks = 0;   ///< sequences executed via local fallback
};

class RemoteExecutor final : public ProgramExecutor {
 public:
  explicit RemoteExecutor(RemoteConfig config);
  ~RemoteExecutor() override;

  const char* name() const override { return "remote"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;

  /// True once at least one sequence fell back to local execution (or the
  /// executor was pinned). The resilience ladder's fallback-executor rung
  /// keys off this.
  bool degraded() const override;

  /// Pins every future execute() to the local SimExecutor (no more remote
  /// attempts). Returns true on the transition, false when already pinned.
  bool pin_local_fallback() const override;

  RemoteLinkStats link_stats() const;
  const RemoteConfig& config() const { return config_; }

  /// Half-open circuit probe: connects (or reuses the link) and runs one
  /// heartbeat round trip. True when the endpoint answered; false drops
  /// the connection. Never ships a request and never counts a fallback.
  bool probe() const;

 private:
  struct Link;

  void ensure_connected(std::unique_lock<std::mutex>& lock) const;
  void drop_connection() const;
  net::Frame read_matching(net::MsgType want, std::uint64_t want_id,
                           std::chrono::steady_clock::time_point deadline)
      const;
  bool probe_liveness() const;
  void backoff_sleep(int attempt) const;
  ExecReport run_local(Crossbar& xb, const ProgramSequence& seq) const;
  void count(const char* name, std::uint64_t delta = 1) const;

  RemoteConfig config_;
  net::FaultPlan fault_plan_;
  mutable std::mutex mu_;
  mutable std::unique_ptr<Link> link_;
  mutable std::unique_ptr<LoopbackWorker> loopback_;
  mutable std::uint64_t next_seq_ = 0;
  mutable std::uint64_t connections_ = 0;
  mutable RemoteLinkStats stats_;
  mutable bool degraded_ = false;
  mutable bool pinned_ = false;
  mutable Rng jitter_;
};

/// Dials `config.address` ("loopback" spins up a throwaway in-process
/// worker), performs the versioned hello handshake, and requests one
/// stats snapshot. Throws TransportError / WireError on failure.
WorkerStatsSnapshot query_worker_status(const RemoteConfig& config);

/// Registry the remote backend lazily creates its link metrics in
/// (<metric_prefix>.requests / .replay_served / .retries / .reconnects /
/// .fallbacks counters plus the bucketed <metric_prefix>.request_ms
/// round-trip histogram). Metrics are created only when the corresponding
/// event first occurs, so a clean run emits no remote metrics and stays
/// byte-identical to `sim` goldens. Pass nullptr to detach; the registry
/// must outlive remote execution.
void set_remote_metrics(obs::Registry* registry);

/// The registry installed by set_remote_metrics (nullptr when detached).
/// The pool backend records its per-endpoint counters and circuit-state
/// gauges here, next to the endpoints' own link metrics.
obs::Registry* remote_metrics_registry();

}  // namespace xbarlife::xbar
