// ProgramSequence: the batched command stream between tuning controllers
// and crossbar arrays.
//
// Controllers (the mapper's write-verify pass, the online tuner, the
// resilience ladder) no longer poke cells one program_cell() call at a
// time; they *emit* a compact instruction sequence — program pulses,
// verify reads, waits, barriers — and hand it to a ProgramExecutor
// (executor.hpp) for execution against the device. The split is the
// SoftMC idiom: building the command stream is cheap and backend-free,
// executing it is where the device model (or, later, real hardware /
// a remote simulator) lives. Sequences serialize through the persist
// wire format, so a daemon can ship them between processes verbatim.
//
// Op order is semantically significant: programming pulses age cells,
// heat the shared ambient pool, and consume the ordered write-noise
// stream, so every executor MUST execute ops in sequence order. The
// SequenceBuilder produces the canonical per-column order (all ops of
// column 0, a barrier, all ops of column 1, ...) that models a driver
// setting up one column line and streaming the row pulses through it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "persist/state_io.hpp"

namespace xbarlife::xbar {

/// Instruction kinds. The numeric values are the wire encoding.
enum class OpKind : std::uint8_t {
  kProgramPulse = 0,  ///< program cell (row, col) toward `value` ohms
  kVerifyRead = 1,    ///< read cell (row, col) through the periphery
  kWait = 2,          ///< idle for `value` microseconds (HIL settling)
  kBarrier = 3,       ///< ordering fence between column batches
};

/// One instruction. `value` is the target resistance (ohms) for a pulse
/// and the delay (microseconds) for a wait; zero otherwise.
struct ProgramOp {
  OpKind kind = OpKind::kBarrier;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;

  static ProgramOp pulse(std::size_t r, std::size_t c, double target_r) {
    return {OpKind::kProgramPulse, static_cast<std::uint32_t>(r),
            static_cast<std::uint32_t>(c), target_r};
  }
  static ProgramOp verify(std::size_t r, std::size_t c) {
    return {OpKind::kVerifyRead, static_cast<std::uint32_t>(r),
            static_cast<std::uint32_t>(c), 0.0};
  }
  static ProgramOp wait(double microseconds) {
    return {OpKind::kWait, 0, 0, microseconds};
  }
  static ProgramOp barrier() { return {OpKind::kBarrier, 0, 0, 0.0}; }

  bool operator==(const ProgramOp&) const = default;
};

/// Structural summary of a sequence. Executors report these verbatim, so
/// batch counters are identical across backends by construction.
struct SequenceStats {
  std::uint64_t pulses = 0;
  std::uint64_t verifies = 0;
  std::uint64_t waits = 0;
  std::uint64_t barriers = 0;
  /// Maximal contiguous runs of program pulses — the units a batching
  /// executor executes with hoisted per-batch state.
  std::uint64_t batches = 0;
  double wait_us = 0.0;
};

/// An immutable-after-build instruction stream.
class ProgramSequence {
 public:
  ProgramSequence() = default;

  void push(const ProgramOp& op) { ops_.push_back(op); }
  void reserve(std::size_t n) { ops_.reserve(n); }

  const std::vector<ProgramOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  SequenceStats stats() const;

  /// Wire format: op count, then (kind, row, col, value-bits) per op.
  /// Floats travel bit-cast, so a round trip is byte-identical.
  void save_state(persist::StateWriter& w) const;
  static ProgramSequence load_state(persist::StateReader& r);

  bool operator==(const ProgramSequence&) const = default;

 private:
  std::vector<ProgramOp> ops_;
};

/// Builds the canonical column-batched sequence: ops are staged into
/// per-column lanes in push order, and build() emits the non-empty lanes
/// in ascending column order with a barrier between consecutive columns.
/// Wait ops ride in the lane of the column they follow.
class SequenceBuilder {
 public:
  SequenceBuilder(std::size_t rows, std::size_t cols);

  void pulse(std::size_t r, std::size_t c, double target_r);
  void verify(std::size_t r, std::size_t c);
  /// Settling delay appended to column `c`'s lane.
  void wait(std::size_t c, double microseconds);

  std::size_t staged_ops() const { return staged_; }
  bool empty() const { return staged_ == 0; }

  /// Emits the staged ops and resets the builder for reuse.
  ProgramSequence build();

 private:
  std::vector<ProgramOp>& lane(std::size_t c);

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<ProgramOp>> lanes_;
  std::size_t staged_ = 0;
};

}  // namespace xbarlife::xbar
