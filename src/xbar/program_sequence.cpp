#include "xbar/program_sequence.hpp"

#include "common/error.hpp"

namespace xbarlife::xbar {

SequenceStats ProgramSequence::stats() const {
  SequenceStats s;
  bool in_pulse_run = false;
  for (const ProgramOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kProgramPulse:
        ++s.pulses;
        if (!in_pulse_run) {
          ++s.batches;
          in_pulse_run = true;
        }
        continue;
      case OpKind::kVerifyRead:
        ++s.verifies;
        break;
      case OpKind::kWait:
        ++s.waits;
        s.wait_us += op.value;
        break;
      case OpKind::kBarrier:
        ++s.barriers;
        break;
    }
    in_pulse_run = false;
  }
  return s;
}

void ProgramSequence::save_state(persist::StateWriter& w) const {
  w.u64(ops_.size());
  for (const ProgramOp& op : ops_) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.u32(op.row);
    w.u32(op.col);
    w.f64(op.value);
  }
}

ProgramSequence ProgramSequence::load_state(persist::StateReader& r) {
  ProgramSequence seq;
  // Each op occupies exactly 17 payload bytes (kind u8 + row/col u32 +
  // value f64); array_count rejects corrupt prefixes before the reserve.
  const std::size_t n = r.array_count(17);
  seq.ops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ProgramOp op;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(OpKind::kBarrier)) {
      throw InvalidArgument("ProgramSequence: bad op kind " +
                            std::to_string(kind));
    }
    op.kind = static_cast<OpKind>(kind);
    op.row = r.u32();
    op.col = r.u32();
    op.value = r.f64();
    seq.ops_.push_back(op);
  }
  return seq;
}

SequenceBuilder::SequenceBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), lanes_(cols) {}

std::vector<ProgramOp>& SequenceBuilder::lane(std::size_t c) {
  if (c >= cols_) {
    throw InvalidArgument("SequenceBuilder: column " + std::to_string(c) +
                          " out of range (cols=" + std::to_string(cols_) +
                          ")");
  }
  return lanes_[c];
}

void SequenceBuilder::pulse(std::size_t r, std::size_t c, double target_r) {
  if (r >= rows_) {
    throw InvalidArgument("SequenceBuilder: row " + std::to_string(r) +
                          " out of range (rows=" + std::to_string(rows_) +
                          ")");
  }
  lane(c).push_back(ProgramOp::pulse(r, c, target_r));
  ++staged_;
}

void SequenceBuilder::verify(std::size_t r, std::size_t c) {
  if (r >= rows_) {
    throw InvalidArgument("SequenceBuilder: row " + std::to_string(r) +
                          " out of range (rows=" + std::to_string(rows_) +
                          ")");
  }
  lane(c).push_back(ProgramOp::verify(r, c));
  ++staged_;
}

void SequenceBuilder::wait(std::size_t c, double microseconds) {
  lane(c).push_back(ProgramOp::wait(microseconds));
  ++staged_;
}

ProgramSequence SequenceBuilder::build() {
  ProgramSequence seq;
  seq.reserve(staged_ + cols_);
  bool first = true;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (lanes_[c].empty()) continue;
    if (!first) seq.push(ProgramOp::barrier());
    for (const ProgramOp& op : lanes_[c]) seq.push(op);
    lanes_[c].clear();
    first = false;
  }
  staged_ = 0;
  return seq;
}

}  // namespace xbarlife::xbar
