// ProgramExecutor: pluggable backends that execute a ProgramSequence
// against a crossbar.
//
// Mirrors the PR 6 kernel registry: the backend is resolved once at
// startup (--executor / XBARLIFE_EXECUTOR, unknown name -> exit 2 with
// the usable list) and stamped into result/bench envelopes as the
// "executor" key. Two in-process backends ship today:
//
//   sim      (default) column-batched simulator: contiguous pulse runs
//            execute through Crossbar::program_batch, which hoists the
//            per-pulse transcendental math and amortizes tracker and
//            obs-counter updates across the batch. Bit-identical to
//            percell by construction.
//   percell  legacy reference: every pulse goes through the original
//            one-call-per-cell Crossbar::program_cell path.
//
// A remote / hardware-in-the-loop executor is a drop-in later: implement
// the interface, register the name in executor.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbar/program_sequence.hpp"

namespace xbarlife::xbar {

class Crossbar;

/// Per-op outcome of an executed sequence. `results` is aligned with the
/// sequence ops: achieved resistance for a pulse, read conductance for a
/// verify, 0.0 for waits/barriers.
struct ExecReport {
  std::vector<double> results;
  SequenceStats stats;
};

class ProgramExecutor {
 public:
  virtual ~ProgramExecutor() = default;
  virtual const char* name() const = 0;
  virtual ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const = 0;
};

/// Column-batched in-process simulator (default backend).
class SimExecutor final : public ProgramExecutor {
 public:
  const char* name() const override { return "sim"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;
};

/// Legacy per-cell reference backend: one program_cell call per pulse.
class PerCellExecutor final : public ProgramExecutor {
 public:
  const char* name() const override { return "percell"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;
};

/// Returns the process-wide active executor, resolving XBARLIFE_EXECUTOR
/// on first use (throws InvalidArgument for an unknown value).
const ProgramExecutor& select_executor();

/// Activates a backend by name ("sim", "percell"; "" / "auto" -> default).
/// Throws InvalidArgument listing the usable names otherwise.
void set_executor(const std::string& name);

/// Name of the active backend (resolving it if needed).
std::string executor_name();

/// Usable backend names, selection-priority order.
std::vector<std::string> available_executors();

}  // namespace xbarlife::xbar
