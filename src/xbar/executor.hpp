// ProgramExecutor: pluggable backends that execute a ProgramSequence
// against a crossbar.
//
// Mirrors the PR 6 kernel registry: the backend is resolved once at
// startup (--executor / XBARLIFE_EXECUTOR, unknown name -> exit 2 with
// the usable list) and stamped into result/bench envelopes as the
// "executor" key. Two in-process backends ship today:
//
//   sim      (default) column-batched simulator: contiguous pulse runs
//            execute through Crossbar::program_batch, which hoists the
//            per-pulse transcendental math and amortizes tracker and
//            obs-counter updates across the batch. Bit-identical to
//            percell by construction.
//   percell  legacy reference: every pulse goes through the original
//            one-call-per-cell Crossbar::program_cell path.
//   remote   ships each sequence (plus full crossbar state) over a socket
//            to a worker process — or the in-process loopback worker —
//            with retry/backoff and graceful fallback to `sim` (see
//            xbar/remote.hpp). Configured via --remote/--remote-faults or
//            XBARLIFE_REMOTE/XBARLIFE_REMOTE_FAULTS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbar/program_sequence.hpp"

namespace xbarlife::xbar {

class Crossbar;

/// Per-op outcome of an executed sequence. `results` is aligned with the
/// sequence ops: achieved resistance for a pulse, read conductance for a
/// verify, 0.0 for waits/barriers.
struct ExecReport {
  std::vector<double> results;
  SequenceStats stats;
};

class ProgramExecutor {
 public:
  virtual ~ProgramExecutor() = default;
  virtual const char* name() const = 0;
  virtual ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const = 0;

  /// True when the backend is running degraded (the remote backend: at
  /// least one sequence fell back to local execution). In-process
  /// backends never degrade.
  virtual bool degraded() const { return false; }

  /// Permanently routes execution to the backend's local fallback path
  /// (the resilience ladder's fallback-executor rung). Returns true on
  /// the transition, false when unsupported or already pinned.
  virtual bool pin_local_fallback() const { return false; }
};

/// Column-batched in-process simulator (default backend).
class SimExecutor final : public ProgramExecutor {
 public:
  const char* name() const override { return "sim"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;
};

/// Legacy per-cell reference backend: one program_cell call per pulse.
class PerCellExecutor final : public ProgramExecutor {
 public:
  const char* name() const override { return "percell"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;
};

/// Returns the process-wide active executor, resolving XBARLIFE_EXECUTOR
/// on first use (throws InvalidArgument for an unknown value).
const ProgramExecutor& select_executor();

/// Activates a backend by name ("sim", "percell", "remote"; "" / "auto"
/// -> default). Throws InvalidArgument listing the usable names otherwise.
void set_executor(const std::string& name);

/// Name of the active backend (resolving it if needed).
std::string executor_name();

/// Usable backend names, selection-priority order.
std::vector<std::string> available_executors();

struct RemoteConfig;

/// Installs (or replaces) the remote backend's configuration. Call before
/// set_executor("remote"); without it, resolving "remote" builds the
/// backend from XBARLIFE_REMOTE / XBARLIFE_REMOTE_FAULTS (defaulting to
/// the in-process loopback worker).
void configure_remote_executor(const RemoteConfig& config);

/// True when the active backend reports itself degraded (remote fallback
/// engaged). The resilience ladder's fallback-executor rung keys off it.
bool executor_degraded();

/// Pins the active backend to its local fallback path; true only on the
/// transition (so the ladder rung runs at most once).
bool pin_executor_fallback();

/// Degradation summary stamped into result documents.
struct ExecutorDegradation {
  bool degraded = false;
  std::uint64_t fallbacks = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
};

/// Snapshot of the remote backend's degradation state; `degraded` is
/// false when the remote backend was never instantiated or never fell
/// back.
ExecutorDegradation executor_degradation();

/// One endpoint's worth of pool accounting, stamped into the optional
/// "executor_pool" result-envelope key and rendered by `xbarlife
/// worker-status` fleet mode.
struct PoolEndpointSummary {
  std::string address;
  std::string circuit;  ///< "healthy" / "suspect" / "open"
  std::uint64_t requests = 0;       ///< sequences this endpoint completed
  std::uint64_t failovers = 0;      ///< attempts that failed over away
  std::uint64_t circuit_opens = 0;  ///< times its circuit opened
};

/// Pool summary for result documents. `active` only when the active
/// backend is a worker pool with more than one endpoint, so documents
/// from single-endpoint runs stay byte-identical to earlier builds.
struct ExecutorPoolSummary {
  bool active = false;
  std::vector<PoolEndpointSummary> endpoints;
};

ExecutorPoolSummary executor_pool_summary();

}  // namespace xbarlife::xbar
