// Multi-worker executor pool: the fleet form of the "remote" backend.
//
// A PoolExecutor shards sequence dispatch across N workers named by a
// comma-separated endpoint list ("unix:/a,unix:/b,host:port,loopback").
// Each array has a deterministic owning endpoint — rendezvous (highest-
// random-weight) hashing of the array uid against every endpoint slot, so
// adding or removing an endpoint moves only the keys that endpoint owned —
// and every endpoint carries its own health state machine:
//
//   healthy --failure--> suspect --(threshold consecutive)--> open
//      ^                    |                                  |
//      +----- success ------+        half-open heartbeat probe +
//                                    (jittered exponential backoff)
//
// Dispatch walks the array's rendezvous preference order, skipping
// endpoints whose circuit is open (not yet probe-due), and fails over to
// the next live endpoint *before* burning the global max_attempts budget:
// one budget round means "the entire pool was tried and failed", so
// local-sim fallback — and the executor_degradation stamp — engages only
// when every worker is down. Byte-identity is preserved by construction:
// every worker runs the stock SimExecutor on shipped full pre-state, so
// which endpoint (or the local fallback) executes a sequence can never
// change its results.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "xbar/executor.hpp"
#include "xbar/remote.hpp"

namespace xbarlife::xbar {

/// Splits a comma-separated endpoint list, trimming surrounding spaces.
/// Throws InvalidArgument on an empty list or an empty entry.
std::vector<std::string> split_endpoints(const std::string& address);

/// Highest-random-weight score of `key` against one endpoint slot. `slot`
/// is the occurrence index of `endpoint` within the list (0 for a unique
/// address): duplicates (three "loopback" workers) still spread load,
/// while a unique address scores the same wherever it sits in the list —
/// the property that makes membership changes move minimal load.
std::uint64_t rendezvous_score(std::uint64_t key, std::string_view endpoint,
                               std::size_t slot);

/// Endpoint indices in descending score order for `key`: element 0 is the
/// owner, the rest the deterministic failover order. Removing an endpoint
/// from the list leaves every other key's relative order intact (the
/// minimal-movement property of rendezvous hashing).
std::vector<std::size_t> rendezvous_order(
    std::uint64_t key, const std::vector<std::string>& endpoints);

/// Health state of one pool endpoint.
enum class CircuitState : std::uint8_t {
  kHealthy = 0,  ///< no outstanding failures
  kSuspect = 1,  ///< failing, but below the open threshold
  kOpen = 2,     ///< skipped by dispatch until the half-open probe is due
};

const char* to_string(CircuitState state);

/// Per-endpoint health state machine. Time-point driven (no internal
/// clock) so tests pin transitions without sleeping; not thread-safe —
/// the pool serializes access under its own mutex.
class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive failures before the circuit opens (the first failure
    /// always moves healthy -> suspect).
    int failure_threshold = 2;
    /// Half-open probe schedule: initial * 2^k, capped, with
    /// multiplicative jitter in [0.5, 1.0) from the seeded stream.
    std::chrono::milliseconds probe_backoff_initial{100};
    std::chrono::milliseconds probe_backoff_max{2000};
  };

  CircuitBreaker(const Config& config, Rng jitter);

  CircuitState state() const { return state_; }

  /// True when dispatch may target the endpoint: healthy and suspect
  /// circuits always, an open circuit only once its probe window is due
  /// (the half-open state).
  bool admits(std::chrono::steady_clock::time_point now) const {
    return state_ != CircuitState::kOpen || now >= probe_after_;
  }

  /// Any successful round trip fully re-admits the endpoint.
  void record_success();

  /// Records a failed attempt (or a failed half-open probe). Returns true
  /// exactly when this failure opened the circuit; an already-open
  /// circuit instead doubles its (capped, jittered) probe backoff.
  bool record_failure(std::chrono::steady_clock::time_point now);

  /// Times the circuit has opened over the breaker's lifetime.
  std::uint64_t opens() const { return opens_; }

  std::chrono::steady_clock::time_point probe_after() const {
    return probe_after_;
  }

 private:
  std::chrono::milliseconds jittered(std::chrono::milliseconds base);

  Config config_;
  Rng jitter_;
  CircuitState state_ = CircuitState::kHealthy;
  int consecutive_failures_ = 0;
  std::chrono::milliseconds probe_backoff_;
  std::chrono::steady_clock::time_point probe_after_{};
  std::uint64_t opens_ = 0;
};

/// The pool backend. Still named "remote" — the pool is a deployment
/// shape of the remote backend, not a different science — and built by
/// the executor registry whenever the remote address holds a comma.
class PoolExecutor final : public ProgramExecutor {
 public:
  /// `config.address` is the comma-separated endpoint list;
  /// `config.fault_spec` may be a ';'-separated per-endpoint list (see
  /// net::split_fault_specs). Endpoint executors inherit the remaining
  /// knobs with max_attempts pinned to 1 and fallback disabled: retry
  /// budget and degradation are pool-wide decisions.
  explicit PoolExecutor(RemoteConfig config);
  ~PoolExecutor() override;

  const char* name() const override { return "remote"; }
  ExecReport execute(Crossbar& xb, const ProgramSequence& seq) const override;

  /// True once at least one sequence exhausted the whole pool and fell
  /// back to local execution (or the pool was pinned).
  bool degraded() const override;
  bool pin_local_fallback() const override;

  /// Pool-aggregated link health: requests are logical sequences,
  /// retries count failed endpoint attempts that failed over, reconnects
  /// sum the endpoints' own reconnects, fallbacks count pool-wide
  /// exhaustions.
  RemoteLinkStats link_stats() const;

  /// Per-endpoint request/failover/circuit accounting for the
  /// `executor_pool` envelope stamp and `worker-status` fleet rendering.
  std::vector<PoolEndpointSummary> endpoint_summaries() const;

  std::size_t size() const { return endpoints_.size(); }
  const RemoteConfig& config() const { return config_; }
  const std::vector<std::string>& addresses() const { return addresses_; }

 private:
  struct Endpoint;

  void backoff_sleep(int round) const;
  ExecReport run_local(Crossbar& xb, const ProgramSequence& seq) const;
  /// Lazily creates per-endpoint telemetry in the registry installed via
  /// set_remote_metrics (no-op when detached).
  void count(std::size_t index, const char* suffix) const;
  void set_circuit_gauge(std::size_t index, CircuitState state) const;

  RemoteConfig config_;
  std::vector<std::string> addresses_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  mutable std::mutex mu_;  ///< circuits + stats; never held across I/O
  mutable RemoteLinkStats stats_;
  mutable bool degraded_ = false;
  mutable bool pinned_ = false;
  mutable Rng jitter_;
};

}  // namespace xbarlife::xbar
