#include "xbar/remote.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "common/version.hpp"
#include "net/wire.hpp"
#include "persist/state_io.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {

namespace {

/// v2 appends the telemetry fields (want_telemetry + trace context on the
/// request; has_telemetry + span tree + counter deltas on the response)
/// after the complete v1 layout, so the worker still accepts v1 requests
/// and answers them in v1 shape. v3 keeps the byte layout of v2 and
/// signals that the peer distinguishes replay-cache hits with the
/// kExecuteReplay frame type (a v2 client would skip that type and time
/// out, so the hello handshake gates on it).
constexpr std::uint8_t kRequestVersion = 3;
constexpr std::uint8_t kResponseVersion = 3;
constexpr std::uint8_t kStatsVersion = 1;
/// Wire encoding of obs::kNoSpan in a shipped span tree.
constexpr std::uint64_t kNoSpanWire = ~std::uint64_t{0};

/// Serialized size of one cell in Crossbar::save_state (4 f64 + 1 u64);
/// used to reject request geometries the shipped state cannot back.
constexpr std::uint64_t kStateBytesPerCell = 40;

void write_device_params(persist::StateWriter& w,
                         const device::DeviceParams& p) {
  w.f64(p.r_min_fresh);
  w.f64(p.r_max_fresh);
  w.u64(p.levels);
  w.f64(p.v_prog);
  w.f64(p.t_pulse_s);
  w.f64(p.temperature_k);
  w.f64(p.compliance_current_a);
}

device::DeviceParams read_device_params(persist::StateReader& r) {
  device::DeviceParams p;
  p.r_min_fresh = r.f64();
  p.r_max_fresh = r.f64();
  p.levels = static_cast<std::size_t>(r.u64());
  p.v_prog = r.f64();
  p.t_pulse_s = r.f64();
  p.temperature_k = r.f64();
  p.compliance_current_a = r.f64();
  return p;
}

void write_aging_params(persist::StateWriter& w, const aging::AgingParams& a) {
  w.f64(a.activation_energy_ev);
  w.f64(a.reference_temp_k);
  w.f64(a.reference_current_a);
  w.f64(a.current_exponent);
  w.f64(a.a_f);
  w.f64(a.m_f);
  w.f64(a.a_g);
  w.f64(a.m_g);
  w.f64(a.r_floor);
  w.f64(a.thermal_crosstalk);
}

aging::AgingParams read_aging_params(persist::StateReader& r) {
  aging::AgingParams a;
  a.activation_energy_ev = r.f64();
  a.reference_temp_k = r.f64();
  a.reference_current_a = r.f64();
  a.current_exponent = r.f64();
  a.a_f = r.f64();
  a.m_f = r.f64();
  a.a_g = r.f64();
  a.m_g = r.f64();
  a.r_floor = r.f64();
  a.thermal_crosstalk = r.f64();
  return a;
}

std::atomic<obs::Registry*> g_remote_metrics{nullptr};

/// fork_jitter_stream instance counter: every executor construction takes
/// the next stream index, decorrelating backoff schedules process-wide.
std::atomic<std::uint64_t> g_jitter_instances{0};

/// Versioned hello / hello-ack payload: both directions stamp the wire
/// version, the execute-request codec version, and the build string. An
/// empty payload is a legacy peer and is accepted as-is.
std::string hello_payload() {
  persist::StateWriter w;
  w.u8(net::kWireVersion);
  w.u8(kRequestVersion);
  w.str(kBuildVersion);
  return w.data();
}

/// Client-side hello-ack validation: rejects a worker that could not
/// parse the requests this build will send. Empty = legacy, accepted.
void check_hello_ack(std::string_view payload) {
  if (payload.empty()) {
    return;
  }
  std::uint8_t wire_v = 0;
  std::uint8_t req_v = 0;
  std::string build;
  try {
    persist::StateReader r(payload);
    wire_v = r.u8();
    req_v = r.u8();
    build = r.str();
  } catch (const Error&) {
    throw net::WireError("remote worker sent a malformed hello ack payload");
  }
  if (wire_v != net::kWireVersion || req_v < kRequestVersion) {
    throw net::WireError(
        "remote worker (build " + build + ") speaks wire v" +
        std::to_string(wire_v) + " / execute-request v" +
        std::to_string(req_v) + "; this client (build " +
        std::string(kBuildVersion) + ") needs wire v" +
        std::to_string(net::kWireVersion) + " and execute-request >= v" +
        std::to_string(kRequestVersion));
  }
}

}  // namespace

Rng fork_jitter_stream(std::uint64_t seed) {
  return Rng(seed).fork(
      g_jitter_instances.fetch_add(1, std::memory_order_relaxed));
}

void reset_jitter_instances_for_test() {
  g_jitter_instances.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Worker-side protocol handlers.

std::string encode_execute_request(const Crossbar& xb,
                                   const ProgramSequence& seq,
                                   bool want_telemetry,
                                   std::uint64_t trace_id,
                                   std::uint64_t span_id) {
  persist::StateWriter w;
  w.u8(kRequestVersion);
  w.u64(xb.rows());
  w.u64(xb.cols());
  write_device_params(w, xb.device_params());
  write_aging_params(w, xb.aging_model().params());
  const NonidealityConfig* cfg = xb.nonideality_config();
  w.boolean(cfg != nullptr);
  if (cfg != nullptr) {
    w.f64(cfg->write_noise_sigma);
    w.f64(cfg->read_noise_sigma);
    w.f64(cfg->stuck_off_fraction);
    w.f64(cfg->stuck_on_fraction);
    w.f64(cfg->line_resistance);
    w.u64(xb.nonideality_seed());
  }
  persist::StateWriter state;
  xb.save_state(state);
  w.str(state.data());
  seq.save_state(w);
  w.boolean(want_telemetry);
  w.u64(trace_id);
  w.u64(span_id);
  return w.data();
}

std::string execute_request(std::string_view payload) {
  persist::StateReader r(payload);
  const std::uint8_t version = r.u8();
  if (version < 1 || version > kRequestVersion) {
    throw InvalidArgument("remote execute request version " +
                          std::to_string(version) +
                          " is not supported (this worker speaks up to " +
                          std::to_string(kRequestVersion) + ")");
  }
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  const device::DeviceParams dev = read_device_params(r);
  const aging::AgingParams ag = read_aging_params(r);
  const bool has_nonideal = r.boolean();
  NonidealityConfig cfg;
  std::uint64_t nonideal_seed = 0;
  if (has_nonideal) {
    cfg.write_noise_sigma = r.f64();
    cfg.read_noise_sigma = r.f64();
    cfg.stuck_off_fraction = r.f64();
    cfg.stuck_on_fraction = r.f64();
    cfg.line_resistance = r.f64();
    nonideal_seed = r.u64();
  }
  const std::string state = r.str();
  // Geometry sanity before any allocation: the shipped state serializes
  // every cell at kStateBytesPerCell bytes, so a count the state cannot
  // back is corrupt (or hostile) and must not drive the array allocation.
  if (rows == 0 || cols == 0 ||
      rows > state.size() / kStateBytesPerCell ||
      cols > state.size() / kStateBytesPerCell ||
      rows * cols > state.size() / kStateBytesPerCell) {
    throw InvalidArgument(
        "remote execute request geometry " + std::to_string(rows) + "x" +
        std::to_string(cols) + " is not backed by its " +
        std::to_string(state.size()) + "-byte state payload");
  }
  const ProgramSequence seq = ProgramSequence::load_state(r);
  bool want_telemetry = false;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  if (version >= 2) {
    want_telemetry = r.boolean();
    trace_id = r.u64();
    span_id = r.u64();
  }
  if (!r.done()) {
    throw InvalidArgument("remote execute request has trailing bytes");
  }

  // Per-request telemetry: a private profiler + registry whose entire
  // contents ship back in the response. Span structure and counter values
  // are deterministic; only the wall-clock offsets/durations are not —
  // the same contract the client-side profile export already follows.
  obs::Profiler prof;
  obs::Registry reg;
  const std::size_t request_span =
      want_telemetry ? prof.begin_span("worker.request") : 0;
  const std::size_t rebuild_span =
      want_telemetry ? prof.begin_span("worker.rebuild") : 0;

  Crossbar xb(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
              dev, ag);
  if (has_nonideal) {
    xb.configure_nonideality(cfg, nonideal_seed);
  }
  persist::StateReader sr(state);
  xb.load_state(sr);
  if (!sr.done()) {
    throw InvalidArgument("remote execute request state has trailing bytes");
  }
  if (want_telemetry) {
    prof.end_span(rebuild_span);
  }

  obs::Counter pulses;
  obs::Counter traced;
  xb.attach_pulse_counters(&pulses, &traced);
  if (want_telemetry) {
    xb.attach_executor_counters(&reg.counter("executor.sequences"),
                                &reg.counter("executor.column_batches"));
  }
  const std::size_t execute_span =
      want_telemetry ? prof.begin_span("worker.execute") : 0;
  const ExecReport report = SimExecutor{}.execute(xb, seq);
  if (want_telemetry) {
    prof.add_counter("aging.pulses", pulses.value());
    prof.add_counter("aging.traced_pulses", traced.value());
    prof.end_span(execute_span);
    reg.counter("aging.pulses").add(pulses.value());
    reg.counter("aging.traced_pulses").add(traced.value());
  }

  const std::size_t serialize_span =
      want_telemetry ? prof.begin_span("worker.serialize") : 0;
  persist::StateWriter w;
  w.u8(version);  // answer in the request's codec version
  w.u64(pulses.value());
  w.u64(traced.value());
  w.u64(report.results.size());
  for (const double v : report.results) {
    w.f64(v);
  }
  persist::StateWriter state_out;
  xb.save_state(state_out);
  w.str(state_out.data());
  if (want_telemetry) {
    // Close the whole tree before encoding it; the telemetry encoding
    // itself is the only work the spans cannot cover.
    prof.end_span(serialize_span);
    prof.end_span(request_span);
  }
  if (version >= 2) {
    w.boolean(want_telemetry);
    if (want_telemetry) {
      w.u64(trace_id);
      w.u64(span_id);
      const auto& records = prof.records();
      w.u64(records.size());
      for (const obs::SpanRecord& rec : records) {
        w.str(rec.name);
        w.u64(rec.parent == obs::kNoSpan ? kNoSpanWire
                                         : static_cast<std::uint64_t>(
                                               rec.parent));
        w.f64(std::chrono::duration<double, std::milli>(rec.start -
                                                        prof.epoch())
                  .count());
        w.f64(rec.dur_ms);
        w.u64(rec.counters.size());
        for (const auto& [cname, cvalue] : rec.counters) {
          w.str(cname);
          w.u64(cvalue);
        }
      }
      std::vector<std::pair<std::string, std::uint64_t>> deltas;
      reg.visit_counters([&deltas](const std::string& name,
                                   std::uint64_t value) {
        deltas.emplace_back(name, value);
      });
      w.u64(deltas.size());
      for (const auto& [dname, dvalue] : deltas) {
        w.str(dname);
        w.u64(dvalue);
      }
    }
  }
  return w.data();
}

ExecuteResponse decode_execute_response(std::string_view payload) {
  persist::StateReader r(payload);
  const std::uint8_t version = r.u8();
  if (version < 1 || version > kResponseVersion) {
    throw InvalidArgument("remote execute response version " +
                          std::to_string(version) + " is not supported");
  }
  ExecuteResponse resp;
  resp.pulses = r.u64();
  resp.traced_pulses = r.u64();
  const std::size_t n = r.array_count(8);
  resp.results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    resp.results.push_back(r.f64());
  }
  resp.crossbar_state = r.str();
  if (version >= 2) {
    resp.has_telemetry = r.boolean();
    if (resp.has_telemetry) {
      resp.trace_id = r.u64();
      resp.span_id = r.u64();
      // Minimum bytes per span: name len (8) + parent (8) + two f64 (16)
      // + counter count (8); per counter: name len (8) + value (8).
      const std::size_t span_count = r.array_count(40);
      resp.spans.reserve(span_count);
      for (std::size_t i = 0; i < span_count; ++i) {
        obs::Profiler::RemoteSpan span;
        span.name = r.str();
        const std::uint64_t parent = r.u64();
        span.parent = parent == kNoSpanWire
                          ? obs::kNoSpan
                          : static_cast<std::size_t>(parent);
        span.start_offset_ms = r.f64();
        span.dur_ms = r.f64();
        const std::size_t counter_count = r.array_count(16);
        span.counters.reserve(counter_count);
        for (std::size_t c = 0; c < counter_count; ++c) {
          std::string cname = r.str();
          const std::uint64_t cvalue = r.u64();
          span.counters.emplace_back(std::move(cname), cvalue);
        }
        resp.spans.push_back(std::move(span));
      }
      const std::size_t delta_count = r.array_count(16);
      resp.counter_deltas.reserve(delta_count);
      for (std::size_t i = 0; i < delta_count; ++i) {
        std::string dname = r.str();
        const std::uint64_t dvalue = r.u64();
        resp.counter_deltas.emplace_back(std::move(dname), dvalue);
      }
    }
  }
  if (!r.done()) {
    throw InvalidArgument("remote execute response has trailing bytes");
  }
  return resp;
}

std::string WorkerStatsState::encode_snapshot() const {
  const std::uint64_t uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  persist::StateWriter w;
  w.u8(kStatsVersion);
  w.str(kBuildVersion);
  w.u8(net::kWireVersion);
  w.u8(kRequestVersion);
  w.u64(uptime_ms);
  w.u64(requests_served.load(std::memory_order_relaxed));
  w.u64(replay_hits.load(std::memory_order_relaxed));
  w.u64(errors.load(std::memory_order_relaxed));
  w.u64(active_connections.load(std::memory_order_relaxed));
  w.u64(connections_total.load(std::memory_order_relaxed));
  // The registry travels pre-rendered: the client splices the JSON dump
  // verbatim (JsonValue::raw) instead of re-parsing metric structures.
  w.str(metrics.to_json().dump());
  return w.data();
}

WorkerStatsSnapshot decode_worker_stats(std::string_view payload) {
  persist::StateReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kStatsVersion) {
    throw InvalidArgument("worker stats snapshot version " +
                          std::to_string(version) + " is not supported");
  }
  WorkerStatsSnapshot snap;
  snap.build = r.str();
  snap.wire_version = r.u8();
  snap.request_version = r.u8();
  snap.uptime_ms = r.u64();
  snap.requests_served = r.u64();
  snap.replay_hits = r.u64();
  snap.errors = r.u64();
  snap.active_connections = r.u64();
  snap.connections_total = r.u64();
  snap.metrics_json = r.str();
  if (!r.done()) {
    throw InvalidArgument("worker stats snapshot has trailing bytes");
  }
  return snap;
}

obs::JsonValue WorkerStatsSnapshot::to_json(std::string_view endpoint) const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", "xbarlife.workerstats.v1");
  if (!endpoint.empty()) {
    doc.set("endpoint", endpoint);
  }
  doc.set("build", build);
  doc.set("wire_version", wire_version);
  doc.set("request_version", request_version);
  doc.set("uptime_ms", uptime_ms);
  doc.set("requests_served", requests_served);
  doc.set("replay_hits", replay_hits);
  doc.set("errors", errors);
  doc.set("active_connections", active_connections);
  doc.set("connections_total", connections_total);
  doc.set("metrics", obs::JsonValue::raw(metrics_json));
  return doc;
}

namespace {

/// Bumps connection gauges for the lifetime of one served connection.
struct ConnectionScope {
  WorkerStatsState* stats;
  explicit ConnectionScope(WorkerStatsState* s) : stats(s) {
    if (stats != nullptr) {
      stats->connections_total.fetch_add(1, std::memory_order_relaxed);
      stats->active_connections.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~ConnectionScope() {
    if (stats != nullptr) {
      stats->active_connections.fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace

bool serve_connection(net::Transport& t, const ServeOptions& opts) {
  // Worker-side frames count into the worker's stats registry (or
  // nowhere) — never into the process-default registry, which on a
  // loopback link belongs to the client and would double-count.
  net::WireMetricsScope wire_scope(
      opts.stats != nullptr ? &opts.stats->metrics : nullptr);
  ConnectionScope connection_scope(opts.stats);
  // One-deep idempotent-replay cache: clients retry strictly their most
  // recent request id, so caching the last response suffices to answer a
  // replayed id without re-executing.
  std::uint64_t cached_id = 0;
  std::string cached_response;
  bool has_cached = false;
  for (;;) {
    if ((opts.stop != nullptr &&
         opts.stop->load(std::memory_order_relaxed)) ||
        (opts.honor_shutdown_flag && shutdown_requested())) {
      return false;
    }
    net::Frame frame;
    try {
      frame = net::read_frame(t, opts.idle_poll);
    } catch (const net::TransportTimeout&) {
      continue;  // idle: loop back to the stop-flag checks
    } catch (const net::TransportError&) {
      return false;  // peer gone or stream desynced (WireError)
    }
    try {
      switch (frame.type) {
        case net::MsgType::kHello: {
          // An empty payload is a legacy client: accepted, acked with our
          // versions so IT can decide. A versioned payload is rejected
          // only when this worker could not parse what the client will
          // send (different wire version or a newer request codec).
          std::string mismatch;
          if (!frame.payload.empty()) {
            try {
              persist::StateReader hr(frame.payload);
              const std::uint8_t wire_v = hr.u8();
              const std::uint8_t req_v = hr.u8();
              const std::string build = hr.str();
              if (wire_v != net::kWireVersion || req_v > kRequestVersion) {
                mismatch =
                    "protocol mismatch: client (build " + build +
                    ") speaks wire v" + std::to_string(wire_v) +
                    " / execute-request v" + std::to_string(req_v) +
                    "; this worker (build " + std::string(kBuildVersion) +
                    ") speaks wire v" + std::to_string(net::kWireVersion) +
                    " and execute-request <= v" +
                    std::to_string(kRequestVersion);
              }
            } catch (const Error&) {
              mismatch = "malformed hello payload";
            }
          }
          if (!mismatch.empty()) {
            if (opts.stats != nullptr) {
              opts.stats->errors.fetch_add(1, std::memory_order_relaxed);
            }
            persist::StateWriter w;
            w.str(mismatch);
            net::write_frame(t, net::MsgType::kError, frame.seq_id,
                             w.data());
            break;
          }
          net::write_frame(t, net::MsgType::kHelloAck, frame.seq_id,
                           hello_payload());
          break;
        }
        case net::MsgType::kHeartbeat: {
          // With stats attached the ack stamps uptime + protocol
          // versions; legacy clients simply ignore the payload.
          persist::StateWriter w;
          if (opts.stats != nullptr) {
            w.u64(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - opts.stats->started)
                    .count()));
            w.u8(net::kWireVersion);
            w.u8(kRequestVersion);
          }
          net::write_frame(t, net::MsgType::kHeartbeatAck, frame.seq_id,
                           w.data());
          break;
        }
        case net::MsgType::kExecute: {
          if (has_cached && frame.seq_id == cached_id) {
            // A replay is not fresh work: it answers with the cached bytes
            // under the kExecuteReplay type and counts only into the
            // replay-side accounting (replay_hits + worker.replay_served),
            // never into requests_served — so client and worker totals
            // reconcile instead of double-counting retried sequences.
            if (opts.stats != nullptr) {
              opts.stats->replay_hits.fetch_add(1,
                                                std::memory_order_relaxed);
              opts.stats->metrics.counter("worker.replay_served").add(1);
            }
            net::write_frame(t, net::MsgType::kExecuteReplay, frame.seq_id,
                             cached_response);
            break;
          }
          {
            const auto started = std::chrono::steady_clock::now();
            try {
              cached_response = execute_request(frame.payload);
              cached_id = frame.seq_id;
              has_cached = true;
            } catch (const Error& e) {
              if (opts.stats != nullptr) {
                opts.stats->errors.fetch_add(1, std::memory_order_relaxed);
              }
              persist::StateWriter w;
              w.str(e.what());
              net::write_frame(t, net::MsgType::kError, frame.seq_id,
                               w.data());
              break;
            }
            if (opts.stats != nullptr) {
              opts.stats->requests_served.fetch_add(
                  1, std::memory_order_relaxed);
              opts.stats->metrics.bucketed_histogram("worker.request_ms")
                  .observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - started)
                               .count());
            }
          }
          net::write_frame(t, net::MsgType::kExecuteResult, frame.seq_id,
                           cached_response);
          break;
        }
        case net::MsgType::kStats: {
          if (opts.stats == nullptr) {
            persist::StateWriter w;
            w.str("worker stats are not enabled on this endpoint");
            net::write_frame(t, net::MsgType::kError, frame.seq_id,
                             w.data());
          } else {
            net::write_frame(t, net::MsgType::kStatsAck, frame.seq_id,
                             opts.stats->encode_snapshot());
          }
          break;
        }
        case net::MsgType::kShutdown:
          return true;
        default:
          break;  // acks/errors from a confused peer: ignore
      }
    } catch (const net::TransportError&) {
      return false;
    }
  }
}

// ---------------------------------------------------------------------------
// LoopbackWorker.

LoopbackWorker::LoopbackWorker(const net::FaultPlan& plan) : plan_(plan) {}

LoopbackWorker::~LoopbackWorker() { stop(); }

std::unique_ptr<net::Transport> LoopbackWorker::connect() {
  auto [client, server] = net::make_pipe();
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_.load(std::memory_order_relaxed)) {
    throw net::TransportError("loopback worker is stopped");
  }
  // Odd fault streams for the worker->client direction; the client wraps
  // its own end with the even streams, so the two directions of every
  // connection draw independent deterministic schedules.
  const std::uint64_t stream = 2 * connections_ + 1;
  ++connections_;
  std::shared_ptr<net::Transport> served =
      net::maybe_wrap_faulty(std::move(server), plan_, stream);
  threads_.emplace_back([this, served = std::move(served)] {
    ServeOptions opts;
    opts.idle_poll = std::chrono::milliseconds(50);
    opts.stop = &stop_;
    opts.stats = &stats_;
    // The process-wide shutdown flag is handled by the client between
    // retries; the loopback thread must stay alive to serve the sequence
    // in flight so an interrupted run still checkpoints consistently.
    opts.honor_shutdown_flag = false;
    serve_connection(*served, opts);
    served->close();
  });
  return std::move(client);
}

void LoopbackWorker::stop() {
  stop_.store(true, std::memory_order_relaxed);
  std::vector<std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(threads_);
  }
  for (std::thread& t : drained) {
    t.join();
  }
}

// ---------------------------------------------------------------------------
// RemoteExecutor.

struct RemoteExecutor::Link {
  std::unique_ptr<net::Transport> transport;
};

RemoteExecutor::RemoteExecutor(RemoteConfig config)
    : config_(std::move(config)),
      fault_plan_(net::FaultPlan::parse(config_.fault_spec)),
      jitter_(fork_jitter_stream(config_.jitter_seed)) {
  if (config_.max_attempts < 1) {
    throw InvalidArgument("remote executor: max_attempts must be >= 1");
  }
}

RemoteExecutor::~RemoteExecutor() {
  drop_connection();
  loopback_.reset();
}

void RemoteExecutor::count(const char* name, std::uint64_t delta) const {
  obs::Registry* reg = g_remote_metrics.load(std::memory_order_acquire);
  if (reg != nullptr) {
    reg->counter(config_.metric_prefix + "." + name).add(delta);
  }
}

void RemoteExecutor::ensure_connected(std::unique_lock<std::mutex>&) const {
  if (link_ != nullptr) {
    return;
  }
  std::unique_ptr<net::Transport> t;
  if (config_.address == "loopback") {
    if (loopback_ == nullptr) {
      loopback_ = std::make_unique<LoopbackWorker>(fault_plan_);
    }
    t = loopback_->connect();
  } else {
    t = net::dial(config_.address, config_.dial_timeout);
  }
  t = net::maybe_wrap_faulty(std::move(t), fault_plan_, 2 * connections_);
  if (connections_ > 0) {
    ++stats_.reconnects;
    count("reconnects");
  }
  ++connections_;
  link_ = std::make_unique<Link>(std::move(t));
  // Hello handshake: prove the peer speaks xbarlife.wire.v1 — and a
  // compatible execute-request codec — before shipping a full-state
  // request. Both sides stamp their versions; see check_hello_ack.
  const std::uint64_t id = ++next_seq_;
  net::write_frame(*link_->transport, net::MsgType::kHello, id,
                   hello_payload());
  const net::Frame ack = read_matching(
      net::MsgType::kHelloAck, id,
      std::chrono::steady_clock::now() + config_.request_deadline);
  if (ack.type == net::MsgType::kError) {
    persist::StateReader er(ack.payload);
    throw net::WireError("remote worker refused the handshake: " + er.str());
  }
  check_hello_ack(ack.payload);
}

void RemoteExecutor::drop_connection() const {
  if (link_ != nullptr) {
    link_->transport->close();
    link_.reset();
  }
}

net::Frame RemoteExecutor::read_matching(
    net::MsgType want, std::uint64_t want_id,
    std::chrono::steady_clock::time_point deadline) const {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw net::TransportTimeout(
          "remote executor: no response within the request deadline");
    }
    net::Frame frame = net::read_frame(*link_->transport, left);
    if (frame.seq_id != want_id) {
      continue;  // stale frame: a duplicated or late earlier response
    }
    if (frame.type == want || frame.type == net::MsgType::kError ||
        (want == net::MsgType::kExecuteResult &&
         frame.type == net::MsgType::kExecuteReplay)) {
      // A kExecuteReplay satisfies a kExecuteResult wait: same payload,
      // distinct type so the caller can account it as a replay.
      return frame;
    }
    // Matching id but unexpected type: a protocol-confused peer; skip.
  }
}

bool RemoteExecutor::probe_liveness() const {
  if (link_ == nullptr) {
    return false;
  }
  try {
    const std::uint64_t id = ++next_seq_;
    net::write_frame(*link_->transport, net::MsgType::kHeartbeat, id);
    const auto probe_deadline =
        std::chrono::steady_clock::now() +
        std::min(config_.request_deadline, std::chrono::milliseconds(250));
    read_matching(net::MsgType::kHeartbeatAck, id, probe_deadline);
    return true;
  } catch (const net::TransportError&) {
    return false;
  }
}

void RemoteExecutor::backoff_sleep(int attempt) const {
  // Exponential base capped at backoff_max, jittered by a factor in
  // [0.5, 1.0) so a fleet of clients does not retry in lockstep. The
  // sleep runs in small slices polling the cooperative shutdown flag, so
  // SIGINT never hangs in a backoff.
  std::chrono::milliseconds base = config_.backoff_initial;
  for (int i = 1; i < attempt && base < config_.backoff_max; ++i) {
    base *= 2;
  }
  base = std::min(base, config_.backoff_max);
  const double factor = 0.5 + 0.5 * jitter_.uniform();
  auto remaining = std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * factor));
  constexpr std::chrono::milliseconds kSlice{10};
  while (remaining.count() > 0) {
    if (shutdown_requested()) {
      throw InterruptedError(
          "shutdown requested during remote executor retry backoff");
    }
    const auto nap = std::min(remaining, kSlice);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
}

ExecReport RemoteExecutor::run_local(Crossbar& xb,
                                     const ProgramSequence& seq) const {
  return SimExecutor{}.execute(xb, seq);
}

ExecReport RemoteExecutor::execute(Crossbar& xb,
                                   const ProgramSequence& seq) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (pinned_) {
    return run_local(xb, seq);
  }
  ++stats_.requests;
  // With a profiler attached the request carries a trace context and asks
  // the worker to profile itself; the worker's span tree grafts under
  // this client-side span so one --profile run shows client wait vs.
  // worker rebuild/execute/serialize. The RAII guard closes the span on
  // every exit path, the fallback and error paths included.
  obs::Profiler* profiler = xb.profiler();
  struct SpanGuard {
    obs::Profiler* profiler;
    std::size_t index = 0;
    SpanGuard(obs::Profiler* p, const std::string& name) : profiler(p) {
      if (profiler != nullptr) {
        index = profiler->begin_span(name + ".execute");
      }
    }
    ~SpanGuard() {
      if (profiler != nullptr) {
        profiler->end_span(index);
      }
    }
  } span_guard(profiler, config_.span_prefix.empty() ? config_.metric_prefix
                                                     : config_.span_prefix);
  const bool want_telemetry = profiler != nullptr;
  // One id per logical request across all its retries: the replay key
  // (and, with telemetry, the trace id the worker echoes back).
  const std::uint64_t id = ++next_seq_;
  const std::string payload = encode_execute_request(
      xb, seq, want_telemetry, id,
      want_telemetry ? static_cast<std::uint64_t>(span_guard.index) : 0);
  bool timed_out_on_live_link = false;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    // Cooperative shutdown is honored between retries (backoff_sleep
    // polls the flag), never before a healthy first attempt: a requested
    // shutdown must not strand an in-progress session that a working
    // link would complete — checkpointing loops handle the flag at their
    // own snapshot boundaries.
    if (attempt > 0) {
      ++stats_.retries;
      count("retries");
      backoff_sleep(attempt);
    }
    try {
      ensure_connected(lock);
      if (timed_out_on_live_link && !probe_liveness()) {
        // The link swallowed a request or response; prove liveness before
        // re-shipping the (large) request, reconnecting if the probe dies.
        drop_connection();
        ensure_connected(lock);
      }
      timed_out_on_live_link = false;
      const auto sent_at = std::chrono::steady_clock::now();
      net::write_frame(*link_->transport, net::MsgType::kExecute, id,
                       payload);
      const net::Frame frame = read_matching(
          net::MsgType::kExecuteResult, id,
          sent_at + config_.request_deadline);
      if (frame.type == net::MsgType::kError) {
        persist::StateReader er(frame.payload);
        throw RemoteWorkerError("remote worker rejected the request: " +
                                er.str());
      }
      ExecuteResponse resp = decode_execute_response(frame.payload);
      // Fresh work and replay-cache hits account separately on both
      // sides of the wire (the worker marks hits with kExecuteReplay),
      // so <prefix>.requests only ever counts sequences the worker
      // actually executed and totals reconcile with worker-status.
      count(frame.type == net::MsgType::kExecuteReplay ? "replay_served"
                                                       : "requests");
      if (obs::Registry* reg =
              g_remote_metrics.load(std::memory_order_acquire)) {
        reg->bucketed_histogram(config_.metric_prefix + ".request_ms")
            .observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - sent_at)
                         .count());
      }
      persist::StateReader sr(resp.crossbar_state);
      xb.load_state(sr);
      xb.credit_pulse_counters(resp.pulses, resp.traced_pulses);
      if (profiler != nullptr && resp.has_telemetry && resp.trace_id == id) {
        // Exactly one graft per logical request: only the one successful
        // decode reaches here, a replay-cache hit returns the original
        // telemetry, and the degraded fallback path ships none.
        profiler->graft(resp.spans, sent_at);
        if (obs::Registry* reg =
                g_remote_metrics.load(std::memory_order_acquire)) {
          for (const auto& [name, value] : resp.counter_deltas) {
            // Namespaced: the client already credits pulse counters from
            // the response, so the raw names would double-count.
            reg->counter("worker." + name).add(value);
          }
        }
      }
      ExecReport report;
      report.results = std::move(resp.results);
      report.stats = seq.stats();
      xb.note_sequence_executed(report.stats);
      return report;
    } catch (const net::TransportTimeout&) {
      timed_out_on_live_link = true;
    } catch (const net::TransportError&) {
      drop_connection();
      timed_out_on_live_link = false;
    }
  }
  drop_connection();
  if (!config_.fallback_to_sim) {
    throw net::TransportError(
        "remote executor: worker at '" + config_.address +
        "' unreachable after " + std::to_string(config_.max_attempts) +
        " attempt(s) and local fallback is disabled");
  }
  // Graceful degradation: the request never mutated local state (every
  // attempt shipped the same pre-state), so executing locally now yields
  // exactly what a successful remote run would have.
  degraded_ = true;
  ++stats_.fallbacks;
  count("fallbacks");
  return run_local(xb, seq);
}

bool RemoteExecutor::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

bool RemoteExecutor::pin_local_fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_) {
    return false;
  }
  pinned_ = true;
  degraded_ = true;
  return true;
}

RemoteLinkStats RemoteExecutor::link_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool RemoteExecutor::probe() const {
  std::unique_lock<std::mutex> lock(mu_);
  try {
    ensure_connected(lock);
  } catch (const net::TransportError&) {
    drop_connection();
    return false;
  }
  if (!probe_liveness()) {
    drop_connection();
    return false;
  }
  return true;
}

WorkerStatsSnapshot query_worker_status(const RemoteConfig& config) {
  std::unique_ptr<LoopbackWorker> loopback;
  std::unique_ptr<net::Transport> t;
  if (config.address == "loopback") {
    loopback = std::make_unique<LoopbackWorker>(
        net::FaultPlan::parse(config.fault_spec));
    t = loopback->connect();
  } else {
    t = net::dial(config.address, config.dial_timeout);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + config.request_deadline;
  std::uint64_t next_id = 0;
  const auto read_matching = [&](net::MsgType want,
                                 std::uint64_t want_id) -> net::Frame {
    for (;;) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw net::TransportTimeout(
            "worker status: no response within the request deadline");
      }
      net::Frame frame = net::read_frame(*t, left);
      if (frame.seq_id != want_id) {
        continue;
      }
      if (frame.type == want || frame.type == net::MsgType::kError) {
        return frame;
      }
    }
  };
  std::uint64_t id = ++next_id;
  net::write_frame(*t, net::MsgType::kHello, id, hello_payload());
  const net::Frame ack = read_matching(net::MsgType::kHelloAck, id);
  if (ack.type == net::MsgType::kError) {
    persist::StateReader er(ack.payload);
    throw net::WireError("remote worker refused the handshake: " + er.str());
  }
  check_hello_ack(ack.payload);
  id = ++next_id;
  net::write_frame(*t, net::MsgType::kStats, id);
  const net::Frame stats = read_matching(net::MsgType::kStatsAck, id);
  if (stats.type == net::MsgType::kError) {
    persist::StateReader er(stats.payload);
    throw net::WireError("remote worker cannot answer a stats request: " +
                         er.str());
  }
  WorkerStatsSnapshot snap = decode_worker_stats(stats.payload);
  t->close();
  return snap;
}

void set_remote_metrics(obs::Registry* registry) {
  g_remote_metrics.store(registry, std::memory_order_release);
}

obs::Registry* remote_metrics_registry() {
  return g_remote_metrics.load(std::memory_order_acquire);
}

}  // namespace xbarlife::xbar
