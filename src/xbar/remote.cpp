#include "xbar/remote.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/shutdown.hpp"
#include "net/wire.hpp"
#include "persist/state_io.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::xbar {

namespace {

constexpr std::uint8_t kRequestVersion = 1;
constexpr std::uint8_t kResponseVersion = 1;

/// Serialized size of one cell in Crossbar::save_state (4 f64 + 1 u64);
/// used to reject request geometries the shipped state cannot back.
constexpr std::uint64_t kStateBytesPerCell = 40;

void write_device_params(persist::StateWriter& w,
                         const device::DeviceParams& p) {
  w.f64(p.r_min_fresh);
  w.f64(p.r_max_fresh);
  w.u64(p.levels);
  w.f64(p.v_prog);
  w.f64(p.t_pulse_s);
  w.f64(p.temperature_k);
  w.f64(p.compliance_current_a);
}

device::DeviceParams read_device_params(persist::StateReader& r) {
  device::DeviceParams p;
  p.r_min_fresh = r.f64();
  p.r_max_fresh = r.f64();
  p.levels = static_cast<std::size_t>(r.u64());
  p.v_prog = r.f64();
  p.t_pulse_s = r.f64();
  p.temperature_k = r.f64();
  p.compliance_current_a = r.f64();
  return p;
}

void write_aging_params(persist::StateWriter& w, const aging::AgingParams& a) {
  w.f64(a.activation_energy_ev);
  w.f64(a.reference_temp_k);
  w.f64(a.reference_current_a);
  w.f64(a.current_exponent);
  w.f64(a.a_f);
  w.f64(a.m_f);
  w.f64(a.a_g);
  w.f64(a.m_g);
  w.f64(a.r_floor);
  w.f64(a.thermal_crosstalk);
}

aging::AgingParams read_aging_params(persist::StateReader& r) {
  aging::AgingParams a;
  a.activation_energy_ev = r.f64();
  a.reference_temp_k = r.f64();
  a.reference_current_a = r.f64();
  a.current_exponent = r.f64();
  a.a_f = r.f64();
  a.m_f = r.f64();
  a.a_g = r.f64();
  a.m_g = r.f64();
  a.r_floor = r.f64();
  a.thermal_crosstalk = r.f64();
  return a;
}

std::atomic<obs::Registry*> g_remote_metrics{nullptr};

}  // namespace

// ---------------------------------------------------------------------------
// Worker-side protocol handlers.

std::string encode_execute_request(const Crossbar& xb,
                                   const ProgramSequence& seq) {
  persist::StateWriter w;
  w.u8(kRequestVersion);
  w.u64(xb.rows());
  w.u64(xb.cols());
  write_device_params(w, xb.device_params());
  write_aging_params(w, xb.aging_model().params());
  const NonidealityConfig* cfg = xb.nonideality_config();
  w.boolean(cfg != nullptr);
  if (cfg != nullptr) {
    w.f64(cfg->write_noise_sigma);
    w.f64(cfg->read_noise_sigma);
    w.f64(cfg->stuck_off_fraction);
    w.f64(cfg->stuck_on_fraction);
    w.f64(cfg->line_resistance);
    w.u64(xb.nonideality_seed());
  }
  persist::StateWriter state;
  xb.save_state(state);
  w.str(state.data());
  seq.save_state(w);
  return w.data();
}

std::string execute_request(std::string_view payload) {
  persist::StateReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kRequestVersion) {
    throw InvalidArgument("remote execute request version " +
                          std::to_string(version) +
                          " is not supported (this worker speaks " +
                          std::to_string(kRequestVersion) + ")");
  }
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  const device::DeviceParams dev = read_device_params(r);
  const aging::AgingParams ag = read_aging_params(r);
  const bool has_nonideal = r.boolean();
  NonidealityConfig cfg;
  std::uint64_t nonideal_seed = 0;
  if (has_nonideal) {
    cfg.write_noise_sigma = r.f64();
    cfg.read_noise_sigma = r.f64();
    cfg.stuck_off_fraction = r.f64();
    cfg.stuck_on_fraction = r.f64();
    cfg.line_resistance = r.f64();
    nonideal_seed = r.u64();
  }
  const std::string state = r.str();
  // Geometry sanity before any allocation: the shipped state serializes
  // every cell at kStateBytesPerCell bytes, so a count the state cannot
  // back is corrupt (or hostile) and must not drive the array allocation.
  if (rows == 0 || cols == 0 ||
      rows > state.size() / kStateBytesPerCell ||
      cols > state.size() / kStateBytesPerCell ||
      rows * cols > state.size() / kStateBytesPerCell) {
    throw InvalidArgument(
        "remote execute request geometry " + std::to_string(rows) + "x" +
        std::to_string(cols) + " is not backed by its " +
        std::to_string(state.size()) + "-byte state payload");
  }
  const ProgramSequence seq = ProgramSequence::load_state(r);
  if (!r.done()) {
    throw InvalidArgument("remote execute request has trailing bytes");
  }

  Crossbar xb(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
              dev, ag);
  if (has_nonideal) {
    xb.configure_nonideality(cfg, nonideal_seed);
  }
  persist::StateReader sr(state);
  xb.load_state(sr);
  if (!sr.done()) {
    throw InvalidArgument("remote execute request state has trailing bytes");
  }

  obs::Counter pulses;
  obs::Counter traced;
  xb.attach_pulse_counters(&pulses, &traced);
  const ExecReport report = SimExecutor{}.execute(xb, seq);

  persist::StateWriter w;
  w.u8(kResponseVersion);
  w.u64(pulses.value());
  w.u64(traced.value());
  w.u64(report.results.size());
  for (const double v : report.results) {
    w.f64(v);
  }
  persist::StateWriter state_out;
  xb.save_state(state_out);
  w.str(state_out.data());
  return w.data();
}

ExecuteResponse decode_execute_response(std::string_view payload) {
  persist::StateReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kResponseVersion) {
    throw InvalidArgument("remote execute response version " +
                          std::to_string(version) + " is not supported");
  }
  ExecuteResponse resp;
  resp.pulses = r.u64();
  resp.traced_pulses = r.u64();
  const std::size_t n = r.array_count(8);
  resp.results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    resp.results.push_back(r.f64());
  }
  resp.crossbar_state = r.str();
  if (!r.done()) {
    throw InvalidArgument("remote execute response has trailing bytes");
  }
  return resp;
}

bool serve_connection(net::Transport& t, const ServeOptions& opts) {
  // One-deep idempotent-replay cache: clients retry strictly their most
  // recent request id, so caching the last response suffices to answer a
  // replayed id without re-executing.
  std::uint64_t cached_id = 0;
  std::string cached_response;
  bool has_cached = false;
  for (;;) {
    if ((opts.stop != nullptr &&
         opts.stop->load(std::memory_order_relaxed)) ||
        (opts.honor_shutdown_flag && shutdown_requested())) {
      return false;
    }
    net::Frame frame;
    try {
      frame = net::read_frame(t, opts.idle_poll);
    } catch (const net::TransportTimeout&) {
      continue;  // idle: loop back to the stop-flag checks
    } catch (const net::TransportError&) {
      return false;  // peer gone or stream desynced (WireError)
    }
    try {
      switch (frame.type) {
        case net::MsgType::kHello:
          net::write_frame(t, net::MsgType::kHelloAck, frame.seq_id);
          break;
        case net::MsgType::kHeartbeat:
          net::write_frame(t, net::MsgType::kHeartbeatAck, frame.seq_id);
          break;
        case net::MsgType::kExecute: {
          if (!has_cached || frame.seq_id != cached_id) {
            try {
              cached_response = execute_request(frame.payload);
              cached_id = frame.seq_id;
              has_cached = true;
            } catch (const Error& e) {
              persist::StateWriter w;
              w.str(e.what());
              net::write_frame(t, net::MsgType::kError, frame.seq_id,
                               w.data());
              break;
            }
          }
          net::write_frame(t, net::MsgType::kExecuteResult, frame.seq_id,
                           cached_response);
          break;
        }
        case net::MsgType::kShutdown:
          return true;
        default:
          break;  // acks/errors from a confused peer: ignore
      }
    } catch (const net::TransportError&) {
      return false;
    }
  }
}

// ---------------------------------------------------------------------------
// LoopbackWorker.

LoopbackWorker::LoopbackWorker(const net::FaultPlan& plan) : plan_(plan) {}

LoopbackWorker::~LoopbackWorker() { stop(); }

std::unique_ptr<net::Transport> LoopbackWorker::connect() {
  auto [client, server] = net::make_pipe();
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_.load(std::memory_order_relaxed)) {
    throw net::TransportError("loopback worker is stopped");
  }
  // Odd fault streams for the worker->client direction; the client wraps
  // its own end with the even streams, so the two directions of every
  // connection draw independent deterministic schedules.
  const std::uint64_t stream = 2 * connections_ + 1;
  ++connections_;
  std::shared_ptr<net::Transport> served =
      net::maybe_wrap_faulty(std::move(server), plan_, stream);
  threads_.emplace_back([this, served = std::move(served)] {
    ServeOptions opts;
    opts.idle_poll = std::chrono::milliseconds(50);
    opts.stop = &stop_;
    // The process-wide shutdown flag is handled by the client between
    // retries; the loopback thread must stay alive to serve the sequence
    // in flight so an interrupted run still checkpoints consistently.
    opts.honor_shutdown_flag = false;
    serve_connection(*served, opts);
    served->close();
  });
  return std::move(client);
}

void LoopbackWorker::stop() {
  stop_.store(true, std::memory_order_relaxed);
  std::vector<std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(threads_);
  }
  for (std::thread& t : drained) {
    t.join();
  }
}

// ---------------------------------------------------------------------------
// RemoteExecutor.

struct RemoteExecutor::Link {
  std::unique_ptr<net::Transport> transport;
};

RemoteExecutor::RemoteExecutor(RemoteConfig config)
    : config_(std::move(config)),
      fault_plan_(net::FaultPlan::parse(config_.fault_spec)),
      jitter_(config_.jitter_seed) {
  if (config_.max_attempts < 1) {
    throw InvalidArgument("remote executor: max_attempts must be >= 1");
  }
}

RemoteExecutor::~RemoteExecutor() {
  drop_connection();
  loopback_.reset();
}

void RemoteExecutor::count(const char* name, std::uint64_t delta) const {
  obs::Registry* reg = g_remote_metrics.load(std::memory_order_acquire);
  if (reg != nullptr) {
    reg->counter(name).add(delta);
  }
}

void RemoteExecutor::ensure_connected(std::unique_lock<std::mutex>&) const {
  if (link_ != nullptr) {
    return;
  }
  std::unique_ptr<net::Transport> t;
  if (config_.address == "loopback") {
    if (loopback_ == nullptr) {
      loopback_ = std::make_unique<LoopbackWorker>(fault_plan_);
    }
    t = loopback_->connect();
  } else {
    t = net::dial(config_.address, config_.dial_timeout);
  }
  t = net::maybe_wrap_faulty(std::move(t), fault_plan_, 2 * connections_);
  if (connections_ > 0) {
    ++stats_.reconnects;
    count("executor.remote.reconnects");
  }
  ++connections_;
  link_ = std::make_unique<Link>(std::move(t));
  // Hello handshake: prove the peer speaks xbarlife.wire.v1 before
  // shipping a full-state request.
  const std::uint64_t id = ++next_seq_;
  net::write_frame(*link_->transport, net::MsgType::kHello, id);
  read_matching(net::MsgType::kHelloAck, id,
                std::chrono::steady_clock::now() + config_.request_deadline);
}

void RemoteExecutor::drop_connection() const {
  if (link_ != nullptr) {
    link_->transport->close();
    link_.reset();
  }
}

net::Frame RemoteExecutor::read_matching(
    net::MsgType want, std::uint64_t want_id,
    std::chrono::steady_clock::time_point deadline) const {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw net::TransportTimeout(
          "remote executor: no response within the request deadline");
    }
    net::Frame frame = net::read_frame(*link_->transport, left);
    if (frame.seq_id != want_id) {
      continue;  // stale frame: a duplicated or late earlier response
    }
    if (frame.type == want || frame.type == net::MsgType::kError) {
      return frame;
    }
    // Matching id but unexpected type: a protocol-confused peer; skip.
  }
}

bool RemoteExecutor::probe_liveness() const {
  if (link_ == nullptr) {
    return false;
  }
  try {
    const std::uint64_t id = ++next_seq_;
    net::write_frame(*link_->transport, net::MsgType::kHeartbeat, id);
    const auto probe_deadline =
        std::chrono::steady_clock::now() +
        std::min(config_.request_deadline, std::chrono::milliseconds(250));
    read_matching(net::MsgType::kHeartbeatAck, id, probe_deadline);
    return true;
  } catch (const net::TransportError&) {
    return false;
  }
}

void RemoteExecutor::backoff_sleep(int attempt) const {
  // Exponential base capped at backoff_max, jittered by a factor in
  // [0.5, 1.0) so a fleet of clients does not retry in lockstep. The
  // sleep runs in small slices polling the cooperative shutdown flag, so
  // SIGINT never hangs in a backoff.
  std::chrono::milliseconds base = config_.backoff_initial;
  for (int i = 1; i < attempt && base < config_.backoff_max; ++i) {
    base *= 2;
  }
  base = std::min(base, config_.backoff_max);
  const double factor = 0.5 + 0.5 * jitter_.uniform();
  auto remaining = std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * factor));
  constexpr std::chrono::milliseconds kSlice{10};
  while (remaining.count() > 0) {
    if (shutdown_requested()) {
      throw InterruptedError(
          "shutdown requested during remote executor retry backoff");
    }
    const auto nap = std::min(remaining, kSlice);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
}

ExecReport RemoteExecutor::run_local(Crossbar& xb,
                                     const ProgramSequence& seq) const {
  return SimExecutor{}.execute(xb, seq);
}

ExecReport RemoteExecutor::execute(Crossbar& xb,
                                   const ProgramSequence& seq) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (pinned_) {
    return run_local(xb, seq);
  }
  ++stats_.requests;
  const std::string payload = encode_execute_request(xb, seq);
  // One id per logical request across all its retries: the replay key.
  const std::uint64_t id = ++next_seq_;
  bool timed_out_on_live_link = false;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    // Cooperative shutdown is honored between retries (backoff_sleep
    // polls the flag), never before a healthy first attempt: a requested
    // shutdown must not strand an in-progress session that a working
    // link would complete — checkpointing loops handle the flag at their
    // own snapshot boundaries.
    if (attempt > 0) {
      ++stats_.retries;
      count("executor.remote.retries");
      backoff_sleep(attempt);
    }
    try {
      ensure_connected(lock);
      if (timed_out_on_live_link && !probe_liveness()) {
        // The link swallowed a request or response; prove liveness before
        // re-shipping the (large) request, reconnecting if the probe dies.
        drop_connection();
        ensure_connected(lock);
      }
      timed_out_on_live_link = false;
      net::write_frame(*link_->transport, net::MsgType::kExecute, id,
                       payload);
      const net::Frame frame = read_matching(
          net::MsgType::kExecuteResult, id,
          std::chrono::steady_clock::now() + config_.request_deadline);
      if (frame.type == net::MsgType::kError) {
        persist::StateReader er(frame.payload);
        throw RemoteWorkerError("remote worker rejected the request: " +
                                er.str());
      }
      ExecuteResponse resp = decode_execute_response(frame.payload);
      persist::StateReader sr(resp.crossbar_state);
      xb.load_state(sr);
      xb.credit_pulse_counters(resp.pulses, resp.traced_pulses);
      ExecReport report;
      report.results = std::move(resp.results);
      report.stats = seq.stats();
      xb.note_sequence_executed(report.stats);
      return report;
    } catch (const net::TransportTimeout&) {
      timed_out_on_live_link = true;
    } catch (const net::TransportError&) {
      drop_connection();
      timed_out_on_live_link = false;
    }
  }
  drop_connection();
  if (!config_.fallback_to_sim) {
    throw net::TransportError(
        "remote executor: worker at '" + config_.address +
        "' unreachable after " + std::to_string(config_.max_attempts) +
        " attempt(s) and local fallback is disabled");
  }
  // Graceful degradation: the request never mutated local state (every
  // attempt shipped the same pre-state), so executing locally now yields
  // exactly what a successful remote run would have.
  degraded_ = true;
  ++stats_.fallbacks;
  count("executor.remote.fallbacks");
  return run_local(xb, seq);
}

bool RemoteExecutor::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

bool RemoteExecutor::pin_local_fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_) {
    return false;
  }
  pinned_ = true;
  degraded_ = true;
  return true;
}

RemoteLinkStats RemoteExecutor::link_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void set_remote_metrics(obs::Registry* registry) {
  g_remote_metrics.store(registry, std::memory_order_release);
}

}  // namespace xbarlife::xbar
