// Console table rendering for the experiment harnesses.
//
// The bench binaries reproduce the paper's tables; TablePrinter renders them
// with aligned columns in a style close to the paper layout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xbarlife {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header separator and box-drawing rules.
  std::string render() const;

  /// Renders rows as CSV (headers first).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming noise.
std::string format_double(double value, int digits = 4);

/// Escapes a CSV cell (quotes cells containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

}  // namespace xbarlife
