// Fixed-bin histogram with ASCII rendering and CSV export.
//
// The paper's Figs. 3, 6 and 9 are weight/resistance/conductance
// distributions; the bench harness reproduces them as histograms printed to
// the console and written to CSV.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace xbarlife {

class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Requires bins >= 1
  /// and lo < hi. Samples outside the range are counted in underflow /
  /// overflow and excluded from the bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);
  void add(std::span<const float> xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Center of bin `bin`.
  double bin_center(std::size_t bin) const;
  /// Fraction of in-range samples landing in `bin`; 0 when empty.
  double density(std::size_t bin) const;

  /// Multi-line ASCII bar chart, `width` characters for the largest bar.
  std::string render(std::size_t width = 50) const;

  /// CSV rows "bin_center,count,density" with a header line.
  std::string to_csv() const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace xbarlife
