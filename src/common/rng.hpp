// Deterministic pseudo-random number generation.
//
// All stochastic parts of the library (dataset synthesis, weight init,
// variation injection) draw from xbarlife::Rng so experiments are exactly
// reproducible from a single seed. The generator is xoshiro256**, seeded via
// splitmix64, following the reference implementations by Blackman & Vigna.
#pragma once

#include <cstdint>
#include <vector>

namespace xbarlife {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double gaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; stream `index` is folded into
  /// the seed so children with different indices are decorrelated.
  Rng fork(std::uint64_t index) const;

  /// Complete generator state, so a checkpoint can resume a stream at the
  /// exact draw it was interrupted at (including the Box-Muller cache).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };

  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace xbarlife
