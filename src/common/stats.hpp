// Streaming and batch descriptive statistics.
//
// Used throughout the experiment harness to summarize weight distributions,
// quantization errors, tuning-iteration counts and aging trajectories.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xbarlife {

/// Welford-style single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel-friendly Chan et al. combine).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary with quantiles, computed from a copy of the data.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a full Summary of `values`. Empty input yields a zero Summary.
Summary summarize(std::span<const double> values);
Summary summarize(std::span<const float> values);

/// Linear-interpolation quantile of *sorted* data, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Pearson skewness (third standardized moment); 0 for constant data.
double skewness(std::span<const double> values);
double skewness(std::span<const float> values);

}  // namespace xbarlife
