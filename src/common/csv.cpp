#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace xbarlife {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : path_(path), out_(path, std::ios::trunc), columns_(headers.size()) {
  XB_CHECK(!headers.empty(), "CSV needs at least one column");
  if (!out_) {
    throw IoError("cannot open CSV file for writing: " + path);
  }
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out_ << (c ? "," : "") << csv_escape(headers[c]);
  }
  out_ << "\n";
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  XB_CHECK(cells.size() == columns_, "CSV row width must match header");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    out_ << (c ? "," : "") << csv_escape(cells[c]);
  }
  out_ << "\n";
  if (!out_) {
    throw IoError("CSV write failed: " + path_);
  }
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream oss;
    oss << v;
    cells.push_back(oss.str());
  }
  add_row(cells);
}

}  // namespace xbarlife
