#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace xbarlife {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) {
    lane = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XB_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  XB_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  XB_CHECK(stddev >= 0.0, "gaussian stddev must be non-negative");
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  XB_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p must lie in [0, 1]");
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t index) const {
  // Mix all lanes plus the stream index through splitmix64.
  std::uint64_t s = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 47) ^ (index * 0x2545f4914f6cdd1dULL + 1);
  return Rng(splitmix64(s));
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) {
    st.s[i] = state_[i];
  }
  st.cached_gaussian = cached_gaussian_;
  st.has_cached_gaussian = has_cached_gaussian_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = state.s[i];
  }
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace xbarlife
