#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace xbarlife {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_installed{false};

extern "C" void handle_shutdown_signal(int signum) {
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the run is not reaching a checkpoint boundary —
    // restore the default disposition and let the signal kill us.
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}

}  // namespace

void install_signal_handlers() {
  if (g_installed.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace xbarlife
