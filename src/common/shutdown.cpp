#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace xbarlife {

namespace {

// The handler may only touch lock-free async-signal-safe state, so the
// signal path and the programmatic path keep separate flags:
//
//   g_signal_flag    written ONLY by the handler. `volatile sig_atomic_t`
//                    is the one type the C/C++ standards guarantee a
//                    handler may store to; everything else (logging,
//                    cleanup, even std::atomic on exotic targets) is off
//                    limits inside the handler and happens on the polling
//                    side instead.
//   g_programmatic   written by request_shutdown()/reset_shutdown() from
//                    ordinary threads (tests, embedders, the remote
//                    executor's retry loop). A std::atomic keeps those
//                    cross-thread writes race-free under TSan without
//                    dragging the handler into atomics.
//
// shutdown_requested() ORs the two. reset_shutdown() clears both; it runs
// from normal context between test cycles, where no signal is in flight.
volatile std::sig_atomic_t g_signal_flag = 0;
std::atomic<bool> g_programmatic{false};
std::atomic<bool> g_installed{false};

extern "C" void handle_shutdown_signal(int signum) {
  if (g_signal_flag != 0) {
    // Second signal: the run is not reaching a checkpoint boundary —
    // restore the default disposition and let the signal kill us.
    // std::signal and std::raise are both async-signal-safe.
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_signal_flag = 1;
}

}  // namespace

void install_signal_handlers() {
  if (g_installed.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

bool shutdown_requested() {
  return g_signal_flag != 0 || g_programmatic.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_programmatic.store(true, std::memory_order_relaxed);
}

void reset_shutdown() {
  g_signal_flag = 0;
  g_programmatic.store(false, std::memory_order_relaxed);
}

}  // namespace xbarlife
