#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace xbarlife {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  XB_CHECK(bins >= 1, "histogram needs at least one bin");
  XB_CHECK(lo < hi, "histogram range must satisfy lo < hi");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi
  ++counts_[bin];
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) {
    add(x);
  }
}

void Histogram::add(std::span<const float> xs) {
  for (float x : xs) {
    add(static_cast<double>(x));
  }
}

std::size_t Histogram::count(std::size_t bin) const {
  XB_CHECK(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  XB_CHECK(bin < counts_.size(), "histogram bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram::density(std::size_t bin) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) {
    return 0.0;
  }
  return static_cast<double>(count(bin)) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream oss;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double c = bin_center(b);
    std::size_t bar = 0;
    if (peak > 0) {
      bar = static_cast<std::size_t>(std::llround(
          static_cast<double>(counts_[b]) * static_cast<double>(width) /
          static_cast<double>(peak)));
    }
    oss << "  ";
    oss.setf(std::ios::fixed);
    oss.precision(4);
    oss.width(12);
    oss << c << " |" << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  if (underflow_ > 0 || overflow_ > 0) {
    oss << "  (underflow " << underflow_ << ", overflow " << overflow_
        << ")\n";
  }
  return oss.str();
}

std::string Histogram::to_csv() const {
  std::ostringstream oss;
  oss << "bin_center,count,density\n";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    oss << bin_center(b) << "," << counts_[b] << "," << density(b) << "\n";
  }
  return oss.str();
}

}  // namespace xbarlife
