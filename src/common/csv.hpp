// CSV file writer used by bench harnesses to persist experiment series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace xbarlife {

/// Streams rows to a CSV file; throws xbarlife::Error on I/O failure.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// Writes one row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  /// Convenience overload for numeric rows.
  void add_row(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace xbarlife
