// Error handling primitives for xbarlife.
//
// All library code reports precondition violations and invariant breaks via
// exceptions derived from xbarlife::Error so callers can distinguish library
// failures from std library failures.
#pragma once

#include <stdexcept>
#include <string>

namespace xbarlife {

/// Base class for all errors thrown by xbarlife libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when two tensors/matrices have incompatible shapes.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a file or stream operation fails (open, read, write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a checkpoint snapshot is corrupted (truncated, checksum
/// mismatch, empty) and no valid fallback generation exists. Derives from
/// IoError so callers that only distinguish I/O failures keep working,
/// while the CLI maps it to its own exit code (7).
class CheckpointError : public IoError {
 public:
  explicit CheckpointError(const std::string& what) : IoError(what) {}
};

/// Thrown when a cooperative shutdown request (SIGINT/SIGTERM) stops a run
/// at a checkpoint boundary; the final snapshot has already been written
/// when this escapes. CLI exit code 6.
class InterruptedError : public Error {
 public:
  explicit InterruptedError(const std::string& what) : Error(what) {}
};

/// Thrown when a watchdog deadline (--job-timeout) expires. Inside a sweep
/// the runner isolates it into a timed-out entry; escaping to the CLI it
/// maps to exit code 8.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Thrown when an iterative procedure fails to reach its target — e.g. a
/// strict lifetime run whose tuning stopped converging before the session
/// cap.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace xbarlife

/// Precondition check: throws xbarlife::InvalidArgument when `cond` is false.
#define XB_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::xbarlife::detail::throw_check_failure("precondition", #cond,        \
                                              __FILE__, __LINE__, (msg));   \
    }                                                                        \
  } while (false)

/// Internal invariant check: throws xbarlife::InternalError when false.
#define XB_ASSERT(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::xbarlife::detail::throw_check_failure("invariant", #cond, __FILE__, \
                                              __LINE__, (msg));             \
    }                                                                        \
  } while (false)
