#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace xbarlife {

namespace {

thread_local bool t_in_region = false;

/// Fork-join pool: workers sleep until a job generation is published, run
/// the shared job functor once, and report back. One job is in flight at a
/// time (dispatches are serialized), so a generation can never be missed.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lk(dispatch_mutex_);
    return size_unlocked();
  }

  void resize(std::size_t n) {
    std::lock_guard<std::mutex> lk(dispatch_mutex_);
    const std::size_t cores =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (n == 0) {
      n = cores;
    }
    // Oversubscription only adds context-switch overhead to a
    // compute-bound fork-join pool (part of the threaded-slower-than-
    // serial regression); the partition is grain-based, so capping the
    // worker count never changes results.
    n = std::min(n, cores);
    if (n == size_unlocked()) {
      return;
    }
    stop_workers();
    start_workers(n - 1);
  }

  /// Runs `job` on every worker thread and on the caller; returns when all
  /// of them finished. `job` must be callable concurrently.
  void run_on_all(const std::function<void()>& job) {
    std::unique_lock<std::mutex> dispatch(dispatch_mutex_);
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      job_ = &job;
      active_ = workers_.size();
      ++generation_;
    }
    work_ready_.notify_all();
    job();  // the caller is a full participant
    std::unique_lock<std::mutex> lk(state_mutex_);
    job_done_.wait(lk, [&] { return active_ == 0; });
    job_ = nullptr;
  }

 private:
  ThreadPool() {
    std::size_t n = 1;
    if (const char* env = std::getenv("XBARLIFE_THREADS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') {
        n = parsed == 0
                ? std::max<std::size_t>(
                      1, std::thread::hardware_concurrency())
                : static_cast<std::size_t>(parsed);
      }
    }
    // Same hardware-concurrency cap as resize().
    n = std::min(n, std::max<std::size_t>(
                        1, std::thread::hardware_concurrency()));
    start_workers(n - 1);
  }

  ~ThreadPool() { stop_workers(); }

  std::size_t size_unlocked() const { return workers_.size() + 1; }

  void start_workers(std::size_t helpers) {
    // New workers must treat the current generation as already seen:
    // starting from 0 after a resize would wake them instantly on a stale
    // generation with no job published.
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      gen = generation_;
    }
    workers_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
      workers_.emplace_back([this, gen] { worker_loop(gen); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      shutdown_ = true;
      ++generation_;
    }
    work_ready_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
    workers_.clear();
    std::lock_guard<std::mutex> lk(state_mutex_);
    shutdown_ = false;
  }

  void worker_loop(std::uint64_t seen) {
    for (;;) {
      const std::function<void()>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(state_mutex_);
        work_ready_.wait(
            lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) {
          return;
        }
        seen = generation_;
        job = job_;
      }
      (*job)();
      {
        std::lock_guard<std::mutex> lk(state_mutex_);
        --active_;
      }
      job_done_.notify_all();
    }
  }

  std::mutex dispatch_mutex_;  ///< serializes run_on_all / resize
  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  const std::function<void()>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace

std::size_t parallel_threads() { return ThreadPool::instance().size(); }

void set_parallel_threads(std::size_t n) {
  XB_CHECK(!t_in_region,
           "set_parallel_threads inside a parallel region");
  ThreadPool::instance().resize(n);
}

bool in_parallel_region() { return t_in_region; }

std::size_t parallel_chunk_count(std::size_t begin, std::size_t end,
                                 std::size_t grain) {
  if (end <= begin) {
    return 0;
  }
  const std::size_t g = std::max<std::size_t>(1, grain);
  return (end - begin + g - 1) / g;
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = parallel_chunk_count(begin, end, g);
  if (chunks == 0) {
    return;
  }

  const auto run_chunk = [&](std::size_t ci) {
    const std::size_t b = begin + ci * g;
    const std::size_t e = std::min(b + g, end);
    fn(ci, b, e);
  };

  // Serial path: already inside a region, a one-thread pool, or a single
  // chunk. Chunk boundaries and order match the parallel path exactly.
  if (t_in_region || chunks == 1 || parallel_threads() == 1) {
    const bool was_in_region = t_in_region;
    t_in_region = true;
    try {
      for (std::size_t ci = 0; ci < chunks; ++ci) {
        run_chunk(ci);
      }
    } catch (...) {
      t_in_region = was_in_region;
      throw;
    }
    t_in_region = was_in_region;
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::function<void()> job = [&] {
    t_in_region = true;
    std::size_t ci;
    while ((ci = next.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      try {
        run_chunk(ci);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    t_in_region = false;
  };
  ThreadPool::instance().run_on_all(job);
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::size_t, std::size_t b, std::size_t e) {
                        fn(b, e);
                      });
}

namespace {

// Innermost armed deadline for the calling thread. Nested JobDeadline
// instances save/restore this, so a deadline armed around an outer job
// is reinstated when an inner scope ends.
struct DeadlineState {
  bool active = false;
  long long deadline_ns = 0;  // steady_clock epoch, nanoseconds
  std::string what;
};

thread_local DeadlineState t_deadline;

long long steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

JobDeadline::JobDeadline(double timeout_ms, std::string what) {
  if (timeout_ms <= 0.0) {
    return;
  }
  armed_ = true;
  prev_active_ = t_deadline.active;
  prev_deadline_ns_ = t_deadline.deadline_ns;
  prev_what_ = std::move(t_deadline.what);
  t_deadline.active = true;
  t_deadline.deadline_ns =
      steady_now_ns() + static_cast<long long>(timeout_ms * 1e6);
  t_deadline.what = std::move(what);
}

JobDeadline::~JobDeadline() {
  if (!armed_) {
    return;
  }
  t_deadline.active = prev_active_;
  t_deadline.deadline_ns = prev_deadline_ns_;
  t_deadline.what = std::move(prev_what_);
}

void check_job_deadline() {
  if (!t_deadline.active) {
    return;
  }
  if (steady_now_ns() >= t_deadline.deadline_ns) {
    throw TimeoutError("job '" + t_deadline.what +
                       "' exceeded its --job-timeout deadline");
  }
}

}  // namespace xbarlife
