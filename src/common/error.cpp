#include "common/error.hpp"

#include <cstring>
#include <sstream>

namespace xbarlife::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& msg) {
  // Strip leading directories so messages stay short and stable across
  // build locations.
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  std::ostringstream oss;
  oss << kind << " violated: (" << expr << ") at " << base << ":" << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  if (std::strcmp(kind, "invariant") == 0) {
    throw InternalError(oss.str());
  }
  throw InvalidArgument(oss.str());
}

}  // namespace xbarlife::detail
