#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace xbarlife {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  XB_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  XB_CHECK(cells.size() == headers_.size(),
           "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t w : widths) {
      s += std::string(w + 2, '-') + "+";
    }
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream oss;
    oss << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c] << " |";
    }
    oss << "\n";
    return oss.str();
  };
  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) {
    out += line(row);
  }
  out += rule();
  return out;
}

std::string TablePrinter::to_csv() const {
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c ? "," : "") << csv_escape(headers_[c]);
  }
  oss << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c ? "," : "") << csv_escape(row[c]);
    }
    oss << "\n";
  }
  return oss.str();
}

std::string format_double(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  std::string s = oss.str();
  // Trim trailing zeros but keep at least one decimal digit.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') {
      s.pop_back();
    }
    if (s.back() == '.') {
      s += "0";
    }
  }
  return s;
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += "\"";
  return out;
}

}  // namespace xbarlife
