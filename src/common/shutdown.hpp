// Cooperative shutdown for long runs.
//
// install_signal_handlers() arms SIGINT/SIGTERM to set a process-wide
// flag instead of killing the process; checkpointing loops poll
// shutdown_requested() at their snapshot boundaries, write a final
// snapshot, and raise InterruptedError (CLI exit 6). A second signal
// restores the default disposition and re-raises, so an unresponsive run
// can still be killed the usual way.
#pragma once

namespace xbarlife {

/// Arms SIGINT/SIGTERM to request a cooperative shutdown. Idempotent.
void install_signal_handlers();

/// True once a shutdown has been requested (by a signal or explicitly).
bool shutdown_requested();

/// Requests a shutdown programmatically (tests, embedding applications).
void request_shutdown();

/// Clears the flag (tests re-running the interrupt/resume cycle).
void reset_shutdown();

}  // namespace xbarlife
