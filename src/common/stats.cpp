#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  XB_CHECK(count_ > 0, "min() of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  XB_CHECK(count_ > 0, "max() of empty RunningStats");
  return max_;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  XB_CHECK(q >= 0.0 && q <= 1.0, "quantile q must lie in [0, 1]");
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {

Summary summarize_doubles(std::vector<double> data) {
  Summary s;
  s.count = data.size();
  if (data.empty()) {
    return s;
  }
  RunningStats rs;
  for (double x : data) {
    rs.add(x);
  }
  std::sort(data.begin(), data.end());
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = data.front();
  s.max = data.back();
  s.p25 = quantile_sorted(data, 0.25);
  s.median = quantile_sorted(data, 0.50);
  s.p75 = quantile_sorted(data, 0.75);
  s.p95 = quantile_sorted(data, 0.95);
  return s;
}

}  // namespace

Summary summarize(std::span<const double> values) {
  return summarize_doubles(std::vector<double>(values.begin(), values.end()));
}

Summary summarize(std::span<const float> values) {
  return summarize_doubles(std::vector<double>(values.begin(), values.end()));
}

double skewness(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  RunningStats rs;
  for (double x : values) {
    rs.add(x);
  }
  const double sd = rs.stddev();
  if (sd == 0.0) {
    return 0.0;
  }
  double m3 = 0.0;
  for (double x : values) {
    const double d = (x - rs.mean()) / sd;
    m3 += d * d * d;
  }
  return m3 / static_cast<double>(values.size());
}

double skewness(std::span<const float> values) {
  std::vector<double> d(values.begin(), values.end());
  return skewness(std::span<const double>(d));
}

}  // namespace xbarlife
