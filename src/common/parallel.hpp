// Deterministic fork-join parallelism for the hot paths.
//
// A single lazily-initialized thread pool is shared by the whole process.
// The pool size comes from the XBARLIFE_THREADS environment variable (or
// set_parallel_threads); the default is 1, which makes every parallel_for
// run serially so results stay bit-identical to the historical
// single-threaded code paths.
//
// Determinism contract:
//   * Work is partitioned into chunks by (begin, end, grain) ONLY — the
//     thread count never changes the partition, just which thread runs
//     each chunk.
//   * parallel_for bodies must write disjoint outputs per index; under
//     that contract results are bit-identical at any thread count.
//   * parallel_reduce merges per-chunk partials in chunk-index order, so
//     reductions are also independent of the thread count (they may
//     reassociate floating-point sums relative to a hand-written serial
//     loop, but identically so on every run).
//   * A parallel_for issued from inside another parallel_for body always
//     runs inline (serially). Fan-out layers — e.g. core::ScenarioRunner —
//     therefore execute each job's inner numerics in a fixed serial order
//     whether or not the fan-out itself is threaded.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace xbarlife {

/// Current size of the shared pool (>= 1). The first call reads
/// XBARLIFE_THREADS: unset/empty/invalid -> 1 (serial), 0 -> one thread
/// per hardware core, N -> N threads.
std::size_t parallel_threads();

/// Resizes the shared pool. n == 0 means one thread per hardware core;
/// any n is capped at the hardware core count (oversubscribing a
/// compute-bound fork-join pool only adds context-switch overhead, and
/// the grain-based partition keeps results identical either way).
/// Must not be called from inside a parallel_for body.
void set_parallel_threads(std::size_t n);

/// True while the calling thread is executing a parallel_for chunk; any
/// nested parallel_for runs inline.
bool in_parallel_region();

/// Number of chunks [begin, end) splits into at the given grain (the
/// partition parallel_for/parallel_reduce use). grain < 1 is treated as 1.
std::size_t parallel_chunk_count(std::size_t begin, std::size_t end,
                                 std::size_t grain);

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every grain-sized chunk
/// of [begin, end). Chunks are disjoint, cover the range, and all but the
/// last have exactly `grain` indices. Blocks until every chunk finished;
/// the first exception thrown by a chunk is rethrown on the caller.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Runs fn(chunk_begin, chunk_end) over every chunk of [begin, end).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Per-job cooperative watchdog (the --job-timeout machinery).
///
/// A JobDeadline arms a deadline on the *calling thread* for its scope;
/// instrumented loops (trainer epochs, tuning iterations, lifetime
/// sessions, escalation-ladder rungs) call check_job_deadline() at their
/// boundaries, which throws TimeoutError once the innermost armed
/// deadline has passed. Because a job's nested parallel_for bodies run
/// inline on the job's thread, a deadline armed around a sweep job covers
/// all of that job's numerics. The watchdog is cooperative: it marks
/// overrunning jobs as timed-out errors at the next checked boundary —
/// it cannot preempt a loop that never reaches one.
class JobDeadline {
 public:
  /// Arms a deadline `timeout_ms` from now; <= 0 arms nothing. `what`
  /// names the job in the TimeoutError message. Nested deadlines stack:
  /// the destructor restores the enclosing one.
  JobDeadline(double timeout_ms, std::string what);
  ~JobDeadline();

  JobDeadline(const JobDeadline&) = delete;
  JobDeadline& operator=(const JobDeadline&) = delete;

 private:
  bool armed_ = false;
  // Saved enclosing deadline state (type-erased to keep <chrono> out of
  // this header's hot-path includes).
  bool prev_active_ = false;
  long long prev_deadline_ns_ = 0;
  std::string prev_what_;
};

/// Throws TimeoutError when the calling thread's innermost armed deadline
/// has passed; a no-op (one thread-local load) when none is armed.
void check_job_deadline();

/// Deterministic map-reduce: `chunk_fn(chunk_begin, chunk_end) -> T` runs
/// per chunk (possibly concurrently); partial results are then merged with
/// `merge(acc, partial)` serially in chunk-index order starting from
/// `init`. The outcome depends only on (begin, end, grain), never on the
/// thread count.
template <typename T, typename ChunkFn, typename MergeFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, ChunkFn&& chunk_fn, MergeFn&& merge) {
  const std::size_t chunks = parallel_chunk_count(begin, end, grain);
  std::vector<T> partials(chunks);
  parallel_for_chunks(begin, end, grain,
                      [&](std::size_t ci, std::size_t b, std::size_t e) {
                        partials[ci] = chunk_fn(b, e);
                      });
  T acc = std::move(init);
  for (T& p : partials) {
    acc = merge(std::move(acc), std::move(p));
  }
  return acc;
}

}  // namespace xbarlife
