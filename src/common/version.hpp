// Build identification shared by the CLI, the worker, and the wire-level
// handshake. The version string travels in hello/hello-ack payloads so
// both ends of a remote-execution link can report what they are talking
// to; the protocol compatibility check itself is the separate
// wire/request version bytes — this string is diagnostic only.
#pragma once

namespace xbarlife {

inline constexpr const char* kBuildVersion = "0.9.0";

}  // namespace xbarlife
