#include "resilience/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace xbarlife::resilience {

void ResilienceConfig::validate() const {
  XB_CHECK(degraded_accuracy_floor >= 0.0 &&
               degraded_accuracy_floor <= 1.0,
           "degraded accuracy floor must lie in [0, 1]");
}

FaultCensus census(const tuning::HardwareNetwork& hw) {
  FaultCensus total;
  for (std::size_t i = 0; i < hw.layer_count(); ++i) {
    const tuning::LayerFaultCounts counts = hw.fault_counts(i);
    total.manufacture += counts.manufacture;
    total.clamped += counts.clamped;
    total.dead += counts.dead;
    total.cells += counts.cells;
  }
  return total;
}

std::vector<std::size_t> fault_masking_permutation(
    const tuning::HardwareNetwork& hw, std::size_t i, bool use_spares) {
  const tuning::DeployedLayer& layer = hw.layer(i);
  const std::size_t logical = layer.logical_rows;
  const std::size_t physical = layer.xbar->rows();
  const std::size_t cols = layer.xbar->cols();

  // Bad cells per physical row: manufacture stuck-at faults plus cells the
  // write-verify controller has clamped or retired.
  const xbar::FaultMap* map = layer.xbar->fault_map();
  std::vector<std::size_t> badness(physical, 0);
  for (std::size_t pr = 0; pr < physical; ++pr) {
    for (std::size_t c = 0; c < cols; ++c) {
      const bool manufactured =
          map != nullptr && map->at(pr, c) != xbar::FaultMap::Fault::kNone;
      const bool verified_bad = layer.stuck[pr * cols + c] != 0;
      badness[pr] += manufactured || verified_bad;
    }
  }

  // Importance per logical row: L1 mass of the target weights — the rows
  // whose corruption moves the network output the most.
  const Tensor& targets = hw.targets()[i];
  std::vector<double> importance(logical, 0.0);
  for (std::size_t r = 0; r < logical; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      importance[r] += std::fabs(static_cast<double>(targets.at(r, c)));
    }
  }

  // Eligible physical rows: the whole array when spares may be drafted,
  // otherwise only the rows the layer currently occupies.
  std::vector<std::size_t> pool;
  if (use_spares) {
    pool.resize(physical);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
  } else {
    pool.reserve(logical);
    for (std::size_t r = 0; r < logical; ++r) {
      pool.push_back(layer.physical_row(r));
    }
    std::sort(pool.begin(), pool.end());
  }
  XB_ASSERT(pool.size() >= logical, "row pool smaller than weight matrix");

  // Healthiest physical rows first; ties broken by index so the result is
  // deterministic.
  std::stable_sort(pool.begin(), pool.end(),
                   [&](std::size_t a, std::size_t b) {
                     return badness[a] < badness[b];
                   });

  // Heaviest logical rows first.
  std::vector<std::size_t> order(logical);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return importance[a] > importance[b];
                   });

  std::vector<std::size_t> perm(logical, 0);
  for (std::size_t k = 0; k < logical; ++k) {
    perm[order[k]] = pool[k];
  }

  // Nothing to gain when the assignment matches the current mapping.
  bool identical = true;
  for (std::size_t r = 0; r < logical; ++r) {
    if (perm[r] != layer.physical_row(r)) {
      identical = false;
      break;
    }
  }
  if (identical) {
    return {};
  }
  return perm;
}

}  // namespace xbarlife::resilience
