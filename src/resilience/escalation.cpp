#include "resilience/escalation.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "xbar/executor.hpp"

namespace xbarlife::resilience {

const char* to_string(Rung rung) {
  switch (rung) {
    case Rung::kFallbackExecutor:
      return "fallback_executor";
    case Rung::kRetry:
      return "retry";
    case Rung::kRemap:
      return "remap";
    case Rung::kFaultMask:
      return "fault_mask";
    case Rung::kSpareRows:
      return "spare_rows";
    case Rung::kDegraded:
      return "degraded";
  }
  return "unknown";
}

EscalationLadder::EscalationLadder(ResilienceConfig config)
    : config_(config) {
  config_.validate();
}

namespace {

/// Applies fault-masking permutations to every layer that has a better
/// assignment available; returns whether any layer was remapped.
bool apply_masking(const RescueContext& ctx, bool use_spares) {
  bool changed = false;
  for (std::size_t i = 0; i < ctx.hw.layer_count(); ++i) {
    std::vector<std::size_t> perm =
        fault_masking_permutation(ctx.hw, i, use_spares);
    if (perm.empty()) {
      continue;
    }
    ctx.hw.set_row_permutation(i, std::move(perm));
    ctx.hw.reprogram_targets(i);
    changed = true;
  }
  if (changed) {
    ctx.hw.sync_network_to_hardware();
  }
  return changed;
}

}  // namespace

RescueOutcome EscalationLadder::rescue(const RescueContext& ctx,
                                       std::size_t session, double accuracy,
                                       const obs::Obs& obs) const {
  RescueOutcome out;
  out.accuracy = accuracy;

  // Runs `prepare` (which mutates the array) and retunes; returns true
  // when the rung restored the tuning target. `prepare` returning false
  // means the rung has nothing to do and is skipped without a tune.
  const auto attempt = [&](Rung rung, const auto& prepare) {
    check_job_deadline();
    if (!prepare()) {
      return false;
    }
    const char* name = to_string(rung);
    out.rungs.emplace_back(name);
    const obs::Span rung_span(obs,
                              std::string("resilience.rung.") + name);
    obs.count(std::string("resilience.rung.") + name);
    const tuning::TuningResult tr =
        ctx.tuner.tune(ctx.hw, ctx.tune_data, ctx.eval_data, obs);
    out.iterations += tr.iterations;
    out.accuracy = tr.final_accuracy;
    if (obs.trace_enabled()) {
      obs.event("resilience_rung", {{"session", session},
                                    {"rung", name},
                                    {"converged", tr.converged},
                                    {"accuracy", tr.final_accuracy},
                                    {"iterations", tr.iterations}});
    }
    return tr.converged;
  };

  // Rung 0: when the active executor is running degraded (the remote
  // backend fell back mid-session), pin execution to its local fallback
  // path and retune once with the link failure out of the picture — the
  // cheapest possible rescue, since nothing about the array changes. The
  // pin is permanent and pin_executor_fallback() returns true only on
  // the transition, so later rescues skip this rung entirely.
  if (xbar::executor_degraded() &&
      attempt(Rung::kFallbackExecutor, [&] {
        if (!xbar::pin_executor_fallback()) {
          return false;
        }
        // Reprogram every layer so any sequence lost to the dying link
        // is re-applied through the now-local executor.
        for (std::size_t i = 0; i < ctx.hw.layer_count(); ++i) {
          ctx.hw.reprogram_targets(i);
        }
        ctx.hw.sync_network_to_hardware();
        return true;
      })) {
    out.converged = true;
    return out;
  }

  // Rung 1: write-verify retry of clamped cells. Each pass gives every
  // clamped (not dead) cell one more chance against its current target.
  for (std::size_t pass = 0; pass < config_.retry_passes; ++pass) {
    if (census(ctx.hw).clamped == 0) {
      break;
    }
    if (attempt(Rung::kRetry, [&] {
          for (std::size_t i = 0; i < ctx.hw.layer_count(); ++i) {
            ctx.hw.retry_clamped_cells(i);
          }
          ctx.hw.sync_network_to_hardware();
          return true;
        })) {
      out.converged = true;
      return out;
    }
  }

  // Rung 2: the legacy rescue — redeploy under the scenario policy (the
  // aging-aware path re-selects the common range, Fig. 8).
  if (attempt(Rung::kRemap, [&] {
        ctx.hw.deploy(ctx.policy, ctx.levels,
                      ctx.policy == tuning::MappingPolicy::kAgingAware
                          ? ctx.evaluator
                          : nullptr,
                      ctx.keep_threshold, ctx.switch_margin);
        return true;
      })) {
    out.converged = true;
    return out;
  }

  // Rung 3: fault masking within the rows already in use.
  if (config_.fault_masking &&
      attempt(Rung::kFaultMask,
              [&] { return apply_masking(ctx, /*use_spares=*/false); })) {
    out.converged = true;
    return out;
  }

  // Rung 4: draft unused spare rows for the worst physical rows.
  if (config_.spare_row_redundancy &&
      ctx.hw.fault_config().spare_rows > 0 &&
      attempt(Rung::kSpareRows,
              [&] { return apply_masking(ctx, /*use_spares=*/true); })) {
    out.converged = true;
    return out;
  }

  // Rung 5: degraded mode — keep serving while accuracy holds the floor.
  if (config_.degraded_accuracy_floor < 1.0 &&
      out.accuracy >= config_.degraded_accuracy_floor) {
    out.degraded = true;
    const char* name = to_string(Rung::kDegraded);
    out.rungs.emplace_back(name);
    const obs::Span rung_span(obs,
                              std::string("resilience.rung.") + name);
    obs.count(std::string("resilience.rung.") + name);
    if (obs.trace_enabled()) {
      obs.event("resilience_rung", {{"session", session},
                                    {"rung", name},
                                    {"converged", false},
                                    {"accuracy", out.accuracy}});
    }
  }
  return out;
}

}  // namespace xbarlife::resilience
