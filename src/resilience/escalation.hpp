// Bounded escalation ladder: the rescue policy a failed tuning session
// walks through before the array is declared end-of-life.
//
//   0. kFallbackExecutor — engaged only when the active program executor
//                   reports itself degraded (the remote backend exhausted
//                   its retries mid-session): execution is pinned to the
//                   local fallback path and the session retunes once over
//                   a link that can no longer fail. Runs at most once per
//                   process (the pin is permanent).
//   1. kRetry     — clamped cells get a fresh write-verify verdict and the
//                   layer is reprogrammed (cheapest; a handful of pulses).
//   2. kRemap     — the legacy rescue: redeploy under the scenario policy
//                   (aging-aware common-range reselection for ST+AT).
//   3. kFaultMask — high-|w| logical rows are steered off fault-heavy
//                   physical rows (Song-style fault masking), within the
//                   rows already in use.
//   4. kSpareRows — the worst physical rows are swapped for unused spare
//                   rows (needs HardwareFaultConfig::spare_rows > 0).
//   5. kDegraded  — the session keeps serving below target while accuracy
//                   stays at or above the configured floor.
//
// Each rung reprograms / retunes at most once, emits a `resilience_rung`
// trace event plus a `resilience.rung.<name>` counter, and the ladder
// stops at the first rung that restores the tuning target.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "tuning/online_tuner.hpp"

namespace xbarlife::resilience {

/// Rungs in order of invasiveness.
enum class Rung {
  kFallbackExecutor,
  kRetry,
  kRemap,
  kFaultMask,
  kSpareRows,
  kDegraded,
};

const char* to_string(Rung rung);

/// Outcome of one ladder walk (one failed session's rescue).
struct RescueOutcome {
  bool converged = false;  ///< a rung restored the tuning target
  bool degraded = false;   ///< serving below target, above the floor
  double accuracy = 0.0;   ///< accuracy after the last rung attempted
  std::size_t iterations = 0;      ///< tuning iterations the ladder burned
  std::vector<std::string> rungs;  ///< rungs attempted, in order
};

/// Everything a rung needs to redeploy and retune the network. The
/// referenced objects must outlive the rescue() call.
struct RescueContext {
  tuning::HardwareNetwork& hw;
  tuning::OnlineTuner& tuner;
  const data::Dataset& tune_data;
  const data::Dataset& eval_data;
  tuning::MappingPolicy policy;
  std::size_t levels;
  /// Range-selection evaluator; may be null for MappingPolicy::kFresh.
  const tuning::NetworkEvaluator& evaluator;
  double keep_threshold;
  double switch_margin;
};

class EscalationLadder {
 public:
  explicit EscalationLadder(ResilienceConfig config);

  const ResilienceConfig& config() const { return config_; }

  /// Walks the ladder after a non-converged tuning session whose final
  /// accuracy was `accuracy`. `session` labels the emitted events.
  RescueOutcome rescue(const RescueContext& ctx, std::size_t session,
                       double accuracy, const obs::Obs& obs) const;

 private:
  ResilienceConfig config_;
};

}  // namespace xbarlife::resilience
