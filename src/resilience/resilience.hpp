// Resilience policy for deployed crossbars: configuration of the bounded
// escalation ladder that replaces the single-shot remap rescue when device
// faults are in play, plus the fault-census and fault-masking helpers the
// ladder's rungs are built from.
//
// The ladder trades programming pulses (which age the array) for lifetime:
// each rung is strictly more invasive than the previous one, and a rung
// only runs when the cheaper ones failed to restore the tuning target.
// With an all-default config and an ideal array the ladder never engages
// and the lifetime protocol behaves exactly as before.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tuning/hardware_network.hpp"

namespace xbarlife::resilience {

/// Knobs of the escalation ladder (see escalation.hpp for the rungs).
struct ResilienceConfig {
  /// Force-enables the ladder even on an ideal (fault-free) array.
  bool enabled = false;
  /// Master switch: with the ladder off, a failed session falls back to
  /// the legacy single-shot remap rescue even on a faulty array.
  bool ladder_enabled = true;
  /// Rung 1: (retry clamped cells + reprogram + tune) passes before
  /// escalating. Each pass burns at most one pulse per clamped cell.
  std::size_t retry_passes = 1;
  /// Rung 3: steer high-magnitude logical rows away from fault-heavy
  /// physical rows (Song-style fault masking).
  bool fault_masking = true;
  /// Rung 4: swap the worst physical rows for unused spare rows (needs
  /// HardwareFaultConfig::spare_rows > 0).
  bool spare_row_redundancy = true;
  /// Rung 5: a session that still misses the tuning target keeps serving
  /// in degraded mode while accuracy stays at or above this floor; below
  /// it the array is end-of-life. Set to 1.0 to disable degraded mode.
  double degraded_accuracy_floor = 0.5;

  void validate() const;

  /// Whether the ladder governs rescues for a network deployed with
  /// `faults`: explicitly enabled, or any hardware fault model present.
  bool active_for(const tuning::HardwareFaultConfig& faults) const {
    return ladder_enabled && (enabled || faults.active());
  }
};

/// Network-wide bad-cell census (sum of per-layer counts).
struct FaultCensus {
  std::size_t manufacture = 0;
  std::size_t clamped = 0;
  std::size_t dead = 0;
  std::size_t cells = 0;

  std::size_t bad() const { return clamped + dead; }
};

/// Census over every deployed layer's active cells.
FaultCensus census(const tuning::HardwareNetwork& hw);

/// Builds a fault-masking logical-to-physical row permutation for layer
/// `i`: logical rows are ranked by summed |target weight| and assigned to
/// physical rows ranked by bad-cell count, so the weights that matter
/// most land on the healthiest rows. With `use_spares` the whole physical
/// row space (including unused spare rows) is eligible; otherwise only
/// the rows currently mapped. Returns an empty vector when the resulting
/// assignment is the layer's current mapping (nothing to gain).
std::vector<std::size_t> fault_masking_permutation(
    const tuning::HardwareNetwork& hw, std::size_t i, bool use_spares);

}  // namespace xbarlife::resilience
