// Crash-safe checkpoint snapshots (schema "xbarlife.ckpt.v1").
//
// A snapshot file is a one-line JSON header followed by a raw binary
// payload (see state_io.hpp):
//
//   {"checkpoint":"xbarlife.ckpt.v1","kind":"lifetime",
//    "fingerprint":"91c6f2a0b3d4e5f6","generation":3,
//    "payload_bytes":1184,"payload_crc32":3421780262}\n
//   <payload_bytes raw bytes>
//
// Writes are atomic: the snapshot is written to <path>.tmp, flushed, the
// previous snapshot is rotated to <path>.bak, and the temp file renamed
// into place — a crash mid-write can never destroy the last good
// generation. Loads verify the CRC32 of the payload and fall back to the
// .bak generation when the newest snapshot is truncated or corrupt; when
// no valid generation exists at all, CheckpointError (CLI exit 7) is
// raised instead of silently restoring wrong state. A parseable snapshot
// belonging to a *different* run (schema/kind/fingerprint mismatch) is a
// plain IoError — resuming it would corrupt the run, and its fallback
// would be just as foreign.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xbarlife::persist {

/// Version tag stamped into every snapshot header.
inline constexpr std::string_view kCheckpointSchema = "xbarlife.ckpt.v1";

/// IEEE CRC32 (reflected, poly 0xEDB88320) of `data`;
/// crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Atomically replaces `path` with `content`: writes <path>.tmp, flushes,
/// then renames into place — readers never observe a partial file. The
/// same primitive CheckpointStore::save builds on; progress status files
/// reuse it directly. Throws IoError on failure.
void write_file_atomic(const std::string& path, std::string_view content);

/// FNV-1a 64-bit accumulator for state fingerprints: a cheap content hash
/// of the configuration that must match for a snapshot to be resumable.
class Fingerprint {
 public:
  Fingerprint& add(std::string_view bytes);
  Fingerprint& add(std::uint64_t v);
  Fingerprint& add(double v);
  std::uint64_t value() const { return hash_; }
  /// 16-char lowercase hex rendering (the header's "fingerprint" field).
  std::string hex() const;

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// 16-char lowercase hex rendering of a fingerprint value.
std::string fingerprint_hex(std::uint64_t value);

/// Anything that can be snapshotted into a checkpoint and restored from
/// one. serialize()/restore() must round-trip bit-identically; the
/// fingerprint pins the configuration a snapshot belongs to (exclude
/// horizon knobs — epochs, max_sessions — so a run can resume toward a
/// longer horizon).
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  /// Short snapshot kind tag ("train", "lifetime", "sweep", "faults").
  virtual std::string kind() const = 0;
  virtual std::uint64_t fingerprint() const = 0;
  virtual std::string serialize() const = 0;
  virtual void restore(std::string_view payload) = 0;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(std::string path);

  const std::string& path() const { return path_; }
  std::string fallback_path() const { return path_ + ".bak"; }

  /// Generation of the most recent save (or the loaded snapshot).
  std::uint64_t generation() const { return generation_; }

  struct SnapshotInfo {
    std::uint64_t generation = 0;
    bool fallback_used = false;  ///< restored from the .bak generation
  };

  /// Atomically writes a new snapshot generation of `target`.
  void save(const Checkpointable& target);

  /// Restores `target` from the newest valid snapshot generation.
  /// Returns nullopt when no snapshot exists (fresh start). Throws
  /// IoError when the snapshot belongs to a different run and
  /// CheckpointError when every present generation is corrupt.
  std::optional<SnapshotInfo> load(Checkpointable& target);

 private:
  std::string path_;
  std::uint64_t generation_ = 0;
};

}  // namespace xbarlife::persist
