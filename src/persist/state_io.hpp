// Binary state serialization primitives for checkpoint payloads.
//
// StateWriter/StateReader implement a tiny, versionless little-endian wire
// format (fixed-width integers, bit-cast IEEE floats, length-prefixed
// strings). Floats travel as raw bit patterns, so a round-tripped payload
// restores *bit-identical* state — the property the crash-safe resume
// guarantees are built on. The header is intentionally header-only: any
// library (device, aging, xbar, tuning) can serialize its state without
// growing a link dependency on xbarlife_persist.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife::persist {

/// Appends fixed-width little-endian fields to a byte buffer.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Bit-cast floats: the payload restores the exact bit pattern.
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view v) {
    u64(v.size());
    buf_.append(v.data(), v.size());
  }

  const std::string& data() const { return buf_; }

 private:
  std::string buf_;
};

/// Reads fields written by StateWriter; throws CheckpointError when the
/// payload runs out (a truncated or foreign payload must never be
/// silently mis-restored).
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  bool boolean() { return u8() != 0; }

  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string v(data_.substr(pos_, n));
    pos_ += n;
    return v;
  }

  /// Reads a u64 element count that prefixes an array whose elements each
  /// occupy at least `min_bytes_per_element` payload bytes, rejecting any
  /// count the remaining payload cannot possibly satisfy. Count-prefixed
  /// loops must size containers through this instead of a raw u64(): a
  /// corrupt (or hostile — the same reader now parses network payloads)
  /// prefix would otherwise drive a near-2^64 reserve()/resize() and
  /// abort on allocation failure instead of failing cleanly.
  std::size_t array_count(std::size_t min_bytes_per_element) {
    const std::uint64_t n = u64();
    const std::size_t per =
        min_bytes_per_element == 0 ? 1 : min_bytes_per_element;
    if (n > remaining() / per) {
      throw CheckpointError(
          "checkpoint payload corrupt: element count " + std::to_string(n) +
          " needs at least " + std::to_string(per) +
          " byte(s) each but only " + std::to_string(remaining()) +
          " byte(s) remain at offset " + std::to_string(pos_));
    }
    return static_cast<std::size_t>(n);
  }

  /// True when every byte has been consumed.
  bool done() const { return pos_ == data_.size(); }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw CheckpointError(
          "checkpoint payload truncated: needed " + std::to_string(n) +
          " more byte(s) at offset " + std::to_string(pos_));
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Serializes a complete Rng stream position (four lanes + the Box-Muller
/// cache), so a resumed run continues each stream at the exact draw the
/// snapshot was taken at.
inline void write_rng_state(StateWriter& w, const Rng& rng) {
  const Rng::State st = rng.state();
  for (int i = 0; i < 4; ++i) {
    w.u64(st.s[i]);
  }
  w.f64(st.cached_gaussian);
  w.boolean(st.has_cached_gaussian);
}

inline void read_rng_state(StateReader& r, Rng& rng) {
  Rng::State st;
  for (int i = 0; i < 4; ++i) {
    st.s[i] = r.u64();
  }
  st.cached_gaussian = r.f64();
  st.has_cached_gaussian = r.boolean();
  rng.set_state(st);
}

}  // namespace xbarlife::persist
