#include "persist/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace xbarlife::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffU] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

Fingerprint& Fingerprint::add(std::string_view bytes) {
  // Length-prefix the bytes so add("ab").add("c") != add("a").add("bc").
  add(static_cast<std::uint64_t>(bytes.size()));
  for (const char ch : bytes) {
    hash_ ^= static_cast<unsigned char>(ch);
    hash_ *= 1099511628211ULL;
  }
  return *this;
}

Fingerprint& Fingerprint::add(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffU;
    hash_ *= 1099511628211ULL;
  }
  return *this;
}

Fingerprint& Fingerprint::add(double v) {
  return add(std::bit_cast<std::uint64_t>(v));
}

std::string fingerprint_hex(std::uint64_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xfU];
    value >>= 4;
  }
  return out;
}

std::string Fingerprint::hex() const { return fingerprint_hex(hash_); }

namespace {

/// Result of reading one snapshot file without touching the target.
struct Snapshot {
  enum class Status {
    kNotFound,  ///< file does not exist
    kCorrupt,   ///< unreadable / truncated / checksum mismatch
    kForeign,   ///< valid header, but belongs to a different run
    kOk,
  };
  Status status = Status::kNotFound;
  std::string reason;
  std::uint64_t generation = 0;
  std::string payload;
};

/// Extracts the JSON string following `"key":"` in `line`; headers are
/// written by this module, so a hand scan is sufficient (the repo has no
/// JSON parser by design).
std::optional<std::string> scan_str(const std::string& line,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  const std::size_t start = pos + needle.size();
  const std::size_t stop = line.find('"', start);
  if (stop == std::string::npos) {
    return std::nullopt;
  }
  return line.substr(start, stop - start);
}

std::optional<std::uint64_t> scan_u64(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  std::size_t i = pos + needle.size();
  std::uint64_t value = 0;
  bool any = false;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
    any = true;
  }
  if (!any) {
    return std::nullopt;
  }
  return value;
}

Snapshot read_snapshot(const std::string& file, const std::string& kind,
                       const std::string& fingerprint) {
  Snapshot snap;
  std::ifstream in(file, std::ios::binary);
  if (!in.is_open()) {
    return snap;  // kNotFound
  }
  snap.status = Snapshot::Status::kCorrupt;
  std::string header;
  if (!std::getline(in, header) || header.empty()) {
    snap.reason = "empty or headerless snapshot: " + file;
    return snap;
  }
  const auto schema = scan_str(header, "checkpoint");
  if (!schema.has_value()) {
    snap.reason = "snapshot header is not a checkpoint header: " + file;
    return snap;
  }
  // A parseable header from a different schema/kind/run: foreign, not
  // corrupt — falling back would resume the wrong run.
  if (*schema != kCheckpointSchema) {
    snap.status = Snapshot::Status::kForeign;
    snap.reason = "unsupported checkpoint schema '" + *schema +
                  "': " + file;
    return snap;
  }
  const auto file_kind = scan_str(header, "kind");
  const auto file_fp = scan_str(header, "fingerprint");
  const auto generation = scan_u64(header, "generation");
  const auto payload_bytes = scan_u64(header, "payload_bytes");
  const auto payload_crc = scan_u64(header, "payload_crc32");
  if (!file_kind || !file_fp || !generation || !payload_bytes ||
      !payload_crc) {
    snap.reason = "snapshot header is missing fields: " + file;
    return snap;
  }
  if (*file_kind != kind) {
    snap.status = Snapshot::Status::kForeign;
    snap.reason = "checkpoint kind '" + *file_kind +
                  "' does not match this command ('" + kind +
                  "'): " + file;
    return snap;
  }
  if (*file_fp != fingerprint) {
    snap.status = Snapshot::Status::kForeign;
    snap.reason =
        "checkpoint fingerprint " + *file_fp +
        " belongs to a different configuration (expected " + fingerprint +
        "): " + file;
    return snap;
  }
  snap.payload.resize(*payload_bytes);
  in.read(snap.payload.data(),
          static_cast<std::streamsize>(*payload_bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != *payload_bytes) {
    snap.reason = "snapshot payload truncated (" +
                  std::to_string(in.gcount()) + " of " +
                  std::to_string(*payload_bytes) + " bytes): " + file;
    return snap;
  }
  if (crc32(snap.payload) != *payload_crc) {
    snap.reason = "snapshot payload checksum mismatch: " + file;
    return snap;
  }
  snap.status = Snapshot::Status::kOk;
  snap.generation = *generation;
  return snap;
}

bool file_exists(const std::string& file) {
  return std::ifstream(file).is_open();
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw IoError("cannot write file: " + tmp);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      throw IoError("file write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("cannot move file into place: " + path);
  }
}

CheckpointStore::CheckpointStore(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    throw InvalidArgument("checkpoint path must be non-empty");
  }
}

void CheckpointStore::save(const Checkpointable& target) {
  const std::string payload = target.serialize();
  const std::uint64_t generation = generation_ + 1;
  std::ostringstream header;
  header << "{\"checkpoint\":\"" << kCheckpointSchema << "\",\"kind\":\""
         << target.kind() << "\",\"fingerprint\":\""
         << fingerprint_hex(target.fingerprint())
         << "\",\"generation\":" << generation
         << ",\"payload_bytes\":" << payload.size()
         << ",\"payload_crc32\":" << crc32(payload) << "}\n";

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw IoError("cannot write checkpoint: " + tmp);
    }
    const std::string head = header.str();
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      throw IoError("checkpoint write failed: " + tmp);
    }
  }
  // Rotate the previous snapshot into the fallback slot, then move the
  // new one into place. Either rename is atomic, so a crash anywhere in
  // this sequence leaves at least one valid generation on disk.
  if (file_exists(path_)) {
    std::rename(path_.c_str(), fallback_path().c_str());
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw IoError("cannot move checkpoint into place: " + path_);
  }
  generation_ = generation;
}

std::optional<CheckpointStore::SnapshotInfo> CheckpointStore::load(
    Checkpointable& target) {
  const std::string kind = target.kind();
  const std::string fp = fingerprint_hex(target.fingerprint());

  const Snapshot primary = read_snapshot(path_, kind, fp);
  if (primary.status == Snapshot::Status::kForeign) {
    throw IoError(primary.reason);
  }
  if (primary.status == Snapshot::Status::kOk) {
    target.restore(primary.payload);
    generation_ = primary.generation;
    return SnapshotInfo{primary.generation, /*fallback_used=*/false};
  }

  const Snapshot fallback = read_snapshot(fallback_path(), kind, fp);
  if (primary.status == Snapshot::Status::kNotFound &&
      fallback.status == Snapshot::Status::kNotFound) {
    return std::nullopt;  // fresh start
  }
  if (fallback.status == Snapshot::Status::kOk) {
    target.restore(fallback.payload);
    generation_ = fallback.generation;
    return SnapshotInfo{fallback.generation, /*fallback_used=*/true};
  }
  if (fallback.status == Snapshot::Status::kForeign) {
    throw IoError(fallback.reason);
  }
  std::string detail = primary.status == Snapshot::Status::kNotFound
                           ? fallback.reason
                           : primary.reason;
  if (fallback.status == Snapshot::Status::kNotFound) {
    detail += "; no fallback generation exists";
  } else if (primary.status != Snapshot::Status::kNotFound) {
    detail += "; fallback also invalid (" + fallback.reason + ")";
  }
  throw CheckpointError("checkpoint corrupted with no valid fallback: " +
                        detail);
}

}  // namespace xbarlife::persist
