// im2col / col2im lowering for convolution.
//
// Convolutions in the NN substrate are computed as GEMMs over im2col
// patches, matching how the crossbar executes them: each output pixel's
// receptive field becomes one input vector applied to the weight matrix.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace xbarlife {

struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernels
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the patch matrix = size of one receptive field.
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
  /// Validates that the geometry is realizable.
  void validate() const;
};

/// Lowers a single image (C x H x W flat tensor of numel C*H*W) into a patch
/// matrix of shape (out_h*out_w, patch_size).
Tensor im2col(const Tensor& image, const ConvGeometry& g);

/// Adjoint of im2col: scatters a patch-gradient matrix of shape
/// (out_h*out_w, patch_size) back into an image gradient (flat C*H*W).
Tensor col2im(const Tensor& patches, const ConvGeometry& g);

}  // namespace xbarlife
