// Matrix multiplication kernels.
//
// The training substrate and the ideal software path of the crossbar
// simulator both reduce to dense GEMM. A register-blocked kernel keeps the
// single-core experiments fast enough for lifetime sweeps.
#pragma once

#include "tensor/tensor.hpp"

namespace xbarlife {

/// C = A(MxK) * B(KxN). All tensors rank-2; C is allocated by the call.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(MxK from KxM... ) * B — i.e. matmul(transpose(a), b) without
/// materializing the transpose. a is (K x M), b is (K x N), result (M x N).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// matmul(a, transpose(b)): a is (M x K), b is (N x K), result (M x N).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// c += A * B into a preallocated (M x N) accumulator.
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// Reference triple-loop GEMM used by tests to validate the blocked kernel.
Tensor matmul_naive(const Tensor& a, const Tensor& b);

}  // namespace xbarlife
