// Matrix multiplication entry points.
//
// The training substrate and the ideal software path of the crossbar
// simulator both reduce to dense GEMM. All entry points dispatch to the
// runtime-selected kernel variant (see tensor/kernels/kernels.hpp):
// AVX2+FMA, NEON, or the portable scalar fallback.
//
// Accumulation policy: float accumulators everywhere, in a fixed
// ascending-k order per output element. Every variant (including
// matmul_naive, the test reference) follows the same policy, so
// cross-variant drift is bounded by reassociation/FMA effects only —
// not by a precision mismatch. Results are bit-identical at any thread
// count per variant; pin XBARLIFE_KERNEL=scalar for host-independent
// bytes.
#pragma once

#include "tensor/tensor.hpp"

namespace xbarlife {

/// C = A(MxK) * B(KxN). All tensors rank-2; C is allocated by the call.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(MxK from KxM... ) * B — i.e. matmul(transpose(a), b) with the
/// transpose materialized internally. a is (K x M), b is (K x N),
/// result (M x N).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// matmul(a, transpose(b)): a is (M x K), b is (N x K), result (M x N).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// c += A * B into a preallocated (M x N) accumulator.
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// Reference triple-loop GEMM used by tests to validate the dispatched
/// kernels. Follows the same float-accumulate policy (see above).
Tensor matmul_naive(const Tensor& a, const Tensor& b);

}  // namespace xbarlife
