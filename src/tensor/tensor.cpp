#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace xbarlife {

Tensor::Tensor() : shape_(Shape{}), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_.numel(), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  XB_CHECK(data_.size() == shape_.numel(),
           "tensor data size must match shape " + shape_.to_string());
}

float& Tensor::operator[](std::size_t i) {
  XB_CHECK(i < data_.size(), "tensor flat index out of range");
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  XB_CHECK(i < data_.size(), "tensor flat index out of range");
  return data_[i];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  XB_CHECK(shape_.rank() == 2, "2-D accessor on tensor " + shape_.to_string());
  XB_CHECK(r < shape_[0] && c < shape_[1], "2-D index out of range");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor&>(*this).at(r, c);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) {
  XB_CHECK(shape_.rank() == 4, "4-D accessor on tensor " + shape_.to_string());
  XB_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
           "4-D index out of range");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor&>(*this).at(n, c, h, w);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  XB_CHECK(new_shape.numel() == numel(),
           "reshape must preserve element count: " + shape_.to_string() +
               " -> " + new_shape.to_string());
  Tensor out(std::move(new_shape), data_);
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw ShapeError(std::string(op) + ": shape mismatch " +
                     a.shape().to_string() + " vs " + b.shape().to_string());
  }
}
}  // namespace

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& x : data_) {
    x *= s;
  }
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  check_same_shape(*this, other, "axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}

Tensor Tensor::scaled(float s) const {
  Tensor out = *this;
  out.scale_(s);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) {
    acc += x;
  }
  return static_cast<float>(acc);
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

float Tensor::min() const {
  XB_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  XB_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::squared_norm() const {
  double acc = 0.0;
  for (float x : data_) {
    acc += static_cast<double>(x) * static_cast<double>(x);
  }
  return static_cast<float>(acc);
}

std::size_t Tensor::argmax() const {
  XB_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

void Tensor::fill_gaussian(Rng& rng, float mean, float stddev) {
  for (float& x : data_) {
    x = static_cast<float>(rng.gaussian(mean, stddev));
  }
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_) {
    x = static_cast<float>(rng.uniform(lo, hi));
  }
}

Tensor Tensor::transposed() const {
  XB_CHECK(shape_.rank() == 2, "transpose requires a rank-2 tensor");
  const std::size_t rows = shape_[0];
  const std::size_t cols = shape_[1];
  Tensor out(Shape{cols, rows});
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.data_[c * rows + r] = data_[r * cols + c];
    }
  }
  return out;
}

std::string Tensor::to_string(std::size_t max_elems) const {
  std::ostringstream oss;
  oss << "Tensor" << shape_.to_string() << " {";
  const std::size_t n = std::min(max_elems, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    oss << (i ? ", " : "") << data_[i];
  }
  if (n < data_.size()) {
    oss << ", ...";
  }
  oss << "}";
  return oss.str();
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace xbarlife
