// Dense row-major float tensor.
//
// This is the numerical workhorse underneath the neural-network substrate
// and the crossbar simulator. It is deliberately a simple owning value type
// (Rule of Zero): copies copy data, moves are cheap, and views are expressed
// as std::span over the flat storage.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace xbarlife {

class Tensor {
 public:
  /// Empty (rank-0, one element) tensor.
  Tensor();
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Tensor filled with `value`.
  Tensor(Shape shape, float value);
  /// Tensor wrapping a copy of `values`; size must match shape.numel().
  Tensor(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// 2-D accessors (checked): requires rank 2.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// 4-D accessors (checked): requires rank 4 (N, C, H, W).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterprets the storage under a new shape with equal numel.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// In-place elementwise operations.
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& scale_(float s);
  /// this += s * other (axpy)
  Tensor& axpy_(float s, const Tensor& other);

  /// Out-of-place counterparts.
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float s) const;

  float sum() const;
  float abs_max() const;
  float min() const;
  float max() const;
  /// Squared L2 norm.
  float squared_norm() const;

  /// Index of the largest element (ties: first).
  std::size_t argmax() const;

  /// Fills with N(mean, stddev) draws.
  void fill_gaussian(Rng& rng, float mean, float stddev);
  /// Fills with U[lo, hi) draws.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// Rank-2 transpose.
  Tensor transposed() const;

  std::string to_string(std::size_t max_elems = 16) const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// True when every element differs by at most `tol`. Shape mismatch -> false.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace xbarlife
