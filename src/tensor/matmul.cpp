#include "tensor/matmul.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace xbarlife {

namespace {

void check_rank2(const Tensor& t, const char* name) {
  if (t.shape().rank() != 2) {
    throw ShapeError(std::string("matmul operand ") + name +
                     " must be rank-2, got " + t.shape().to_string());
  }
}

bool all_finite(const float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      return false;
    }
  }
  return true;
}

// Cache-blocked i-k-j kernel. The innermost loop is a contiguous
// axpy over C's row, which the compiler auto-vectorizes. Parallelized
// over row blocks: threads write disjoint rows of C and each row's
// accumulation order is the serial one, so results are bit-identical at
// any thread count.
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n) {
  constexpr std::size_t kBlockI = 32;
  constexpr std::size_t kBlockK = 64;
  // Skipping zero A entries is only sound when B is finite: 0 * inf and
  // 0 * nan must still poison C (matching matmul_naive).
  const bool skip_zeros = all_finite(b, k * n);
  parallel_for(0, m, kBlockI, [&](std::size_t row_begin,
                                  std::size_t row_end) {
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlockI) {
      const std::size_t i1 = std::min(i0 + kBlockI, row_end);
      for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, k);
        for (std::size_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float aik = a[i * k + kk];
            if (aik == 0.0f && skip_zeros) {
              continue;
            }
            const float* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul inner dimension mismatch: " +
                     a.shape().to_string() + " x " + b.shape().to_string());
  }
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  check_rank2(c, "C");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k || c.shape()[0] != m || c.shape()[1] != b.shape()[1]) {
    throw ShapeError("matmul_accumulate shape mismatch");
  }
  gemm(a.data(), b.data(), c.data(), m, k, b.shape()[1]);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t k = a.shape()[0];
  const std::size_t m = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul_tn inner dimension mismatch");
  }
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  const bool skip_zeros = all_finite(b.data(), k * n);
  // c[i][j] = sum_kk a[kk][i] * b[kk][j]; iterate kk outermost so both
  // operands stream contiguously. Parallelized over column chunks of C:
  // writes are disjoint and each element keeps the serial kk order.
  parallel_for(0, n, 128, [&](std::size_t col_begin, std::size_t col_end) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.data() + kk * m;
      const float* brow = b.data() + kk * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f && skip_zeros) {
          continue;
        }
        float* crow = c.data() + i * n;
        for (std::size_t j = col_begin; j < col_end; ++j) {
          crow[j] += aki * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[1] != k) {
    throw ShapeError("matmul_nt inner dimension mismatch");
  }
  const std::size_t n = b.shape()[0];
  Tensor c(Shape{m, n});
  // Independent dot products per output element; rows of C are disjoint.
  parallel_for(0, m, 16, [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
        }
        crow[j] = static_cast<float>(acc);
      }
    }
  });
  return c;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul_naive inner dimension mismatch");
  }
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) *
               static_cast<double>(b.at(kk, j));
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace xbarlife
