#include "tensor/matmul.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace xbarlife {

namespace {

void check_rank2(const Tensor& t, const char* name) {
  if (t.shape().rank() != 2) {
    throw ShapeError(std::string("matmul operand ") + name +
                     " must be rank-2, got " + t.shape().to_string());
  }
}

// Below this many flops (2*m*k*n) the pool's dispatch overhead exceeds
// the multiply itself — measured on the bench shapes, a 128^3 GEMM (~4M
// flops) is where threading starts to pay. Smaller products run serial.
constexpr std::size_t kSerialFlopThreshold = 8u << 20;

/// Row grain for the threaded GEMM paths. Small products collapse to a
/// single chunk (serial); large ones split into ~4 chunks per thread for
/// load balance. A thread-count-dependent grain is safe here because the
/// kernels compute each output element in a partition-independent order
/// (see kernels.hpp), so the partition never shows up in the bits.
std::size_t gemm_grain(std::size_t m, std::size_t k, std::size_t n) {
  const std::size_t flops = 2 * m * k * n;
  if (flops < kSerialFlopThreshold) {
    return m;  // single chunk -> parallel_for runs it inline
  }
  const std::size_t threads = parallel_threads();
  return std::max<std::size_t>(1, (m + 4 * threads - 1) / (4 * threads));
}

/// C += A * B via the active kernel, threaded over row chunks. Threads
/// write disjoint rows of C, so results are bit-identical at any thread
/// count.
void gemm_dispatch(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n) {
  const kernels::KernelSet& ks = kernels::select();
  parallel_for(0, m, gemm_grain(m, k, n),
               [&](std::size_t row_begin, std::size_t row_end) {
                 ks.gemm(a, b, c, m, k, n, row_begin, row_end);
               });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul inner dimension mismatch: " +
                     a.shape().to_string() + " x " + b.shape().to_string());
  }
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm_dispatch(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  check_rank2(c, "C");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k || c.shape()[0] != m || c.shape()[1] != b.shape()[1]) {
    throw ShapeError("matmul_accumulate shape mismatch");
  }
  gemm_dispatch(a.data(), b.data(), c.data(), m, k, b.shape()[1]);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t k = a.shape()[0];
  const std::size_t m = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul_tn inner dimension mismatch");
  }
  const std::size_t n = b.shape()[1];
  // Materialize A^T (an O(k*m) copy, negligible next to the O(m*k*n)
  // multiply) and reuse the row-parallel GEMM. The previous in-place
  // formulation chunked C's columns at a fixed 128, which serialized
  // every backward pass with n <= 128.
  const Tensor at = a.transposed();
  Tensor c(Shape{m, n});
  gemm_dispatch(at.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[1] != k) {
    throw ShapeError("matmul_nt inner dimension mismatch");
  }
  const std::size_t n = b.shape()[0];
  Tensor c(Shape{m, n});
  const kernels::KernelSet& ks = kernels::select();
  parallel_for(0, m, gemm_grain(m, k, n),
               [&](std::size_t row_begin, std::size_t row_end) {
                 ks.gemm_nt(a.data(), b.data(), c.data(), m, k, n, row_begin,
                            row_end);
               });
  return c;
}

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  if (b.shape()[0] != k) {
    throw ShapeError("matmul_naive inner dimension mismatch");
  }
  const std::size_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  // Same float accumulation policy as the dispatched kernels (see
  // matmul.hpp); ascending-k order makes this the order-exact reference
  // for the scalar variant.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

}  // namespace xbarlife
