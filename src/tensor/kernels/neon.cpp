// NEON kernel variant for aarch64, where NEON (ASIMD) is architectural.
// Not compiled on other targets; the registry sees nullptr there.
#include <cstring>

#include "tensor/kernels/kernels.hpp"

#if defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace xbarlife::kernels {
namespace {

// Same blocking story as the scalar variant but with explicit 4-wide
// axpy over C's row. Per output element the accumulation is ascending-k
// fused multiply-adds, independent of the caller's row partition.
void gemm_neon(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, std::size_t row_begin,
               std::size_t row_end) {
  (void)m;
  constexpr std::size_t kBlockK = 64;
  const std::size_t n4 = n - n % 4;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = k0 + kBlockK < k ? k0 + kBlockK : k;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float32x4_t av = vdupq_n_f32(a[i * k + kk]);
        const float* brow = b + kk * n;
        std::size_t j = 0;
        for (; j < n4; j += 4) {
          vst1q_f32(crow + j,
                    vfmaq_f32(vld1q_f32(crow + j), av, vld1q_f32(brow + j)));
        }
        for (; j < n; ++j) {
          crow[j] += a[i * k + kk] * brow[j];
        }
      }
    }
  }
}

void gemm_nt_neon(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, std::size_t row_begin,
                  std::size_t row_end) {
  (void)m;
  const std::size_t k4 = k - k % 4;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (std::size_t kk = 0; kk < k4; kk += 4) {
        acc = vfmaq_f32(acc, vld1q_f32(arow + kk), vld1q_f32(brow + kk));
      }
      float sum = vaddvq_f32(acc);
      for (std::size_t kk = k4; kk < k; ++kk) {
        sum += arow[kk] * brow[kk];
      }
      crow[j] += sum;
    }
  }
}

void vmm_neon(const float* v, const float* g, float* out, std::size_t rows,
              std::size_t cols, std::size_t col_begin, std::size_t col_end) {
  const std::size_t span = col_end - col_begin;
  const std::size_t body = span - span % 4;
  for (std::size_t r = 0; r < rows; ++r) {
    const float vr = v[r];
    const float32x4_t vv = vdupq_n_f32(vr);
    const float* grow = g + r * cols + col_begin;
    float* orow = out + col_begin;
    std::size_t c = 0;
    for (; c < body; c += 4) {
      vst1q_f32(orow + c,
                vfmaq_f32(vld1q_f32(orow + c), vv, vld1q_f32(grow + c)));
    }
    for (; c < span; ++c) {
      orow[c] += vr * grow[c];
    }
  }
}

void gemm_s8_neon(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                  std::size_t m, std::size_t k, std::size_t n,
                  std::size_t row_begin, std::size_t row_end) {
  (void)m;
  const std::size_t n8 = n - n % 8;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::size_t j0 = 0; j0 < n8; j0 += 8) {
      int32x4_t acc_lo = vdupq_n_s32(0);
      int32x4_t acc_hi = vdupq_n_s32(0);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const int16x8_t bv = vmovl_s8(vld1_s8(b + kk * n + j0));
        const int16x8_t prod = vmulq_n_s16(bv, arow[kk]);
        acc_lo = vaddw_s16(acc_lo, vget_low_s16(prod));
        acc_hi = vaddw_s16(acc_hi, vget_high_s16(prod));
      }
      vst1q_s32(crow + j0, vaddq_s32(vld1q_s32(crow + j0), acc_lo));
      vst1q_s32(crow + j0 + 4, vaddq_s32(vld1q_s32(crow + j0 + 4), acc_hi));
    }
    for (std::size_t j = n8; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[kk * n + j]);
      }
      crow[j] += acc;
    }
  }
}

void copy_row_neon(const float* src, float* dst, std::size_t n) {
  std::memcpy(dst, src, n * sizeof(float));
}

constexpr KernelSet kNeon{
    "neon",       gemm_neon,    gemm_nt_neon,
    vmm_neon,     gemm_s8_neon, copy_row_neon,
};

}  // namespace

const KernelSet* neon_kernels() { return &kNeon; }

}  // namespace xbarlife::kernels

#else  // !aarch64 NEON

namespace xbarlife::kernels {
const KernelSet* neon_kernels() { return nullptr; }
}  // namespace xbarlife::kernels

#endif
