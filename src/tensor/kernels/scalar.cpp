// Portable scalar kernel variant. This file must stay free of
// target-specific intrinsics and is compiled without extra ISA flags so
// it runs on the x86-64/aarch64 baseline; it is also the variant pinned
// by golden tests (XBARLIFE_KERNEL=scalar) for host-independent bytes.
#include <cstring>

#include "tensor/kernels/kernels.hpp"

namespace xbarlife::kernels {
namespace {

// Cache-blocked i-k-j loop: the innermost loop is a contiguous axpy over
// C's row, which the compiler auto-vectorizes. Per output element the
// accumulation is plain ascending-k float adds — independent of
// row_begin/row_end, so any caller partition yields identical bits.
void gemm_scalar(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, std::size_t row_begin,
                 std::size_t row_end) {
  (void)m;
  constexpr std::size_t kBlockK = 64;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = k0 + kBlockK < k ? k0 + kBlockK : k;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      float* crow = c + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void gemm_nt_scalar(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n, std::size_t row_begin,
                    std::size_t row_end) {
  (void)m;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] += acc;
    }
  }
}

void vmm_scalar(const float* v, const float* g, float* out, std::size_t rows,
                std::size_t cols, std::size_t col_begin,
                std::size_t col_end) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float vr = v[r];
    const float* grow = g + r * cols;
    for (std::size_t c = col_begin; c < col_end; ++c) {
      out[c] += vr * grow[c];
    }
  }
}

void gemm_s8_scalar(const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t row_begin,
                    std::size_t row_end) {
  (void)m;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int32_t aik = arow[kk];
      const std::int8_t* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aik * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

void copy_row_scalar(const float* src, float* dst, std::size_t n) {
  std::memcpy(dst, src, n * sizeof(float));
}

constexpr KernelSet kScalar{
    "scalar",        gemm_scalar,    gemm_nt_scalar,
    vmm_scalar,      gemm_s8_scalar, copy_row_scalar,
};

}  // namespace

const KernelSet* scalar_kernels() { return &kScalar; }

}  // namespace xbarlife::kernels
