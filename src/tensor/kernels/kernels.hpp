// Runtime-dispatched compute kernels.
//
// Every dense inner loop in the simulator (GEMM, the crossbar VMM, the
// im2col row copy, the int8 quantized GEMM) funnels through a KernelSet
// chosen once at startup: AVX2+FMA on capable x86-64, NEON on aarch64,
// and a portable scalar fallback everywhere. Selection is overridable
// with the XBARLIFE_KERNEL environment variable or the CLI --kernel flag
// (values: auto, scalar, avx2, neon).
//
// Determinism contract: each kernel computes every output element with a
// fixed ascending-k accumulation order that depends only on the operand
// shapes — never on how callers partition rows/columns across threads.
// Results are therefore bit-identical at any thread count *per dispatch
// variant*. Different variants (scalar vs avx2) may differ in the last
// ulp because the vector kernels use FMA; tests and goldens that need
// host-independent bytes pin XBARLIFE_KERNEL=scalar.
//
// Accumulation policy: float accumulators everywhere (scalar included).
// See docs/kernels.md for the rationale and the error model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xbarlife::kernels {

/// A dispatch variant: one set of serial per-chunk compute primitives.
/// Threading lives in the callers (matmul.cpp, crossbar.cpp), which
/// partition output rows/columns and invoke these on disjoint slices.
struct KernelSet {
  /// Variant name as reported by kernel_name(): "scalar", "avx2", "neon".
  const char* name;

  /// C(MxN) += A(MxK) * B(KxN), row-major, serial over [row_begin, row_end).
  /// Callers zero C first for a plain product.
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, std::size_t row_begin,
               std::size_t row_end);

  /// C(MxN) += A(MxK) * B^T where b is (N x K) row-major: independent dot
  /// products c[i][j] += dot(a_row_i, b_row_j) over [row_begin, row_end).
  void (*gemm_nt)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, std::size_t row_begin,
                  std::size_t row_end);

  /// Crossbar vector-matrix multiply: out[c] = sum_r v[r] * g[r*cols + c]
  /// for c in [col_begin, col_end). `out` is pre-zeroed by the caller.
  void (*vmm)(const float* v, const float* g, float* out, std::size_t rows,
              std::size_t cols, std::size_t col_begin, std::size_t col_end);

  /// Int8 GEMM: C(MxN, int32) += A(MxK, int8) * B(KxN, int8). Integer
  /// accumulation is exact, so this is order-independent and identical
  /// across variants by construction.
  void (*gemm_s8)(const std::int8_t* a, const std::int8_t* b,
                  std::int32_t* c, std::size_t m, std::size_t k,
                  std::size_t n, std::size_t row_begin, std::size_t row_end);

  /// Contiguous row copy used by im2col's patch gather (pure data
  /// movement; bit-exact across variants by construction).
  void (*copy_row)(const float* src, float* dst, std::size_t n);
};

/// Returns the active kernel set. First call resolves XBARLIFE_KERNEL
/// (throws InvalidArgument for unknown values); afterwards it is a single
/// atomic load. Thread-safe.
const KernelSet& select();

/// Forces the active variant by name ("scalar", "avx2", "neon"); "auto"
/// or "" re-runs CPU detection. Throws InvalidArgument when the variant
/// is unknown or not compiled into this binary, listing what is.
void set_kernel(const std::string& name);

/// Name of the active variant ("scalar", "avx2", "neon").
const char* kernel_name();

/// Names of every variant compiled in and usable on this CPU.
std::vector<std::string> available();

}  // namespace xbarlife::kernels
