#include "tensor/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"

namespace xbarlife::kernels {

// Each variant translation unit exports its KernelSet, or nullptr when
// the variant is not compiled for this target (see scalar.cpp, avx2.cpp,
// neon.cpp).
const KernelSet* scalar_kernels();
const KernelSet* avx2_kernels();
const KernelSet* neon_kernels();

namespace {

/// True when the running CPU can execute the AVX2+FMA kernels.
bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// True when the running CPU can execute the NEON kernels. The NEON
/// variant is only compiled for aarch64, where NEON is architectural.
bool cpu_has_neon() {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

const KernelSet* detect_best() {
  if (const KernelSet* k = avx2_kernels(); k != nullptr && cpu_has_avx2_fma()) {
    return k;
  }
  if (const KernelSet* k = neon_kernels(); k != nullptr && cpu_has_neon()) {
    return k;
  }
  return scalar_kernels();
}

const KernelSet* resolve(const std::string& name) {
  if (name.empty() || name == "auto") {
    return detect_best();
  }
  if (name == "scalar") {
    return scalar_kernels();
  }
  if (name == "avx2") {
    const KernelSet* k = avx2_kernels();
    if (k != nullptr && cpu_has_avx2_fma()) {
      return k;
    }
    return nullptr;
  }
  if (name == "neon") {
    const KernelSet* k = neon_kernels();
    if (k != nullptr && cpu_has_neon()) {
      return k;
    }
    return nullptr;
  }
  return nullptr;
}

std::string available_list() {
  std::string out;
  for (const std::string& name : available()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

std::atomic<const KernelSet*> g_active{nullptr};

/// First-use initialization from XBARLIFE_KERNEL. A racing pair of
/// threads would resolve the same value and store the same pointer, so
/// the race is benign.
const KernelSet* init_from_env() {
  const char* env = std::getenv("XBARLIFE_KERNEL");
  const std::string name = env != nullptr ? env : "";
  const KernelSet* k = resolve(name);
  if (k == nullptr) {
    throw InvalidArgument("XBARLIFE_KERNEL=" + name +
                          " is not a usable kernel variant on this host "
                          "(available: " +
                          available_list() + ")");
  }
  g_active.store(k, std::memory_order_release);
  return k;
}

}  // namespace

const KernelSet& select() {
  const KernelSet* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = init_from_env();
  }
  return *k;
}

void set_kernel(const std::string& name) {
  const KernelSet* k = resolve(name);
  if (k == nullptr) {
    throw InvalidArgument("unknown or unavailable kernel variant '" + name +
                          "' (available: " + available_list() + ")");
  }
  g_active.store(k, std::memory_order_release);
}

const char* kernel_name() { return select().name; }

std::vector<std::string> available() {
  std::vector<std::string> out;
  if (const KernelSet* k = avx2_kernels(); k != nullptr && cpu_has_avx2_fma()) {
    out.emplace_back(k->name);
  }
  if (const KernelSet* k = neon_kernels(); k != nullptr && cpu_has_neon()) {
    out.emplace_back(k->name);
  }
  out.emplace_back(scalar_kernels()->name);
  return out;
}

}  // namespace xbarlife::kernels
