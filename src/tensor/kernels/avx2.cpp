// AVX2+FMA kernel variant. Compiled with -mavx2 -mfma on x86 targets
// only (see src/tensor/CMakeLists.txt); on other targets the whole body
// compiles away and avx2_kernels() returns nullptr so the registry never
// offers it. The registry additionally gates on runtime CPUID, so this
// code never executes on a CPU without AVX2+FMA.
#include <cstring>

#include "tensor/kernels/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace xbarlife::kernels {
namespace {

// GEBP-style blocking: an MR x NR register tile over a packed KC-deep
// panel of B. NR = 16 floats = two ymm registers; with MR = 6 the tile
// uses 12 accumulator registers plus 2 for B and 1 broadcast — within
// the 16 ymm budget.
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
constexpr std::size_t kKc = 256;

// Sliding-window mask table: loading 8 lanes starting at (8 - active)
// yields `active` leading -1 lanes followed by zeros.
alignas(32) constexpr std::int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1,
                                                     -1, -1, 0,  0,  0,  0,
                                                     0,  0,  0,  0};

inline __m256i tail_mask(std::size_t active) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - active));
}

/// Packs B[k0:k1, j0:j0+width] into a (k1-k0) x kNr column panel,
/// zero-padding the lanes past `width`. Zero pad lanes are safe: the
/// store side never writes them, and 0 * a stays confined to the lane.
inline void pack_b(const float* b, float* panel, std::size_t n,
                   std::size_t k0, std::size_t k1, std::size_t j0,
                   std::size_t width) {
  for (std::size_t kk = k0; kk < k1; ++kk) {
    const float* src = b + kk * n + j0;
    float* dst = panel + (kk - k0) * kNr;
    std::size_t j = 0;
    for (; j < width; ++j) {
      dst[j] = src[j];
    }
    for (; j < kNr; ++j) {
      dst[j] = 0.0f;
    }
  }
}

/// rows x kNr register tile: C[i0:i0+rows, j0:j0+width] += A-slice times
/// the packed panel. Every output element is an ascending-k FMA chain —
/// the order depends only on (k, blocking constants), never on how the
/// caller partitioned rows, so results are bit-identical at any thread
/// count.
///
/// The accumulators are individually named __m256 locals on purpose:
/// with `__m256 acc[kRows]` arrays gcc keeps the tile in stack memory
/// and interchanges the loops, turning the register tile into a
/// load-FMA-store stream at a third of the throughput. Named locals +
/// if constexpr pin all 12 accumulators in ymm registers.
template <std::size_t kRows>
inline void micro_kernel(const float* a, const float* panel, float* c,
                         std::size_t k, std::size_t n, std::size_t i0,
                         std::size_t j0, std::size_t k0, std::size_t kc,
                         std::size_t width) {
  static_assert(kRows >= 1 && kRows <= kMr);
  const __m256 zero = _mm256_setzero_ps();
  __m256 c0l = zero, c0h = zero, c1l = zero, c1h = zero;
  __m256 c2l = zero, c2h = zero, c3l = zero, c3h = zero;
  __m256 c4l = zero, c4h = zero, c5l = zero, c5h = zero;
  const float* ap = a + i0 * k + k0;
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b_lo = _mm256_load_ps(panel + kk * kNr);
    const __m256 b_hi = _mm256_load_ps(panel + kk * kNr + 8);
    __m256 a_bc = _mm256_broadcast_ss(ap + kk);
    c0l = _mm256_fmadd_ps(a_bc, b_lo, c0l);
    c0h = _mm256_fmadd_ps(a_bc, b_hi, c0h);
    if constexpr (kRows > 1) {
      a_bc = _mm256_broadcast_ss(ap + k + kk);
      c1l = _mm256_fmadd_ps(a_bc, b_lo, c1l);
      c1h = _mm256_fmadd_ps(a_bc, b_hi, c1h);
    }
    if constexpr (kRows > 2) {
      a_bc = _mm256_broadcast_ss(ap + 2 * k + kk);
      c2l = _mm256_fmadd_ps(a_bc, b_lo, c2l);
      c2h = _mm256_fmadd_ps(a_bc, b_hi, c2h);
    }
    if constexpr (kRows > 3) {
      a_bc = _mm256_broadcast_ss(ap + 3 * k + kk);
      c3l = _mm256_fmadd_ps(a_bc, b_lo, c3l);
      c3h = _mm256_fmadd_ps(a_bc, b_hi, c3h);
    }
    if constexpr (kRows > 4) {
      a_bc = _mm256_broadcast_ss(ap + 4 * k + kk);
      c4l = _mm256_fmadd_ps(a_bc, b_lo, c4l);
      c4h = _mm256_fmadd_ps(a_bc, b_hi, c4h);
    }
    if constexpr (kRows > 5) {
      a_bc = _mm256_broadcast_ss(ap + 5 * k + kk);
      c5l = _mm256_fmadd_ps(a_bc, b_lo, c5l);
      c5h = _mm256_fmadd_ps(a_bc, b_hi, c5h);
    }
  }
  const std::size_t lo_active = width < 8 ? width : 8;
  const std::size_t hi_active = width > 8 ? width - 8 : 0;
  const __m256i m_lo = tail_mask(lo_active);
  const __m256i m_hi = tail_mask(hi_active);
  const __m256 acc_lo[kMr] = {c0l, c1l, c2l, c3l, c4l, c5l};
  const __m256 acc_hi[kMr] = {c0h, c1h, c2h, c3h, c4h, c5h};
  for (std::size_t r = 0; r < kRows; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    const __m256 c_lo = _mm256_maskload_ps(crow, m_lo);
    _mm256_maskstore_ps(crow, m_lo, _mm256_add_ps(c_lo, acc_lo[r]));
    if (hi_active > 0) {
      const __m256 c_hi = _mm256_maskload_ps(crow + 8, m_hi);
      _mm256_maskstore_ps(crow + 8, m_hi, _mm256_add_ps(c_hi, acc_hi[r]));
    }
  }
}

void gemm_avx2(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n, std::size_t row_begin,
               std::size_t row_end) {
  (void)m;
  alignas(32) float panel[kKc * kNr];
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kc = (k0 + kKc < k ? k0 + kKc : k) - k0;
    for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
      const std::size_t width = j0 + kNr < n ? kNr : n - j0;
      pack_b(b, panel, n, k0, k0 + kc, j0, width);
      std::size_t i = row_begin;
      for (; i + kMr <= row_end; i += kMr) {
        micro_kernel<kMr>(a, panel, c, k, n, i, j0, k0, kc, width);
      }
      switch (row_end - i) {
        case 1:
          micro_kernel<1>(a, panel, c, k, n, i, j0, k0, kc, width);
          break;
        case 2:
          micro_kernel<2>(a, panel, c, k, n, i, j0, k0, kc, width);
          break;
        case 3:
          micro_kernel<3>(a, panel, c, k, n, i, j0, k0, kc, width);
          break;
        case 4:
          micro_kernel<4>(a, panel, c, k, n, i, j0, k0, kc, width);
          break;
        case 5:
          micro_kernel<5>(a, panel, c, k, n, i, j0, k0, kc, width);
          break;
        default:
          break;
      }
    }
  }
}

/// Horizontal sum with a fixed lane-pairing order (identical for every
/// element, so per-variant determinism holds).
inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

void gemm_nt_avx2(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, std::size_t row_begin,
                  std::size_t row_end) {
  (void)m;
  const std::size_t k8 = k - k % 8;
  const __m256i m_tail = tail_mask(k % 8);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t kk = 0; kk < k8; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(brow + kk), acc);
      }
      if (k8 < k) {
        const __m256 av = _mm256_maskload_ps(arow + k8, m_tail);
        const __m256 bv = _mm256_maskload_ps(brow + k8, m_tail);
        acc = _mm256_fmadd_ps(av, bv, acc);
      }
      crow[j] += hsum(acc);
    }
  }
}

void vmm_avx2(const float* v, const float* g, float* out, std::size_t rows,
              std::size_t cols, std::size_t col_begin, std::size_t col_end) {
  const std::size_t span = col_end - col_begin;
  const std::size_t body = span - span % 8;
  const __m256i m_tail = tail_mask(span % 8);
  for (std::size_t r = 0; r < rows; ++r) {
    const __m256 vr = _mm256_broadcast_ss(v + r);
    const float* grow = g + r * cols + col_begin;
    float* orow = out + col_begin;
    for (std::size_t c = 0; c < body; c += 8) {
      _mm256_storeu_ps(orow + c,
                       _mm256_fmadd_ps(vr, _mm256_loadu_ps(grow + c),
                                       _mm256_loadu_ps(orow + c)));
    }
    if (body < span) {
      const __m256 gv = _mm256_maskload_ps(grow + body, m_tail);
      const __m256 ov = _mm256_maskload_ps(orow + body, m_tail);
      _mm256_maskstore_ps(orow + body, m_tail, _mm256_fmadd_ps(vr, gv, ov));
    }
  }
}

// Int8 GEMM. Deliberately avoids _mm256_maddubs_epi16, whose pairwise
// s16 sums saturate; cvtepi8_epi16 + mullo_epi16 keeps every product
// exact (|product| <= 128*128 < 2^15) before widening to s32, so the
// result is identical to the scalar variant for all inputs.
void gemm_s8_avx2(const std::int8_t* a, const std::int8_t* b,
                  std::int32_t* c, std::size_t m, std::size_t k,
                  std::size_t n, std::size_t row_begin, std::size_t row_end) {
  (void)m;
  const std::size_t n16 = n - n % 16;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::size_t j0 = 0; j0 < n16; j0 += 16) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256i av = _mm256_set1_epi16(arow[kk]);
        const __m128i b8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + kk * n + j0));
        const __m256i prod =
            _mm256_mullo_epi16(_mm256_cvtepi8_epi16(b8), av);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
      }
      __m256i* c0 = reinterpret_cast<__m256i*>(crow + j0);
      __m256i* c1 = reinterpret_cast<__m256i*>(crow + j0 + 8);
      _mm256_storeu_si256(c0,
                          _mm256_add_epi32(_mm256_loadu_si256(c0), acc0));
      _mm256_storeu_si256(c1,
                          _mm256_add_epi32(_mm256_loadu_si256(c1), acc1));
    }
    for (std::size_t j = n16; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[kk * n + j]);
      }
      crow[j] += acc;
    }
  }
}

void copy_row_avx2(const float* src, float* dst, std::size_t n) {
  std::memcpy(dst, src, n * sizeof(float));
}

constexpr KernelSet kAvx2{
    "avx2",       gemm_avx2,    gemm_nt_avx2,
    vmm_avx2,     gemm_s8_avx2, copy_row_avx2,
};

}  // namespace

const KernelSet* avx2_kernels() { return &kAvx2; }

}  // namespace xbarlife::kernels

#else  // !(__AVX2__ && __FMA__)

namespace xbarlife::kernels {
const KernelSet* avx2_kernels() { return nullptr; }
}  // namespace xbarlife::kernels

#endif
