#include "tensor/shape.hpp"

#include <sstream>

#include "common/error.hpp"

namespace xbarlife {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

std::size_t Shape::dim(std::size_t axis) const {
  XB_CHECK(axis < dims_.size(), "shape axis out of range: " + to_string());
  return dims_[axis];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) {
    n *= d;
  }
  return n;
}

std::vector<std::size_t> Shape::strides() const {
  std::vector<std::size_t> s(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    oss << (i ? ", " : "") << dims_[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace xbarlife
