// Tensor shape algebra.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace xbarlife {

/// Dense row-major shape: dims_[0] is the slowest-varying dimension.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::size_t dim(std::size_t axis) const;
  std::size_t operator[](std::size_t axis) const { return dim(axis); }

  /// Total number of elements; 1 for a rank-0 (scalar) shape.
  std::size_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides (stride of the last axis is 1).
  std::vector<std::size_t> strides() const;

  /// "[2, 3, 4]"
  std::string to_string() const;

  const std::vector<std::size_t>& dims() const { return dims_; }

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace xbarlife
