#include "tensor/im2col.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace xbarlife {

void ConvGeometry::validate() const {
  XB_CHECK(in_channels > 0 && in_h > 0 && in_w > 0, "empty conv input");
  XB_CHECK(kernel > 0, "kernel must be positive");
  XB_CHECK(stride > 0, "stride must be positive");
  XB_CHECK(in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
           "kernel larger than padded input");
}

Tensor im2col(const Tensor& image, const ConvGeometry& g) {
  g.validate();
  XB_CHECK(image.numel() == g.in_channels * g.in_h * g.in_w,
           "im2col input numel mismatch");
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  Tensor patches(Shape{oh * ow, g.patch_size()});
  const float* src = image.data();
  float* dst = patches.data();
  const kernels::KernelSet& ks = kernels::select();
  // Each output row owns a disjoint slice of `patches`, so the gather can
  // fan out over rows without changing any result bit (the kernel row
  // copy is pure data movement, identical across dispatch variants).
  parallel_for(0, oh, 8, [&](std::size_t oy_begin, std::size_t oy_end) {
    for (std::size_t oy = oy_begin; oy < oy_end; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* row = dst + (oy * ow + ox) * g.patch_size();
        // For fixed (ox, ky) the source column ix = ox*stride + kx - pad
        // advances by exactly 1 per kx, so each kernel row splits into
        // left zero-pad, one contiguous copy, and right zero-pad.
        const auto base = static_cast<long long>(ox * g.stride) -
                          static_cast<long long>(g.pad);
        const auto kernel_ll = static_cast<long long>(g.kernel);
        const long long lo = std::clamp(-base, 0LL, kernel_ll);
        const long long hi =
            std::clamp(static_cast<long long>(g.in_w) - base, lo, kernel_ll);
        std::size_t idx = 0;
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky, idx += g.kernel) {
            // Signed arithmetic for the padded coordinate.
            const auto iy = static_cast<long long>(oy * g.stride + ky) -
                            static_cast<long long>(g.pad);
            if (iy < 0 || iy >= static_cast<long long>(g.in_h) || hi == lo) {
              std::fill(row + idx, row + idx + g.kernel, 0.0f);
              continue;
            }
            const float* src_row =
                src + (c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w;
            std::fill(row + idx, row + idx + static_cast<std::size_t>(lo),
                      0.0f);
            const auto run = static_cast<std::size_t>(hi - lo);
            // An indirect kernel call costs more than it saves on the
            // few-float runs of small convolutions; copy those inline.
            if (run < 16) {
              std::copy_n(src_row + base + lo, run,
                          row + idx + static_cast<std::size_t>(lo));
            } else {
              ks.copy_row(src_row + base + lo,
                          row + idx + static_cast<std::size_t>(lo), run);
            }
            std::fill(row + idx + static_cast<std::size_t>(hi),
                      row + idx + g.kernel, 0.0f);
          }
        }
      }
    }
  });
  return patches;
}

Tensor col2im(const Tensor& patches, const ConvGeometry& g) {
  g.validate();
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  XB_CHECK(patches.shape().rank() == 2 &&
               patches.shape()[0] == oh * ow &&
               patches.shape()[1] == g.patch_size(),
           "col2im patch shape mismatch");
  Tensor image(Shape{g.in_channels * g.in_h * g.in_w});
  float* dst = image.data();
  const float* src = patches.data();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* row = src + (oy * ow + ox) * g.patch_size();
      std::size_t idx = 0;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          const auto iy = static_cast<long long>(oy * g.stride + ky) -
                          static_cast<long long>(g.pad);
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++idx) {
            const auto ix = static_cast<long long>(ox * g.stride + kx) -
                            static_cast<long long>(g.pad);
            if (iy >= 0 && ix >= 0 &&
                iy < static_cast<long long>(g.in_h) &&
                ix < static_cast<long long>(g.in_w)) {
              dst[(c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                  static_cast<std::size_t>(ix)] += row[idx];
            }
          }
        }
      }
    }
  }
  return image;
}

}  // namespace xbarlife
