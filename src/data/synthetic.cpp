#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace xbarlife::data {

namespace {

/// One class's band-limited texture model: a handful of 2-D sinusoids with
/// class-specific frequency, phase and orientation per channel.
struct TextureWave {
  double fx;
  double fy;
  double phase;
  double amplitude;
};

struct ClassModel {
  // waves[channel][wave]
  std::vector<std::vector<TextureWave>> waves;
};

ClassModel make_class_model(const SyntheticSpec& spec, Rng& rng) {
  ClassModel model;
  model.waves.resize(spec.channels);
  for (auto& channel_waves : model.waves) {
    channel_waves.reserve(spec.texture_waves);
    for (std::size_t w = 0; w < spec.texture_waves; ++w) {
      TextureWave tw;
      // Low spatial frequencies (1..4 cycles across the image) keep the
      // texture learnable by small conv kernels.
      tw.fx = rng.uniform(0.5, 4.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
      tw.fy = rng.uniform(0.5, 4.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
      tw.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      tw.amplitude = rng.uniform(0.4, 1.0);
      channel_waves.push_back(tw);
    }
  }
  return model;
}

void render_sample(const SyntheticSpec& spec, const ClassModel& model,
                   Rng& rng, float* out) {
  // Per-sample nuisance parameters shared across the image.
  const double gain = rng.uniform(0.7, 1.3);
  const double dx = rng.uniform(-2.0, 2.0);
  const double dy = rng.uniform(-2.0, 2.0);
  const double h = static_cast<double>(spec.height);
  const double w = static_cast<double>(spec.width);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x, ++idx) {
        double v = 0.0;
        for (const TextureWave& tw : model.waves[c]) {
          const double arg =
              2.0 * std::numbers::pi *
                  (tw.fx * (static_cast<double>(x) + dx) / w +
                   tw.fy * (static_cast<double>(y) + dy) / h) +
              tw.phase;
          v += tw.amplitude * std::sin(arg);
        }
        v = gain * v / static_cast<double>(spec.texture_waves);
        v += rng.gaussian(0.0, spec.noise);
        out[idx] = static_cast<float>(v);
      }
    }
  }
}

Dataset render_split(const SyntheticSpec& spec,
                     const std::vector<ClassModel>& models,
                     std::size_t per_class, Rng& rng) {
  Dataset ds;
  ds.classes = spec.classes;
  ds.channels = spec.channels;
  ds.height = spec.height;
  ds.width = spec.width;
  const std::size_t n = per_class * spec.classes;
  ds.images = Tensor(Shape{n, ds.features()});
  ds.labels.reserve(n);
  // Interleave classes so any prefix of the dataset is class-balanced.
  std::size_t row = 0;
  for (std::size_t s = 0; s < per_class; ++s) {
    for (std::size_t c = 0; c < spec.classes; ++c, ++row) {
      render_sample(spec, models[c], rng,
                    ds.images.data() + row * ds.features());
      ds.labels.push_back(static_cast<std::int32_t>(c));
    }
  }
  ds.validate();
  return ds;
}

}  // namespace

TrainTest make_synthetic(const SyntheticSpec& spec) {
  XB_CHECK(spec.classes > 0, "need at least one class");
  XB_CHECK(spec.train_per_class > 0 && spec.test_per_class > 0,
           "need positive sample counts");
  XB_CHECK(spec.channels > 0 && spec.height > 0 && spec.width > 0,
           "need positive image dims");
  XB_CHECK(spec.noise >= 0.0, "noise must be non-negative");
  XB_CHECK(spec.texture_waves > 0, "need at least one texture wave");

  Rng master(spec.seed);
  Rng model_rng = master.fork(0);
  std::vector<ClassModel> models;
  models.reserve(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    models.push_back(make_class_model(spec, model_rng));
  }
  Rng train_rng = master.fork(1);
  Rng test_rng = master.fork(2);
  TrainTest tt;
  tt.train = render_split(spec, models, spec.train_per_class, train_rng);
  tt.test = render_split(spec, models, spec.test_per_class, test_rng);
  return tt;
}

TrainTest make_synth_cifar10(std::size_t train_per_class,
                             std::size_t test_per_class,
                             std::uint64_t seed) {
  SyntheticSpec spec;
  spec.classes = 10;
  spec.train_per_class = train_per_class;
  spec.test_per_class = test_per_class;
  spec.seed = seed;
  return make_synthetic(spec);
}

TrainTest make_synth_cifar100(std::size_t train_per_class,
                              std::size_t test_per_class,
                              std::uint64_t seed) {
  SyntheticSpec spec;
  spec.classes = 100;
  spec.train_per_class = train_per_class;
  spec.test_per_class = test_per_class;
  // More waves per class so 100 prototypes stay distinguishable.
  spec.texture_waves = 6;
  spec.noise = 0.2;
  spec.seed = seed;
  return make_synthetic(spec);
}

TrainTest make_blobs(std::size_t classes, std::size_t features,
                     std::size_t train_per_class,
                     std::size_t test_per_class, double spread,
                     std::uint64_t seed) {
  XB_CHECK(classes > 0 && features > 0, "blobs need positive dims");
  XB_CHECK(spread >= 0.0, "spread must be non-negative");
  Rng master(seed);
  Rng center_rng = master.fork(0);
  std::vector<std::vector<float>> centers(classes,
                                          std::vector<float>(features));
  for (auto& center : centers) {
    for (float& v : center) {
      v = static_cast<float>(center_rng.gaussian(0.0, 1.0));
    }
  }
  auto render = [&](std::size_t per_class, Rng& rng) {
    Dataset ds;
    ds.classes = classes;
    ds.channels = 1;
    ds.height = 1;
    ds.width = features;
    const std::size_t n = per_class * classes;
    ds.images = Tensor(Shape{n, features});
    ds.labels.reserve(n);
    std::size_t row = 0;
    for (std::size_t s = 0; s < per_class; ++s) {
      for (std::size_t c = 0; c < classes; ++c, ++row) {
        float* out = ds.images.data() + row * features;
        for (std::size_t f = 0; f < features; ++f) {
          out[f] = centers[c][f] +
                   static_cast<float>(rng.gaussian(0.0, spread));
        }
        ds.labels.push_back(static_cast<std::int32_t>(c));
      }
    }
    ds.validate();
    return ds;
  };
  Rng train_rng = master.fork(1);
  Rng test_rng = master.fork(2);
  TrainTest tt;
  tt.train = render(train_per_class, train_rng);
  tt.test = render(test_per_class, test_rng);
  return tt;
}

}  // namespace xbarlife::data
