// Synthetic image-classification datasets.
//
// CIFAR-10/100 (used in the paper) cannot be redistributed with this repo,
// so the experiments run on deterministic synthetic look-alikes: each class
// owns a band-limited spatial texture prototype; samples are the prototype
// under random gain, shift and pixel noise. Difficulty is tunable through
// the noise level and the number of classes, and the generated tensors have
// the same layout a CIFAR loader would produce.
#pragma once

#include "data/dataset.hpp"

namespace xbarlife::data {

struct SyntheticSpec {
  std::size_t classes = 10;
  std::size_t train_per_class = 64;
  std::size_t test_per_class = 16;
  std::size_t channels = 3;
  std::size_t height = 32;
  std::size_t width = 32;
  /// Stddev of additive pixel noise (prototype amplitude is ~1).
  double noise = 0.25;
  /// Number of sinusoidal components per class prototype.
  std::size_t texture_waves = 4;
  std::uint64_t seed = 1;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generates the train/test pair described by `spec`. Deterministic in
/// spec.seed; train and test are disjoint draws from the same class models.
TrainTest make_synthetic(const SyntheticSpec& spec);

/// "SynthCifar10": 10-class default configuration at the given scale.
TrainTest make_synth_cifar10(std::size_t train_per_class,
                             std::size_t test_per_class,
                             std::uint64_t seed = 1);

/// "SynthCifar100": 100-class variant (harder: more classes, same pixels).
TrainTest make_synth_cifar100(std::size_t train_per_class,
                              std::size_t test_per_class,
                              std::uint64_t seed = 2);

/// Low-dimensional Gaussian-blob dataset for fast unit tests: `classes`
/// isotropic blobs in `features` dimensions.
TrainTest make_blobs(std::size_t classes, std::size_t features,
                     std::size_t train_per_class,
                     std::size_t test_per_class, double spread,
                     std::uint64_t seed = 3);

}  // namespace xbarlife::data
