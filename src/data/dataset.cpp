#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace xbarlife::data {

void Dataset::validate() const {
  XB_CHECK(images.shape().rank() == 2, "dataset images must be rank-2");
  XB_CHECK(images.shape()[0] == labels.size(),
           "dataset images/labels count mismatch");
  XB_CHECK(images.shape()[1] == features(),
           "dataset feature width mismatch");
  XB_CHECK(classes > 0, "dataset needs at least one class");
  for (std::int32_t label : labels) {
    XB_CHECK(label >= 0 && static_cast<std::size_t>(label) < classes,
             "dataset label out of range");
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.classes = classes;
  out.channels = channels;
  out.height = height;
  out.width = width;
  const std::size_t f = features();
  out.images = Tensor(Shape{indices.size(), f});
  out.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    XB_CHECK(src < size(), "subset index out of range");
    std::copy_n(images.data() + src * f, f, out.images.data() + i * f);
    out.labels.push_back(labels[src]);
  }
  return out;
}

Dataset Dataset::head(std::size_t count) const {
  count = std::min(count, size());
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), 0);
  return subset(idx);
}

Batch make_batch(const Dataset& ds, std::size_t start, std::size_t count) {
  XB_CHECK(start < ds.size(), "batch start out of range");
  count = std::min(count, ds.size() - start);
  const std::size_t f = ds.features();
  Batch batch;
  batch.images = Tensor(
      Shape{count, f},
      std::vector<float>(ds.images.data() + start * f,
                         ds.images.data() + (start + count) * f));
  batch.labels.assign(ds.labels.begin() + static_cast<std::ptrdiff_t>(start),
                      ds.labels.begin() +
                          static_cast<std::ptrdiff_t>(start + count));
  return batch;
}

std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

std::vector<std::size_t> class_counts(const Dataset& ds) {
  std::vector<std::size_t> counts(ds.classes, 0);
  for (std::int32_t label : ds.labels) {
    ++counts[static_cast<std::size_t>(label)];
  }
  return counts;
}

}  // namespace xbarlife::data
