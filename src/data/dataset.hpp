// In-memory labeled image dataset plus batching helpers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace xbarlife::data {

/// Dense dataset: one flat feature row per sample.
struct Dataset {
  Tensor images;                     ///< (n, channels*height*width)
  std::vector<std::int32_t> labels;  ///< n class indices
  std::size_t classes = 0;
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t size() const { return labels.size(); }
  std::size_t features() const { return channels * height * width; }

  /// Copies the samples selected by `indices` into a new dataset.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// First `count` samples (clamped); convenient for fast eval slices.
  Dataset head(std::size_t count) const;

  /// Validates internal consistency; throws on violation.
  void validate() const;
};

/// One minibatch view materialized as owned tensors.
struct Batch {
  Tensor images;                     ///< (batch, features)
  std::vector<std::int32_t> labels;  ///< batch labels
};

/// Copies samples [start, start+count) into a Batch. Clamps count to the
/// dataset end; requires start < size().
Batch make_batch(const Dataset& ds, std::size_t start, std::size_t count);

/// Random permutation of [0, n).
std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng);

/// Per-class sample counts; length == ds.classes.
std::vector<std::size_t> class_counts(const Dataset& ds);

}  // namespace xbarlife::data
