// Int8 quantized inference path.
//
// The aging-aware mapper already discretizes weights onto conductance
// levels; this module mirrors that scheme digitally so inference epochs
// can run on the int8 GEMM kernels (lib_nn-style: int32 accumulate, then
// a per-channel multiplier+bias requantize with saturation).
//
// Scheme (see docs/kernels.md):
//   * Weights: per-output-channel symmetric. With L usable conductance
//     levels, codes live in [-qmax, qmax], qmax = min(127, (L-1)/2), and
//     scale_j = max|W[:,j]| / qmax. Fewer levels on an aged array mean a
//     coarser grid — exactly the paper's accuracy-degradation mechanism.
//   * Activations: per-tensor asymmetric over [-127, 127] (avoiding
//     -128 keeps products exact in int16 for the SIMD kernels), range
//     taken from the batch's deterministic min/max.
//   * Accumulation: int32, exact, hence order-independent — the
//     quantized forward pass is byte-identical at any thread count and
//     across dispatch variants.
//   * Dequantization back to float between layers: with zero-point
//     correction, y = s_a * s_w[j] * (acc - zp_a * colsum_j) + bias[j],
//     which composes exactly with the float activation functions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace xbarlife::nn {

/// Quantization grid for one mappable weight matrix, derived from the
/// crossbar mapping (conductance level count and mapped weight window).
struct QuantSpec {
  /// Representable conductance levels of the target array (>= 2). 256
  /// models a fresh 8-bit array; aged arrays report fewer.
  std::size_t levels = 256;
  /// Optional clamp window applied to weights before coding — the
  /// mapper's representable weight range. Disabled while lo >= hi.
  float clamp_lo = 0.0f;
  float clamp_hi = 0.0f;

  bool has_clamp() const { return clamp_lo < clamp_hi; }
  /// Largest code magnitude for this grid.
  std::int32_t qmax() const;
};

/// An int8-coded matrix plus the affine decode parameters. `scales` and
/// `zero_points` hold one entry per column (per-channel weights) or a
/// single entry broadcast over the matrix (per-tensor activations).
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> codes;         ///< row-major, rows*cols
  std::vector<float> scales;              ///< size cols or 1
  std::vector<std::int32_t> zero_points;  ///< same size as scales

  bool per_channel() const { return scales.size() == cols; }
};

/// Per-output-channel symmetric weight quantization on `spec`'s grid.
/// w is (in, out); column j gets scale_j = max|W[:,j]| / qmax (after the
/// optional clamp), zero-point 0.
QuantizedTensor quantize_weights(const Tensor& w, const QuantSpec& spec);

/// Per-tensor asymmetric activation quantization to [-127, 127] from the
/// tensor's min/max (always covering 0 so the zero-point is exact).
QuantizedTensor quantize_activations(const Tensor& x);

/// The lib_nn-style requantize primitive: for each of the n int32
/// accumulators, out = saturate_int8(round(acc * multiplier + bias) +
/// zero_point) with round-half-away-from-zero and saturation to
/// [-128, 127].
void requantize(const std::int32_t* acc, std::size_t n, float multiplier,
                float bias, std::int32_t zero_point, std::int8_t* out);

/// y(float) = dequant(qa * qw) + bias: int8 GEMM with int32 accumulate
/// on the dispatched kernel, then per-channel zero-point-corrected
/// dequantization. qa is (m, k) per-tensor activations, qw (k, n)
/// per-channel weights; `bias` (size n) may be null.
Tensor quantized_linear(const QuantizedTensor& qa, const QuantizedTensor& qw,
                        const Tensor* bias);

}  // namespace xbarlife::nn
