#include "nn/layer.hpp"

namespace xbarlife::nn {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDense:
      return "dense";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kActivation:
      return "activation";
    case LayerKind::kFlatten:
      return "flatten";
    case LayerKind::kDropout:
      return "dropout";
  }
  return "unknown";
}

void Layer::zero_grad() {
  for (ParamRef& p : params()) {
    p.grad->zero();
  }
}

}  // namespace xbarlife::nn
