// Network parameter serialization.
//
// Simple self-describing binary container ("XBW1"): per parameter, the
// name, shape and float data. Covers the train-once / deploy-many workflow
// (train a network, persist it, map it onto crossbars later) without
// pulling in a serialization dependency.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace xbarlife::nn {

/// Writes every parameter (weights and biases) of `net` to `path`.
/// Throws xbarlife::Error on I/O failure.
void save_parameters(Network& net, const std::string& path);

/// Loads parameters saved by save_parameters into `net`. Names and shapes
/// must match exactly (same topology, same layer names); throws
/// InvalidArgument otherwise.
void load_parameters(Network& net, const std::string& path);

}  // namespace xbarlife::nn
