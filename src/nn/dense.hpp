// Fully-connected layer.
#pragma once

#include "nn/layer.hpp"

namespace xbarlife::nn {

/// y = x W + b with W of shape (in_features, out_features).
///
/// W is flagged mappable: on hardware it becomes one crossbar whose rows are
/// driven by the input voltages (Fig. 1 of the paper).
class Dense final : public Layer {
 public:
  /// He-style initialization scaled for the fan-in, bias zero.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
        std::string name);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_quantized(const Tensor& input,
                           const QuantSpec& spec) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::size_t output_features(std::size_t input_features) const override;
  LayerKind kind() const override { return LayerKind::kDense; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  const Tensor& weight() const { return weight_; }
  Tensor& weight() { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Tensor weight_;       // (in, out)
  Tensor bias_;         // (out)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_;        // cached forward input (batch, in)
};

}  // namespace xbarlife::nn
