#include "nn/optimizer.hpp"

#include "common/error.hpp"

namespace xbarlife::nn {

SgdOptimizer::SgdOptimizer(SgdConfig config) : config_(config) {
  XB_CHECK(config.learning_rate > 0.0, "learning rate must be positive");
  XB_CHECK(config.momentum >= 0.0 && config.momentum < 1.0,
           "momentum must lie in [0, 1)");
}

void SgdOptimizer::step(const std::vector<ParamRef>& params) {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  for (const ParamRef& p : params) {
    XB_CHECK(p.value != nullptr && p.grad != nullptr,
             "optimizer given null parameter");
    auto [it, inserted] = velocity_.try_emplace(p.value, p.value->shape());
    Tensor& v = it->second;
    XB_ASSERT(v.shape() == p.value->shape(),
              "velocity buffer shape drifted");
    for (std::size_t i = 0; i < v.numel(); ++i) {
      v[i] = mu * v[i] - lr * (*p.grad)[i];
      (*p.value)[i] += v[i];
    }
  }
}

void SgdOptimizer::set_learning_rate(double lr) {
  XB_CHECK(lr > 0.0, "learning rate must be positive");
  config_.learning_rate = lr;
}

}  // namespace xbarlife::nn
