// Layer abstraction for the training substrate.
//
// The paper trains LeNet-5 and VGG-16 in TensorFlow; this module provides
// the equivalent from-scratch substrate: layers expose forward/backward and
// their parameters, and the ones that own a weight *matrix* (dense, conv)
// flag it as mappable so the crossbar mapper can find every matrix that will
// live on a memristor array.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/quantized.hpp"
#include "tensor/tensor.hpp"

namespace xbarlife::nn {

enum class LayerKind {
  kDense,
  kConv,
  kPool,
  kActivation,
  kFlatten,
  kDropout,
};

/// Returns "dense", "conv", ... for reports.
std::string to_string(LayerKind kind);

/// Non-owning reference to one parameter tensor and its gradient.
struct ParamRef {
  std::string name;       ///< e.g. "conv1.weight"
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  /// True for the weight matrices that are mapped onto crossbars
  /// (biases and scalars stay in digital periphery).
  bool mappable = false;
};

/// Base class of all layers. Layers are stateful: forward caches whatever
/// backward needs, so a network instance must not be shared across threads.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes outputs for a batch. Input is rank-2: (batch, features).
  /// `training` enables stochastic behaviour (dropout).
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Int8 inference forward on `spec`'s quantization grid. Layers that
  /// own a mappable weight matrix (dense, conv) override this to run the
  /// quantized GEMM path; everything else ignores the spec and runs the
  /// exact float forward, which is what the mathematically equivalent
  /// dequantize-between-layers composition requires.
  virtual Tensor forward_quantized(const Tensor& input,
                                   const QuantSpec& spec) {
    (void)spec;
    return forward(input, /*training=*/false);
  }

  /// Propagates `grad_output` (same shape as the last forward output) back,
  /// accumulating parameter gradients and returning the input gradient.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameter references; empty for parameter-free layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Number of output features per sample given `input_features`.
  virtual std::size_t output_features(std::size_t input_features) const = 0;

  virtual LayerKind kind() const = 0;
  const std::string& name() const { return name_; }

  /// Zeroes all parameter gradients.
  void zero_grad();

 protected:
  explicit Layer(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace xbarlife::nn
