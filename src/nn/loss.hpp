// Softmax cross-entropy loss (Eq. (1), first term of the paper's cost).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace xbarlife::nn {

/// Combined softmax + cross-entropy head with the usual fused gradient
/// (softmax(x) - onehot(y)) / batch.
class SoftmaxCrossEntropy {
 public:
  /// Computes mean cross-entropy over the batch. `logits` is
  /// (batch, classes); `labels` holds class indices < classes.
  double forward(const Tensor& logits, std::span<const std::int32_t> labels);

  /// Gradient of the mean loss w.r.t. the logits of the last forward call.
  Tensor backward() const;

  /// Softmax probabilities of the last forward call.
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<std::int32_t> labels_;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const std::int32_t> labels);

}  // namespace xbarlife::nn
