#include "nn/dense.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/matmul.hpp"

namespace xbarlife::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             std::string name)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{in_features, out_features}),
      bias_(Shape{out_features}),
      weight_grad_(Shape{in_features, out_features}),
      bias_grad_(Shape{out_features}) {
  XB_CHECK(in_features > 0 && out_features > 0, "Dense needs positive dims");
  const auto scale = static_cast<float>(
      std::sqrt(2.0 / static_cast<double>(in_features)));
  weight_.fill_gaussian(rng, 0.0f, scale);
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == in_features_,
           "Dense " + name() + " expected (batch, " +
               std::to_string(in_features_) + "), got " +
               input.shape().to_string());
  input_ = input;
  Tensor out = matmul(input, weight_);
  const std::size_t batch = out.shape()[0];
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < out_features_; ++j) {
      out.at(b, j) += bias_[j];
    }
  }
  return out;
}

Tensor Dense::forward_quantized(const Tensor& input, const QuantSpec& spec) {
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == in_features_,
           "Dense " + name() + " expected (batch, " +
               std::to_string(in_features_) + "), got " +
               input.shape().to_string());
  // Weights are re-coded per call: the online tuner mutates them between
  // inference epochs, and coding is O(in*out) — noise next to the GEMM.
  const QuantizedTensor qw = quantize_weights(weight_, spec);
  const QuantizedTensor qa = quantize_activations(input);
  return quantized_linear(qa, qw, &bias_);
}

Tensor Dense::backward(const Tensor& grad_output) {
  XB_CHECK(grad_output.shape().rank() == 2 &&
               grad_output.shape()[0] == input_.shape()[0] &&
               grad_output.shape()[1] == out_features_,
           "Dense backward shape mismatch");
  // dW = x^T dy ; db = sum over batch of dy ; dx = dy W^T
  weight_grad_.add_(matmul_tn(input_, grad_output));
  const std::size_t batch = grad_output.shape()[0];
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t j = 0; j < out_features_; ++j) {
      bias_grad_[j] += grad_output.at(b, j);
    }
  }
  return matmul_nt(grad_output, weight_);
}

std::vector<ParamRef> Dense::params() {
  return {
      {name() + ".weight", &weight_, &weight_grad_, /*mappable=*/true},
      {name() + ".bias", &bias_, &bias_grad_, /*mappable=*/false},
  };
}

std::size_t Dense::output_features(std::size_t input_features) const {
  XB_CHECK(input_features == in_features_,
           "Dense feature-count mismatch in topology");
  return out_features_;
}

}  // namespace xbarlife::nn
