// Model zoo: the topologies evaluated in the paper.
//
// LeNet-5 (2 conv + 3 FC) and VGG-16 (13 conv + 3 FC) are built faithfully
// to the layer-type mix reported in Table I; VGG-16 takes a width
// multiplier so laptop-scale experiments keep the topology but shrink the
// channel counts (documented substitution, see DESIGN.md).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "nn/network.hpp"

namespace xbarlife::nn {

struct ImageSpec {
  std::size_t channels = 3;
  std::size_t height = 32;
  std::size_t width = 32;

  std::size_t features() const { return channels * height * width; }
};

/// Simple MLP: input -> hidden... -> classes, ReLU between layers.
Network make_mlp(std::size_t in_features,
                 const std::vector<std::size_t>& hidden,
                 std::size_t classes, Rng& rng,
                 const std::string& name = "mlp");

/// LeNet-5: conv(6@5x5) - maxpool2 - conv(16@5x5) - maxpool2 -
/// fc120 - fc84 - fc(classes), tanh activations (as in the original).
/// Requires height == width and (height/2 - 2)/2 >= 1 after the stack
/// (true for 32x32 and 28x28 inputs).
Network make_lenet5(const ImageSpec& input, std::size_t classes, Rng& rng);

/// VGG-16: 13 conv (3x3, pad 1) in five blocks with maxpool after each
/// block, then fc - fc - fc(classes), ReLU activations. `width` scales
/// every channel count (paper-faithful widths at width = 64). Requires
/// height == width and divisible by 32 (five 2x pools).
Network make_vgg16(const ImageSpec& input, std::size_t classes,
                   std::size_t width, Rng& rng);

/// Number of conv layers / dense layers in a network, for reports.
struct LayerMix {
  std::size_t conv = 0;
  std::size_t dense = 0;
};
LayerMix count_layer_mix(Network& net);

}  // namespace xbarlife::nn
