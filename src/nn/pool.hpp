// 2-D pooling layers (max and average) over NCHW features.
#pragma once

#include "nn/layer.hpp"

namespace xbarlife::nn {

struct PoolGeometry {
  std::size_t channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t window = 2;
  std::size_t stride = 2;

  std::size_t out_h() const { return (in_h - window) / stride + 1; }
  std::size_t out_w() const { return (in_w - window) / stride + 1; }
  void validate() const;
};

class MaxPool2D final : public Layer {
 public:
  MaxPool2D(PoolGeometry geometry, std::string name);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override;
  LayerKind kind() const override { return LayerKind::kPool; }
  const PoolGeometry& geometry() const { return geometry_; }

 private:
  PoolGeometry geometry_;
  std::vector<std::size_t> argmax_;  // winning flat input index per output
  std::size_t batch_ = 0;
};

class AvgPool2D final : public Layer {
 public:
  AvgPool2D(PoolGeometry geometry, std::string name);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override;
  LayerKind kind() const override { return LayerKind::kPool; }
  const PoolGeometry& geometry() const { return geometry_; }

 private:
  PoolGeometry geometry_;
  std::size_t batch_ = 0;
};

}  // namespace xbarlife::nn
