// Numerical gradient checking for the NN substrate. Test-support code, but
// shipped in the library so downstream users can validate custom layers.
#pragma once

#include <cstdint>
#include <span>

#include "nn/network.hpp"

namespace xbarlife::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t checked = 0;
};

/// Compares analytic parameter gradients against central finite differences
/// of the data loss. Checks at most `max_per_param` scalars per parameter
/// tensor (strided to cover the tensor). Dropout layers must be absent or
/// the comparison is meaningless.
GradCheckResult check_gradients(Network& net, const Tensor& input,
                                std::span<const std::int32_t> labels,
                                double eps = 1e-3,
                                std::size_t max_per_param = 24);

}  // namespace xbarlife::nn
