#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xbarlife::nn {

BatchNorm::BatchNorm(std::size_t features, double momentum, double epsilon,
                     std::string name)
    : Layer(std::move(name)),
      features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape{features}, 1.0f),
      beta_(Shape{features}),
      gamma_grad_(Shape{features}),
      beta_grad_(Shape{features}),
      running_mean_(Shape{features}),
      running_var_(Shape{features}, 1.0f) {
  XB_CHECK(features > 0, "BatchNorm needs at least one feature");
  XB_CHECK(momentum >= 0.0 && momentum < 1.0,
           "momentum must lie in [0, 1)");
  XB_CHECK(epsilon > 0.0, "epsilon must be positive");
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == features_,
           "BatchNorm " + name() + " expected (batch, " +
               std::to_string(features_) + "), got " +
               input.shape().to_string());
  batch_ = input.shape()[0];
  last_training_ = training;
  Tensor out(input.shape());
  x_hat_ = Tensor(input.shape());
  batch_inv_std_ = Tensor(Shape{features_});

  for (std::size_t f = 0; f < features_; ++f) {
    double mean;
    double var;
    if (training) {
      XB_CHECK(batch_ >= 2, "BatchNorm training needs batch >= 2");
      double sum = 0.0;
      for (std::size_t b = 0; b < batch_; ++b) {
        sum += input.at(b, f);
      }
      mean = sum / static_cast<double>(batch_);
      double sq = 0.0;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double d = input.at(b, f) - mean;
        sq += d * d;
      }
      var = sq / static_cast<double>(batch_);
      running_mean_[f] = static_cast<float>(
          momentum_ * running_mean_[f] + (1.0 - momentum_) * mean);
      running_var_[f] = static_cast<float>(
          momentum_ * running_var_[f] + (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[f];
      var = running_var_[f];
    }
    const double inv_std = 1.0 / std::sqrt(var + epsilon_);
    batch_inv_std_[f] = static_cast<float>(inv_std);
    for (std::size_t b = 0; b < batch_; ++b) {
      const double xh = (input.at(b, f) - mean) * inv_std;
      x_hat_.at(b, f) = static_cast<float>(xh);
      out.at(b, f) =
          static_cast<float>(gamma_[f] * xh + beta_[f]);
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  XB_CHECK(grad_output.shape().rank() == 2 &&
               grad_output.shape()[0] == batch_ &&
               grad_output.shape()[1] == features_,
           "BatchNorm backward shape mismatch");
  Tensor grad_input(grad_output.shape());
  const auto n = static_cast<double>(batch_);
  for (std::size_t f = 0; f < features_; ++f) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t b = 0; b < batch_; ++b) {
      const double dy = grad_output.at(b, f);
      sum_dy += dy;
      sum_dy_xhat += dy * x_hat_.at(b, f);
    }
    gamma_grad_[f] += static_cast<float>(sum_dy_xhat);
    beta_grad_[f] += static_cast<float>(sum_dy);
    if (last_training_) {
      // Training-mode statistics are functions of the batch:
      // dx = gamma*inv_std/n * (n*dy - sum(dy) - x_hat*sum(dy*x_hat)).
      const double scale = gamma_[f] * batch_inv_std_[f] / n;
      for (std::size_t b = 0; b < batch_; ++b) {
        const double dy = grad_output.at(b, f);
        grad_input.at(b, f) = static_cast<float>(
            scale * (n * dy - sum_dy - x_hat_.at(b, f) * sum_dy_xhat));
      }
    } else {
      // Inference-mode statistics are constants: dx = gamma*inv_std*dy.
      const double scale = gamma_[f] * batch_inv_std_[f];
      for (std::size_t b = 0; b < batch_; ++b) {
        grad_input.at(b, f) =
            static_cast<float>(scale * grad_output.at(b, f));
      }
    }
  }
  return grad_input;
}

std::vector<ParamRef> BatchNorm::params() {
  return {
      {name() + ".gamma", &gamma_, &gamma_grad_, /*mappable=*/false},
      {name() + ".beta", &beta_, &beta_grad_, /*mappable=*/false},
  };
}

std::size_t BatchNorm::output_features(std::size_t input_features) const {
  XB_CHECK(input_features == features_,
           "BatchNorm feature-count mismatch in topology");
  return features_;
}

}  // namespace xbarlife::nn
