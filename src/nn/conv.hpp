// 2-D convolution layer (square kernels) lowered to GEMM via im2col.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace xbarlife::nn {

/// Convolution over NCHW inputs flattened to (batch, C*H*W) rows.
///
/// The kernel tensor is stored as a (patch_size, out_channels) matrix so the
/// per-sample computation is `im2col(x) * W`, exactly the orientation the
/// crossbar mapper expects (inputs drive rows, output channels are columns).
class Conv2D final : public Layer {
 public:
  Conv2D(ConvGeometry geometry, std::size_t out_channels, Rng& rng,
         std::string name);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_quantized(const Tensor& input,
                           const QuantSpec& spec) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::size_t output_features(std::size_t input_features) const override;
  LayerKind kind() const override { return LayerKind::kConv; }

  const ConvGeometry& geometry() const { return geometry_; }
  std::size_t out_channels() const { return out_channels_; }
  const Tensor& weight() const { return weight_; }

 private:
  ConvGeometry geometry_;
  std::size_t out_channels_;
  Tensor weight_;       // (patch_size, out_channels)
  Tensor bias_;         // (out_channels)
  Tensor weight_grad_;
  Tensor bias_grad_;
  std::vector<Tensor> patches_;  // cached im2col per sample
};

}  // namespace xbarlife::nn
