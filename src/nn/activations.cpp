#include "nn/activations.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xbarlife::nn {

ReLU::ReLU(std::string name) : Layer(std::move(name)) {}

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  XB_CHECK(grad_output.shape() == mask_.shape(),
           "ReLU backward shape mismatch");
  return grad_output.mul(mask_);
}

Tanh::Tanh(std::string name) : Layer(std::move(name)) {}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  output_ = input;
  for (std::size_t i = 0; i < output_.numel(); ++i) {
    output_[i] = std::tanh(output_[i]);
  }
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  XB_CHECK(grad_output.shape() == output_.shape(),
           "Tanh backward shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= 1.0f - output_[i] * output_[i];
  }
  return grad;
}

Sigmoid::Sigmoid(std::string name) : Layer(std::move(name)) {}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  output_ = input;
  for (std::size_t i = 0; i < output_.numel(); ++i) {
    output_[i] = 1.0f / (1.0f + std::exp(-output_[i]));
  }
  return output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  XB_CHECK(grad_output.shape() == output_.shape(),
           "Sigmoid backward shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= output_[i] * (1.0f - output_[i]);
  }
  return grad;
}

Flatten::Flatten(std::string name) : Layer(std::move(name)) {}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  return input;
}

Tensor Flatten::backward(const Tensor& grad_output) { return grad_output; }

Dropout::Dropout(double rate, std::uint64_t seed, std::string name)
    : Layer(std::move(name)), rate_(rate), rng_(seed) {
  XB_CHECK(rate >= 0.0 && rate < 1.0, "dropout rate must lie in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || rate_ == 0.0) {
    return input;
  }
  mask_ = Tensor(input.shape());
  const auto keep = static_cast<float>(1.0 - rate_);
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_.bernoulli(rate_)) {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    } else {
      mask_[i] = 1.0f / keep;
      out[i] *= 1.0f / keep;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || rate_ == 0.0) {
    return grad_output;
  }
  XB_CHECK(grad_output.shape() == mask_.shape(),
           "Dropout backward shape mismatch");
  return grad_output.mul(mask_);
}

}  // namespace xbarlife::nn
