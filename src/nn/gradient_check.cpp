#include "nn/gradient_check.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::nn {

GradCheckResult check_gradients(Network& net, const Tensor& input,
                                std::span<const std::int32_t> labels,
                                double eps, std::size_t max_per_param) {
  XB_CHECK(eps > 0.0, "gradient-check eps must be positive");
  net.compute_gradients(input, labels);
  // Copy analytic gradients before the probing passes overwrite them.
  std::vector<Tensor> analytic;
  auto params = net.params();
  analytic.reserve(params.size());
  for (const ParamRef& p : params) {
    analytic.push_back(*p.grad);
  }

  SoftmaxCrossEntropy loss;
  auto loss_at = [&]() {
    Tensor logits = net.forward(input, /*training=*/false);
    return loss.forward(logits, labels);
  };

  GradCheckResult result;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = *params[pi].value;
    const std::size_t n = w.numel();
    const std::size_t stride = std::max<std::size_t>(1, n / max_per_param);
    for (std::size_t i = 0; i < n; i += stride) {
      const float original = w[i];
      w[i] = original + static_cast<float>(eps);
      const double up = loss_at();
      w[i] = original - static_cast<float>(eps);
      const double down = loss_at();
      w[i] = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double exact = static_cast<double>(analytic[pi][i]);
      const double abs_err = std::fabs(numeric - exact);
      const double scale =
          std::max({std::fabs(numeric), std::fabs(exact), 1e-8});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / scale);
      ++result.checked;
    }
  }
  return result;
}

}  // namespace xbarlife::nn
