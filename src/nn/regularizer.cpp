#include "nn/regularizer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace xbarlife::nn {

L2Regularizer::L2Regularizer(double lambda) : lambda_(lambda) {
  XB_CHECK(lambda >= 0.0, "L2 lambda must be non-negative");
}

double L2Regularizer::penalty(const Tensor& w,
                              std::size_t /*layer_index*/) const {
  return lambda_ * static_cast<double>(w.squared_norm());
}

void L2Regularizer::add_gradient(const Tensor& w,
                                 std::size_t /*layer_index*/,
                                 Tensor& grad) const {
  XB_CHECK(grad.shape() == w.shape(), "regularizer gradient shape mismatch");
  const auto scale = static_cast<float>(2.0 * lambda_);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    grad[i] += scale * w[i];
  }
}

SkewedL2Regularizer::SkewedL2Regularizer(double lambda1, double lambda2,
                                         double omega_factor)
    : lambda1_(lambda1), lambda2_(lambda2), omega_factor_(omega_factor) {
  XB_CHECK(lambda1 >= 0.0 && lambda2 >= 0.0,
           "skewed lambdas must be non-negative");
  XB_CHECK(lambda1 >= lambda2,
           "skewed regularizer requires lambda1 >= lambda2 (left side of "
           "omega is penalized at least as hard)");
}

double SkewedL2Regularizer::omega(const Tensor& w,
                                  std::size_t layer_index) const {
  if (layer_index < frozen_omegas_.size() &&
      frozen_omegas_[layer_index].has_value()) {
    return *frozen_omegas_[layer_index];
  }
  RunningStats rs;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    rs.add(static_cast<double>(w[i]));
  }
  return omega_factor_ * rs.stddev();
}

void SkewedL2Regularizer::freeze_omega(std::size_t layer_index,
                                       double value) {
  if (layer_index >= frozen_omegas_.size()) {
    frozen_omegas_.resize(layer_index + 1);
  }
  frozen_omegas_[layer_index] = value;
}

void SkewedL2Regularizer::freeze_omegas(
    const std::vector<const Tensor*>& weights) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    XB_CHECK(weights[i] != nullptr, "null weight tensor");
    // Compute from the live distribution, then pin.
    const bool was_frozen =
        i < frozen_omegas_.size() && frozen_omegas_[i].has_value();
    if (was_frozen) {
      continue;
    }
    freeze_omega(i, omega(*weights[i], i));
  }
}

double SkewedL2Regularizer::penalty(const Tensor& w,
                                    std::size_t layer_index) const {
  const double om = omega(w, layer_index);
  double left = 0.0;
  double right = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const double d = static_cast<double>(w[i]) - om;
    if (d < 0.0) {
      left += d * d;
    } else {
      right += d * d;
    }
  }
  return lambda1_ * left + lambda2_ * right;
}

void SkewedL2Regularizer::add_gradient(const Tensor& w,
                                       std::size_t layer_index,
                                       Tensor& grad) const {
  XB_CHECK(grad.shape() == w.shape(), "regularizer gradient shape mismatch");
  const auto om = static_cast<float>(omega(w, layer_index));
  const auto s1 = static_cast<float>(2.0 * lambda1_);
  const auto s2 = static_cast<float>(2.0 * lambda2_);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const float d = w[i] - om;
    grad[i] += (d < 0.0f ? s1 : s2) * d;
  }
}

}  // namespace xbarlife::nn
