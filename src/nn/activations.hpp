// Elementwise activation layers plus Flatten and Dropout.
#pragma once

#include "nn/layer.hpp"

namespace xbarlife::nn {

/// max(0, x)
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name = "relu");
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  LayerKind kind() const override { return LayerKind::kActivation; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// tanh(x)
class Tanh final : public Layer {
 public:
  explicit Tanh(std::string name = "tanh");
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  LayerKind kind() const override { return LayerKind::kActivation; }

 private:
  Tensor output_;
};

/// 1 / (1 + exp(-x))
class Sigmoid final : public Layer {
 public:
  explicit Sigmoid(std::string name = "sigmoid");
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  LayerKind kind() const override { return LayerKind::kActivation; }

 private:
  Tensor output_;
};

/// Shape marker between conv stacks and dense heads. Data is already flat
/// per sample, so forward is the identity; the layer exists so topology
/// descriptions read naturally and feature bookkeeping stays explicit.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name = "flatten");
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  LayerKind kind() const override { return LayerKind::kFlatten; }
};

/// Inverted dropout: active only in training mode.
class Dropout final : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed, std::string name = "dropout");
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t output_features(std::size_t input_features) const override {
    return input_features;
  }
  LayerKind kind() const override { return LayerKind::kDropout; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace xbarlife::nn
