#include "nn/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/kernels/kernels.hpp"

namespace xbarlife::nn {

namespace {

std::int8_t saturate_s8(long v) {
  return static_cast<std::int8_t>(std::clamp(v, -128L, 127L));
}

}  // namespace

std::int32_t QuantSpec::qmax() const {
  XB_CHECK(levels >= 2, "QuantSpec needs at least 2 levels");
  const std::size_t half = (levels - 1) / 2;
  return static_cast<std::int32_t>(std::min<std::size_t>(half, 127));
}

QuantizedTensor quantize_weights(const Tensor& w, const QuantSpec& spec) {
  XB_CHECK(w.shape().rank() == 2, "quantize_weights expects a matrix");
  const std::size_t rows = w.shape()[0];
  const std::size_t cols = w.shape()[1];
  const auto q = static_cast<float>(spec.qmax());
  QuantizedTensor out;
  out.rows = rows;
  out.cols = cols;
  out.codes.resize(rows * cols);
  out.scales.resize(cols);
  out.zero_points.assign(cols, 0);
  for (std::size_t j = 0; j < cols; ++j) {
    float absmax = 0.0f;
    for (std::size_t i = 0; i < rows; ++i) {
      float v = w.at(i, j);
      if (spec.has_clamp()) {
        v = std::clamp(v, spec.clamp_lo, spec.clamp_hi);
      }
      absmax = std::max(absmax, std::fabs(v));
    }
    // An all-zero column keeps a unit scale so decode stays finite.
    const float scale = absmax > 0.0f ? absmax / q : 1.0f;
    out.scales[j] = scale;
    for (std::size_t i = 0; i < rows; ++i) {
      float v = w.at(i, j);
      if (spec.has_clamp()) {
        v = std::clamp(v, spec.clamp_lo, spec.clamp_hi);
      }
      const long code = std::lround(v / scale);
      out.codes[i * cols + j] = static_cast<std::int8_t>(
          std::clamp(code, -static_cast<long>(spec.qmax()),
                     static_cast<long>(spec.qmax())));
    }
  }
  return out;
}

QuantizedTensor quantize_activations(const Tensor& x) {
  XB_CHECK(x.shape().rank() == 2, "quantize_activations expects a matrix");
  const std::size_t rows = x.shape()[0];
  const std::size_t cols = x.shape()[1];
  // Deterministic serial min/max scan (always covering 0 so the
  // zero-point decodes exactly).
  float lo = 0.0f;
  float hi = 0.0f;
  const float* p = x.data();
  for (std::size_t i = 0; i < rows * cols; ++i) {
    lo = std::min(lo, p[i]);
    hi = std::max(hi, p[i]);
  }
  QuantizedTensor out;
  out.rows = rows;
  out.cols = cols;
  out.codes.resize(rows * cols);
  // [-127, 127]: avoiding -128 keeps every int8 product exact in int16,
  // which the SIMD kernels rely on.
  const float scale = hi > lo ? (hi - lo) / 254.0f : 1.0f;
  const auto zp =
      static_cast<std::int32_t>(-127 - std::lround(lo / scale));
  out.scales.assign(1, scale);
  out.zero_points.assign(1, zp);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    out.codes[i] = saturate_s8(std::lround(p[i] / scale) + zp);
  }
  return out;
}

void requantize(const std::int32_t* acc, std::size_t n, float multiplier,
                float bias, std::int32_t zero_point, std::int8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const long v =
        std::lround(static_cast<float>(acc[i]) * multiplier + bias);
    out[i] = saturate_s8(v + zero_point);
  }
}

Tensor quantized_linear(const QuantizedTensor& qa, const QuantizedTensor& qw,
                        const Tensor* bias) {
  XB_CHECK(qa.cols == qw.rows, "quantized_linear inner dimension mismatch");
  XB_CHECK(!qa.per_channel() || qa.cols == 1,
           "quantized_linear activations must be per-tensor");
  XB_CHECK(qw.per_channel(), "quantized_linear weights must be per-channel");
  const std::size_t m = qa.rows;
  const std::size_t k = qa.cols;
  const std::size_t n = qw.cols;
  if (bias != nullptr) {
    XB_CHECK(bias->numel() == n, "quantized_linear bias size mismatch");
  }
  // Zero-point correction: sum_k (a_q - zp) * w_q = acc - zp * colsum.
  std::vector<std::int32_t> col_sum(n, 0);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::int8_t* row = qw.codes.data() + kk * n;
    for (std::size_t j = 0; j < n; ++j) {
      col_sum[j] += row[j];
    }
  }
  std::vector<std::int32_t> acc(m * n, 0);
  const kernels::KernelSet& ks = kernels::select();
  // Integer accumulation is exact, so any row partition gives the same
  // accumulators; the float dequant below is per-element with a fixed
  // expression. The quantized pass is therefore byte-identical at any
  // thread count.
  parallel_for(0, m, 16, [&](std::size_t row_begin, std::size_t row_end) {
    ks.gemm_s8(qa.codes.data(), qw.codes.data(), acc.data(), m, k, n,
               row_begin, row_end);
  });
  const float a_scale = qa.scales[0];
  const std::int32_t a_zp = qa.zero_points[0];
  Tensor y(Shape{m, n});
  parallel_for(0, m, 16, [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const std::int32_t* arow = acc.data() + i * n;
      float* yrow = y.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float centered =
            static_cast<float>(arow[j] - a_zp * col_sum[j]);
        yrow[j] = a_scale * qw.scales[j] * centered +
                  (bias != nullptr ? (*bias)[j] : 0.0f);
      }
    }
  });
  return y;
}

}  // namespace xbarlife::nn
