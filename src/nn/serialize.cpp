#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace xbarlife::nn {

namespace {

constexpr char kMagic[4] = {'X', 'B', 'W', '1'};

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const std::uint64_t n = read_u64(in);
  XB_CHECK(n < (1u << 20), "corrupt parameter file: string too long");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

}  // namespace

void save_parameters(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("cannot open parameter file for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  const auto params = net.params();
  write_u64(out, params.size());
  for (const ParamRef& p : params) {
    write_string(out, p.name);
    const auto& dims = p.value->shape().dims();
    write_u64(out, dims.size());
    for (std::size_t d : dims) {
      write_u64(out, d);
    }
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(p.value->numel() *
                                           sizeof(float)));
  }
  if (!out) {
    throw IoError("write failed: " + path);
  }
}

void load_parameters(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open parameter file: " + path);
  }
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  XB_CHECK(in && std::equal(magic, magic + 4, kMagic),
           "not an xbarlife parameter file: " + path);
  const auto params = net.params();
  const std::uint64_t count = read_u64(in);
  XB_CHECK(count == params.size(),
           "parameter count mismatch: file has " + std::to_string(count) +
               ", network has " + std::to_string(params.size()));
  for (const ParamRef& p : params) {
    const std::string name = read_string(in);
    XB_CHECK(name == p.name, "parameter name mismatch: file has '" + name +
                                 "', network expects '" + p.name + "'");
    const std::uint64_t rank = read_u64(in);
    XB_CHECK(rank == p.value->shape().rank(),
             "parameter rank mismatch at " + name);
    for (std::size_t axis = 0; axis < rank; ++axis) {
      const std::uint64_t dim = read_u64(in);
      XB_CHECK(dim == p.value->shape()[axis],
               "parameter shape mismatch at " + name);
    }
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(p.value->numel() *
                                         sizeof(float)));
    XB_CHECK(static_cast<bool>(in), "truncated parameter file at " + name);
  }
}

}  // namespace xbarlife::nn
