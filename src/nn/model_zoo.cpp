#include "nn/model_zoo.hpp"

#include <memory>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace xbarlife::nn {

Network make_mlp(std::size_t in_features,
                 const std::vector<std::size_t>& hidden,
                 std::size_t classes, Rng& rng, const std::string& name) {
  XB_CHECK(in_features > 0 && classes > 0, "mlp needs positive dims");
  Network net(name);
  std::size_t features = in_features;
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    net.add(std::make_unique<Dense>(features, hidden[i], rng,
                                    "fc" + std::to_string(i + 1)));
    net.add(std::make_unique<ReLU>("relu" + std::to_string(i + 1)));
    features = hidden[i];
  }
  net.add(std::make_unique<Dense>(features, classes, rng, "fc_out"));
  return net;
}

Network make_lenet5(const ImageSpec& input, std::size_t classes, Rng& rng) {
  XB_CHECK(input.height == input.width,
           "LeNet-5 builder expects square inputs");
  XB_CHECK(input.height >= 16, "LeNet-5 needs at least 16x16 inputs");
  Network net("lenet5");

  ConvGeometry c1{input.channels, input.height, input.width,
                  /*kernel=*/5, /*stride=*/1, /*pad=*/0};
  net.add(std::make_unique<Conv2D>(c1, 6, rng, "conv1"));
  net.add(std::make_unique<Tanh>("tanh1"));
  PoolGeometry p1{6, c1.out_h(), c1.out_w(), 2, 2};
  net.add(std::make_unique<MaxPool2D>(p1, "pool1"));

  ConvGeometry c2{6, p1.out_h(), p1.out_w(), 5, 1, 0};
  net.add(std::make_unique<Conv2D>(c2, 16, rng, "conv2"));
  net.add(std::make_unique<Tanh>("tanh2"));
  PoolGeometry p2{16, c2.out_h(), c2.out_w(), 2, 2};
  net.add(std::make_unique<MaxPool2D>(p2, "pool2"));

  const std::size_t flat = 16 * p2.out_h() * p2.out_w();
  net.add(std::make_unique<Flatten>("flatten"));
  net.add(std::make_unique<Dense>(flat, 120, rng, "fc1"));
  net.add(std::make_unique<Tanh>("tanh3"));
  net.add(std::make_unique<Dense>(120, 84, rng, "fc2"));
  net.add(std::make_unique<Tanh>("tanh4"));
  net.add(std::make_unique<Dense>(84, classes, rng, "fc3"));
  return net;
}

Network make_vgg16(const ImageSpec& input, std::size_t classes,
                   std::size_t width, Rng& rng) {
  XB_CHECK(input.height == input.width,
           "VGG-16 builder expects square inputs");
  XB_CHECK(input.height % 32 == 0,
           "VGG-16 needs inputs divisible by 32 (five 2x pools)");
  XB_CHECK(width >= 1, "width multiplier must be >= 1");
  Network net("vgg16");

  // Five blocks: (convs per block, channel multiple of `width`).
  struct Block {
    std::size_t convs;
    std::size_t channels;
  };
  const Block blocks[] = {
      {2, width}, {2, 2 * width}, {3, 4 * width}, {3, 8 * width},
      {3, 8 * width}};

  std::size_t channels = input.channels;
  std::size_t side = input.height;
  std::size_t conv_id = 0;
  for (const Block& blk : blocks) {
    for (std::size_t i = 0; i < blk.convs; ++i) {
      ++conv_id;
      ConvGeometry g{channels, side, side, /*kernel=*/3, /*stride=*/1,
                     /*pad=*/1};
      net.add(std::make_unique<Conv2D>(g, blk.channels, rng,
                                       "conv" + std::to_string(conv_id)));
      net.add(std::make_unique<ReLU>("relu" + std::to_string(conv_id)));
      channels = blk.channels;
    }
    PoolGeometry p{channels, side, side, 2, 2};
    net.add(std::make_unique<MaxPool2D>(
        p, "pool" + std::to_string(conv_id)));
    side /= 2;
  }

  const std::size_t flat = channels * side * side;
  const std::size_t fc_width = 16 * width;  // 1024 at paper scale (w=64: 4096/4)
  net.add(std::make_unique<Flatten>("flatten"));
  net.add(std::make_unique<Dense>(flat, fc_width, rng, "fc1"));
  net.add(std::make_unique<ReLU>("relu_fc1"));
  net.add(std::make_unique<Dense>(fc_width, fc_width, rng, "fc2"));
  net.add(std::make_unique<ReLU>("relu_fc2"));
  net.add(std::make_unique<Dense>(fc_width, classes, rng, "fc3"));
  return net;
}

LayerMix count_layer_mix(Network& net) {
  LayerMix mix;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    switch (net.layer(i).kind()) {
      case LayerKind::kConv:
        ++mix.conv;
        break;
      case LayerKind::kDense:
        ++mix.dense;
        break;
      default:
        break;
    }
  }
  return mix;
}

}  // namespace xbarlife::nn
