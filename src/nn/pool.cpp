#include "nn/pool.hpp"

#include <limits>

#include "common/error.hpp"

namespace xbarlife::nn {

void PoolGeometry::validate() const {
  XB_CHECK(channels > 0 && in_h > 0 && in_w > 0, "empty pool input");
  XB_CHECK(window > 0 && stride > 0, "pool window/stride must be positive");
  XB_CHECK(in_h >= window && in_w >= window, "pool window exceeds input");
}

namespace {
std::size_t check_pool_input(const Tensor& input, const PoolGeometry& g,
                             const std::string& name) {
  const std::size_t per_sample = g.channels * g.in_h * g.in_w;
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == per_sample,
           "pool " + name + " expected (batch, " +
               std::to_string(per_sample) + "), got " +
               input.shape().to_string());
  return input.shape()[0];
}
}  // namespace

MaxPool2D::MaxPool2D(PoolGeometry geometry, std::string name)
    : Layer(std::move(name)), geometry_(geometry) {
  geometry_.validate();
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  batch_ = check_pool_input(input, geometry_, name());
  const auto& g = geometry_;
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  Tensor out(Shape{batch_, g.channels * oh * ow});
  argmax_.assign(batch_ * g.channels * oh * ow, 0);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* x = input.data() + b * g.channels * g.in_h * g.in_w;
    for (std::size_t c = 0; c < g.channels; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < g.window; ++wy) {
            for (std::size_t wx = 0; wx < g.window; ++wx) {
              const std::size_t iy = oy * g.stride + wy;
              const std::size_t ix = ox * g.stride + wx;
              const std::size_t idx = (c * g.in_h + iy) * g.in_w + ix;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t o = (c * oh + oy) * ow + ox;
          out.at(b, o) = best;
          argmax_[b * g.channels * oh * ow + o] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  const auto& g = geometry_;
  const std::size_t per_out = g.channels * g.out_h() * g.out_w();
  XB_CHECK(grad_output.shape().rank() == 2 &&
               grad_output.shape()[0] == batch_ &&
               grad_output.shape()[1] == per_out,
           "MaxPool2D backward shape mismatch");
  Tensor grad_input(Shape{batch_, g.channels * g.in_h * g.in_w});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t o = 0; o < per_out; ++o) {
      grad_input.at(b, argmax_[b * per_out + o]) += grad_output.at(b, o);
    }
  }
  return grad_input;
}

std::size_t MaxPool2D::output_features(std::size_t input_features) const {
  XB_CHECK(input_features == geometry_.channels * geometry_.in_h *
                                 geometry_.in_w,
           "MaxPool2D feature-count mismatch in topology");
  return geometry_.channels * geometry_.out_h() * geometry_.out_w();
}

AvgPool2D::AvgPool2D(PoolGeometry geometry, std::string name)
    : Layer(std::move(name)), geometry_(geometry) {
  geometry_.validate();
}

Tensor AvgPool2D::forward(const Tensor& input, bool /*training*/) {
  batch_ = check_pool_input(input, geometry_, name());
  const auto& g = geometry_;
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const auto inv =
      1.0f / static_cast<float>(g.window * g.window);
  Tensor out(Shape{batch_, g.channels * oh * ow});
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* x = input.data() + b * g.channels * g.in_h * g.in_w;
    for (std::size_t c = 0; c < g.channels; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t wy = 0; wy < g.window; ++wy) {
            for (std::size_t wx = 0; wx < g.window; ++wx) {
              const std::size_t iy = oy * g.stride + wy;
              const std::size_t ix = ox * g.stride + wx;
              acc += x[(c * g.in_h + iy) * g.in_w + ix];
            }
          }
          out.at(b, (c * oh + oy) * ow + ox) = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  const auto& g = geometry_;
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t per_out = g.channels * oh * ow;
  XB_CHECK(grad_output.shape().rank() == 2 &&
               grad_output.shape()[0] == batch_ &&
               grad_output.shape()[1] == per_out,
           "AvgPool2D backward shape mismatch");
  const auto inv = 1.0f / static_cast<float>(g.window * g.window);
  Tensor grad_input(Shape{batch_, g.channels * g.in_h * g.in_w});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t c = 0; c < g.channels; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float go =
              grad_output.at(b, (c * oh + oy) * ow + ox) * inv;
          for (std::size_t wy = 0; wy < g.window; ++wy) {
            for (std::size_t wx = 0; wx < g.window; ++wx) {
              const std::size_t iy = oy * g.stride + wy;
              const std::size_t ix = ox * g.stride + wx;
              grad_input.at(b, (c * g.in_h + iy) * g.in_w + ix) += go;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::size_t AvgPool2D::output_features(std::size_t input_features) const {
  XB_CHECK(input_features == geometry_.channels * geometry_.in_h *
                                 geometry_.in_w,
           "AvgPool2D feature-count mismatch in topology");
  return geometry_.channels * geometry_.out_h() * geometry_.out_w();
}

}  // namespace xbarlife::nn
