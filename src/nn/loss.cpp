#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const std::int32_t> labels) {
  XB_CHECK(logits.shape().rank() == 2, "logits must be (batch, classes)");
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  XB_CHECK(labels.size() == batch, "one label per batch row required");

  probs_ = logits;
  labels_.assign(labels.begin(), labels.end());
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    XB_CHECK(labels[b] >= 0 &&
                 static_cast<std::size_t>(labels[b]) < classes,
             "label out of range");
    float* row = probs_.data() + b * classes;
    const float peak = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - peak);
      denom += row[c];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] *= inv;
    }
    const float p = row[static_cast<std::size_t>(labels[b])];
    total -= std::log(std::max(p, 1e-12f));
  }
  return total / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
  XB_CHECK(!labels_.empty(), "backward before forward");
  Tensor grad = probs_;
  const std::size_t batch = grad.shape()[0];
  const std::size_t classes = grad.shape()[1];
  const auto inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    grad.at(b, static_cast<std::size_t>(labels_[b])) -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      grad.at(b, c) *= inv_batch;
    }
  }
  return grad;
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
  XB_CHECK(logits.shape().rank() == 2, "logits must be (batch, classes)");
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  XB_CHECK(labels.size() == batch, "one label per batch row required");
  if (batch == 0) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    const auto pred = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (pred == static_cast<std::size_t>(labels[b])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(batch);
}

}  // namespace xbarlife::nn
