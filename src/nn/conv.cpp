#include "nn/conv.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/matmul.hpp"

namespace xbarlife::nn {

Conv2D::Conv2D(ConvGeometry geometry, std::size_t out_channels, Rng& rng,
               std::string name)
    : Layer(std::move(name)),
      geometry_(geometry),
      out_channels_(out_channels),
      weight_(Shape{geometry.patch_size(), out_channels}),
      bias_(Shape{out_channels}),
      weight_grad_(Shape{geometry.patch_size(), out_channels}),
      bias_grad_(Shape{out_channels}) {
  geometry_.validate();
  XB_CHECK(out_channels > 0, "Conv2D needs at least one output channel");
  const auto scale = static_cast<float>(
      std::sqrt(2.0 / static_cast<double>(geometry_.patch_size())));
  weight_.fill_gaussian(rng, 0.0f, scale);
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  const std::size_t per_sample =
      geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == per_sample,
           "Conv2D " + name() + " expected (batch, " +
               std::to_string(per_sample) + "), got " +
               input.shape().to_string());
  const std::size_t batch = input.shape()[0];
  const std::size_t pixels = geometry_.out_h() * geometry_.out_w();
  Tensor out(Shape{batch, out_channels_ * pixels});
  patches_.assign(batch, Tensor());
  // Samples are independent: each writes its own patches_ slot and its own
  // row of `out`, so the batch fans out across the pool bit-identically.
  parallel_for(0, batch, 1, [&](std::size_t b_begin, std::size_t b_end) {
    for (std::size_t b = b_begin; b < b_end; ++b) {
      Tensor image(Shape{per_sample},
                   std::vector<float>(input.data() + b * per_sample,
                                      input.data() + (b + 1) * per_sample));
      patches_[b] = im2col(image, geometry_);
      // (pixels, patch) * (patch, out_ch) -> (pixels, out_ch)
      Tensor y = matmul(patches_[b], weight_);
      // Transpose to channel-major (out_ch, pixels) so the flattened
      // feature layout stays NCHW-compatible for downstream pooling.
      for (std::size_t p = 0; p < pixels; ++p) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          out.at(b, c * pixels + p) = y.at(p, c) + bias_[c];
        }
      }
    }
  });
  return out;
}

Tensor Conv2D::forward_quantized(const Tensor& input, const QuantSpec& spec) {
  const std::size_t per_sample =
      geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  XB_CHECK(input.shape().rank() == 2 && input.shape()[1] == per_sample,
           "Conv2D " + name() + " expected (batch, " +
               std::to_string(per_sample) + "), got " +
               input.shape().to_string());
  const std::size_t batch = input.shape()[0];
  const std::size_t pixels = geometry_.out_h() * geometry_.out_w();
  // One weight coding shared by the whole batch; activations are coded
  // per sample (each sample's im2col patches get their own range). The
  // training-path patches_ cache is left untouched — this is an
  // inference-only path.
  const QuantizedTensor qw = quantize_weights(weight_, spec);
  Tensor out(Shape{batch, out_channels_ * pixels});
  parallel_for(0, batch, 1, [&](std::size_t b_begin, std::size_t b_end) {
    for (std::size_t b = b_begin; b < b_end; ++b) {
      Tensor image(Shape{per_sample},
                   std::vector<float>(input.data() + b * per_sample,
                                      input.data() + (b + 1) * per_sample));
      const Tensor patches = im2col(image, geometry_);
      const QuantizedTensor qa = quantize_activations(patches);
      Tensor y = quantized_linear(qa, qw, nullptr);
      for (std::size_t p = 0; p < pixels; ++p) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          out.at(b, c * pixels + p) = y.at(p, c) + bias_[c];
        }
      }
    }
  });
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = patches_.size();
  const std::size_t pixels = geometry_.out_h() * geometry_.out_w();
  XB_CHECK(grad_output.shape().rank() == 2 &&
               grad_output.shape()[0] == batch &&
               grad_output.shape()[1] == out_channels_ * pixels,
           "Conv2D backward shape mismatch");
  const std::size_t per_sample =
      geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  Tensor grad_input(Shape{batch, per_sample});
  // Per-sample weight/bias contributions land in index-addressed slots and
  // are merged in sample order below, so the accumulated gradients do not
  // depend on the thread count.
  std::vector<Tensor> wgrad_partial(batch);
  std::vector<Tensor> bgrad_partial(batch);
  parallel_for(0, batch, 1, [&](std::size_t b_begin, std::size_t b_end) {
    for (std::size_t b = b_begin; b < b_end; ++b) {
      // Rebuild the (pixels, out_ch) gradient for this sample.
      Tensor gy(Shape{pixels, out_channels_});
      Tensor bg(Shape{out_channels_});
      for (std::size_t p = 0; p < pixels; ++p) {
        for (std::size_t c = 0; c < out_channels_; ++c) {
          const float g = grad_output.at(b, c * pixels + p);
          gy.at(p, c) = g;
          bg[c] += g;
        }
      }
      // dW += patches^T gy ; dPatches = gy W^T ; dX = col2im(dPatches)
      wgrad_partial[b] = matmul_tn(patches_[b], gy);
      bgrad_partial[b] = std::move(bg);
      Tensor gpatches = matmul_nt(gy, weight_);
      Tensor gimage = col2im(gpatches, geometry_);
      for (std::size_t i = 0; i < per_sample; ++i) {
        grad_input.at(b, i) = gimage[i];
      }
    }
  });
  for (std::size_t b = 0; b < batch; ++b) {
    weight_grad_.add_(wgrad_partial[b]);
    bias_grad_.add_(bgrad_partial[b]);
  }
  return grad_input;
}

std::vector<ParamRef> Conv2D::params() {
  return {
      {name() + ".weight", &weight_, &weight_grad_, /*mappable=*/true},
      {name() + ".bias", &bias_, &bias_grad_, /*mappable=*/false},
  };
}

std::size_t Conv2D::output_features(std::size_t input_features) const {
  XB_CHECK(input_features ==
               geometry_.in_channels * geometry_.in_h * geometry_.in_w,
           "Conv2D feature-count mismatch in topology");
  return out_channels_ * geometry_.out_h() * geometry_.out_w();
}

}  // namespace xbarlife::nn
