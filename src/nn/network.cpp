#include "nn/network.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace xbarlife::nn {

Network::Network(std::string name) : name_(std::move(name)) {}

Network& Network::add(LayerPtr layer) {
  XB_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Network::layer(std::size_t i) {
  XB_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Network::layer(std::size_t i) const {
  XB_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Network::forward(const Tensor& input, bool training) {
  XB_CHECK(!layers_.empty(), "network has no layers");
  Tensor x = input;
  for (auto& l : layers_) {
    x = l->forward(x, training);
  }
  return x;
}

Tensor Network::forward_quantized(const Tensor& input,
                                  std::span<const QuantSpec> specs) {
  XB_CHECK(!layers_.empty(), "network has no layers");
  Tensor x = input;
  std::size_t spec_index = 0;
  for (auto& l : layers_) {
    bool mappable = false;
    for (const ParamRef& p : l->params()) {
      mappable = mappable || p.mappable;
    }
    if (mappable) {
      XB_CHECK(spec_index < specs.size(),
               "forward_quantized needs one QuantSpec per mappable weight");
      x = l->forward_quantized(x, specs[spec_index]);
      ++spec_index;
    } else {
      x = l->forward(x, /*training=*/false);
    }
  }
  XB_CHECK(spec_index == specs.size(),
           "forward_quantized spec count mismatch");
  return x;
}

double Network::evaluate_quantized(const Tensor& inputs,
                                   std::span<const std::int32_t> labels,
                                   std::span<const QuantSpec> specs,
                                   std::size_t batch) {
  XB_CHECK(inputs.shape().rank() == 2, "evaluate expects (n, features)");
  XB_CHECK(batch > 0, "batch must be positive");
  const std::size_t n = inputs.shape()[0];
  XB_CHECK(labels.size() == n, "labels/inputs size mismatch");
  if (n == 0) {
    return 0.0;
  }
  const std::size_t features = inputs.shape()[1];
  std::size_t hits = 0;
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t count = std::min(batch, n - start);
    Tensor chunk(Shape{count, features},
                 std::vector<float>(
                     inputs.data() + start * features,
                     inputs.data() + (start + count) * features));
    Tensor logits = forward_quantized(chunk, specs);
    const double acc =
        accuracy(logits, labels.subspan(start, count));
    hits += static_cast<std::size_t>(
        acc * static_cast<double>(count) + 0.5);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

Tensor Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Network::zero_grad() {
  for (auto& l : layers_) {
    l->zero_grad();
  }
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> all;
  for (auto& l : layers_) {
    for (ParamRef& p : l->params()) {
      all.push_back(p);
    }
  }
  return all;
}

std::vector<MappableWeight> Network::mappable_weights() {
  std::vector<MappableWeight> out;
  for (auto& l : layers_) {
    for (ParamRef& p : l->params()) {
      if (!p.mappable) {
        continue;
      }
      MappableWeight mw;
      mw.index = out.size();
      mw.name = p.name;
      mw.layer_kind = l->kind();
      mw.value = p.value;
      mw.grad = p.grad;
      out.push_back(mw);
    }
  }
  return out;
}

TrainStats Network::train_batch(const Tensor& input,
                                std::span<const std::int32_t> labels,
                                SgdOptimizer& optimizer,
                                const Regularizer* regularizer) {
  zero_grad();
  Tensor logits = forward(input, /*training=*/true);
  TrainStats stats;
  stats.loss = loss_.forward(logits, labels);
  stats.accuracy = accuracy(logits, labels);
  backward(loss_.backward());
  if (regularizer != nullptr) {
    auto weights = mappable_weights();
    for (const MappableWeight& mw : weights) {
      stats.penalty += regularizer->penalty(*mw.value, mw.index);
      regularizer->add_gradient(*mw.value, mw.index, *mw.grad);
    }
  }
  optimizer.step(params());
  return stats;
}

double Network::compute_gradients(const Tensor& input,
                                  std::span<const std::int32_t> labels) {
  zero_grad();
  Tensor logits = forward(input, /*training=*/false);
  const double loss = loss_.forward(logits, labels);
  backward(loss_.backward());
  return loss;
}

double Network::evaluate(const Tensor& inputs,
                         std::span<const std::int32_t> labels,
                         std::size_t batch) {
  XB_CHECK(inputs.shape().rank() == 2, "evaluate expects (n, features)");
  XB_CHECK(batch > 0, "batch must be positive");
  const std::size_t n = inputs.shape()[0];
  XB_CHECK(labels.size() == n, "labels/inputs size mismatch");
  if (n == 0) {
    return 0.0;
  }
  const std::size_t features = inputs.shape()[1];
  std::size_t hits = 0;
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t count = std::min(batch, n - start);
    Tensor chunk(Shape{count, features},
                 std::vector<float>(
                     inputs.data() + start * features,
                     inputs.data() + (start + count) * features));
    Tensor logits = forward(chunk, /*training=*/false);
    const double acc =
        accuracy(logits, labels.subspan(start, count));
    hits += static_cast<std::size_t>(
        acc * static_cast<double>(count) + 0.5);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

std::vector<Tensor> Network::save_mappable_weights() {
  std::vector<Tensor> snapshot;
  for (const MappableWeight& mw : mappable_weights()) {
    snapshot.push_back(*mw.value);
  }
  return snapshot;
}

void Network::load_mappable_weights(const std::vector<Tensor>& snapshot) {
  auto weights = mappable_weights();
  XB_CHECK(snapshot.size() == weights.size(),
           "snapshot layer count mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    XB_CHECK(snapshot[i].shape() == weights[i].value->shape(),
             "snapshot shape mismatch at " + weights[i].name);
    *weights[i].value = snapshot[i];
  }
}

std::size_t Network::parameter_count() {
  std::size_t n = 0;
  for (const ParamRef& p : params()) {
    n += p.value->numel();
  }
  return n;
}

std::string Network::summary() {
  std::ostringstream oss;
  oss << "Network '" << name_ << "' (" << layers_.size() << " layers, "
      << parameter_count() << " parameters)\n";
  for (auto& l : layers_) {
    oss << "  - " << l->name() << " [" << to_string(l->kind()) << "]";
    std::size_t nparams = 0;
    for (ParamRef& p : l->params()) {
      nparams += p.value->numel();
    }
    if (nparams > 0) {
      oss << " params=" << nparams;
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace xbarlife::nn
