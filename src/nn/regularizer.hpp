// Weight regularizers: standard L2 (Eq. (2)) and the paper's two-segment
// skewed regularizer (Eqs. (8)-(10), Fig. 7).
//
// The skewed regularizer is the software half of the counter-aging
// framework: it penalizes weights on the left of a per-layer reference
// weight omega_i with lambda1 and on the right with lambda2 (lambda1 >=
// lambda2), which concentrates the trained weights just right of omega_i.
// Small weights map to small conductances -> large resistances -> small
// programming currents -> slower aging.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "tensor/tensor.hpp"

namespace xbarlife::nn {

class Regularizer {
 public:
  virtual ~Regularizer() = default;

  /// Penalty value contributed by layer `layer_index` with weights `w`.
  virtual double penalty(const Tensor& w, std::size_t layer_index) const = 0;

  /// Accumulates d(penalty)/dw into `grad` (same shape as `w`).
  virtual void add_gradient(const Tensor& w, std::size_t layer_index,
                            Tensor& grad) const = 0;
};

/// Classic L2: lambda * ||W||^2.
class L2Regularizer final : public Regularizer {
 public:
  explicit L2Regularizer(double lambda);
  double penalty(const Tensor& w, std::size_t layer_index) const override;
  void add_gradient(const Tensor& w, std::size_t layer_index,
                    Tensor& grad) const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Two-segment skewed regularizer around per-layer reference weight omega_i.
///
///   R1(W) = lambda1 * sum (w - omega_i)^2   for w <  omega_i
///   R2(W) = lambda2 * sum (w - omega_i)^2   for w >= omega_i
///
/// omega_i defaults to omega_factor * stddev(W_i) (the paper sets the
/// reference weight to the layer's standard deviation times a constant;
/// the mean of the trained quasi-normal distribution is close to zero).
/// Freeze omegas once (e.g. after a warmup epoch) via freeze_omegas() so
/// the reference points stop tracking the shrinking distribution.
class SkewedL2Regularizer final : public Regularizer {
 public:
  SkewedL2Regularizer(double lambda1, double lambda2, double omega_factor);

  double penalty(const Tensor& w, std::size_t layer_index) const override;
  void add_gradient(const Tensor& w, std::size_t layer_index,
                    Tensor& grad) const override;

  /// Reference weight used for `w` at `layer_index`: the frozen value when
  /// set, otherwise omega_factor * stddev(w).
  double omega(const Tensor& w, std::size_t layer_index) const;

  /// Pins omega for layer `layer_index` to `value`.
  void freeze_omega(std::size_t layer_index, double value);

  /// Computes and pins omegas for each weight tensor in `weights`
  /// (index i -> layer_index i).
  void freeze_omegas(const std::vector<const Tensor*>& weights);

  double lambda1() const { return lambda1_; }
  double lambda2() const { return lambda2_; }
  double omega_factor() const { return omega_factor_; }

  /// Frozen reference weights per layer index (unset entries still track
  /// the live distribution). Exposed for checkpointing.
  const std::vector<std::optional<double>>& frozen_omegas() const {
    return frozen_omegas_;
  }

 private:
  double lambda1_;
  double lambda2_;
  double omega_factor_;
  std::vector<std::optional<double>> frozen_omegas_;
};

using RegularizerPtr = std::shared_ptr<Regularizer>;

}  // namespace xbarlife::nn
