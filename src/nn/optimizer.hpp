// SGD optimizer with momentum (Eq. (3) of the paper plus classical
// momentum). The regularizer gradient is folded in by Network::train_batch,
// not here, so the optimizer stays a pure parameter updater.
#pragma once

#include <unordered_map>

#include "nn/layer.hpp"

namespace xbarlife::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.9;
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config);

  /// Applies one update to every parameter: v = mu*v - lr*grad; w += v.
  void step(const std::vector<ParamRef>& params);

  void set_learning_rate(double lr);
  double learning_rate() const { return config_.learning_rate; }

  /// Velocity buffer for `param`, or null before its first step().
  /// Exposed for checkpointing (serialized in parameter order, never by
  /// address — tensor addresses are not stable across processes).
  const Tensor* velocity_for(const Tensor* param) const {
    const auto it = velocity_.find(param);
    return it == velocity_.end() ? nullptr : &it->second;
  }

  /// Installs a restored velocity buffer for `param`.
  void set_velocity(const Tensor* param, Tensor velocity) {
    velocity_.insert_or_assign(param, std::move(velocity));
  }

 private:
  SgdConfig config_;
  // Velocity buffers keyed by the parameter tensor's address; stable for
  // the lifetime of the network.
  std::unordered_map<const Tensor*, Tensor> velocity_;
};

}  // namespace xbarlife::nn
