// Batch normalization (per-feature, over the batch dimension).
//
// Not used by the paper's LeNet-5/VGG-16 topologies (the original VGG-16
// predates BN), but a training substrate without it cannot explore deeper
// variants; gamma/beta stay digital (not mapped onto crossbars).
#pragma once

#include "nn/layer.hpp"

namespace xbarlife::nn {

class BatchNorm final : public Layer {
 public:
  BatchNorm(std::size_t features, double momentum = 0.9,
            double epsilon = 1e-5, std::string name = "batchnorm");

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamRef> params() override;
  std::size_t output_features(std::size_t input_features) const override;
  LayerKind kind() const override { return LayerKind::kActivation; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::size_t features_;
  double momentum_;
  double epsilon_;
  Tensor gamma_;
  Tensor beta_;
  Tensor gamma_grad_;
  Tensor beta_grad_;
  Tensor running_mean_;
  Tensor running_var_;
  // Forward cache for backward.
  Tensor x_hat_;        // normalized input
  Tensor batch_inv_std_;  // 1/sqrt(var+eps), per feature
  std::size_t batch_ = 0;
  bool last_training_ = false;
};

}  // namespace xbarlife::nn
