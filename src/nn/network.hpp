// Sequential network container: training loop, evaluation, and the weight
// bookkeeping needed by the crossbar mapper and the online-tuning simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/regularizer.hpp"

namespace xbarlife::nn {

/// One crossbar-mapped weight matrix of the network.
struct MappableWeight {
  std::size_t index = 0;        ///< position among mappable weights
  std::string name;             ///< e.g. "conv1.weight"
  LayerKind layer_kind = LayerKind::kDense;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

struct TrainStats {
  double loss = 0.0;        ///< data loss (cross entropy)
  double penalty = 0.0;     ///< regularization penalty
  double accuracy = 0.0;    ///< batch accuracy
};

class Network {
 public:
  explicit Network(std::string name = "network");

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns a reference for chaining.
  Network& add(LayerPtr layer);

  const std::string& name() const { return name_; }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Forward pass over a batch (inference mode unless `training`).
  Tensor forward(const Tensor& input, bool training = false);

  /// Int8 inference forward: every layer with a mappable weight matrix
  /// runs the quantized GEMM path on its spec (one per mappable weight,
  /// in mappable_weights() order — see HardwareNetwork::quant_specs());
  /// all other layers run their exact float forward. Byte-identical at
  /// any thread count.
  Tensor forward_quantized(const Tensor& input,
                           std::span<const QuantSpec> specs);

  /// evaluate() on the quantized forward pass.
  double evaluate_quantized(const Tensor& inputs,
                            std::span<const std::int32_t> labels,
                            std::span<const QuantSpec> specs,
                            std::size_t batch = 64);

  /// Backward pass from a loss gradient; fills parameter gradients.
  Tensor backward(const Tensor& grad_output);

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// All parameters of all layers.
  std::vector<ParamRef> params();

  /// The weight matrices that get mapped onto crossbars, in layer order.
  std::vector<MappableWeight> mappable_weights();

  /// One SGD step on a batch: forward, loss, backward, regularizer
  /// gradient, optimizer update. Returns the batch statistics.
  TrainStats train_batch(const Tensor& input,
                         std::span<const std::int32_t> labels,
                         SgdOptimizer& optimizer,
                         const Regularizer* regularizer);

  /// Computes parameter gradients for a batch without updating weights.
  /// Used by the online-tuning simulator, which needs only gradient signs
  /// (Eq. (5)). Returns the data loss.
  double compute_gradients(const Tensor& input,
                           std::span<const std::int32_t> labels);

  /// Mean accuracy over `inputs` evaluated in chunks of `batch`.
  double evaluate(const Tensor& inputs,
                  std::span<const std::int32_t> labels,
                  std::size_t batch = 64);

  /// Snapshot of every mappable weight matrix (deep copy, layer order).
  std::vector<Tensor> save_mappable_weights();

  /// Restores a snapshot taken by save_mappable_weights().
  void load_mappable_weights(const std::vector<Tensor>& snapshot);

  /// Total number of trainable scalars.
  std::size_t parameter_count();

  /// Human-readable topology summary.
  std::string summary();

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
  SoftmaxCrossEntropy loss_;
};

}  // namespace xbarlife::nn
