// Behavioural memristor device model.
//
// A device owns its programmed resistance and its irreversible aging state.
// Programming clamps the target into the *aged* window and charges one
// pulse of stress, with the stress increment proportional to the Arrhenius
// temperature factor and the programming current (see aging/aging_model.hpp).
#pragma once

#include <cstdint>

#include "aging/aging_model.hpp"

namespace xbarlife::device {

struct DeviceParams {
  double r_min_fresh = 1.0e4;    ///< ohms, low-resistance state bound
  double r_max_fresh = 1.0e5;    ///< ohms, high-resistance state bound
  std::size_t levels = 16;       ///< quantized resistance levels (fresh)
  double v_prog = 2.0;           ///< programming pulse amplitude (V)
  double t_pulse_s = 100e-9;     ///< programming pulse width (s)
  double temperature_k = 300.0;  ///< operating/junction temperature (K)
  /// Compliance limit of the programming driver: the select transistor
  /// caps the pulse current regardless of how conductive the cell is.
  double compliance_current_a = 3e-4;

  double g_min() const { return 1.0 / r_max_fresh; }
  double g_max() const { return 1.0 / r_min_fresh; }
  void validate() const;
};

/// Pulse constants hoisted out of the per-pulse programming math for
/// batched execution. Everything here depends only on (DeviceParams,
/// AgingModel), both fixed per crossbar, so one context serves an entire
/// batch. Memristor::program_with(ctx, ...) evaluates the exact same
/// floating-point expressions as Memristor::program() — same operations,
/// same association order — so batched and per-cell programming produce
/// bit-identical state; the batch merely skips recomputing these
/// invariants (and the Arrhenius exp hiding inside stress_increment) on
/// every pulse.
struct PulseContext {
  double r_fresh_min = 0.0;
  double r_fresh_max = 0.0;
  double v_prog = 0.0;
  double compliance_current_a = 0.0;
  double a_f = 0.0;
  double m_f = 0.0;
  double a_g = 0.0;
  double m_g = 0.0;
  double r_floor = 0.0;
  double i_ref = 0.0;
  double alpha = 1.0;
  /// t_pulse_s * arrhenius(T): the current-independent stress prefactor.
  /// stress_increment computes t_pulse * arr * cf left-associatively, so
  /// multiplying the hoisted product by cf reproduces it bit-exactly.
  double stress_scale = 0.0;
  /// alpha == 1.0: pow(x, 1.0) == x exactly (C Annex F), skip the pow.
  bool unit_alpha = false;
  /// m_f == m_g: one pow(s, m) serves both window bounds.
  bool shared_window_exponent = false;
};

/// Builds the hoisted context for one (params, model) pair.
PulseContext make_pulse_context(const DeviceParams& params,
                                const aging::AgingModel& model);

class Memristor {
 public:
  /// `params` and `model` must outlive the device; one shared instance per
  /// crossbar keeps the per-cell footprint at a few doubles and a counter.
  /// `ambient_stress`, when non-null, points to an array-wide shared
  /// stress pool (thermal crosstalk) the owning crossbar maintains; the
  /// device's effective stress is its own plus the ambient share.
  Memristor(const DeviceParams* params, const aging::AgingModel* model,
            const double* ambient_stress = nullptr);

  /// Programmed resistance (ohms). Devices power up at r_max_fresh (HRS).
  double resistance() const { return resistance_; }
  double conductance() const { return 1.0 / resistance_; }

  /// Stress accumulated by this device's own pulses (s).
  double own_stress() const { return stress_; }
  /// Effective stress: own pulses plus the shared ambient (thermal) pool,
  /// minus the share of that pool this device's own pulses exported —
  /// a pulse's local heating is already inside `own_stress`, so counting
  /// its crosstalk share again would double-charge the originating cell.
  double stress() const {
    return stress_ + (ambient_stress_ != nullptr
                          ? *ambient_stress_ - ambient_self_share_
                          : 0.0);
  }
  std::uint64_t pulse_count() const { return pulses_; }

  /// Current aged window of this device.
  aging::AgedWindow aged_window() const;

  /// Usable fresh levels remaining at the current stress.
  std::size_t usable_levels() const;

  /// Programs the device toward `target_r` ohms. The achieved resistance is
  /// the target clamped into the aged window *before* this pulse's damage.
  /// Accrues one pulse of stress with I = v_prog / achieved_r. Returns the
  /// achieved resistance, also recording the stress increment so callers
  /// (the tracker hook) can mirror it.
  double program(double target_r);

  /// program() with the per-pulse invariants precomputed in `ctx` (which
  /// must have been built from this device's params/model pair). Evaluates
  /// the identical floating-point expressions, so the resulting device
  /// state is bit-identical to program(); batched executors use this to
  /// amortize the transcendental setup across a pulse run.
  double program_with(const PulseContext& ctx, double target_r);

  /// Stress increment charged by the most recent program() call.
  double last_stress_increment() const { return last_increment_; }

  /// Called by the owning crossbar when it adds `share` of this device's
  /// pulse stress to the shared ambient pool; stress() subtracts the
  /// running total so the originating cell never sees its own crosstalk.
  void exclude_ambient_self_share(double share) {
    ambient_self_share_ += share;
  }

  /// Recoverable conductance drift (read/retention disturbance, [8] in the
  /// paper): moves the stored resistance without a programming pulse and
  /// without aging. Clamped into the current aged window.
  void drift_to(double r);

  /// Simulator-only: pins the stored resistance without a pulse and without
  /// the aged-window clamp. Used by the fault-injection layer to hold a
  /// manufacture-stuck cell at its defect value (a broken device sits
  /// outside the behavioural switching window by definition).
  void force_resistance(double r);

  /// Reads the cell as a conductance under a small read voltage; reading
  /// does not age the device (the paper distinguishes aging from read
  /// drift, which is recoverable and out of scope here).
  double read_conductance() const { return conductance(); }

  /// Own contribution exported to the shared ambient pool so far (the
  /// running total stress() subtracts). Exposed for checkpointing.
  double ambient_self_share() const { return ambient_self_share_; }

  /// Checkpoint restore: pins the complete mutable device state. The
  /// params/model/ambient wiring is reconstructed by the owning crossbar,
  /// not serialized.
  void restore_state(double resistance, double stress, double last_increment,
                     double ambient_self_share, std::uint64_t pulses) {
    resistance_ = resistance;
    stress_ = stress;
    last_increment_ = last_increment;
    ambient_self_share_ = ambient_self_share;
    pulses_ = pulses;
  }

 private:
  const DeviceParams* params_;
  const aging::AgingModel* model_;
  const double* ambient_stress_;
  double resistance_;
  double stress_ = 0.0;
  double last_increment_ = 0.0;
  double ambient_self_share_ = 0.0;  ///< own contribution to the pool
  std::uint64_t pulses_ = 0;
};

}  // namespace xbarlife::device
