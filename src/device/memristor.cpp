#include "device/memristor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::device {

PulseContext make_pulse_context(const DeviceParams& params,
                                const aging::AgingModel& model) {
  params.validate();
  const aging::AgingParams& ap = model.params();
  PulseContext ctx;
  ctx.r_fresh_min = params.r_min_fresh;
  ctx.r_fresh_max = params.r_max_fresh;
  ctx.v_prog = params.v_prog;
  ctx.compliance_current_a = params.compliance_current_a;
  ctx.a_f = ap.a_f;
  ctx.m_f = ap.m_f;
  ctx.a_g = ap.a_g;
  ctx.m_g = ap.m_g;
  ctx.r_floor = ap.r_floor;
  ctx.i_ref = ap.reference_current_a;
  ctx.alpha = ap.current_exponent;
  ctx.stress_scale =
      params.t_pulse_s * model.arrhenius_factor(params.temperature_k);
  ctx.unit_alpha = ap.current_exponent == 1.0;
  ctx.shared_window_exponent = ap.m_f == ap.m_g;
  return ctx;
}

void DeviceParams::validate() const {
  XB_CHECK(r_min_fresh > 0.0, "r_min_fresh must be positive");
  XB_CHECK(r_max_fresh > r_min_fresh, "need r_max_fresh > r_min_fresh");
  XB_CHECK(levels >= 2, "need at least two levels");
  XB_CHECK(v_prog > 0.0, "programming voltage must be positive");
  XB_CHECK(t_pulse_s > 0.0, "pulse width must be positive");
  XB_CHECK(temperature_k > 0.0, "temperature must be positive");
  XB_CHECK(compliance_current_a > 0.0, "compliance current must be > 0");
}

Memristor::Memristor(const DeviceParams* params,
                     const aging::AgingModel* model,
                     const double* ambient_stress)
    : params_(params),
      model_(model),
      ambient_stress_(ambient_stress),
      resistance_(0.0) {
  XB_CHECK(params != nullptr && model != nullptr,
           "memristor needs device params and aging model");
  params_->validate();
  resistance_ = params_->r_max_fresh;
}

aging::AgedWindow Memristor::aged_window() const {
  return model_->aged_window(params_->r_min_fresh, params_->r_max_fresh,
                             stress());
}

std::size_t Memristor::usable_levels() const {
  return model_->usable_levels(params_->r_min_fresh, params_->r_max_fresh,
                               params_->levels, stress());
}

double Memristor::program(double target_r) {
  XB_CHECK(target_r > 0.0, "target resistance must be positive");
  const aging::AgedWindow w = aged_window();
  // A dead window (r_max collapsed onto r_min) still clamps — the device
  // just becomes a near-constant resistor.
  const double achieved =
      std::clamp(target_r, std::min(w.r_min, w.r_max), std::max(w.r_min, w.r_max));
  const double current =
      std::min(params_->v_prog / achieved, params_->compliance_current_a);
  last_increment_ = model_->stress_increment(params_->t_pulse_s,
                                             params_->temperature_k, current);
  stress_ += last_increment_;
  ++pulses_;
  resistance_ = achieved;
  return achieved;
}

double Memristor::program_with(const PulseContext& ctx, double target_r) {
  XB_CHECK(target_r > 0.0, "target resistance must be positive");
  // Inlined aged_window(): identical expressions to AgingModel::aged_r_max/
  // aged_r_min, with the shared-exponent pow computed once.
  const double s = stress();
  const double pf = std::pow(s, ctx.m_f);
  const double r_max = std::max(ctx.r_floor, ctx.r_fresh_max - ctx.a_f * pf);
  const double pg = ctx.shared_window_exponent ? pf : std::pow(s, ctx.m_g);
  const double r_min = std::max(ctx.r_floor, ctx.r_fresh_min - ctx.a_g * pg);
  const double achieved =
      std::clamp(target_r, std::min(r_min, r_max), std::max(r_min, r_max));
  const double current =
      std::min(ctx.v_prog / achieved, ctx.compliance_current_a);
  // Inlined stress_increment(): stress_scale * (I/I_ref)^alpha, matching
  // the left-associated t_pulse * arrhenius * current_factor product.
  const double x = current / ctx.i_ref;
  const double current_factor = ctx.unit_alpha ? x : std::pow(x, ctx.alpha);
  last_increment_ = ctx.stress_scale * current_factor;
  stress_ += last_increment_;
  ++pulses_;
  resistance_ = achieved;
  return achieved;
}

void Memristor::force_resistance(double r) {
  XB_CHECK(r > 0.0, "forced resistance must be positive");
  resistance_ = r;
}

void Memristor::drift_to(double r) {
  XB_CHECK(r > 0.0, "drift target must be positive");
  const aging::AgedWindow w = aged_window();
  resistance_ = std::clamp(r, std::min(w.r_min, w.r_max),
                           std::max(w.r_min, w.r_max));
}

}  // namespace xbarlife::device
