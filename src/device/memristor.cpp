#include "device/memristor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xbarlife::device {

void DeviceParams::validate() const {
  XB_CHECK(r_min_fresh > 0.0, "r_min_fresh must be positive");
  XB_CHECK(r_max_fresh > r_min_fresh, "need r_max_fresh > r_min_fresh");
  XB_CHECK(levels >= 2, "need at least two levels");
  XB_CHECK(v_prog > 0.0, "programming voltage must be positive");
  XB_CHECK(t_pulse_s > 0.0, "pulse width must be positive");
  XB_CHECK(temperature_k > 0.0, "temperature must be positive");
  XB_CHECK(compliance_current_a > 0.0, "compliance current must be > 0");
}

Memristor::Memristor(const DeviceParams* params,
                     const aging::AgingModel* model,
                     const double* ambient_stress)
    : params_(params),
      model_(model),
      ambient_stress_(ambient_stress),
      resistance_(0.0) {
  XB_CHECK(params != nullptr && model != nullptr,
           "memristor needs device params and aging model");
  params_->validate();
  resistance_ = params_->r_max_fresh;
}

aging::AgedWindow Memristor::aged_window() const {
  return model_->aged_window(params_->r_min_fresh, params_->r_max_fresh,
                             stress());
}

std::size_t Memristor::usable_levels() const {
  return model_->usable_levels(params_->r_min_fresh, params_->r_max_fresh,
                               params_->levels, stress());
}

double Memristor::program(double target_r) {
  XB_CHECK(target_r > 0.0, "target resistance must be positive");
  const aging::AgedWindow w = aged_window();
  // A dead window (r_max collapsed onto r_min) still clamps — the device
  // just becomes a near-constant resistor.
  const double achieved =
      std::clamp(target_r, std::min(w.r_min, w.r_max), std::max(w.r_min, w.r_max));
  const double current =
      std::min(params_->v_prog / achieved, params_->compliance_current_a);
  last_increment_ = model_->stress_increment(params_->t_pulse_s,
                                             params_->temperature_k, current);
  stress_ += last_increment_;
  ++pulses_;
  resistance_ = achieved;
  return achieved;
}

void Memristor::force_resistance(double r) {
  XB_CHECK(r > 0.0, "forced resistance must be positive");
  resistance_ = r;
}

void Memristor::drift_to(double r) {
  XB_CHECK(r > 0.0, "drift target must be positive");
  const aging::AgedWindow w = aged_window();
  resistance_ = std::clamp(r, std::min(w.r_min, w.r_max),
                           std::max(w.r_min, w.r_max));
}

}  // namespace xbarlife::device
