// Pluggable line sinks for the observability layer.
//
// A Sink receives fully serialized JSONL lines (one JSON document per
// call, no trailing newline). Emitters check for a null sink before doing
// any serialization work, which is what makes instrumentation free when
// nothing is attached.
#pragma once

#include <iosfwd>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace xbarlife::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Writes one serialized JSON document as a line.
  virtual void write(const std::string& line) = 0;
  virtual void flush() {}
};

/// Discards everything (useful to force the serialization path in tests).
class NullSink : public Sink {
 public:
  void write(const std::string& line) override;
  std::size_t lines_dropped() const { return dropped_; }

 private:
  std::size_t dropped_ = 0;
};

/// Appends lines to a caller-owned std::ostream (e.g. std::cout).
class StreamSink : public Sink {
 public:
  explicit StreamSink(std::ostream& out) : out_(&out) {}
  void write(const std::string& line) override;
  void flush() override;

 private:
  std::ostream* out_;
  std::mutex mu_;
};

/// Owns a file opened for truncating write; throws IoError when the file
/// cannot be opened or a write fails.
class JsonlFileSink : public Sink {
 public:
  explicit JsonlFileSink(const std::string& path);
  void write(const std::string& line) override;
  void flush() override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mu_;
};

/// Captures lines in memory, for tests and for deterministic replay of
/// per-job traces (see core::ScenarioRunner).
class MemorySink : public Sink {
 public:
  void write(const std::string& line) override;
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
  std::mutex mu_;
};

}  // namespace xbarlife::obs
