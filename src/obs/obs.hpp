// Obs: the lightweight handle instrumented code passes around.
//
// An Obs bundles an optional metrics Registry, an optional EventTrace, and
// an optional span Profiler. Every helper no-ops on a null member, so
// library functions take a `const obs::Obs& obs = {}` default parameter and
// uninstrumented callers (benches, tests, existing code) pay one branch per
// call site — the "zero-cost when no sink is attached" contract of the
// observability layer. Guard expensive field construction in hot loops with
// `obs.trace_enabled()`.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"

namespace xbarlife::obs {

struct Obs {
  Registry* metrics = nullptr;
  EventTrace* trace = nullptr;
  Profiler* profiler = nullptr;
  /// Live progress heartbeats (--status-file). Deliberately excluded from
  /// enabled(): progress is a side channel, not a mergeable sink, and must
  /// not force ObsFork to build per-job children.
  ProgressReporter* progress = nullptr;

  bool metrics_enabled() const { return metrics != nullptr; }
  bool trace_enabled() const { return trace != nullptr && trace->enabled(); }
  bool profile_enabled() const { return profiler != nullptr; }
  bool enabled() const {
    return metrics_enabled() || trace_enabled() || profile_enabled();
  }

  /// Counter increments also attribute to the profiler's innermost open
  /// span, so domain counters (tuning.pulses, tuning.iterations,
  /// resilience.rung.*, ...) roll up per phase for free.
  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) {
      metrics->counter(name).add(delta);
    }
    if (profiler != nullptr) {
      profiler->add_counter(name, delta);
    }
  }
  void set_gauge(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->gauge(name).set(value);
    }
  }
  void observe(std::string_view name, double sample) const {
    if (metrics != nullptr) {
      metrics->histogram(name).observe(sample);
    }
  }
  void event(std::string_view type,
             std::initializer_list<Field> fields = {}) const {
    if (trace != nullptr) {
      trace->emit(type, fields);
    }
  }
  /// Overload for call sites that assemble fields dynamically.
  void event(std::string_view type, const std::vector<Field>& fields) const {
    if (trace != nullptr) {
      trace->emit(type, fields);
    }
  }
  /// Progress heartbeat helpers; no-ops with no reporter attached, like
  /// every other Obs entry point.
  void progress_phase(std::string_view name, std::uint64_t done,
                      std::uint64_t total) const {
    if (progress != nullptr) {
      progress->phase(name, done, total);
    }
  }
  void progress_tick(std::uint64_t delta = 1) const {
    if (progress != nullptr) {
      progress->tick(delta);
    }
  }
};

/// RAII span: the one scope primitive of the observability layer. On every
/// attached sink it records the scope as
///   * a profiler span (hierarchical, with attributed domain counters),
///   * a span_begin/span_end trace event pair (span_end carries the
///     duration as "wall_ms", the stripped-by-convention field), and
///   * a sample in `metrics->histogram(name + "_ms")` (the existing
///     wall-clock histogram convention, excluded from determinism checks).
/// With no sink attached the constructor never reads the clock.
///
/// The legacy (Registry*, histogram_name) constructor keeps the historical
/// ScopeTimer behavior: metrics only, histogram name used verbatim.
class Span {
 public:
  Span(const Obs& obs, std::string_view name)
      : histogram_(obs.metrics != nullptr
                       ? &obs.metrics->histogram(std::string(name) + "_ms")
                       : nullptr),
        trace_(obs.trace_enabled() ? obs.trace : nullptr),
        profiler_(obs.profiler),
        name_(name) {
    if (profiler_ != nullptr) {
      span_index_ = profiler_->begin_span(name_);
    }
    if (trace_ != nullptr) {
      trace_->emit("span_begin", {{"name", name_}});
    }
    if (histogram_ != nullptr || trace_ != nullptr ||
        profiler_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  Span(Registry* metrics, std::string_view histogram_name)
      : histogram_(metrics != nullptr ? &metrics->histogram(histogram_name)
                                      : nullptr),
        name_(histogram_name) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~Span() {
    if (histogram_ == nullptr && trace_ == nullptr &&
        profiler_ == nullptr) {
      return;
    }
    const double dur = elapsed_ms();
    if (profiler_ != nullptr) {
      profiler_->end_span(span_index_);
    }
    if (trace_ != nullptr) {
      trace_->emit("span_end", {{"name", name_}, {"wall_ms", dur}});
    }
    if (histogram_ != nullptr) {
      histogram_->observe(dur);
    }
  }

 private:
  HistogramMetric* histogram_ = nullptr;
  EventTrace* trace_ = nullptr;
  Profiler* profiler_ = nullptr;
  std::size_t span_index_ = kNoSpan;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

/// Historical name for the metrics-only scope timer; Span subsumes it (and
/// fixes the old gap where a trace-only run recorded nothing from timers).
using ScopeTimer = Span;

}  // namespace xbarlife::obs
