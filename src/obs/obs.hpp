// Obs: the lightweight handle instrumented code passes around.
//
// An Obs bundles an optional metrics Registry and an optional EventTrace.
// Every helper no-ops on a null member, so library functions take a
// `const obs::Obs& obs = {}` default parameter and uninstrumented callers
// (benches, tests, existing code) pay one branch per call site — the
// "zero-cost when no sink is attached" contract of the observability
// layer. Guard expensive field construction in hot loops with
// `obs.trace_enabled()`.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"

namespace xbarlife::obs {

struct Obs {
  Registry* metrics = nullptr;
  EventTrace* trace = nullptr;

  bool metrics_enabled() const { return metrics != nullptr; }
  bool trace_enabled() const { return trace != nullptr && trace->enabled(); }
  bool enabled() const { return metrics_enabled() || trace_enabled(); }

  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) {
      metrics->counter(name).add(delta);
    }
  }
  void set_gauge(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->gauge(name).set(value);
    }
  }
  void observe(std::string_view name, double sample) const {
    if (metrics != nullptr) {
      metrics->histogram(name).observe(sample);
    }
  }
  void event(std::string_view type,
             std::initializer_list<Field> fields = {}) const {
    if (trace != nullptr) {
      trace->emit(type, fields);
    }
  }
  /// Overload for call sites that assemble fields dynamically.
  void event(std::string_view type, const std::vector<Field>& fields) const {
    if (trace != nullptr) {
      trace->emit(type, fields);
    }
  }
};

/// RAII wall-clock timer: records the scope's elapsed milliseconds into
/// `metrics->histogram(name)` on destruction. With null metrics the
/// constructor never reads the clock. Wall-clock histograms follow the
/// `*_ms` naming convention so determinism checks can exclude them.
class ScopeTimer {
 public:
  ScopeTimer(Registry* metrics, std::string_view name)
      : histogram_(metrics != nullptr ? &metrics->histogram(name) : nullptr),
        start_(histogram_ != nullptr ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{}) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopeTimer() {
    if (histogram_ != nullptr) {
      histogram_->observe(elapsed_ms());
    }
  }

 private:
  HistogramMetric* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xbarlife::obs
