#include "obs/event_trace.hpp"

namespace xbarlife::obs {

EventTrace::EventTrace(
    Sink* sink, std::vector<std::pair<std::string, JsonValue>> context)
    : sink_(sink),
      context_(std::move(context)),
      start_(std::chrono::steady_clock::now()) {}

void EventTrace::emit(std::string_view type,
                      std::initializer_list<Field> fields) {
  if (sink_ == nullptr) {
    return;
  }
  write(type, fields.begin(), fields.size());
}

void EventTrace::emit(std::string_view type,
                      const std::vector<Field>& fields) {
  if (sink_ == nullptr) {
    return;
  }
  write(type, fields.data(), fields.size());
}

void EventTrace::emit_line(const std::string& line) {
  if (sink_ == nullptr) {
    return;
  }
  sink_->write(line);
}

std::uint64_t EventTrace::events_emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void EventTrace::set_next_seq(std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  seq_ = seq;
}

void EventTrace::write(std::string_view type, const Field* fields,
                       std::size_t n) {
  const double t_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::string line;
  line.reserve(64 + 32 * n);
  line += "{\"event\":\"";
  line += json_escape(type);
  line += "\"";
  {
    const std::lock_guard<std::mutex> lock(mu_);
    line += ",\"seq\":";
    line += std::to_string(seq_++);
    line += ",\"t_ms\":";
    line += json_number(t_ms);
    for (const auto& [key, value] : context_) {
      line += ",\"";
      line += json_escape(key);
      line += "\":";
      value.dump_to(line);
    }
    for (std::size_t i = 0; i < n; ++i) {
      line += ",\"";
      line += json_escape(fields[i].first);
      line += "\":";
      fields[i].second.dump_to(line);
    }
    line += '}';
    sink_->write(line);
  }
}

}  // namespace xbarlife::obs
