#include "obs/sink.hpp"

#include <ostream>

#include "common/error.hpp"

namespace xbarlife::obs {

void NullSink::write(const std::string& line) {
  (void)line;
  ++dropped_;
}

void StreamSink::write(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
}

void StreamSink::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  if (!out_) {
    throw IoError("cannot open trace/json file for writing: " + path);
  }
}

void JsonlFileSink::write(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  if (!out_) {
    throw IoError("write failed: " + path_);
  }
}

void JsonlFileSink::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

void MemorySink::write(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(line);
}

}  // namespace xbarlife::obs
