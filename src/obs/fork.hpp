// Deterministic per-job observability contexts for fan-out layers.
//
// A fan-out layer (core::ScenarioRunner, core::run_fault_campaign) runs N
// independent jobs concurrently, but the merged metrics, event stream, and
// span profile must be byte-identical at any thread count. ObsFork is the
// one implementation of that plumbing: it forks the parent Obs into N
// child contexts — a private Registry, an in-memory EventTrace carrying a
// {"job": label} context field, and a private Profiler, each created only
// when the parent has the corresponding sink attached — and merges them
// back strictly in job-index order:
//
//   obs::ObsFork fork(parent, labels);
//   parallel_for(... { job body uses fork.job(i) ... });
//   fork.merge_into([&](std::size_t i) { /* per-job summary events */ });
//
// Each child context is written by exactly one job at a time (the repo's
// single-writer contract), so no locks are taken on the hot path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/sink.hpp"

namespace xbarlife::obs {

class ObsFork {
 public:
  /// Forks `parent` into one child context per label. When the parent has
  /// no sink attached at all, children are not allocated and job() returns
  /// disabled handles.
  ObsFork(const Obs& parent, std::vector<std::string> labels);

  std::size_t size() const { return labels_.size(); }

  /// Handle for job `i`; valid for the fork's lifetime. Mirrors the
  /// parent: null members stay null, so a metrics-only parent forks
  /// metrics-only children.
  Obs job(std::size_t i);

  /// Deterministic fan-in, strictly in job-index order: splices each
  /// job's buffered trace lines into the parent trace, merges its registry
  /// into the parent registry, and adopts its profiler as a new display
  /// track named by the job label. `after_job`, when given, runs after job
  /// i has been merged — the hook for per-job summary events
  /// (sweep_job_done) that must land between jobs i and i+1.
  void merge_into(const std::function<void(std::size_t)>& after_job = {});

  /// Moves job `i`'s buffered trace lines out of its child sink (the sink
  /// is left empty). Used by checkpointing fan-outs that persist the lines
  /// and splice them back themselves instead of calling merge_into().
  /// Returns an empty vector when children were never allocated.
  std::vector<std::string> take_job_lines(std::size_t i);

 private:
  struct Child {
    Registry registry;
    MemorySink sink;
    std::unique_ptr<EventTrace> trace;
    std::unique_ptr<Profiler> profiler;
  };

  Obs parent_;
  std::vector<std::string> labels_;
  std::vector<std::unique_ptr<Child>> children_;
};

}  // namespace xbarlife::obs
