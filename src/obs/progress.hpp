// ProgressReporter: live progress heartbeats for long-running commands
// (schema "xbarlife.progress.v1").
//
// A reporter owns one status file and rewrites it atomically (via
// persist::write_file_atomic, the same tmp+rename primitive checkpoints
// use) whenever the run advances, so an external watcher — `watch cat`,
// a dashboard poller — always reads a complete, parseable snapshot:
//
//   {"schema":"xbarlife.progress.v1","command":"lifetime",
//    "phase":"lifetime.sessions","done":12,"total":40,
//    "elapsed_ms":1523,"eta_ms":3554,"finished":false,
//    "counters":{"aging.pulses":81234,...}}
//
// phase() and finish() always write; tick() is rate-limited to one write
// per `min_interval` so per-unit ticks in hot loops cost an atomic clock
// read, not a file write. The ETA is the naive linear extrapolation
// elapsed/done * (total - done) — honest for homogeneous units, absent
// ("eta_ms" omitted) until at least one unit completes or when the total
// is unknown. The optional counters rollup snapshots a live Registry's
// counters (Registry::counters_json()), giving watchers the same live
// totals the final result document will report.
//
// All entry points are thread-safe: parallel sweep workers tick a single
// shared reporter. A tick whose rate-limited write fails (disk full,
// status path vanished) is swallowed — a heartbeat must never kill the
// run it reports on — but forced writes from phase()/finish() propagate
// IoError so a bad --status-file path fails fast at phase setup.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace xbarlife::obs {

class Registry;

class ProgressReporter {
 public:
  /// `command` is stamped into every snapshot ("train", "lifetime",
  /// "sweep", "faults"). No file is written until the first phase()/tick().
  ProgressReporter(std::string path, std::string command,
                   std::chrono::milliseconds min_interval =
                       std::chrono::milliseconds(200));

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Attaches the registry whose counters are rolled into every snapshot.
  /// Pass nullptr to detach; the registry must outlive the reporter.
  void attach_counters(const Registry* registry);

  /// Enters a named phase with `done` of `total` units already complete
  /// (resumed runs start past zero). Always writes.
  void phase(std::string_view name, std::uint64_t done, std::uint64_t total);

  /// Records `delta` finished units; writes at most once per min_interval.
  void tick(std::uint64_t delta = 1);

  /// Marks the run finished and writes a final snapshot. Idempotent.
  void finish();

  const std::string& path() const { return path_; }

 private:
  void write_locked(bool force);
  std::string render_locked() const;

  const std::string path_;
  const std::string command_;
  const std::chrono::milliseconds min_interval_;
  std::mutex mu_;
  const Registry* counters_ = nullptr;
  std::string phase_;
  std::uint64_t done_ = 0;
  std::uint64_t total_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point started_;
  std::chrono::steady_clock::time_point last_write_;
  bool wrote_ = false;
};

}  // namespace xbarlife::obs
