#include "obs/json.hpp"

#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::obs {

void JsonValue::push_back(JsonValue v) {
  auto* arr = std::get_if<Array>(&value_);
  XB_CHECK(arr != nullptr, "push_back on a non-array JsonValue");
  arr->push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  auto* obj = std::get_if<Object>(&value_);
  XB_CHECK(obj != nullptr, "set on a non-object JsonValue");
  for (auto& [k, existing] : *obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj->emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) {
    return nullptr;
  }
  for (const auto& [k, v] : *obj) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(ch) & 0xF];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double d) {
  if (!std::isfinite(d)) {
    return "null";
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  return std::string(buf, res.ptr);
}

void JsonValue::dump_to(std::string& out) const {
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(double d) const { out += json_number(d); }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(std::uint64_t u) const { out += std::to_string(u); }
    void operator()(const std::string& s) const {
      out += '"';
      out += json_escape(s);
      out += '"';
    }
    void operator()(const RawJson& r) const { out += r.text; }
    void operator()(const Array& a) const {
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        a[i].dump_to(out);
      }
      out += ']';
    }
    void operator()(const Object& o) const {
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        out += json_escape(o[i].first);
        out += "\":";
        o[i].second.dump_to(out);
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, value_);
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace xbarlife::obs
