#include "obs/profiler.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace xbarlife::obs {

Profiler::Profiler() : epoch_(std::chrono::steady_clock::now()) {}

std::size_t Profiler::begin_span(std::string_view name) {
  SpanRecord rec;
  rec.name = std::string(name);
  rec.parent = open_span();
  rec.depth = stack_.size();
  rec.track = 0;
  rec.start = std::chrono::steady_clock::now();
  const std::size_t index = records_.size();
  records_.push_back(std::move(rec));
  stack_.push_back(index);
  return index;
}

void Profiler::end_span(std::size_t index) {
  XB_CHECK(!stack_.empty() && stack_.back() == index,
           "end_span out of order: spans must close innermost first");
  SpanRecord& rec = records_[index];
  rec.dur_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - rec.start)
                   .count();
  rec.open = false;
  stack_.pop_back();
}

void Profiler::add_counter(std::string_view name, std::uint64_t delta) {
  if (stack_.empty()) {
    return;
  }
  auto& counters = records_[stack_.back()].counters;
  for (auto& [key, value] : counters) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  counters.emplace_back(std::string(name), delta);
}

void Profiler::adopt(const Profiler& child, std::string_view track_name) {
  XB_CHECK(!child.has_open_span(),
           "cannot adopt a profiler with open spans");
  const std::size_t offset = records_.size();
  const std::size_t adopt_parent = open_span();
  const std::size_t depth_offset =
      adopt_parent == kNoSpan ? 0 : records_[adopt_parent].depth + 1;
  const std::size_t track = tracks_.size();
  tracks_.emplace_back(track_name);
  records_.reserve(offset + child.records_.size());
  for (const SpanRecord& src : child.records_) {
    SpanRecord rec = src;
    if (rec.parent == kNoSpan) {
      rec.parent = adopt_parent;
    } else {
      rec.parent += offset;
    }
    rec.depth += depth_offset;
    // Child tracks flatten onto the one adopted track: jobs are
    // single-track by construction (one profiler per job).
    rec.track = track;
    records_.push_back(std::move(rec));
  }
}

void Profiler::graft(const std::vector<RemoteSpan>& spans,
                     std::chrono::steady_clock::time_point anchor) {
  const std::size_t offset = records_.size();
  const std::size_t graft_parent = open_span();
  const std::size_t depth_offset =
      graft_parent == kNoSpan ? 0 : records_[graft_parent].depth + 1;
  const std::size_t track =
      graft_parent == kNoSpan ? 0 : records_[graft_parent].track;
  records_.reserve(offset + spans.size());
  for (const RemoteSpan& src : spans) {
    XB_CHECK(src.parent == kNoSpan || src.parent + offset < records_.size(),
             "grafted span parent must precede it in the batch");
    SpanRecord rec;
    rec.name = src.name;
    rec.parent = src.parent == kNoSpan ? graft_parent : src.parent + offset;
    rec.depth = (src.parent == kNoSpan
                     ? depth_offset
                     : records_[src.parent + offset].depth + 1);
    rec.track = track;
    rec.start = anchor + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 src.start_offset_ms));
    rec.dur_ms = src.dur_ms;
    rec.open = false;
    rec.counters = src.counters;
    records_.push_back(std::move(rec));
  }
}

JsonValue Profiler::report_json(bool include_times) const {
  struct Aggregate {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;
    std::map<std::string, std::uint64_t> counters;
  };
  // Children's durations subtract from the parent's self time. Jobs
  // adopted from a concurrent fan-out overlap in wall clock, so a
  // fan-out span's self time clamps at zero rather than going negative.
  std::vector<double> child_ms(records_.size(), 0.0);
  for (const SpanRecord& rec : records_) {
    if (rec.parent != kNoSpan) {
      child_ms[rec.parent] += rec.dur_ms;
    }
  }
  std::map<std::string, Aggregate> by_name;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SpanRecord& rec = records_[i];
    Aggregate& agg = by_name[rec.name];
    ++agg.count;
    agg.total_ms += rec.dur_ms;
    agg.self_ms += std::max(0.0, rec.dur_ms - child_ms[i]);
    for (const auto& [key, value] : rec.counters) {
      agg.counters[key] += value;
    }
  }

  JsonValue spans = JsonValue::array();
  for (const auto& [name, agg] : by_name) {
    JsonValue entry = JsonValue::object();
    entry.set("name", name);
    entry.set("count", agg.count);
    if (include_times) {
      entry.set("total_ms", agg.total_ms);
      entry.set("self_ms", agg.self_ms);
    }
    JsonValue counters = JsonValue::object();
    for (const auto& [key, value] : agg.counters) {
      counters.set(key, value);
    }
    entry.set("counters", std::move(counters));
    spans.push_back(std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("span_count", records_.size());
  out.set("spans", std::move(spans));
  return out;
}

}  // namespace xbarlife::obs
