// Minimal JSON document model for the observability layer.
//
// The obs subsystem emits machine-readable output (JSONL event traces,
// metric snapshots, versioned CLI result documents); JsonValue is the
// write-side document model those emitters share. Objects preserve
// insertion order and doubles serialize via shortest-roundtrip to_chars,
// so a document built from identical values dumps to identical bytes —
// the property the determinism tests lean on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace xbarlife::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value list.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonValue(T i) {
    if constexpr (std::is_signed_v<T>) {
      value_ = static_cast<std::int64_t>(i);
    } else {
      value_ = static_cast<std::uint64_t>(i);
    }
  }
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  /// Wraps an already-serialized JSON fragment: dump() splices `json`
  /// verbatim (no validation, no re-encoding). Used to replay stored
  /// documents — e.g. checkpointed campaign entries — byte-identically.
  static JsonValue raw(std::string json) {
    JsonValue v;
    v.value_ = RawJson{std::move(json)};
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Appends to an array value (precondition: is_array()).
  void push_back(JsonValue v);

  /// Sets a key on an object value (precondition: is_object()); an
  /// existing key is overwritten in place, a new one appends.
  void set(std::string key, JsonValue v);

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  const Object* as_object() const { return std::get_if<Object>(&value_); }
  const Array* as_array() const { return std::get_if<Array>(&value_); }

  /// Serializes to compact JSON (no whitespace). Non-finite doubles emit
  /// null, per the usual JSON convention.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  /// Pre-serialized fragment; see raw().
  struct RawJson {
    std::string text;
  };

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t,
               std::string, Array, Object, RawJson>
      value_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Shortest-roundtrip serialization of a double ("0.1", not
/// "0.10000000000000001"); "null" for non-finite values.
std::string json_number(double d);

}  // namespace xbarlife::obs
