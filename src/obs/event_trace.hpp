// Structured event tracing: JSON-lines events with run-relative timestamps.
//
// An EventTrace serializes events of the form
//
//   {"event":"session_start","seq":12,"t_ms":34.5,<context...>,<fields...>}
//
// to its Sink. `seq` is a per-trace monotonic counter and `t_ms` the
// steady-clock time since the trace was created — run-relative, so traces
// are comparable across runs (determinism tests strip t_ms, the only
// wall-clock field). Context fields (e.g. {"job":"T+T/r0"} for a sweep
// job's private trace) are appended to every event.
//
// A trace with no sink is disabled: emit() returns before touching the
// clock or serializing anything, so instrumented code paths cost one
// branch when tracing is off.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/sink.hpp"

namespace xbarlife::obs {

/// One event field: name + JSON value.
using Field = std::pair<std::string_view, JsonValue>;

class EventTrace {
 public:
  /// `sink` may be null (disabled trace) and must outlive the trace.
  explicit EventTrace(Sink* sink = nullptr,
                      std::vector<std::pair<std::string, JsonValue>>
                          context = {});

  bool enabled() const { return sink_ != nullptr; }
  Sink* sink() const { return sink_; }

  void emit(std::string_view type, std::initializer_list<Field> fields);
  void emit(std::string_view type, const std::vector<Field>& fields);

  /// Replays an already serialized event line verbatim (no re-stamping);
  /// used to splice per-job traces into a parent trace in job order.
  void emit_line(const std::string& line);

  std::uint64_t events_emitted() const;

  /// Pins the next event's seq value. Checkpoint resume: a trace restored
  /// mid-run continues the stored numbering instead of restarting at 0,
  /// so a resumed stream is indistinguishable from an uninterrupted one.
  void set_next_seq(std::uint64_t seq);

 private:
  void write(std::string_view type, const Field* fields, std::size_t n);

  Sink* sink_;
  std::vector<std::pair<std::string, JsonValue>> context_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
};

}  // namespace xbarlife::obs
