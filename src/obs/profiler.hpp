// Hierarchical span profiler: where wall-clock and programming effort go.
//
// A Profiler records a tree of named spans (session -> tuning -> escalation
// rung, ...) with wall-clock durations plus deterministic domain counters
// (programming pulses, tuning iterations, rescue rungs) attached to the
// innermost open span. The paper's end-of-life feedback loop — more tuning
// iterations -> more pulses -> faster aging — becomes directly visible as
// per-phase effort instead of flat totals.
//
// Threading follows the repo's fan-out contract (common/parallel.hpp):
// a Profiler is a single-writer, lock-free buffer. Orchestration code owns
// one profiler per concurrent job (core::ScenarioRunner hands every job a
// private profiler via obs::ObsFork) and the fan-in adopt()s them in
// job-index order, so the merged span tree — names, nesting, order,
// counters — is byte-identical at any thread count. Wall-clock fields
// (start/dur) are the only nondeterministic content, mirroring the
// t_ms/wall_ms convention of the event trace.
//
// Consumers: obs::perfetto_trace_json (Chrome trace_event export, opens in
// ui.perfetto.dev) and Profiler::report_json (per-phase aggregate rollup
// embedded into the CLI result document under "profile").
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace xbarlife::obs {

/// Sentinel parent index for root spans.
inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// One recorded span. Records are stored in begin order (preorder within a
/// track), which is deterministic under the single-writer contract.
struct SpanRecord {
  std::string name;
  std::size_t parent = kNoSpan;  ///< index into records(), kNoSpan for roots
  std::size_t depth = 0;
  std::size_t track = 0;  ///< display track (0 = main; one per adopted job)
  std::chrono::steady_clock::time_point start;  ///< wall clock, nondeterministic
  double dur_ms = 0.0;                          ///< wall clock, nondeterministic
  bool open = true;
  /// Domain counters attached while this span was innermost, in first-touch
  /// order (deterministic: spans are written by a single thread).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

class Profiler {
 public:
  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Opens a span as a child of the innermost open span (or a root) and
  /// returns its index. Pair with end_span; prefer the obs::Span RAII.
  std::size_t begin_span(std::string_view name);

  /// Closes the span, recording its duration. Spans must close innermost
  /// first (RAII guarantees this); closing out of order throws.
  void end_span(std::size_t index);

  /// Adds `delta` to the named counter of the innermost open span. With no
  /// open span the sample is dropped — the CLI keeps a command-level root
  /// span open for the whole run, so nothing is lost in practice.
  void add_counter(std::string_view name, std::uint64_t delta);

  bool has_open_span() const { return !stack_.empty(); }
  /// Index of the innermost open span (kNoSpan when none).
  std::size_t open_span() const {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  /// Deterministic fan-in: appends `child`'s records under the innermost
  /// open span (or as roots), remapping parents/depths and placing the
  /// adopted records on a fresh display track named `track_name` (e.g. the
  /// sweep job label). Callers adopt in job-index order — the same
  /// convention as Registry::merge_from — so the merged tree is identical
  /// at any thread count. The child must have no open spans.
  void adopt(const Profiler& child, std::string_view track_name);

  /// A span recorded by another process, shipped back over the wire: times
  /// are already measured, expressed as offsets from a batch anchor.
  /// `parent` indexes into the grafted batch itself (kNoSpan = batch root).
  struct RemoteSpan {
    std::string name;
    std::size_t parent = kNoSpan;
    double start_offset_ms = 0.0;  ///< from the batch anchor
    double dur_ms = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
  };

  /// Grafts pre-timed remote spans under the innermost open span, on the
  /// SAME display track as that span (unlike adopt(), which opens a new
  /// track per job): a worker's rebuild/execute/serialize phases render
  /// nested inside the client's remote-execute span. Batch roots become
  /// children of the open span (or profiler roots when none is open);
  /// starts are anchored at `anchor`, a client-side time (typically the
  /// moment the request went out), so worker clocks never leak into the
  /// trace. Names, nesting, order, and counters are deterministic; only
  /// the anchored wall-clock fields are not.
  void graft(const std::vector<RemoteSpan>& spans,
             std::chrono::steady_clock::time_point anchor);

  const std::vector<SpanRecord>& records() const { return records_; }
  std::size_t span_count() const { return records_.size(); }

  /// Creation time of this profiler; Perfetto timestamps are relative to
  /// the root profiler's epoch.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Display-track names: track 0 is "main", adopted tracks follow in
  /// adoption order.
  const std::vector<std::string>& track_names() const { return tracks_; }

  /// Per-phase aggregate rollup, grouped by span name and sorted by name:
  ///   {"span_count":N,"spans":[{"name":...,"count":...,
  ///     "total_ms":...,"self_ms":...,"counters":{...}}]}
  /// `include_times` = false omits the wall-clock fields, leaving the
  /// deterministic skeleton the byte-identity tests compare.
  JsonValue report_json(bool include_times = true) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> records_;
  std::vector<std::size_t> stack_;  ///< indices of open spans, outer..inner
  std::vector<std::string> tracks_{"main"};
};

}  // namespace xbarlife::obs
