#include "obs/progress.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"

namespace xbarlife::obs {

ProgressReporter::ProgressReporter(std::string path, std::string command,
                                   std::chrono::milliseconds min_interval)
    : path_(std::move(path)),
      command_(std::move(command)),
      min_interval_(min_interval),
      started_(std::chrono::steady_clock::now()),
      last_write_(started_ - min_interval) {}

void ProgressReporter::attach_counters(const Registry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = registry;
}

void ProgressReporter::phase(std::string_view name, std::uint64_t done,
                             std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = std::string(name);
  done_ = done;
  total_ = total;
  write_locked(/*force=*/true);
}

void ProgressReporter::tick(std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  done_ += delta;
  write_locked(/*force=*/false);
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) {
    return;
  }
  finished_ = true;
  write_locked(/*force=*/true);
}

std::string ProgressReporter::render_locked() const {
  const auto now = std::chrono::steady_clock::now();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - started_);
  const std::uint64_t elapsed_ms =
      static_cast<std::uint64_t>(elapsed.count());

  std::ostringstream out;
  out << "{\"schema\":\"xbarlife.progress.v1\",\"command\":\""
      << json_escape(command_) << "\",\"phase\":\"" << json_escape(phase_)
      << "\",\"done\":" << done_ << ",\"total\":" << total_
      << ",\"elapsed_ms\":" << elapsed_ms;
  // ETA is the naive linear extrapolation; meaningless until a unit has
  // finished or once the run is past (or at) its target.
  if (!finished_ && done_ > 0 && total_ > done_) {
    const double per_unit =
        static_cast<double>(elapsed_ms) / static_cast<double>(done_);
    out << ",\"eta_ms\":"
        << static_cast<std::uint64_t>(per_unit *
                                      static_cast<double>(total_ - done_));
  }
  out << ",\"finished\":" << (finished_ ? "true" : "false");
  if (counters_ != nullptr) {
    out << ",\"counters\":" << counters_->counters_json().dump();
  }
  out << "}\n";
  return out.str();
}

void ProgressReporter::write_locked(bool force) {
  const auto now = std::chrono::steady_clock::now();
  if (!force && wrote_ && now - last_write_ < min_interval_) {
    return;
  }
  const std::string doc = render_locked();
  if (force) {
    persist::write_file_atomic(path_, doc);
  } else {
    // A rate-limited heartbeat must never kill the run it reports on.
    try {
      persist::write_file_atomic(path_, doc);
    } catch (const IoError&) {
      return;
    }
  }
  last_write_ = now;
  wrote_ = true;
}

}  // namespace xbarlife::obs
