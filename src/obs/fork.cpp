#include "obs/fork.hpp"

#include <utility>

namespace xbarlife::obs {

ObsFork::ObsFork(const Obs& parent, std::vector<std::string> labels)
    : parent_(parent), labels_(std::move(labels)) {
  if (!parent_.enabled()) {
    return;
  }
  children_.reserve(labels_.size());
  for (const std::string& label : labels_) {
    auto child = std::make_unique<Child>();
    std::vector<std::pair<std::string, JsonValue>> context;
    context.emplace_back("job", JsonValue(label));
    child->trace = std::make_unique<EventTrace>(
        parent_.trace_enabled() ? &child->sink : nullptr,
        std::move(context));
    if (parent_.profile_enabled()) {
      child->profiler = std::make_unique<Profiler>();
    }
    children_.push_back(std::move(child));
  }
}

Obs ObsFork::job(std::size_t i) {
  // Deliberately no progress handle: the campaign loop owns the phase
  // and ticks once per finished job on the parent Obs; letting a job's
  // inner phases (e.g. lifetime.sessions) through would clobber it.
  Obs handle;
  if (children_.empty()) {
    return handle;
  }
  Child& child = *children_[i];
  handle.metrics = parent_.metrics_enabled() ? &child.registry : nullptr;
  handle.trace = child.trace.get();
  handle.profiler = child.profiler.get();
  return handle;
}

std::vector<std::string> ObsFork::take_job_lines(std::size_t i) {
  if (children_.empty()) {
    return {};
  }
  Child& child = *children_[i];
  std::vector<std::string> lines = child.sink.lines();
  child.sink.clear();
  return lines;
}

void ObsFork::merge_into(
    const std::function<void(std::size_t)>& after_job) {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!children_.empty()) {
      Child& child = *children_[i];
      if (parent_.trace_enabled()) {
        for (const std::string& line : child.sink.lines()) {
          parent_.trace->emit_line(line);
        }
      }
      if (parent_.metrics_enabled()) {
        parent_.metrics->merge_from(child.registry);
      }
      if (parent_.profile_enabled()) {
        parent_.profiler->adopt(*child.profiler, labels_[i]);
      }
    }
    if (after_job) {
      after_job(i);
    }
  }
}

}  // namespace xbarlife::obs
