// Metrics registry: named counters, gauges, and summary histograms.
//
// Thread-safety and determinism follow the repo's parallel contract
// (common/parallel.hpp): counter increments are atomic and commutative, so
// concurrent adds aggregate to the same total at any thread count; gauges
// and histograms are only written from orchestration code (one writer per
// registry), and fan-out layers give every job its own Registry and merge
// them in job-index order — the merged snapshot is therefore byte-identical
// between a serial and a threaded run.
//
// Metric handles returned by the registry are stable for the registry's
// lifetime; hot paths cache the pointer and pay one predictable branch when
// no metrics are attached.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace xbarlife::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric. Single-writer (orchestration code); readers may
/// observe it concurrently.
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_release);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool has_value() const { return set_.load(std::memory_order_acquire); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// Streaming summary (count / sum / min / max) of observed samples, plus a
/// fixed log-scale bucket array for deterministic quantile estimates.
///
/// Buckets are powers of two: bucket 0 catches non-positive and non-finite
/// samples, bucket i (i >= 1) spans [2^(i-33), 2^(i-32)) — covering
/// ~1.2e-10 through ~2.1e9 with everything beyond clamped into the edge
/// buckets. Every observe() updates the buckets, so combine() is a plain
/// element-wise add and the merged state is invariant under merge order;
/// quantile() reads only buckets/count/min/max (never the fp sum), so the
/// estimates are byte-identical at any thread count and any fold order.
/// The bucketed flag (Registry::bucketed_histogram) only widens the JSON
/// export — plain histograms keep their summary-only shape.
class HistogramMetric {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double sample);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double mean() const;  ///< 0 when empty

  /// Deterministic quantile estimate from the log buckets (q in [0,1]);
  /// 0 when empty. Exact for min/max, within one bucket width otherwise.
  double quantile(double q) const;

  /// Snapshot of the bucket array.
  std::array<std::uint64_t, kBuckets> buckets() const;

  /// Whether extended (quantile + bucket) JSON export is requested.
  bool bucketed() const;
  void set_bucketed();

  /// Maps a sample to its bucket index (exposed for tests).
  static std::size_t bucket_index(double sample);

  /// Adds another summary into this one (used by Registry::merge_from).
  /// Commutative and associative: combine(a,b) == combine(b,a) up to fp
  /// addition of sums, and bucket/quantile state exactly.
  void combine(const HistogramMetric& other);

 private:
  double quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBuckets> buckets_{};
  bool bucketed_ = false;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric. The returned reference stays valid
  /// for the registry's lifetime. A name addresses one metric kind only;
  /// reusing it for another kind throws InvalidArgument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);

  /// Like histogram(), but marks the metric for extended JSON export:
  /// p50/p95/p99 estimates plus the sparse bucket array are emitted after
  /// the summary fields. The flag survives merge_from, so a bucketed
  /// child histogram stays bucketed in the merged parent snapshot.
  HistogramMetric& bucketed_histogram(std::string_view name);

  /// Folds `other` into this registry: counters add, histograms combine,
  /// and set gauges overwrite (callers merge in job-index order, so
  /// "latest job wins" is deterministic).
  void merge_from(const Registry& other);

  /// Snapshot as a JSON object with keys sorted by metric name:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///    min,max,mean}}}
  /// Unset gauges and empty histograms are skipped. Metrics whose name
  /// matches `exclude_suffix` (when non-empty) are dropped — the
  /// determinism tests use this to ignore wall-clock "*_ms" series.
  JsonValue to_json(std::string_view exclude_suffix = {}) const;

  /// Counters only, as a JSON object keyed by name (sorted). The cheap
  /// live rollup used by progress snapshots: Counter::add is atomic, so
  /// this is safe to call while jobs are still incrementing.
  JsonValue counters_json() const;

  /// Calls fn(name, value) for every counter in name order. Used by the
  /// wire layer to ship counter deltas without exposing the maps.
  void visit_counters(
      const std::function<void(const std::string&, std::uint64_t)>& fn) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

}  // namespace xbarlife::obs
