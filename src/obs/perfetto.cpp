#include "obs/perfetto.hpp"

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

namespace xbarlife::obs {

std::string content_address(std::string_view path) {
  // FNV-1a 64-bit: stable across platforms, no dependency.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

JsonValue perfetto_trace_json(const Profiler& profiler,
                              std::string_view tool) {
  const auto& records = profiler.records();

  // Content-addressed ids: path = parent path / name # occurrence, where
  // occurrence counts earlier same-name spans under the same parent.
  std::vector<std::string> paths(records.size());
  std::map<std::string, std::size_t> occurrences;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    std::string path =
        rec.parent == kNoSpan ? "" : paths[rec.parent];
    path += "/";
    path += rec.name;
    const std::size_t k = occurrences[path]++;
    path += "#";
    path += std::to_string(k);
    paths[i] = std::move(path);
  }

  JsonValue events = JsonValue::array();
  {
    JsonValue meta = JsonValue::object();
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", 0);
    meta.set("name", "process_name");
    JsonValue args = JsonValue::object();
    args.set("name", "xbarlife");
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  const auto& tracks = profiler.track_names();
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    JsonValue meta = JsonValue::object();
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", t);
    meta.set("name", "thread_name");
    JsonValue args = JsonValue::object();
    args.set("name", tracks[t]);
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }

  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    JsonValue ev = JsonValue::object();
    ev.set("ph", "X");
    ev.set("pid", 1);
    ev.set("tid", rec.track);
    ev.set("name", rec.name);
    ev.set("cat", "xbarlife");
    ev.set("id", content_address(paths[i]));
    // Microseconds since the root profiler's epoch — the trace's only
    // nondeterministic fields (strip ts/dur to compare runs).
    ev.set("ts", std::chrono::duration<double, std::micro>(
                     rec.start - profiler.epoch())
                     .count());
    ev.set("dur", rec.dur_ms * 1000.0);
    JsonValue args = JsonValue::object();
    args.set("path", paths[i]);
    for (const auto& [key, value] : rec.counters) {
      args.set(key, value);
    }
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }

  JsonValue other = JsonValue::object();
  other.set("schema", kProfileSchema);
  other.set("tool", tool);
  other.set("span_count", records.size());
  JsonValue out = JsonValue::object();
  out.set("displayTimeUnit", "ms");
  out.set("otherData", std::move(other));
  out.set("traceEvents", std::move(events));
  return out;
}

}  // namespace xbarlife::obs
