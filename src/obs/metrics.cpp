#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xbarlife::obs {

void HistogramMetric::observe(double sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

std::uint64_t HistogramMetric::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double HistogramMetric::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double HistogramMetric::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double HistogramMetric::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double HistogramMetric::mean() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void HistogramMetric::combine(const HistogramMetric& other) {
  // Copy under the source lock first so combine(self) cannot deadlock.
  std::uint64_t ocount;
  double osum;
  double omin;
  double omax;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    ocount = other.count_;
    osum = other.sum_;
    omin = other.min_;
    omax = other.max_;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  count_ += ocount;
  sum_ += osum;
  min_ = std::min(min_, omin);
  max_ = std::max(max_, omax);
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

template <typename Map>
bool contains(const Map& map, std::string_view name) {
  return map.find(name) != map.end();
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(gauges_, name) && !contains(histograms_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(counters_, name) && !contains(histograms_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(gauges_, name);
}

HistogramMetric& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(counters_, name) && !contains(gauges_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(histograms_, name);
}

void Registry::merge_from(const Registry& other) {
  XB_CHECK(&other != this, "cannot merge a registry into itself");
  // Lock ordering: other is only read, this only written; both maps are
  // only mutated (inserted into) under their own mutex.
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, c] : other.counters_) {
    find_or_create(counters_, name).add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    if (g->has_value()) {
      find_or_create(gauges_, name).set(g->value());
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    find_or_create(histograms_, name).combine(*h);
  }
}

JsonValue Registry::to_json(std::string_view exclude_suffix) const {
  const auto excluded = [&](const std::string& name) {
    return !exclude_suffix.empty() && name.size() >= exclude_suffix.size() &&
           name.compare(name.size() - exclude_suffix.size(),
                        exclude_suffix.size(), exclude_suffix) == 0;
  };
  const std::lock_guard<std::mutex> lock(mu_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    if (!excluded(name)) {
      counters.set(name, c->value());
    }
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) {
    if (!excluded(name) && g->has_value()) {
      gauges.set(name, g->value());
    }
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    if (excluded(name) || h->count() == 0) {
      continue;
    }
    JsonValue summary = JsonValue::object();
    summary.set("count", h->count());
    summary.set("sum", h->sum());
    summary.set("min", h->min());
    summary.set("max", h->max());
    summary.set("mean", h->mean());
    histograms.set(name, std::move(summary));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace xbarlife::obs
