#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::obs {

std::size_t HistogramMetric::bucket_index(double sample) {
  if (!(sample > 0.0) || !std::isfinite(sample)) {
    return 0;  // catch-all: zero, negative, NaN, inf
  }
  const int raw = std::ilogb(sample) + 33;
  return static_cast<std::size_t>(
      std::clamp(raw, 1, static_cast<int>(kBuckets) - 1));
}

void HistogramMetric::observe(double sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
  ++buckets_[bucket_index(sample)];
}

std::uint64_t HistogramMetric::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double HistogramMetric::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double HistogramMetric::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double HistogramMetric::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double HistogramMetric::mean() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double HistogramMetric::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

double HistogramMetric::quantile_locked(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cum + buckets_[i] >= rank) {
      // Interpolate within the bucket on the log scale; bucket 0 has no
      // meaningful lower edge, so it reports the observed minimum.
      double value;
      if (i == 0) {
        value = min_;
      } else {
        const double f = static_cast<double>(rank - cum) /
                         static_cast<double>(buckets_[i]);
        value = std::ldexp(1.0, static_cast<int>(i) - 33) * std::exp2(f);
      }
      return std::clamp(value, min_, max_);
    }
    cum += buckets_[i];
  }
  return max_;
}

std::array<std::uint64_t, HistogramMetric::kBuckets> HistogramMetric::buckets()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

bool HistogramMetric::bucketed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bucketed_;
}

void HistogramMetric::set_bucketed() {
  const std::lock_guard<std::mutex> lock(mu_);
  bucketed_ = true;
}

void HistogramMetric::combine(const HistogramMetric& other) {
  // Copy under the source lock first so combine(self) cannot deadlock.
  std::uint64_t ocount;
  double osum;
  double omin;
  double omax;
  std::array<std::uint64_t, kBuckets> obuckets;
  bool obucketed;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    ocount = other.count_;
    osum = other.sum_;
    omin = other.min_;
    omax = other.max_;
    obuckets = other.buckets_;
    obucketed = other.bucketed_;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  count_ += ocount;
  sum_ += osum;
  min_ = std::min(min_, omin);
  max_ = std::max(max_, omax);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += obuckets[i];
  }
  bucketed_ = bucketed_ || obucketed;
}

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

template <typename Map>
bool contains(const Map& map, std::string_view name) {
  return map.find(name) != map.end();
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(gauges_, name) && !contains(histograms_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(counters_, name) && !contains(histograms_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(gauges_, name);
}

HistogramMetric& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  XB_CHECK(!contains(counters_, name) && !contains(gauges_, name),
           "metric name already used for a different kind: " +
               std::string(name));
  return find_or_create(histograms_, name);
}

HistogramMetric& Registry::bucketed_histogram(std::string_view name) {
  HistogramMetric& h = histogram(name);
  h.set_bucketed();
  return h;
}

void Registry::merge_from(const Registry& other) {
  XB_CHECK(&other != this, "cannot merge a registry into itself");
  // Lock ordering: other is only read, this only written; both maps are
  // only mutated (inserted into) under their own mutex.
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, c] : other.counters_) {
    find_or_create(counters_, name).add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    if (g->has_value()) {
      find_or_create(gauges_, name).set(g->value());
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    find_or_create(histograms_, name).combine(*h);
  }
}

JsonValue Registry::to_json(std::string_view exclude_suffix) const {
  const auto excluded = [&](const std::string& name) {
    return !exclude_suffix.empty() && name.size() >= exclude_suffix.size() &&
           name.compare(name.size() - exclude_suffix.size(),
                        exclude_suffix.size(), exclude_suffix) == 0;
  };
  const std::lock_guard<std::mutex> lock(mu_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    if (!excluded(name)) {
      counters.set(name, c->value());
    }
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) {
    if (!excluded(name) && g->has_value()) {
      gauges.set(name, g->value());
    }
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    if (excluded(name) || h->count() == 0) {
      continue;
    }
    JsonValue summary = JsonValue::object();
    summary.set("count", h->count());
    summary.set("sum", h->sum());
    summary.set("min", h->min());
    summary.set("max", h->max());
    summary.set("mean", h->mean());
    if (h->bucketed()) {
      summary.set("p50", h->quantile(0.50));
      summary.set("p95", h->quantile(0.95));
      summary.set("p99", h->quantile(0.99));
      JsonValue buckets = JsonValue::object();
      const auto counts = h->buckets();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] != 0) {
          buckets.set(std::to_string(i), counts[i]);
        }
      }
      summary.set("buckets", std::move(buckets));
    }
    histograms.set(name, std::move(summary));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

JsonValue Registry::counters_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::object();
  for (const auto& [name, c] : counters_) {
    out.set(name, c->value());
  }
  return out;
}

void Registry::visit_counters(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    fn(name, c->value());
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace xbarlife::obs
