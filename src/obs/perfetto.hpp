// Chrome trace_event / Perfetto export of a span profile.
//
// perfetto_trace_json() converts a Profiler's span tree into the JSON
// object format understood by ui.perfetto.dev and chrome://tracing: one
// complete ("ph":"X") event per span, metadata events naming the process
// and one display track per adopted fan-out job.
//
// Determinism contract: every field except the wall-clock "ts"/"dur"
// values is deterministic at any thread count. Span ids are
// content-addressed — an FNV-1a hash of the span's path
// (parent-path "/" name "#" same-name-sibling-occurrence) — so the same
// run always produces the same ids and diffing two trace files is
// meaningful. Tests strip ts/dur and compare the rest byte-for-byte, the
// same convention the event-trace goldens use for t_ms.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace xbarlife::obs {

/// Stable hex span id for the given path string (FNV-1a 64).
std::string content_address(std::string_view path);

/// The full trace document:
///   {"displayTimeUnit":"ms","otherData":{"schema":"xbarlife.profile.v1",
///    "tool":...},"traceEvents":[...]}
/// `tool` labels otherData.tool (e.g. "xbarlife lifetime").
JsonValue perfetto_trace_json(const Profiler& profiler,
                              std::string_view tool);

/// Schema tag stamped into otherData.schema.
inline constexpr std::string_view kProfileSchema = "xbarlife.profile.v1";

}  // namespace xbarlife::obs
