#include "mapping/range_select.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::mapping {

std::vector<double> candidate_upper_bounds(
    const aging::RepresentativeTracker& tracker,
    const aging::AgingModel& model, double r_fresh_min, double r_fresh_max,
    double merge_tol) {
  XB_CHECK(r_fresh_min < r_fresh_max, "invalid fresh window");
  XB_CHECK(merge_tol >= 0.0, "merge tolerance must be >= 0");
  std::vector<double> bounds;
  for (double s : tracker.representative_stresses()) {
    bounds.push_back(
        model.aged_r_max(r_fresh_max, s + tracker.ambient_stress()));
  }
  std::sort(bounds.begin(), bounds.end());
  // Merge near-duplicates.
  const double tol = merge_tol * (r_fresh_max - r_fresh_min);
  std::vector<double> merged;
  for (double b : bounds) {
    if (merged.empty() || b - merged.back() > tol) {
      merged.push_back(b);
    }
  }
  return merged;
}

std::function<aging::AgedWindow(std::size_t, std::size_t)>
tracker_window_functor(const aging::RepresentativeTracker& tracker,
                       const aging::AgingModel& model, double r_fresh_min,
                       double r_fresh_max) {
  return [&tracker, &model, r_fresh_min, r_fresh_max](std::size_t r,
                                                      std::size_t c) {
    const double s = tracker.stress_estimate(r, c);
    return model.aged_window(r_fresh_min, r_fresh_max, s);
  };
}

namespace {

// Cells whose target is *materially* unreachable: the achievable
// conductance misses the target by more than half a quantization step —
// the same criterion the write-verify controller uses. Each such cell
// costs a wasted pulse per session and a tuning blind spot.
std::size_t count_clamped(
    const Tensor& weights, const MappingPlan& plan,
    const std::function<aging::AgedWindow(std::size_t, std::size_t)>&
        window_of) {
  std::size_t clamped = 0;
  const auto& range = plan.quantizer().range();
  const double half_step =
      0.5 * (range.g_max() - range.g_min()) /
      static_cast<double>(plan.quantizer().levels() - 1);
  const std::size_t rows = weights.shape()[0];
  const std::size_t cols = weights.shape()[1];
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double target =
          plan.target_resistance(static_cast<double>(weights.at(r, c)));
      const double achievable_r =
          std::min(target, window_of(r, c).r_max);
      if (1.0 / achievable_r - 1.0 / target > half_step) {
        ++clamped;
      }
    }
  }
  return clamped;
}

}  // namespace

RangeSelectionResult select_common_range(
    const aging::RepresentativeTracker& tracker,
    const aging::AgingModel& model, double r_fresh_min, double r_fresh_max,
    const Tensor& weights, std::size_t levels,
    const EffectiveWeightEvaluator& evaluate,
    const ResistanceRange* incumbent, double keep_threshold,
    double switch_margin, std::size_t max_candidates,
    std::function<aging::AgedWindow(std::size_t, std::size_t)> window_of) {
  XB_CHECK(evaluate != nullptr, "range selection needs an evaluator");
  XB_CHECK(weights.shape().rank() == 2, "weights must be rank-2");
  XB_CHECK(max_candidates >= 1, "need at least one candidate");

  RangeSelectionResult result;
  const WeightRange wr = weight_range_of(weights);
  if (window_of == nullptr) {
    window_of =
        tracker_window_functor(tracker, model, r_fresh_min, r_fresh_max);
  }

  // Remap-on-demand: when the currently programmed range still predicts an
  // accuracy above `keep_threshold`, keep it without scanning candidates.
  // Re-ranging rewrites the whole array, so it must earn its pulses.
  double incumbent_score = -1.0;
  if (incumbent != nullptr && incumbent->valid()) {
    const MappingPlan plan(wr, ResistanceRange{r_fresh_min, r_fresh_max},
                           levels, incumbent->r_hi);
    const Tensor eff = predict_effective_weights(weights, plan, window_of);
    incumbent_score = evaluate(eff);
    ++result.candidates_tried;
    // Keep outright while the incumbent still predicts an acceptable
    // accuracy. (Clamped cells are cheap under the pinned write-verify
    // controller, so they do not by themselves justify a rewrite.)
    if (incumbent_score >= keep_threshold) {
      result.selected = *incumbent;
      result.best_score = incumbent_score;
      result.kept_incumbent = true;
      return result;
    }
  }

  result.candidate_bounds =
      candidate_upper_bounds(tracker, model, r_fresh_min, r_fresh_max);
  XB_ASSERT(!result.candidate_bounds.empty(),
            "tracker always yields at least one representative");
  if (result.candidate_bounds.size() > max_candidates) {
    // Even subsample keeping the extremes (R^L and R^U of Fig. 8).
    std::vector<double> kept;
    kept.reserve(max_candidates);
    const double stride =
        static_cast<double>(result.candidate_bounds.size() - 1) /
        static_cast<double>(max_candidates - 1);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      kept.push_back(result.candidate_bounds[static_cast<std::size_t>(
          std::llround(static_cast<double>(i) * stride))]);
    }
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    result.candidate_bounds = std::move(kept);
  }

  double best_score = -1.0;
  for (double upper : result.candidate_bounds) {
    // A candidate too close to the lower bound cannot host a quantizer.
    if (upper <= r_fresh_min * (1.0 + 1e-9)) {
      result.candidate_scores.push_back(-1.0);
      result.candidate_clamps.push_back(weights.numel());
      continue;
    }
    // Candidate = the fresh level grid truncated at this aged bound.
    const MappingPlan plan(wr, ResistanceRange{r_fresh_min, r_fresh_max},
                           levels, upper);
    const Tensor eff = predict_effective_weights(weights, plan, window_of);
    const double score = evaluate(eff);
    result.candidate_scores.push_back(score);
    result.candidate_clamps.push_back(
        count_clamped(weights, plan, window_of));
    ++result.candidates_tried;
    best_score = std::max(best_score, score);
  }
  // Epsilon-tolerant argmax, resolved toward the LARGEST bound: the
  // evaluator scores are noisy (small validation slice), and shrinking the
  // common range pushes every cell to a higher conductance — i.e. a higher
  // programming current — so the range should only shrink when a smaller
  // bound wins by a clear margin.
  constexpr double kScoreTolerance = 0.02;
  // Among the candidates near-tied on accuracy the LARGEST bound wins:
  // shrinking the common range pushes every cell to a higher conductance
  // (a higher programming current), so the range only shrinks when a
  // smaller bound buys a clear accuracy improvement.
  ResistanceRange best_range;
  for (std::size_t i = 0; i < result.candidate_bounds.size(); ++i) {
    if (result.candidate_scores[i] < best_score - kScoreTolerance ||
        result.candidate_scores[i] < 0.0) {
      continue;
    }
    // Candidates iterate ascending: keep overwriting -> largest wins.
    best_range = ResistanceRange{r_fresh_min, result.candidate_bounds[i]};
  }
  if (best_score < 0.0) {
    // Every candidate degenerate (fully collapsed windows): fall back to
    // the fresh range; the crossbar is effectively dead and the caller's
    // tuning loop will detect it.
    best_range = ResistanceRange{r_fresh_min, r_fresh_max};
    best_score = 0.0;
  }
  // The incumbent is displaced only by a LARGE predicted-accuracy gain:
  // re-ranging rewrites the whole array at higher conductances (higher
  // programming currents), so in pulse-budget terms a switch is expensive
  // and must buy a material recovery, not a marginal win.
  if (incumbent_score >= best_score - switch_margin &&
      incumbent_score >= 0.0) {
    result.selected = *incumbent;
    result.best_score = incumbent_score;
    result.kept_incumbent = true;
    return result;
  }
  result.selected = best_range;
  result.best_score = best_score;
  return result;
}

}  // namespace xbarlife::mapping
