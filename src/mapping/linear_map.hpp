// Linear weight <-> conductance mapping (Eq. (4) of the paper):
//
//   g = (g_max - g_min) / (w_max - w_min) * (w - w_min) + g_min
//
// One common conductance range per crossbar keeps column currents linear in
// the weights, which is why the aging-aware mapper must pick a *common*
// resistance range rather than a per-device one.
#pragma once

#include "tensor/tensor.hpp"

namespace xbarlife::mapping {

struct WeightRange {
  double w_min = 0.0;
  double w_max = 0.0;

  double span() const { return w_max - w_min; }
};

/// Min/max of a weight tensor. A constant tensor yields a degenerate range
/// which LinearMap handles by mapping everything to g_min.
WeightRange weight_range_of(const Tensor& weights);

class LinearMap {
 public:
  /// Maps [w.w_min, w.w_max] onto [g_min, g_max]; requires g_max > g_min.
  LinearMap(WeightRange w, double g_min, double g_max);

  double weight_to_conductance(double weight) const;
  double conductance_to_weight(double g) const;

  const WeightRange& weight_range() const { return w_; }
  double g_min() const { return g_min_; }
  double g_max() const { return g_max_; }

 private:
  WeightRange w_;
  double g_min_;
  double g_max_;
  double scale_;      // (g_max-g_min)/(w_max-w_min); 0 for degenerate range
  double inv_scale_;  // 1/scale_ or 0
};

}  // namespace xbarlife::mapping
