#include "mapping/mapper.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::mapping {

MappingPlan::MappingPlan(WeightRange weights, ResistanceRange fresh,
                         std::size_t fresh_levels, double upper_cut)
    // The weight range maps onto the *usable* conductance range so every
    // target stays on a usable level.
    : quantizer_(fresh, fresh_levels, upper_cut),
      map_(weights, quantizer_.range().g_min(),
           quantizer_.range().g_max()) {}

MappingPlan::MappingPlan(WeightRange weights, ResistanceRange fresh,
                         std::size_t fresh_levels)
    : MappingPlan(weights, fresh, fresh_levels, fresh.r_hi) {}

double MappingPlan::target_resistance(double weight) const {
  const double g = map_.weight_to_conductance(weight);
  const std::size_t level = quantizer_.nearest_level_for_conductance(g);
  return quantizer_.level_resistance(level);
}

double MappingPlan::weight_of_resistance(double r) const {
  XB_CHECK(r > 0.0, "resistance must be positive");
  return map_.conductance_to_weight(1.0 / r);
}

Tensor predict_effective_weights(
    const Tensor& weights, const MappingPlan& plan,
    const std::function<aging::AgedWindow(std::size_t, std::size_t)>&
        window_of) {
  XB_CHECK(weights.shape().rank() == 2, "weights must be rank-2");
  XB_CHECK(window_of != nullptr, "window functor required");
  const std::size_t rows = weights.shape()[0];
  const std::size_t cols = weights.shape()[1];
  Tensor eff(weights.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double target =
          plan.target_resistance(static_cast<double>(weights.at(r, c)));
      const aging::AgedWindow w = window_of(r, c);
      const double achieved =
          std::clamp(target, std::min(w.r_min, w.r_max),
                     std::max(w.r_min, w.r_max));
      eff.at(r, c) = static_cast<float>(plan.weight_of_resistance(achieved));
    }
  }
  return eff;
}

namespace {

/// Per-active-cell record carried from the build pass to the fold pass,
/// in the canonical column-major order.
struct CellVisit {
  double w = 0.0;         ///< weight being mapped
  double g_target = 0.0;  ///< target conductance
  double achieved = 0.0;  ///< stored resistance at build time (pre-write)
  std::size_t idx = 0;    ///< row-major index into stuck/pinned maps
  std::uint8_t state = kCellHealthy;
  bool programmed = false;
};

}  // namespace

MappingReport program_weights(xbar::Crossbar& xbar, const Tensor& weights,
                              const MappingPlan& plan, bool skip_unchanged,
                              std::vector<std::uint8_t>* stuck,
                              std::vector<float>* pinned_g,
                              const std::vector<std::uint8_t>* row_active,
                              const xbar::ProgramExecutor* executor) {
  XB_CHECK(weights.shape().rank() == 2 &&
               weights.shape()[0] == xbar.rows() &&
               weights.shape()[1] == xbar.cols(),
           "weight matrix must match crossbar dimensions");
  XB_CHECK(row_active == nullptr || row_active->size() == xbar.rows(),
           "row-active mask size must match the crossbar rows");
  MappingReport report;
  std::size_t active_rows = xbar.rows();
  if (row_active != nullptr) {
    active_rows = 0;
    for (const std::uint8_t a : *row_active) {
      active_rows += a != 0;
    }
  }
  XB_CHECK(active_rows > 0, "row-active mask must keep at least one row");
  report.total_cells = active_rows * xbar.cols();
  const std::size_t full_cells = xbar.rows() * xbar.cols();
  XB_CHECK(stuck == nullptr || stuck->size() == full_cells,
           "stuck map size must match the crossbar");
  XB_CHECK(stuck == nullptr ||
               (pinned_g != nullptr && pinned_g->size() == full_cells),
           "a stuck map needs a matching pinned-conductance map");
  if (executor == nullptr) {
    executor = &xbar::select_executor();
  }
  // Skip cells already within half a quantization step of the target *in
  // conductance space*: weight error is proportional to conductance error
  // (Eq. 4 is linear in g), so this is the fidelity criterion a
  // read-verify-program controller actually cares about.
  const auto& range = plan.quantizer().range();
  const double skip_tol =
      0.5 * (range.g_max() - range.g_min()) /
      static_cast<double>(plan.quantizer().levels() - 1);

  // Build: walk cells column-major (the sequence's canonical per-column
  // batching order), decide which need a pulse against their *stored*
  // pre-write state — each cell appears at most once, so build-time reads
  // are independent of the later execution — and emit the pulses.
  xbar::SequenceBuilder builder(xbar.rows(), xbar.cols());
  std::vector<CellVisit> visits;
  visits.reserve(report.total_cells);
  double sum_g = 0.0;
  for (std::size_t c = 0; c < xbar.cols(); ++c) {
    for (std::size_t r = 0; r < xbar.rows(); ++r) {
      if (row_active != nullptr && (*row_active)[r] == 0) {
        continue;  // Unused spare row: never pulsed, never scored.
      }
      CellVisit v;
      v.w = static_cast<double>(weights.at(r, c));
      const double target = plan.target_resistance(v.w);
      v.g_target = 1.0 / target;
      sum_g += v.g_target;
      v.idx = r * xbar.cols() + c;
      v.achieved = xbar.cell(r, c).resistance();
      v.state = stuck != nullptr ? (*stuck)[v.idx] : kCellHealthy;
      if (v.state == kCellDead) {
        // A dead cell's window is pinned: writes cannot move it and drift
        // cannot either, so the controller retires it completely.
        visits.push_back(v);
        continue;
      }
      bool needs_write = !skip_unchanged ||
                         std::fabs(1.0 / v.achieved - v.g_target) > skip_tol;
      if (v.state == kCellClamped) {
        // The target is known unreachable; pulse only to correct material
        // drift away from the pinned best-achievable value.
        needs_write = std::fabs(1.0 / v.achieved -
                                static_cast<double>((*pinned_g)[v.idx])) >
                      skip_tol;
      }
      if (needs_write) {
        builder.pulse(r, c, target);
        v.programmed = true;
      }
      visits.push_back(v);
    }
  }

  // Execute: one batched command stream through the selected backend.
  const xbar::ProgramSequence seq = builder.build();
  const xbar::ExecReport exec = executor->execute(xbar, seq);

  // Fold: walk the visits in the same order, consuming one pulse result
  // per programmed cell, and run the write-verify state machine.
  double sq_err = 0.0;
  std::size_t op_cursor = 0;
  const std::vector<xbar::ProgramOp>& ops = seq.ops();
  for (CellVisit& v : visits) {
    double achieved = v.achieved;
    if (v.programmed) {
      while (op_cursor < ops.size() &&
             ops[op_cursor].kind != xbar::OpKind::kProgramPulse) {
        ++op_cursor;  // Barriers between column batches carry no result.
      }
      XB_ASSERT(op_cursor < ops.size(),
                "program_weights fold ran out of pulse results");
      const double g_before = 1.0 / achieved;
      achieved = exec.results[op_cursor];
      ++op_cursor;
      ++report.programmed_cells;
      if (std::fabs(1.0 / achieved - v.g_target) > skip_tol) {
        if (v.state == kCellHealthy) {
          // Write-verify failed: the aged window no longer covers the
          // target. Blacklist the cell for the tuning controller and
          // pin its best-achievable value.
          ++report.clamped_cells;
          if (stuck != nullptr) {
            (*stuck)[v.idx] = kCellClamped;
            (*pinned_g)[v.idx] = static_cast<float>(1.0 / achieved);
          }
        } else if (std::fabs(1.0 / achieved - g_before) < 0.05 * skip_tol) {
          // The pulse moved nothing: the window has collapsed. Retire
          // the cell so later sessions stop burning it.
          (*stuck)[v.idx] = kCellDead;
        } else {
          // Still alive but still clamped: refresh the pin.
          (*pinned_g)[v.idx] = static_cast<float>(1.0 / achieved);
        }
      }
    }
    const double w_eff = plan.weight_of_resistance(achieved);
    sq_err += (w_eff - v.w) * (w_eff - v.w);
  }
  report.quantization_rmse =
      std::sqrt(sq_err / static_cast<double>(report.total_cells));
  report.mean_target_conductance =
      sum_g / static_cast<double>(report.total_cells);
  return report;
}

Tensor effective_weights(const xbar::Crossbar& xbar,
                         const MappingPlan& plan) {
  Tensor eff(Shape{xbar.rows(), xbar.cols()});
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    for (std::size_t c = 0; c < xbar.cols(); ++c) {
      eff.at(r, c) = static_cast<float>(
          plan.weight_of_resistance(xbar.read_resistance(r, c)));
    }
  }
  return eff;
}

}  // namespace xbarlife::mapping
