#include "mapping/mapper.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::mapping {

MappingPlan::MappingPlan(WeightRange weights, ResistanceRange fresh,
                         std::size_t fresh_levels, double upper_cut)
    // The weight range maps onto the *usable* conductance range so every
    // target stays on a usable level.
    : quantizer_(fresh, fresh_levels, upper_cut),
      map_(weights, quantizer_.range().g_min(),
           quantizer_.range().g_max()) {}

MappingPlan::MappingPlan(WeightRange weights, ResistanceRange fresh,
                         std::size_t fresh_levels)
    : MappingPlan(weights, fresh, fresh_levels, fresh.r_hi) {}

double MappingPlan::target_resistance(double weight) const {
  const double g = map_.weight_to_conductance(weight);
  const std::size_t level = quantizer_.nearest_level_for_conductance(g);
  return quantizer_.level_resistance(level);
}

double MappingPlan::weight_of_resistance(double r) const {
  XB_CHECK(r > 0.0, "resistance must be positive");
  return map_.conductance_to_weight(1.0 / r);
}

Tensor predict_effective_weights(
    const Tensor& weights, const MappingPlan& plan,
    const std::function<aging::AgedWindow(std::size_t, std::size_t)>&
        window_of) {
  XB_CHECK(weights.shape().rank() == 2, "weights must be rank-2");
  XB_CHECK(window_of != nullptr, "window functor required");
  const std::size_t rows = weights.shape()[0];
  const std::size_t cols = weights.shape()[1];
  Tensor eff(weights.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double target =
          plan.target_resistance(static_cast<double>(weights.at(r, c)));
      const aging::AgedWindow w = window_of(r, c);
      const double achieved =
          std::clamp(target, std::min(w.r_min, w.r_max),
                     std::max(w.r_min, w.r_max));
      eff.at(r, c) = static_cast<float>(plan.weight_of_resistance(achieved));
    }
  }
  return eff;
}

MappingReport program_weights(xbar::Crossbar& xbar, const Tensor& weights,
                              const MappingPlan& plan, bool skip_unchanged,
                              std::vector<std::uint8_t>* stuck,
                              std::vector<float>* pinned_g,
                              const std::vector<std::uint8_t>* row_active) {
  XB_CHECK(weights.shape().rank() == 2 &&
               weights.shape()[0] == xbar.rows() &&
               weights.shape()[1] == xbar.cols(),
           "weight matrix must match crossbar dimensions");
  XB_CHECK(row_active == nullptr || row_active->size() == xbar.rows(),
           "row-active mask size must match the crossbar rows");
  MappingReport report;
  std::size_t active_rows = xbar.rows();
  if (row_active != nullptr) {
    active_rows = 0;
    for (const std::uint8_t a : *row_active) {
      active_rows += a != 0;
    }
  }
  XB_CHECK(active_rows > 0, "row-active mask must keep at least one row");
  report.total_cells = active_rows * xbar.cols();
  const std::size_t full_cells = xbar.rows() * xbar.cols();
  XB_CHECK(stuck == nullptr || stuck->size() == full_cells,
           "stuck map size must match the crossbar");
  XB_CHECK(stuck == nullptr ||
               (pinned_g != nullptr && pinned_g->size() == full_cells),
           "a stuck map needs a matching pinned-conductance map");
  // Skip cells already within half a quantization step of the target *in
  // conductance space*: weight error is proportional to conductance error
  // (Eq. 4 is linear in g), so this is the fidelity criterion a
  // read-verify-program controller actually cares about.
  const auto& range = plan.quantizer().range();
  const double skip_tol =
      0.5 * (range.g_max() - range.g_min()) /
      static_cast<double>(plan.quantizer().levels() - 1);
  double sq_err = 0.0;
  double sum_g = 0.0;
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    if (row_active != nullptr && (*row_active)[r] == 0) {
      continue;  // Unused spare row: never pulsed, never scored.
    }
    for (std::size_t c = 0; c < xbar.cols(); ++c) {
      const auto w = static_cast<double>(weights.at(r, c));
      const double target = plan.target_resistance(w);
      const double g_target = 1.0 / target;
      sum_g += g_target;
      const std::size_t idx = r * xbar.cols() + c;
      double achieved = xbar.cell(r, c).resistance();
      const std::uint8_t cell_state =
          stuck != nullptr ? (*stuck)[idx] : kCellHealthy;
      if (cell_state == kCellDead) {
        // A dead cell's window is pinned: writes cannot move it and drift
        // cannot either, so the controller retires it completely.
        const double w_eff = plan.weight_of_resistance(achieved);
        sq_err += (w_eff - w) * (w_eff - w);
        continue;
      }
      bool needs_write =
          !skip_unchanged || std::fabs(1.0 / achieved - g_target) > skip_tol;
      if (cell_state == kCellClamped) {
        // The target is known unreachable; pulse only to correct material
        // drift away from the pinned best-achievable value.
        needs_write = std::fabs(1.0 / achieved -
                                static_cast<double>((*pinned_g)[idx])) >
                      skip_tol;
      }
      if (needs_write) {
        const double g_before = 1.0 / achieved;
        achieved = xbar.program_cell(r, c, target);
        ++report.programmed_cells;
        if (std::fabs(1.0 / achieved - g_target) > skip_tol) {
          if (cell_state == kCellHealthy) {
            // Write-verify failed: the aged window no longer covers the
            // target. Blacklist the cell for the tuning controller and
            // pin its best-achievable value.
            ++report.clamped_cells;
            if (stuck != nullptr) {
              (*stuck)[idx] = kCellClamped;
              (*pinned_g)[idx] = static_cast<float>(1.0 / achieved);
            }
          } else if (std::fabs(1.0 / achieved - g_before) <
                     0.05 * skip_tol) {
            // The pulse moved nothing: the window has collapsed. Retire
            // the cell so later sessions stop burning it.
            (*stuck)[idx] = kCellDead;
          } else {
            // Still alive but still clamped: refresh the pin.
            (*pinned_g)[idx] = static_cast<float>(1.0 / achieved);
          }
        }
      }
      const double w_eff = plan.weight_of_resistance(achieved);
      sq_err += (w_eff - w) * (w_eff - w);
    }
  }
  report.quantization_rmse =
      std::sqrt(sq_err / static_cast<double>(report.total_cells));
  report.mean_target_conductance =
      sum_g / static_cast<double>(report.total_cells);
  return report;
}

Tensor effective_weights(const xbar::Crossbar& xbar,
                         const MappingPlan& plan) {
  Tensor eff(Shape{xbar.rows(), xbar.cols()});
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    for (std::size_t c = 0; c < xbar.cols(); ++c) {
      eff.at(r, c) = static_cast<float>(
          plan.weight_of_resistance(xbar.read_resistance(r, c)));
    }
  }
  return eff;
}

}  // namespace xbarlife::mapping
