#include "mapping/linear_map.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xbarlife::mapping {

WeightRange weight_range_of(const Tensor& weights) {
  XB_CHECK(weights.numel() > 0, "weight range of empty tensor");
  WeightRange r;
  r.w_min = static_cast<double>(weights.min());
  r.w_max = static_cast<double>(weights.max());
  return r;
}

LinearMap::LinearMap(WeightRange w, double g_min, double g_max)
    : w_(w), g_min_(g_min), g_max_(g_max) {
  XB_CHECK(g_min > 0.0, "g_min must be positive");
  XB_CHECK(g_max > g_min, "need g_max > g_min");
  XB_CHECK(w.w_max >= w.w_min, "need w_max >= w_min");
  if (w_.span() > 0.0) {
    scale_ = (g_max_ - g_min_) / w_.span();
    inv_scale_ = 1.0 / scale_;
  } else {
    scale_ = 0.0;
    inv_scale_ = 0.0;
  }
}

double LinearMap::weight_to_conductance(double weight) const {
  const double clamped = std::clamp(weight, w_.w_min, w_.w_max);
  return scale_ * (clamped - w_.w_min) + g_min_;
}

double LinearMap::conductance_to_weight(double g) const {
  const double clamped = std::clamp(g, g_min_, g_max_);
  return inv_scale_ * (clamped - g_min_) + w_.w_min;
}

}  // namespace xbarlife::mapping
