#include "mapping/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbarlife::mapping {

ResistanceQuantizer::ResistanceQuantizer(ResistanceRange fresh,
                                         std::size_t fresh_levels,
                                         double upper_cut)
    : fresh_(fresh), fresh_levels_(fresh_levels) {
  XB_CHECK(fresh.valid(), "quantizer needs a valid fresh range");
  XB_CHECK(fresh_levels >= 2, "quantizer needs at least two levels");
  XB_CHECK(upper_cut > 0.0, "upper cut must be positive");
  step_ = (fresh_.r_hi - fresh_.r_lo) /
          static_cast<double>(fresh_levels_ - 1);
  // Count fresh levels with resistance <= upper_cut; keep at least two so
  // a mapping always exists (a fully-collapsed window is the caller's
  // failure condition, detected through accuracy, not a crash).
  const double span = std::min(upper_cut, fresh_.r_hi) - fresh_.r_lo;
  std::size_t usable = 0;
  if (span >= 0.0) {
    usable = static_cast<std::size_t>(std::floor(span / step_ + 1e-9)) + 1;
  }
  usable_levels_ = std::clamp<std::size_t>(usable, 2, fresh_levels_);
  usable_range_ = ResistanceRange{
      fresh_.r_lo,
      fresh_.r_lo + static_cast<double>(usable_levels_ - 1) * step_};
}

ResistanceQuantizer::ResistanceQuantizer(ResistanceRange fresh,
                                         std::size_t fresh_levels)
    : ResistanceQuantizer(fresh, fresh_levels, fresh.r_hi) {}

double ResistanceQuantizer::level_resistance(std::size_t k) const {
  XB_CHECK(k < usable_levels_, "level index out of range");
  return fresh_.r_lo + static_cast<double>(k) * step_;
}

double ResistanceQuantizer::level_conductance(std::size_t k) const {
  return 1.0 / level_resistance(k);
}

std::size_t ResistanceQuantizer::nearest_level_for_resistance(
    double r) const {
  const double clamped =
      std::clamp(r, usable_range_.r_lo, usable_range_.r_hi);
  const auto k = static_cast<std::size_t>(
      std::llround((clamped - usable_range_.r_lo) / step_));
  return std::min(k, usable_levels_ - 1);
}

std::size_t ResistanceQuantizer::nearest_level_for_conductance(
    double g) const {
  XB_CHECK(g > 0.0, "conductance must be positive");
  const double r = 1.0 / g;
  // Bracket r on the resistance grid, then compare in conductance space:
  // between two resistance levels the conductance midpoint is NOT the
  // resistance midpoint.
  const double clamped =
      std::clamp(r, usable_range_.r_lo, usable_range_.r_hi);
  // Same epsilon-guarded floor as the constructor's level count: plain
  // truncation of (clamped - r_lo) / step_ can land at k - 1e-16 for a
  // resistance sitting exactly on level k, bracketing one level low.
  const auto lo = std::min(
      static_cast<std::size_t>(
          std::floor((clamped - usable_range_.r_lo) / step_ + 1e-9)),
      usable_levels_ - 1);
  const std::size_t hi = std::min(lo + 1, usable_levels_ - 1);
  const double g_lo = level_conductance(lo);
  const double g_hi = level_conductance(hi);
  return (std::fabs(g - g_lo) <= std::fabs(g - g_hi)) ? lo : hi;
}

std::vector<double> ResistanceQuantizer::conductance_levels_ascending()
    const {
  std::vector<double> g(usable_levels_);
  for (std::size_t k = 0; k < usable_levels_; ++k) {
    g[k] = level_conductance(usable_levels_ - 1 - k);
  }
  return g;
}

}  // namespace xbarlife::mapping
