// Aging-aware common-range selection (Section IV-B, Fig. 8 of the paper).
//
// The traced representatives report different aged upper bounds
// R_aged,max. Every distinct estimate between the smallest (R^L_aged,max)
// and the largest (R^U_aged,max) is a candidate common upper bound; each
// candidate is evaluated by *predicting* the mapped network's accuracy
// (no programming pulses are spent) and the argmax is selected.
#pragma once

#include <functional>
#include <vector>

#include "aging/tracker.hpp"
#include "mapping/mapper.hpp"

namespace xbarlife::mapping {

/// Distinct candidate aged upper bounds from the tracker's representative
/// estimates, sorted ascending. Estimates closer than `merge_tol` (relative
/// to the fresh span) are merged to keep the iteration cheap.
std::vector<double> candidate_upper_bounds(
    const aging::RepresentativeTracker& tracker,
    const aging::AgingModel& model, double r_fresh_min, double r_fresh_max,
    double merge_tol = 1e-3);

/// Scores one candidate range by predicting the effective weights under the
/// tracker-estimated windows and calling `evaluate` on them. Higher is
/// better (classification accuracy in the paper).
using EffectiveWeightEvaluator = std::function<double(const Tensor&)>;

struct RangeSelectionResult {
  ResistanceRange selected;
  double best_score = 0.0;
  bool kept_incumbent = false;  ///< selection stayed on the current range
  std::size_t candidates_tried = 0;
  std::vector<double> candidate_bounds;  ///< all candidate r_hi values
  std::vector<double> candidate_scores;  ///< score per candidate
  /// Predicted unreachable-target cells per candidate. Clamped targets are
  /// the paper's failure trigger (more tuning iterations -> more aging),
  /// so near-ties in accuracy resolve toward fewer clamps.
  std::vector<std::size_t> candidate_clamps;
};

/// Iterative selection: tries [r_fresh_min, u] for every candidate upper
/// bound u and returns the accuracy-argmax (ties -> larger range, which
/// keeps more levels). Falls back to the fresh range when the tracker has
/// seen no pulses yet. At most `max_candidates` candidates are evaluated
/// (evenly subsampled between R^L_aged,max and R^U_aged,max, endpoints
/// always included) to bound the selection cost on large arrays.
/// `incumbent`, when provided, is the common range currently programmed
/// into the array. It is scored first: if its predicted accuracy is at
/// least `keep_threshold` it is kept outright (remap-on-demand), and it
/// also wins all near-ties against candidates — switching ranges rewrites
/// every cell (a full array's worth of aging pulses), so the selection
/// only moves when a candidate buys a clear accuracy improvement.
/// `window_of`, when provided, supplies the per-cell achievable window used
/// to *predict* each candidate's effective weights (e.g. the simulator's
/// ground truth — the paper evaluates candidates by simulated
/// classification accuracy). When null, the tracker's block-representative
/// estimate is used. The candidate bounds themselves always come from the
/// traced representatives (Fig. 8).
RangeSelectionResult select_common_range(
    const aging::RepresentativeTracker& tracker,
    const aging::AgingModel& model, double r_fresh_min, double r_fresh_max,
    const Tensor& weights, std::size_t levels,
    const EffectiveWeightEvaluator& evaluate,
    const ResistanceRange* incumbent = nullptr,
    double keep_threshold = 2.0,  // > any accuracy: disabled by default
    double switch_margin = 0.05,  // candidate must beat incumbent by this
    std::size_t max_candidates = 8,
    std::function<aging::AgedWindow(std::size_t, std::size_t)> window_of =
        nullptr);

/// Tracker-estimated achievable window for cell (r, c): the window of the
/// representative covering its 3x3 block. This is the `window_of` functor
/// the selection (and aging-aware programming preview) uses.
std::function<aging::AgedWindow(std::size_t, std::size_t)>
tracker_window_functor(const aging::RepresentativeTracker& tracker,
                       const aging::AgingModel& model, double r_fresh_min,
                       double r_fresh_max);

}  // namespace xbarlife::mapping
