// Weight-matrix mapper: Eq. (4) + quantization onto a crossbar.
//
// Two paths:
//   * predict_effective_weights — pure software preview of what the array
//     would hold after mapping (used by the aging-aware range selection,
//     which must not burn programming pulses while comparing candidates).
//   * program_weights — physically programs the crossbar, aging the cells.
#pragma once

#include <functional>

#include "aging/aging_model.hpp"
#include "mapping/linear_map.hpp"
#include "mapping/quantizer.hpp"
#include "tensor/tensor.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/executor.hpp"

namespace xbarlife::mapping {

/// A complete per-crossbar mapping decision: the fresh level grid, the
/// selected upper cut (aging-aware mapping truncates the grid, Fig. 8),
/// and the weight->conductance transfer over the usable range.
class MappingPlan {
 public:
  /// Grid of `fresh_levels` over `fresh`, truncated at `upper_cut`; the
  /// weight range maps linearly onto the *usable* conductance range.
  MappingPlan(WeightRange weights, ResistanceRange fresh,
              std::size_t fresh_levels, double upper_cut);

  /// Untruncated plan (upper_cut = fresh.r_hi).
  MappingPlan(WeightRange weights, ResistanceRange fresh,
              std::size_t fresh_levels);

  const LinearMap& map() const { return map_; }
  const ResistanceQuantizer& quantizer() const { return quantizer_; }
  /// Usable (possibly truncated) resistance range.
  const ResistanceRange& resistance_range() const {
    return quantizer_.range();
  }

  /// Target resistance for `weight`: Eq. (4) then snap to nearest
  /// conductance level.
  double target_resistance(double weight) const;

  /// Weight recovered from a programmed resistance.
  double weight_of_resistance(double r) const;

 private:
  // Order matters: map_ is initialized from quantizer_'s usable range.
  ResistanceQuantizer quantizer_;
  LinearMap map_;
};

struct MappingReport {
  std::size_t total_cells = 0;
  std::size_t programmed_cells = 0;  ///< cells that needed a pulse
  std::size_t clamped_cells = 0;     ///< achieved != target (aged window)
  double quantization_rmse = 0.0;    ///< weight-domain RMSE vs. targets
  double mean_target_conductance = 0.0;
};

/// Software preview: the effective weight matrix the crossbar would hold
/// after mapping `weights` under `plan`, with each cell's achievable window
/// supplied by `window_of(r, c)` (e.g. the tracker's representative
/// estimate). Pass a fresh-window functor for ideal-quantization studies.
Tensor predict_effective_weights(
    const Tensor& weights, const MappingPlan& plan,
    const std::function<aging::AgedWindow(std::size_t, std::size_t)>&
        window_of);

/// Programs `weights` (rank-2, shape == crossbar dims) into `xbar`.
///
/// With `skip_unchanged` (read-verify-program controller), cells already
/// within half a conductance step of their target are not pulsed; without
/// it every cell receives a write pulse, which is how a full hardware
/// mapping pass behaves (Fig. 5's "hardware mapping" stage). Returns the
/// report; fetch effective weights afterwards via effective_weights().
/// Write-verify cell states tracked by the controller's bad-cell list.
inline constexpr std::uint8_t kCellHealthy = 0;
/// Window no longer covers the target: best-effort writes continue (they
/// pin the cell at its window edge, cancelling drift) but the tuning
/// controller skips the cell.
inline constexpr std::uint8_t kCellClamped = 1;
/// Window fully collapsed (writes move nothing): the cell is retired —
/// never pulsed again. Its value is pinned, so drift cannot move it
/// either.
inline constexpr std::uint8_t kCellDead = 2;

/// `stuck`, when non-null, is a rows*cols row-major bad-cell list the
/// write-verify controller maintains with the kCell* states above, and
/// `pinned_g` (same size, required with `stuck`) remembers each clamped
/// cell's best-achievable conductance: clamped cells are re-pulsed only
/// when their readback drifts materially away from that pinned value —
/// target-chasing a window that cannot reach the target would burn a
/// pulse every session for nothing. Clear both whenever the plan's range
/// changes so every cell gets a fresh verdict against its new target.
///
/// `row_active`, when non-null, is a rows-sized mask; rows with a zero
/// entry (unused spare rows of an over-provisioned array) are skipped
/// entirely and excluded from the report's totals and RMSE.
///
/// Internally this is a build / execute / fold pipeline: the write-verify
/// controller walks cells in the canonical column-major order, emits the
/// needed pulses as one ProgramSequence (batched per column by the
/// SequenceBuilder), executes it through `executor` (the process-wide
/// selected backend when null), and folds the per-op results back into
/// the verify state machine and the report.
MappingReport program_weights(
    xbar::Crossbar& xbar, const Tensor& weights, const MappingPlan& plan,
    bool skip_unchanged = true, std::vector<std::uint8_t>* stuck = nullptr,
    std::vector<float>* pinned_g = nullptr,
    const std::vector<std::uint8_t>* row_active = nullptr,
    const xbar::ProgramExecutor* executor = nullptr);

/// Weights currently held by the crossbar under `plan`'s transfer, as
/// seen through the read periphery (read noise / IR drop when the array
/// is nonideal; the exact stored values otherwise).
Tensor effective_weights(const xbar::Crossbar& xbar,
                         const MappingPlan& plan);

}  // namespace xbarlife::mapping
