// Resistance-domain quantizer (Section II-B, Figs. 3, 4 and 8).
//
// The programming DAC realizes a *fixed* grid of L uniform resistance
// levels over the fresh device window (32 in [14], 64 in [15]). Because
// g = 1/R, the induced conductance levels are non-uniform: dense near
// g_min, sparse near g_max — the property skewed-weight training exploits.
//
// Aging removes levels from the top of the grid (Fig. 4: 8 fresh levels ->
// 3 aged). The aging-aware mapper therefore works with a *prefix* of the
// fresh grid: the quantizer is anchored to the fresh window and truncated
// at an upper cut; it never re-spaces the levels. (Re-spacing L levels over
// a shrunken range would paradoxically make small ranges more precise —
// hardware DACs cannot do that.)
#pragma once

#include <cstddef>
#include <vector>

namespace xbarlife::mapping {

/// A resistance interval [r_lo, r_hi].
struct ResistanceRange {
  double r_lo = 0.0;  ///< smallest resistance (largest conductance)
  double r_hi = 0.0;  ///< largest resistance (smallest conductance)

  double g_min() const { return 1.0 / r_hi; }
  double g_max() const { return 1.0 / r_lo; }
  bool valid() const { return r_lo > 0.0 && r_hi > r_lo; }
};

class ResistanceQuantizer {
 public:
  /// Fixed grid of `fresh_levels` uniform levels over `fresh` (level 0 =
  /// r_lo), truncated at `upper_cut`: only levels with resistance <=
  /// upper_cut are usable. At least two levels always remain usable.
  ResistanceQuantizer(ResistanceRange fresh, std::size_t fresh_levels,
                      double upper_cut);

  /// Untruncated grid (upper_cut = fresh.r_hi).
  ResistanceQuantizer(ResistanceRange fresh, std::size_t fresh_levels);

  /// Number of *usable* levels (after the cut).
  std::size_t levels() const { return usable_levels_; }
  /// Total levels of the fresh grid.
  std::size_t fresh_levels() const { return fresh_levels_; }

  /// Usable range: [fresh r_lo, resistance of the last usable level].
  const ResistanceRange& range() const { return usable_range_; }
  const ResistanceRange& fresh_range() const { return fresh_; }

  /// Resistance of usable level k (k < levels()).
  double level_resistance(std::size_t k) const;
  /// Conductance of usable level k (= 1 / level_resistance(k)).
  double level_conductance(std::size_t k) const;

  /// Usable level whose resistance is closest to `r` (clamped).
  std::size_t nearest_level_for_resistance(double r) const;

  /// Usable level whose *conductance* is closest to `g` (clamped). This is
  /// the quantization applied during weight mapping: the target
  /// conductance from Eq. (4) snaps to the nearest usable level.
  std::size_t nearest_level_for_conductance(double g) const;

  /// All usable conductance levels ascending (for plotting Fig. 3(c)).
  std::vector<double> conductance_levels_ascending() const;

  /// Spacing of the fresh resistance grid.
  double resistance_step() const { return step_; }

 private:
  ResistanceRange fresh_;
  std::size_t fresh_levels_;
  double step_;
  std::size_t usable_levels_;
  ResistanceRange usable_range_;
};

}  // namespace xbarlife::mapping
