// Analog evaluation: accuracy of a deployed network when the crossbar is
// read through a non-ideal periphery (read noise, stuck-at faults, IR
// drop). Extends the paper's ideal-readout evaluation with the
// non-idealities real arrays exhibit.
#pragma once

#include <optional>

#include "data/dataset.hpp"
#include "tuning/hardware_network.hpp"
#include "xbar/nonideal.hpp"

namespace xbarlife::tuning {

/// Evaluates `hw`'s network with every deployed layer's weights replaced
/// by the weights recovered from a *non-ideal observation* of its
/// crossbar. `fault_seed`, when set, draws a manufacture-time fault map
/// per layer (deterministic in the seed). The network is restored to the
/// ideal effective weights before returning.
double evaluate_with_nonidealities(
    HardwareNetwork& hw, const data::Dataset& eval_data,
    const xbar::NonidealityConfig& config, std::uint64_t noise_seed,
    std::optional<std::uint64_t> fault_seed = std::nullopt,
    std::size_t eval_samples = 128);

}  // namespace xbarlife::tuning
