#include "tuning/online_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "xbar/executor.hpp"
#include "xbar/program_sequence.hpp"

namespace xbarlife::tuning {

OnlineTuner::OnlineTuner(TuningConfig config) : config_(config) {
  XB_CHECK(config.max_iterations > 0, "need at least one iteration");
  XB_CHECK(config.target_accuracy > 0.0 && config.target_accuracy <= 1.0,
           "target accuracy must lie in (0, 1]");
  XB_CHECK(config.batch > 0, "tuning batch must be positive");
  XB_CHECK(config.min_grad_fraction >= 0.0,
           "min_grad_fraction must be >= 0");
  XB_CHECK(config.step_fraction > 0.0 && config.step_fraction <= 1.0,
           "step_fraction must lie in (0, 1]");
  XB_CHECK(config.eval_samples > 0, "need a non-empty eval slice");
}

std::uint64_t OnlineTuner::apply_sign_updates(HardwareNetwork& hw) {
  std::uint64_t pulses = 0;
  auto mappable = hw.network().mappable_weights();
  for (std::size_t li = 0; li < hw.layer_count(); ++li) {
    DeployedLayer& layer = hw.layer(li);
    XB_CHECK(layer.plan != nullptr, "tuning before deployment");
    const Tensor& grad = *mappable[li].grad;
    const mapping::ResistanceRange& range =
        layer.plan->quantizer().range();
    const double g_lo = range.g_min();
    const double g_hi = range.g_max();
    const double dg = config_.step_fraction * (g_hi - g_lo);

    // Layer-wise selectivity threshold.
    double mean_abs = 0.0;
    for (std::size_t i = 0; i < grad.numel(); ++i) {
      mean_abs += std::fabs(static_cast<double>(grad[i]));
    }
    mean_abs /= static_cast<double>(grad.numel());
    const double threshold = config_.min_grad_fraction * mean_abs;

    xbar::Crossbar& xb = *layer.xbar;
    // Emit this layer's update pulses as one column-batched command
    // stream: cells are visited in the canonical column-major order
    // (matching the sequence's per-column batching), each at most once,
    // so the readbacks below are independent of the later execution.
    // Gradients are logical (weight-matrix) coordinates; the crossbar may
    // hold spare rows and a remap permutation, so go through physical_row.
    xbar::SequenceBuilder builder(xb.rows(), xb.cols());
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      for (std::size_t r = 0; r < layer.logical_rows; ++r) {
        const std::size_t pr = layer.physical_row(r);
        if (layer.stuck[pr * xb.cols() + c] != 0) {
          continue;  // write-verify blacklisted this cell
        }
        const auto g = static_cast<double>(grad.at(r, c));
        if (std::fabs(g) < threshold || g == 0.0) {
          continue;
        }
        // Weight must move along -grad; weight grows with conductance
        // (Eq. (4) is monotone increasing), so the pulse polarity is the
        // sign of -grad in conductance space.
        const double cond = xb.read_conductance(pr, c);
        const double target =
            std::clamp(g < 0.0 ? cond + dg : cond - dg, g_lo, g_hi);
        if (std::fabs(target - cond) < 0.25 * dg) {
          continue;  // saturated at a range edge
        }
        builder.pulse(pr, c, 1.0 / target);
      }
    }
    if (!builder.empty()) {
      const xbar::ExecReport exec =
          xbar::select_executor().execute(xb, builder.build());
      pulses += exec.stats.pulses;
    }
  }
  return pulses;
}

TuningResult OnlineTuner::tune(HardwareNetwork& hw,
                               const data::Dataset& tune_data,
                               const data::Dataset& eval_data,
                               const obs::Obs& obs) {
  XB_CHECK(tune_data.size() > 0 && eval_data.size() > 0,
           "tuning needs non-empty datasets");
  const obs::Span tuning_span(obs, "tuning.session");
  nn::Network& net = hw.network();
  const data::Dataset eval_slice =
      eval_data.head(config_.eval_samples);

  // Accuracy evaluations optionally run on the int8 path, with specs
  // re-derived per call: deploys/remaps between calls change the plans.
  const auto evaluate = [&]() {
    if (config_.quantized_eval) {
      return net.evaluate_quantized(eval_slice.images, eval_slice.labels,
                                    hw.quant_specs());
    }
    return net.evaluate(eval_slice.images, eval_slice.labels);
  };

  TuningResult result;
  hw.sync_network_to_hardware();
  result.start_accuracy = evaluate();
  double acc = result.start_accuracy;
  double best_acc = acc;
  std::size_t since_improvement = 0;

  while (result.iterations < config_.max_iterations) {
    check_job_deadline();
    if (acc >= config_.target_accuracy) {
      result.converged = true;
      break;
    }
    if (config_.plateau_iterations > 0 &&
        since_improvement >= config_.plateau_iterations) {
      break;  // saturated: further pulses only age the array
    }
    ++result.iterations;
    // Rolling minibatch over the tuning set.
    if (cursor_ >= tune_data.size()) {
      cursor_ = 0;
    }
    const data::Batch batch =
        data::make_batch(tune_data, cursor_, config_.batch);
    cursor_ += batch.labels.size();

    net.compute_gradients(batch.images, batch.labels);
    const std::uint64_t iter_pulses = apply_sign_updates(hw);
    result.pulses += iter_pulses;
    hw.sync_network_to_hardware();
    acc = evaluate();
    if (acc > best_acc + 1e-9) {
      best_acc = acc;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    if (obs.trace_enabled()) {
      obs.event("tune_iter", {{"iteration", result.iterations},
                              {"accuracy", acc},
                              {"pulses", iter_pulses}});
    }
  }
  // A session that exits the loop still at target counts as converged
  // (covers the zero-iteration case where mapping alone suffices).
  if (acc >= config_.target_accuracy) {
    result.converged = true;
  }
  result.final_accuracy = acc;
  obs.count("tuning.sessions");
  obs.count("tuning.iterations", result.iterations);
  obs.count("tuning.pulses", result.pulses);
  if (result.converged) {
    obs.count("tuning.converged_sessions");
  }
  return result;
}

}  // namespace xbarlife::tuning
