// HardwareNetwork: a software-trained network deployed onto one memristor
// crossbar per mappable weight matrix.
//
// The object keeps three views in sync:
//   * target weights  — what software training produced (the goal),
//   * crossbar state  — the programmed, quantized, aged reality,
//   * the nn::Network — used as the evaluation/gradient engine; its weights
//     are overwritten with the *effective* hardware weights so accuracy and
//     tuning gradients reflect what the analog array actually computes.
#pragma once

#include <memory>
#include <vector>

#include "mapping/mapper.hpp"
#include "mapping/range_select.hpp"
#include "nn/network.hpp"
#include "obs/metrics.hpp"
#include "xbar/crossbar.hpp"

namespace xbarlife::tuning {

/// How the common resistance range is chosen at (re)mapping time.
enum class MappingPolicy {
  kFresh,       ///< always map into the fresh window (aging-oblivious, "T")
  kAgingAware,  ///< Fig. 8 iterative range selection ("AT")
};

/// Hardware-fault model applied to every deployed crossbar: analog
/// non-idealities (manufacture stuck-at faults, write/read noise, IR
/// drop) plus optional spare rows held in reserve for the resilience
/// ladder's redundancy rung. An inactive config (`active()` false) makes
/// HardwareNetwork behave bit-identically to a build without it.
struct HardwareFaultConfig {
  xbar::NonidealityConfig nonideal;
  /// Extra physical rows per crossbar, unused until the resilience
  /// ladder's redundancy rung swaps a failing logical row onto one.
  std::size_t spare_rows = 0;
  /// Root seed for the per-layer fault maps and noise streams.
  std::uint64_t fault_seed = 0;

  bool active() const { return nonideal.any() || spare_rows > 0; }
  void validate() const;
};

/// Per-layer deployment state.
struct DeployedLayer {
  std::size_t weight_index = 0;          ///< index into mappable weights
  std::string name;
  nn::LayerKind kind = nn::LayerKind::kDense;
  std::unique_ptr<xbar::Crossbar> xbar;
  std::unique_ptr<mapping::MappingPlan> plan;  ///< null until first deploy
  mapping::MappingReport last_report;
  /// Write-verify bad-cell list (row-major, *physical* layout); cleared
  /// on range changes.
  std::vector<std::uint8_t> stuck;
  /// Best-achievable conductance pinned per clamped cell (row-major,
  /// physical layout).
  std::vector<float> pinned_g;
  /// Rows of the logical weight matrix; the crossbar may hold more
  /// (spare rows) when a HardwareFaultConfig is active.
  std::size_t logical_rows = 0;
  /// Logical-to-physical row permutation; empty means identity. Set by
  /// the resilience ladder's fault-masking / redundancy rungs.
  std::vector<std::size_t> row_perm;

  std::size_t physical_row(std::size_t logical) const {
    return row_perm.empty() ? logical : row_perm[logical];
  }
};

/// Bad-cell census of one deployed layer (physical cells under the
/// current logical-to-physical mapping).
struct LayerFaultCounts {
  std::size_t manufacture = 0;  ///< stuck-at cells from the fault map
  std::size_t clamped = 0;      ///< write-verify kCellClamped cells
  std::size_t dead = 0;         ///< write-verify kCellDead cells
  std::size_t cells = 0;        ///< active (mapped) cells counted
};

/// Scores a *full network* whose weights are currently loaded into the
/// evaluation engine; returns classification accuracy in [0, 1].
using NetworkEvaluator = std::function<double()>;

class HardwareNetwork {
 public:
  /// Builds one crossbar per mappable weight of `net`. `net` must outlive
  /// this object and is mutated by sync_* calls.
  HardwareNetwork(nn::Network& net, const device::DeviceParams& dev,
                  const aging::AgingParams& aging);

  /// Same, with a hardware-fault model: each crossbar is manufactured
  /// with `faults.nonideal` installed (per-layer streams forked from
  /// `faults.fault_seed`) and `faults.spare_rows` extra physical rows.
  HardwareNetwork(nn::Network& net, const device::DeviceParams& dev,
                  const aging::AgingParams& aging,
                  const HardwareFaultConfig& faults);

  const HardwareFaultConfig& fault_config() const { return faults_; }

  std::size_t layer_count() const { return layers_.size(); }
  DeployedLayer& layer(std::size_t i);
  const DeployedLayer& layer(std::size_t i) const;
  nn::Network& network() { return *net_; }

  const device::DeviceParams& device_params() const { return dev_; }

  /// Updates the software target weights from the network's current
  /// weights (call after software training / retraining).
  void capture_targets();

  /// The captured software target weights.
  const std::vector<Tensor>& targets() const { return targets_; }

  /// (Re)maps every layer onto its crossbar under `policy`.
  ///
  /// For kAgingAware the candidate ranges of each layer are scored with
  /// `evaluate`: the functor is called with this layer's *predicted*
  /// effective weights loaded into the network (other layers hold their
  /// current effective weights), exactly the paper's accuracy-driven
  /// iterative selection. `evaluate` may be null for kFresh.
  ///
  /// `keep_threshold` enables remap-on-demand for kAgingAware: a layer's
  /// current range is kept without a candidate scan while its predicted
  /// accuracy stays at or above the threshold (pass the tuning target
  /// minus a margin; values > 1 disable the shortcut).
  ///
  /// Afterwards the network holds the new effective weights.
  /// `switch_margin` is the predicted-accuracy gain a candidate range
  /// must deliver over the incumbent to justify rewriting the array.
  std::vector<mapping::MappingReport> deploy(
      MappingPolicy policy, std::size_t levels,
      const NetworkEvaluator& evaluate = nullptr,
      double keep_threshold = 2.0, double switch_margin = 0.05);

  /// Writes the crossbars' current effective weights into the network.
  void sync_network_to_hardware();

  /// Restores the software target weights into the network (e.g. to
  /// retrain in software between deployments).
  void restore_targets_to_network();

  /// Resilience rung 1: gives every write-verify *clamped* (not dead)
  /// cell of layer `i` a fresh verdict and reprograms the layer's
  /// targets. Returns the new mapping report.
  mapping::MappingReport retry_clamped_cells(std::size_t i);

  /// Reprograms layer `i`'s targets under its current plan and row
  /// permutation (write-verify; unchanged cells are skipped).
  mapping::MappingReport reprogram_targets(std::size_t i);

  /// Installs a logical-to-physical row permutation on layer `i` (used by
  /// the fault-masking and spare-row rungs). `perm` must be injective
  /// with every entry < the crossbar's physical row count; an empty
  /// vector restores the identity. Clamped cells get a fresh verdict
  /// (dead cells stay retired); call reprogram_targets afterwards.
  void set_row_permutation(std::size_t i, std::vector<std::size_t> perm);

  /// Physical rows of layer `i`'s crossbar (logical rows + spares).
  std::size_t physical_rows(std::size_t i) const;

  /// Bad-cell census of layer `i`, restricted to its active cells.
  LayerFaultCounts fault_counts(std::size_t i) const;

  /// Attaches observability counters from `registry` to every crossbar:
  /// pulse counters ("aging.pulses", "aging.traced_pulses") on the
  /// RepresentativeTracker, plus executor counters ("executor.sequences",
  /// "executor.column_batches") counting executed ProgramSequences and
  /// their per-column pulse batches. The registry must outlive this
  /// object.
  void attach_metrics(obs::Registry& registry);

  /// Attaches a span profiler to every crossbar (null to detach): the
  /// remote executor nests worker-side span trees under per-sequence
  /// "executor.remote.execute" spans. Must outlive this object.
  void attach_profiler(obs::Profiler* profiler);

  /// Ground-truth aging statistics per deployed layer.
  std::vector<xbar::CrossbarAgingStats> aging_stats() const;

  /// Quantization grids for nn::Network::forward_quantized, one per
  /// mappable weight in layer order: level count and weight clamp window
  /// from each layer's current mapping plan (aged arrays report fewer
  /// levels, coarsening the int8 grid exactly as the analog array
  /// coarsens). Layers not yet deployed get the default 256-level spec.
  std::vector<nn::QuantSpec> quant_specs() const;

  /// Total programming pulses across all crossbars.
  std::uint64_t total_pulses() const;

  /// Serializes the complete deployment state: per-layer mapping plan,
  /// write-verify bad-cell lists, row permutations, crossbar array state,
  /// the captured target weights, and every network parameter (so the
  /// evaluation engine's effective weights and digital biases survive the
  /// round trip bit-identically). The network topology and fault config
  /// are reconstructed, not serialized — restore onto a HardwareNetwork
  /// built from the same config.
  void save_state(persist::StateWriter& w) const;
  void load_state(persist::StateReader& r);

 private:
  /// Physical (rows + spares) target tensor for layer `i` under its
  /// current row permutation; spare/unmapped rows hold zeros.
  Tensor physical_targets(std::size_t i) const;
  /// Physical row mask of layer `i`; empty when every row is active.
  std::vector<std::uint8_t> row_mask(std::size_t i) const;
  mapping::MappingReport program_layer(std::size_t i);

  nn::Network* net_;
  device::DeviceParams dev_;
  aging::AgingParams aging_;
  HardwareFaultConfig faults_;
  std::vector<DeployedLayer> layers_;
  std::vector<Tensor> targets_;
};

}  // namespace xbarlife::tuning
