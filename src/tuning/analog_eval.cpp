#include "tuning/analog_eval.hpp"

#include "common/error.hpp"

namespace xbarlife::tuning {

double evaluate_with_nonidealities(
    HardwareNetwork& hw, const data::Dataset& eval_data,
    const xbar::NonidealityConfig& config, std::uint64_t noise_seed,
    std::optional<std::uint64_t> fault_seed, std::size_t eval_samples) {
  config.validate();
  eval_data.validate();
  XB_CHECK(eval_samples > 0, "need a non-empty eval slice");

  nn::Network& net = hw.network();
  auto mappable = net.mappable_weights();
  Rng rng(noise_seed);

  for (std::size_t i = 0; i < hw.layer_count(); ++i) {
    DeployedLayer& layer = hw.layer(i);
    XB_CHECK(layer.plan != nullptr,
             "analog evaluation before deployment: " + layer.name);
    std::optional<xbar::FaultMap> faults;
    if (fault_seed.has_value()) {
      faults.emplace(layer.xbar->rows(), layer.xbar->cols(), config,
                     *fault_seed + i);
    }
    const Tensor g = xbar::observed_conductances(
        *layer.xbar, config, faults.has_value() ? &*faults : nullptr, rng);
    // Recover the weights the analog periphery effectively computes with.
    Tensor w(g.shape());
    for (std::size_t j = 0; j < g.numel(); ++j) {
      w[j] = static_cast<float>(layer.plan->map().conductance_to_weight(
          static_cast<double>(g[j])));
    }
    *mappable[i].value = std::move(w);
  }

  const data::Dataset slice = eval_data.head(eval_samples);
  const double acc = net.evaluate(slice.images, slice.labels);
  hw.sync_network_to_hardware();  // restore the ideal effective weights
  return acc;
}

}  // namespace xbarlife::tuning
