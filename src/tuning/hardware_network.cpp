#include "tuning/hardware_network.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xbarlife::tuning {

HardwareNetwork::HardwareNetwork(nn::Network& net,
                                 const device::DeviceParams& dev,
                                 const aging::AgingParams& aging)
    : net_(&net), dev_(dev), aging_(aging) {
  dev_.validate();
  aging_.validate();
  for (const nn::MappableWeight& mw : net.mappable_weights()) {
    XB_CHECK(mw.value->shape().rank() == 2,
             "mappable weight must be a matrix: " + mw.name);
    DeployedLayer layer;
    layer.weight_index = mw.index;
    layer.name = mw.name;
    layer.kind = mw.layer_kind;
    layer.xbar = std::make_unique<xbar::Crossbar>(
        mw.value->shape()[0], mw.value->shape()[1], dev_, aging_);
    layer.stuck.assign(mw.value->numel(), 0);
    layer.pinned_g.assign(mw.value->numel(), 0.0f);
    layers_.push_back(std::move(layer));
  }
  XB_CHECK(!layers_.empty(), "network has no mappable weights");
  capture_targets();
}

DeployedLayer& HardwareNetwork::layer(std::size_t i) {
  XB_CHECK(i < layers_.size(), "deployed layer index out of range");
  return layers_[i];
}

const DeployedLayer& HardwareNetwork::layer(std::size_t i) const {
  XB_CHECK(i < layers_.size(), "deployed layer index out of range");
  return layers_[i];
}

void HardwareNetwork::attach_metrics(obs::Registry& registry) {
  obs::Counter& pulses = registry.counter("aging.pulses");
  obs::Counter& traced = registry.counter("aging.traced_pulses");
  for (DeployedLayer& layer : layers_) {
    layer.xbar->attach_pulse_counters(&pulses, &traced);
  }
}

void HardwareNetwork::capture_targets() {
  targets_ = net_->save_mappable_weights();
}

std::vector<mapping::MappingReport> HardwareNetwork::deploy(
    MappingPolicy policy, std::size_t levels,
    const NetworkEvaluator& evaluate, double keep_threshold,
    double switch_margin) {
  XB_CHECK(policy == MappingPolicy::kFresh || evaluate != nullptr,
           "aging-aware deployment needs a network evaluator");
  std::vector<mapping::MappingReport> reports;
  auto mappable = net_->mappable_weights();
  XB_ASSERT(mappable.size() == layers_.size(),
            "network mappable-weight count changed after deployment");

  for (std::size_t i = 0; i < layers_.size(); ++i) {
    DeployedLayer& layer = layers_[i];
    const Tensor& target_w = targets_[i];
    const mapping::WeightRange wr = mapping::weight_range_of(target_w);

    const mapping::ResistanceRange fresh{dev_.r_min_fresh,
                                         dev_.r_max_fresh};
    double upper_cut = fresh.r_hi;
    if (policy == MappingPolicy::kAgingAware) {
      // Score candidates by loading the layer's predicted effective
      // weights into the evaluation engine.
      auto scorer = [&](const Tensor& predicted) {
        Tensor saved = *mappable[i].value;
        *mappable[i].value = predicted;
        const double score = evaluate();
        *mappable[i].value = saved;
        return score;
      };
      // The currently programmed range (if any) competes as the incumbent
      // and wins near-ties, since switching rewrites the whole array.
      const mapping::ResistanceRange* incumbent =
          layer.plan != nullptr ? &layer.plan->resistance_range() : nullptr;
      // Candidate bounds come from the 1-of-9 trace; candidate *scoring*
      // uses the simulated per-cell windows, as the paper's TF simulation
      // does when it picks the accuracy-argmax.
      const xbar::Crossbar& xb = *layer.xbar;
      auto true_windows = [&xb](std::size_t r, std::size_t c) {
        return xb.cell(r, c).aged_window();
      };
      const mapping::RangeSelectionResult sel =
          mapping::select_common_range(
              layer.xbar->tracker(), layer.xbar->aging_model(),
              dev_.r_min_fresh, dev_.r_max_fresh, target_w, levels, scorer,
              incumbent, keep_threshold, switch_margin, 8, true_windows);
      upper_cut = sel.selected.r_hi;
    }

    auto new_plan =
        std::make_unique<mapping::MappingPlan>(wr, fresh, levels, upper_cut);
    // A range change moves every target: give previously stuck cells one
    // retry against the new targets.
    const bool range_changed =
        layer.plan == nullptr ||
        layer.plan->resistance_range().r_hi !=
            new_plan->resistance_range().r_hi;
    if (range_changed) {
      std::fill(layer.stuck.begin(), layer.stuck.end(), 0);
      std::fill(layer.pinned_g.begin(), layer.pinned_g.end(), 0.0f);
    }
    layer.plan = std::move(new_plan);
    // Write-verify mapping: cells already holding their target (within
    // half a conductance step) are not pulsed, and cells whose window no
    // longer covers the target are blacklisted after one failed retry.
    layer.last_report = mapping::program_weights(
        *layer.xbar, target_w, *layer.plan, /*skip_unchanged=*/true,
        &layer.stuck, &layer.pinned_g);
    reports.push_back(layer.last_report);
  }
  sync_network_to_hardware();
  return reports;
}

void HardwareNetwork::sync_network_to_hardware() {
  auto mappable = net_->mappable_weights();
  XB_ASSERT(mappable.size() == layers_.size(),
            "network mappable-weight count changed after deployment");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    XB_CHECK(layers_[i].plan != nullptr,
             "sync before first deploy: " + layers_[i].name);
    *mappable[i].value =
        mapping::effective_weights(*layers_[i].xbar, *layers_[i].plan);
  }
}

void HardwareNetwork::restore_targets_to_network() {
  net_->load_mappable_weights(targets_);
}

std::vector<xbar::CrossbarAgingStats> HardwareNetwork::aging_stats() const {
  std::vector<xbar::CrossbarAgingStats> stats;
  stats.reserve(layers_.size());
  for (const DeployedLayer& layer : layers_) {
    stats.push_back(layer.xbar->aging_stats());
  }
  return stats;
}

std::uint64_t HardwareNetwork::total_pulses() const {
  std::uint64_t total = 0;
  for (const DeployedLayer& layer : layers_) {
    total += layer.xbar->total_pulses();
  }
  return total;
}

}  // namespace xbarlife::tuning
