#include "tuning/hardware_network.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbarlife::tuning {

void HardwareFaultConfig::validate() const {
  nonideal.validate();
}

HardwareNetwork::HardwareNetwork(nn::Network& net,
                                 const device::DeviceParams& dev,
                                 const aging::AgingParams& aging)
    : HardwareNetwork(net, dev, aging, HardwareFaultConfig{}) {}

HardwareNetwork::HardwareNetwork(nn::Network& net,
                                 const device::DeviceParams& dev,
                                 const aging::AgingParams& aging,
                                 const HardwareFaultConfig& faults)
    : net_(&net), dev_(dev), aging_(aging), faults_(faults) {
  dev_.validate();
  aging_.validate();
  faults_.validate();
  // One seed stream per layer so adding a layer does not reshuffle the
  // fault maps of the others.
  Rng fault_root(faults_.fault_seed);
  std::size_t layer_index = 0;
  for (const nn::MappableWeight& mw : net.mappable_weights()) {
    XB_CHECK(mw.value->shape().rank() == 2,
             "mappable weight must be a matrix: " + mw.name);
    DeployedLayer layer;
    layer.weight_index = mw.index;
    layer.name = mw.name;
    layer.kind = mw.layer_kind;
    layer.logical_rows = mw.value->shape()[0];
    const std::size_t physical_rows =
        layer.logical_rows + (faults_.active() ? faults_.spare_rows : 0);
    layer.xbar = std::make_unique<xbar::Crossbar>(
        physical_rows, mw.value->shape()[1], dev_, aging_);
    if (faults_.nonideal.any()) {
      layer.xbar->configure_nonideality(faults_.nonideal,
                                        fault_root.fork(layer_index)());
    }
    layer.stuck.assign(physical_rows * mw.value->shape()[1], 0);
    layer.pinned_g.assign(physical_rows * mw.value->shape()[1], 0.0f);
    layers_.push_back(std::move(layer));
    ++layer_index;
  }
  XB_CHECK(!layers_.empty(), "network has no mappable weights");
  capture_targets();
}

DeployedLayer& HardwareNetwork::layer(std::size_t i) {
  XB_CHECK(i < layers_.size(), "deployed layer index out of range");
  return layers_[i];
}

const DeployedLayer& HardwareNetwork::layer(std::size_t i) const {
  XB_CHECK(i < layers_.size(), "deployed layer index out of range");
  return layers_[i];
}

void HardwareNetwork::attach_metrics(obs::Registry& registry) {
  obs::Counter& pulses = registry.counter("aging.pulses");
  obs::Counter& traced = registry.counter("aging.traced_pulses");
  obs::Counter& sequences = registry.counter("executor.sequences");
  obs::Counter& batches = registry.counter("executor.column_batches");
  for (DeployedLayer& layer : layers_) {
    layer.xbar->attach_pulse_counters(&pulses, &traced);
    layer.xbar->attach_executor_counters(&sequences, &batches);
  }
}

void HardwareNetwork::attach_profiler(obs::Profiler* profiler) {
  for (DeployedLayer& layer : layers_) {
    layer.xbar->attach_profiler(profiler);
  }
}

void HardwareNetwork::capture_targets() {
  targets_ = net_->save_mappable_weights();
}

std::vector<mapping::MappingReport> HardwareNetwork::deploy(
    MappingPolicy policy, std::size_t levels,
    const NetworkEvaluator& evaluate, double keep_threshold,
    double switch_margin) {
  XB_CHECK(policy == MappingPolicy::kFresh || evaluate != nullptr,
           "aging-aware deployment needs a network evaluator");
  std::vector<mapping::MappingReport> reports;
  auto mappable = net_->mappable_weights();
  XB_ASSERT(mappable.size() == layers_.size(),
            "network mappable-weight count changed after deployment");

  for (std::size_t i = 0; i < layers_.size(); ++i) {
    DeployedLayer& layer = layers_[i];
    const Tensor& target_w = targets_[i];
    const mapping::WeightRange wr = mapping::weight_range_of(target_w);

    const mapping::ResistanceRange fresh{dev_.r_min_fresh,
                                         dev_.r_max_fresh};
    double upper_cut = fresh.r_hi;
    if (policy == MappingPolicy::kAgingAware) {
      // Score candidates by loading the layer's predicted effective
      // weights into the evaluation engine.
      auto scorer = [&](const Tensor& predicted) {
        Tensor saved = *mappable[i].value;
        *mappable[i].value = predicted;
        const double score = evaluate();
        *mappable[i].value = saved;
        return score;
      };
      // The currently programmed range (if any) competes as the incumbent
      // and wins near-ties, since switching rewrites the whole array.
      const mapping::ResistanceRange* incumbent =
          layer.plan != nullptr ? &layer.plan->resistance_range() : nullptr;
      // Candidate bounds come from the 1-of-9 trace; candidate *scoring*
      // uses the simulated per-cell windows, as the paper's TF simulation
      // does when it picks the accuracy-argmax. Logical row indices go
      // through the layer's permutation.
      const DeployedLayer& l = layer;
      auto true_windows = [&l](std::size_t r, std::size_t c) {
        return l.xbar->cell(l.physical_row(r), c).aged_window();
      };
      const mapping::RangeSelectionResult sel =
          mapping::select_common_range(
              layer.xbar->tracker(), layer.xbar->aging_model(),
              dev_.r_min_fresh, dev_.r_max_fresh, target_w, levels, scorer,
              incumbent, keep_threshold, switch_margin, 8, true_windows);
      upper_cut = sel.selected.r_hi;
    }

    auto new_plan =
        std::make_unique<mapping::MappingPlan>(wr, fresh, levels, upper_cut);
    // A range change moves every target: give previously stuck cells one
    // retry against the new targets.
    const bool range_changed =
        layer.plan == nullptr ||
        layer.plan->resistance_range().r_hi !=
            new_plan->resistance_range().r_hi;
    if (range_changed) {
      std::fill(layer.stuck.begin(), layer.stuck.end(), 0);
      std::fill(layer.pinned_g.begin(), layer.pinned_g.end(), 0.0f);
    }
    layer.plan = std::move(new_plan);
    // Write-verify mapping: cells already holding their target (within
    // half a conductance step) are not pulsed, and cells whose window no
    // longer covers the target are blacklisted after one failed retry.
    layer.last_report = program_layer(i);
    reports.push_back(layer.last_report);
  }
  sync_network_to_hardware();
  return reports;
}

Tensor HardwareNetwork::physical_targets(std::size_t i) const {
  const DeployedLayer& layer = layers_[i];
  const Tensor& logical = targets_[i];
  const std::size_t cols = logical.shape()[1];
  Tensor physical(Shape{layer.xbar->rows(), cols});
  for (std::size_t r = 0; r < layer.logical_rows; ++r) {
    const std::size_t pr = layer.physical_row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      physical.at(pr, c) = logical.at(r, c);
    }
  }
  return physical;
}

std::vector<std::uint8_t> HardwareNetwork::row_mask(std::size_t i) const {
  const DeployedLayer& layer = layers_[i];
  if (layer.row_perm.empty() &&
      layer.xbar->rows() == layer.logical_rows) {
    return {};  // Identity mapping, no spares: every row is active.
  }
  std::vector<std::uint8_t> mask(layer.xbar->rows(), 0);
  for (std::size_t r = 0; r < layer.logical_rows; ++r) {
    mask[layer.physical_row(r)] = 1;
  }
  return mask;
}

mapping::MappingReport HardwareNetwork::program_layer(std::size_t i) {
  DeployedLayer& layer = layers_[i];
  XB_CHECK(layer.plan != nullptr,
           "program before first deploy: " + layer.name);
  const std::vector<std::uint8_t> mask = row_mask(i);
  if (mask.empty()) {
    // Identity fast path: byte-for-byte the pre-resilience behaviour.
    layer.last_report = mapping::program_weights(
        *layer.xbar, targets_[i], *layer.plan, /*skip_unchanged=*/true,
        &layer.stuck, &layer.pinned_g);
  } else {
    const Tensor physical = physical_targets(i);
    layer.last_report = mapping::program_weights(
        *layer.xbar, physical, *layer.plan, /*skip_unchanged=*/true,
        &layer.stuck, &layer.pinned_g, &mask);
  }
  return layer.last_report;
}

void HardwareNetwork::sync_network_to_hardware() {
  auto mappable = net_->mappable_weights();
  XB_ASSERT(mappable.size() == layers_.size(),
            "network mappable-weight count changed after deployment");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const DeployedLayer& layer = layers_[i];
    XB_CHECK(layer.plan != nullptr,
             "sync before first deploy: " + layer.name);
    const std::size_t cols = layer.xbar->cols();
    Tensor eff(Shape{layer.logical_rows, cols});
    for (std::size_t r = 0; r < layer.logical_rows; ++r) {
      const std::size_t pr = layer.physical_row(r);
      for (std::size_t c = 0; c < cols; ++c) {
        eff.at(r, c) = static_cast<float>(layer.plan->weight_of_resistance(
            layer.xbar->read_resistance(pr, c)));
      }
    }
    *mappable[i].value = std::move(eff);
  }
}

void HardwareNetwork::restore_targets_to_network() {
  net_->load_mappable_weights(targets_);
}

mapping::MappingReport HardwareNetwork::retry_clamped_cells(std::size_t i) {
  DeployedLayer& l = layer(i);
  for (std::size_t idx = 0; idx < l.stuck.size(); ++idx) {
    if (l.stuck[idx] == mapping::kCellClamped) {
      l.stuck[idx] = mapping::kCellHealthy;
      l.pinned_g[idx] = 0.0f;
    }
  }
  return program_layer(i);
}

mapping::MappingReport HardwareNetwork::reprogram_targets(std::size_t i) {
  (void)layer(i);
  return program_layer(i);
}

void HardwareNetwork::set_row_permutation(std::size_t i,
                                          std::vector<std::size_t> perm) {
  DeployedLayer& layer = this->layer(i);
  if (!perm.empty()) {
    XB_CHECK(perm.size() == layer.logical_rows,
             "row permutation must cover every logical row");
    std::vector<std::uint8_t> used(layer.xbar->rows(), 0);
    for (const std::size_t pr : perm) {
      XB_CHECK(pr < layer.xbar->rows(),
               "row permutation entry out of physical range");
      XB_CHECK(used[pr] == 0, "row permutation must be injective");
      used[pr] = 1;
    }
  }
  layer.row_perm = std::move(perm);
  // Every logical row may now face different physical cells: clamped
  // verdicts are stale (dead cells stay retired — their windows are
  // collapsed regardless of which logical row they serve).
  for (std::size_t idx = 0; idx < layer.stuck.size(); ++idx) {
    if (layer.stuck[idx] == mapping::kCellClamped) {
      layer.stuck[idx] = mapping::kCellHealthy;
      layer.pinned_g[idx] = 0.0f;
    }
  }
}

std::size_t HardwareNetwork::physical_rows(std::size_t i) const {
  return layer(i).xbar->rows();
}

LayerFaultCounts HardwareNetwork::fault_counts(std::size_t i) const {
  const DeployedLayer& l = layer(i);
  LayerFaultCounts counts;
  const std::size_t cols = l.xbar->cols();
  counts.cells = l.logical_rows * cols;
  const xbar::FaultMap* map = l.xbar->fault_map();
  for (std::size_t r = 0; r < l.logical_rows; ++r) {
    const std::size_t pr = l.physical_row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      if (map != nullptr &&
          map->at(pr, c) != xbar::FaultMap::Fault::kNone) {
        ++counts.manufacture;
      }
      const std::uint8_t state = l.stuck[pr * cols + c];
      counts.clamped += state == mapping::kCellClamped;
      counts.dead += state == mapping::kCellDead;
    }
  }
  return counts;
}

std::vector<nn::QuantSpec> HardwareNetwork::quant_specs() const {
  std::vector<nn::QuantSpec> specs;
  specs.reserve(layers_.size());
  for (const DeployedLayer& layer : layers_) {
    nn::QuantSpec spec;
    if (layer.plan != nullptr) {
      // A fully-aged array can report < 2 usable levels; the digital
      // grid needs at least a sign bit to stay well-formed.
      spec.levels = std::max<std::size_t>(2, layer.plan->quantizer().levels());
      const mapping::WeightRange& wr = layer.plan->map().weight_range();
      spec.clamp_lo = static_cast<float>(wr.w_min);
      spec.clamp_hi = static_cast<float>(wr.w_max);
    }
    specs.push_back(spec);
  }
  return specs;
}

std::vector<xbar::CrossbarAgingStats> HardwareNetwork::aging_stats() const {
  std::vector<xbar::CrossbarAgingStats> stats;
  stats.reserve(layers_.size());
  for (const DeployedLayer& layer : layers_) {
    stats.push_back(layer.xbar->aging_stats());
  }
  return stats;
}

std::uint64_t HardwareNetwork::total_pulses() const {
  std::uint64_t total = 0;
  for (const DeployedLayer& layer : layers_) {
    total += layer.xbar->total_pulses();
  }
  return total;
}

namespace {

void write_tensor_values(persist::StateWriter& w, const Tensor& t) {
  w.u64(t.numel());
  for (const float v : t.flat()) {
    w.f32(v);
  }
}

void read_tensor_values(persist::StateReader& r, Tensor& t) {
  const std::uint64_t n = r.u64();
  XB_CHECK(n == t.numel(),
           "tensor snapshot size does not match the network topology");
  for (float& v : t.flat()) {
    v = r.f32();
  }
}

}  // namespace

void HardwareNetwork::save_state(persist::StateWriter& w) const {
  w.u64(layers_.size());
  for (const DeployedLayer& l : layers_) {
    w.boolean(l.plan != nullptr);
    if (l.plan != nullptr) {
      // A plan is fully determined by (weight range, fresh grid, upper
      // cut); serializing those four numbers reconstructs it exactly.
      const mapping::WeightRange& wr = l.plan->map().weight_range();
      const mapping::ResistanceRange& fresh = l.plan->quantizer().fresh_range();
      w.f64(wr.w_min);
      w.f64(wr.w_max);
      w.f64(fresh.r_lo);
      w.f64(fresh.r_hi);
      w.u64(l.plan->quantizer().fresh_levels());
      w.f64(l.plan->resistance_range().r_hi);
    }
    w.u64(l.last_report.total_cells);
    w.u64(l.last_report.programmed_cells);
    w.u64(l.last_report.clamped_cells);
    w.f64(l.last_report.quantization_rmse);
    w.f64(l.last_report.mean_target_conductance);
    w.u64(l.stuck.size());
    for (const std::uint8_t s : l.stuck) {
      w.u8(s);
    }
    w.u64(l.pinned_g.size());
    for (const float g : l.pinned_g) {
      w.f32(g);
    }
    w.u64(l.row_perm.size());
    for (const std::size_t p : l.row_perm) {
      w.u64(p);
    }
    l.xbar->save_state(w);
  }
  w.u64(targets_.size());
  for (const Tensor& t : targets_) {
    write_tensor_values(w, t);
  }
  std::vector<nn::ParamRef> params = net_->params();
  w.u64(params.size());
  for (const nn::ParamRef& p : params) {
    write_tensor_values(w, *p.value);
  }
}

void HardwareNetwork::load_state(persist::StateReader& r) {
  XB_CHECK(r.u64() == layers_.size(),
           "hardware snapshot layer count does not match this network");
  for (DeployedLayer& l : layers_) {
    if (r.boolean()) {
      const double w_min = r.f64();
      const double w_max = r.f64();
      const double r_lo = r.f64();
      const double r_hi = r.f64();
      const std::uint64_t fresh_levels = r.u64();
      const double upper_cut = r.f64();
      l.plan = std::make_unique<mapping::MappingPlan>(
          mapping::WeightRange{w_min, w_max},
          mapping::ResistanceRange{r_lo, r_hi},
          static_cast<std::size_t>(fresh_levels), upper_cut);
    } else {
      l.plan.reset();
    }
    l.last_report.total_cells = r.u64();
    l.last_report.programmed_cells = r.u64();
    l.last_report.clamped_cells = r.u64();
    l.last_report.quantization_rmse = r.f64();
    l.last_report.mean_target_conductance = r.f64();
    const std::uint64_t n_stuck = r.u64();
    XB_CHECK(n_stuck == l.stuck.size(),
             "bad-cell snapshot size does not match the crossbar");
    for (std::uint8_t& s : l.stuck) {
      s = r.u8();
    }
    const std::uint64_t n_pinned = r.u64();
    XB_CHECK(n_pinned == l.pinned_g.size(),
             "pinned-cell snapshot size does not match the crossbar");
    for (float& g : l.pinned_g) {
      g = r.f32();
    }
    l.row_perm.resize(r.array_count(8));
    for (std::size_t& p : l.row_perm) {
      p = r.u64();
    }
    l.xbar->load_state(r);
  }
  const std::uint64_t n_targets = r.u64();
  XB_CHECK(n_targets == targets_.size(),
           "target snapshot count does not match this network");
  for (Tensor& t : targets_) {
    read_tensor_values(r, t);
  }
  std::vector<nn::ParamRef> params = net_->params();
  XB_CHECK(r.u64() == params.size(),
           "parameter snapshot count does not match this network");
  for (nn::ParamRef& p : params) {
    read_tensor_values(r, *p.value);
  }
}

}  // namespace xbarlife::tuning
